// Scenario (paper §7.2.2): before releasing a synthetic table, audit
// its re-identification risk with the paper's two metrics — hitting
// rate and distance-to-closest-record — and, when provable guarantees
// are required, switch to DPGAN and account the epsilon spent.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "data/generators/realistic.h"
#include "eval/privacy.h"
#include "synth/dp_accountant.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  Rng rng(3);
  data::Table train = data::MakeAdultSim(2000, &rng);

  auto audit = [&](const char* name, data::Table synthetic) {
    eval::HittingRateOptions hopts;
    hopts.num_synthetic_samples = 500;
    eval::DcrOptions dopts;
    dopts.num_original_samples = 300;
    Rng r1(5), r2(6);
    const double hit =
        eval::HittingRate(train, synthetic, hopts, &r1).value();
    const double dcr =
        eval::DistanceToClosestRecord(train, synthetic, dopts, &r2).value();
    std::printf("%-12s hitting-rate=%5.2f%%   DCR=%.3f\n", name,
                100.0 * hit, dcr);
  };

  // Release candidate 1: the raw table itself — maximal risk, for
  // reference (every record "hits" itself, DCR = 0).
  audit("raw-copy", train);

  // Release candidate 2: standard (non-DP) GAN synthesis.
  {
    synth::GanOptions opts;
    opts.iterations = 400;
    synth::TableSynthesizer synth(opts, {});
    synth.Fit(train);
    Rng gen_rng(7);
    audit("GAN", synth.Generate(train.num_records(), &gen_rng));
  }

  // Release candidate 3: DPGAN with a target epsilon. The accountant
  // maps epsilon to the gradient-noise multiplier (Algorithm 4).
  {
    const double target_eps = 0.8;
    synth::GanOptions opts;
    opts.algo = synth::TrainAlgo::kDPTrain;
    opts.iterations = 300;
    opts.d_steps = 2;
    opts.dp_noise_scale = synth::NoiseForEpsilon(
        target_eps, opts.iterations * opts.d_steps, opts.batch_size,
        train.num_records());
    std::printf("\nDPGAN: eps=%.2f -> noise multiplier %.3f\n", target_eps,
                opts.dp_noise_scale);
    synth::TableSynthesizer synth(opts, {});
    synth.Fit(train);
    Rng gen_rng(9);
    audit("DPGAN-0.8", synth.Generate(train.num_records(), &gen_rng));
  }

  std::printf("\nLower hitting rate and higher DCR = lower "
              "re-identification risk.\n");
  return 0;
}

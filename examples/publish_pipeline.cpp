// Scenario: the end-to-end "publish a dataset" workflow a data owner
// would actually run — profile the table, train a conditional GAN with
// validation-based snapshot selection, persist the model, reload it in
// a (conceptually separate) publishing step, generate the release
// table, and emit a full quality report for the data-governance
// review.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/parallel.h"
#include "data/csv.h"
#include "data/generators/realistic.h"
#include "data/profile.h"
#include "eval/report.h"
#include "eval/utility.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  // --- The data owner's side -------------------------------------
  Rng rng(51);
  data::Table full = data::MakeAdultSim(2400, &rng);
  auto split = data::SplitTable(full, 4.0 / 6, 1.0 / 6, &rng);
  std::printf("%s\n",
              data::ProfileToString(data::ProfileTable(split.train)).c_str());

  synth::GanOptions opts;
  opts.algo = synth::TrainAlgo::kCTrain;  // skewed label: Finding 4
  opts.iterations = 300;
  synth::TableSynthesizer synth(opts, {});
  synth.Fit(split.train);

  eval::SnapshotSelectionOptions sopts;
  Rng sel_rng(53);
  const size_t best = eval::SelectBestSnapshot(&synth, split.valid, sopts,
                                               &sel_rng);
  std::printf("selected training snapshot %zu of %zu\n", best + 1,
              synth.num_snapshots());

  const Status save_st = synth.Save("adult_model.daisy");
  std::printf("saved model: %s\n", save_st.ToString().c_str());
  if (!save_st.ok()) return 1;

  // --- The publishing side (separate process in real life) --------
  auto loaded = synth::TableSynthesizer::Load("adult_model.daisy");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Rng gen_rng(59);
  data::Table release = loaded.value()->Generate(
      split.train.num_records(), &gen_rng);
  if (!data::WriteCsv(release, "adult_release.csv").ok()) return 1;
  std::printf("wrote adult_release.csv (%zu records)\n",
              release.num_records());

  // --- Governance review ------------------------------------------
  eval::QualityReportOptions ropts;
  ropts.privacy_samples = 300;
  const std::string report =
      eval::GenerateQualityReport(split.train, release, ropts);
  std::ofstream("adult_release_report.md") << report;
  std::printf("wrote adult_release_report.md (%zu bytes)\n", report.size());

  // Print the headline utility line for the console.
  Rng eval_rng(61);
  const double diff = eval::F1Diff(split.train, release, split.test,
                                   eval::ClassifierKind::kRf10, &eval_rng);
  std::printf("headline RF10 F1 Diff vs real training data: %.4f\n", diff);
  return 0;
}

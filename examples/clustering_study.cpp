// Scenario (paper §2.1): a hospital shares a synthetic table so an
// external team can develop a patient-grouping (clustering) algorithm;
// the algorithm is later deployed on the real data. This example
// verifies that cluster structure discovered on the synthetic table
// matches the real one, comparing design-space points.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "data/generators/realistic.h"
#include "eval/clustering_eval.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  Rng rng(31);
  data::Table patients = data::MakeAnuranSim(2000, &rng);
  Rng nmi_rng(37);
  const double nmi_real = eval::ClusteringNmi(patients, &nmi_rng);
  std::printf("K-Means NMI on the real table: %.4f\n\n", nmi_real);

  struct Point {
    const char* label;
    synth::GeneratorArch arch;
    transform::NumericalNormalization num;
    size_t iterations;
  };
  const Point points[] = {
      {"MLP + simple-norm", synth::GeneratorArch::kMlp,
       transform::NumericalNormalization::kSimple, 400},
      {"MLP + GMM-norm", synth::GeneratorArch::kMlp,
       transform::NumericalNormalization::kGmm, 400},
      {"LSTM + GMM-norm", synth::GeneratorArch::kLstm,
       transform::NumericalNormalization::kGmm, 150},
  };

  for (const auto& point : points) {
    synth::GanOptions opts;
    opts.generator = point.arch;
    opts.iterations = point.iterations;
    transform::TransformOptions topts;
    topts.numerical = point.num;
    synth::TableSynthesizer synth(opts, topts);
    synth.Fit(patients);
    Rng gen_rng(41);
    data::Table fake = synth.Generate(patients.num_records(), &gen_rng);

    Rng r1(43);
    const double nmi_fake = eval::ClusteringNmi(fake, &r1);
    Rng r2(47);
    const double diff = eval::ClusteringDiff(patients, fake, &r2);
    std::printf("%-20s NMI(synthetic)=%.4f   DiffCST=%.4f\n", point.label,
                nmi_fake, diff);
  }

  std::printf("\nSmall DiffCST means clustering algorithms developed on "
              "the synthetic table transfer to the real one.\n");
  return 0;
}

// Scenario (paper §2.1): a client-side dashboard answers aggregate
// queries from a small synthetic table instead of round-tripping to the
// server. This example builds a synthetic copy of a production-style
// workload table (Bing-sim), runs a query workload against both, and
// reports the relative-error difference vs. a 1% uniform sample.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "data/generators/realistic.h"
#include "eval/aqp.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  Rng rng(17);
  data::Table server_table = data::MakeBingSim(6000, &rng);
  std::printf("server table: %zu records, %zu attributes (unlabeled)\n",
              server_table.num_records(), server_table.num_attributes());

  // Synthesize a client-side copy.
  synth::GanOptions opts;
  opts.iterations = 300;
  synth::TableSynthesizer synth(opts, {});
  synth.Fit(server_table);
  Rng gen_rng(19);
  data::Table client_table = synth.Generate(2000, &gen_rng);

  // A workload of count/sum/avg queries with selections and group-bys.
  Rng wl_rng(23);
  eval::AqpWorkloadOptions wopts;
  wopts.num_queries = 200;
  const auto workload =
      eval::GenerateAqpWorkload(server_table, wopts, &wl_rng).value();

  // Show a few individual queries: exact vs synthetic answer.
  std::printf("\nexample queries (exact vs synthetic):\n");
  const double scale = static_cast<double>(server_table.num_records()) /
                       static_cast<double>(client_table.num_records());
  for (size_t q = 0; q < 5; ++q) {
    const auto exact = eval::ExecuteAqpQuery(server_table, workload[q]);
    const auto approx =
        eval::ExecuteAqpQuery(client_table, workload[q], scale);
    const double first_exact = exact.empty() ? 0.0 : exact.begin()->second;
    const double first_approx =
        approx.empty() ? 0.0 : approx.begin()->second;
    std::printf("  q%zu: exact=%10.1f  synthetic=%10.1f  relerr=%.3f\n", q,
                first_exact, first_approx,
                eval::RelativeError(exact, approx));
  }

  // Aggregate quality over the whole workload.
  Rng aqp_rng(29);
  eval::AqpDiffOptions dopts;
  dopts.sample_ratio = 0.05;
  const double diff = eval::AqpDiff(server_table, client_table, workload,
                                    dopts, &aqp_rng).value();
  std::printf("\nDiffAQP over %zu queries (vs 5%% uniform sample "
              "baseline): %.3f\n",
              workload.size(), diff);
  std::printf("Near 0 means the synthetic client table answers the "
              "workload about as well as sampling.\n");
  return 0;
}

// Scenario (paper §1): a hospital wants to share patient data with a
// research team for ML-model development without disclosing records.
// This example measures how well models trained on the synthetic table
// transfer back to real data — the paper's Diff metric (Eq. 1) — and
// compares the GAN against the VAE and PrivBayes baselines.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "data/generators/realistic.h"
#include "eval/utility.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  Rng rng(11);
  data::Table full = data::MakeAdultSim(3000, &rng);
  auto split = data::SplitTable(full, 4.0 / 6, 1.0 / 6, &rng);
  std::printf("adult-sim: %zu train / %zu valid / %zu test records\n\n",
              split.train.num_records(), split.valid.num_records(),
              split.test.num_records());

  auto report = [&](const char* name, const data::Table& synthetic) {
    std::printf("%-10s", name);
    for (auto kind : {eval::ClassifierKind::kDt10,
                      eval::ClassifierKind::kRf10,
                      eval::ClassifierKind::kLogReg}) {
      Rng eval_rng(23);
      const double diff = eval::F1Diff(split.train, synthetic, split.test,
                                       kind, &eval_rng);
      std::printf("  %s diff=%.3f", eval::ClassifierKindName(kind).c_str(),
                  diff);
    }
    std::printf("\n");
  };

  {  // Conditional GAN with label-aware sampling (CTrain): the paper's
     // recommendation for heavily imbalanced labels (Finding 4).
    synth::GanOptions opts;
    opts.algo = synth::TrainAlgo::kCTrain;
    opts.iterations = 400;
    synth::TableSynthesizer synth(opts, {});
    synth.Fit(split.train);
    eval::SnapshotSelectionOptions sopts;
    Rng sel_rng(29);
    eval::SelectBestSnapshot(&synth, split.valid, sopts, &sel_rng);
    Rng gen_rng(31);
    report("CGAN", synth.Generate(split.train.num_records(), &gen_rng));
  }
  {
    baselines::VaeOptions vopts;
    vopts.epochs = 30;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(split.train);
    Rng gen_rng(37);
    report("VAE", vae.Generate(split.train.num_records(), &gen_rng));
  }
  {
    baselines::PrivBayesOptions popts;
    popts.epsilon = 1.6;
    baselines::PrivBayes pb(popts);
    Rng pb_rng(41);
    pb.Fit(split.train, &pb_rng);
    report("PB-1.6", pb.Generate(split.train.num_records(), &pb_rng));
  }

  std::printf("\nLower Diff = the synthetic table trains classifiers that "
              "behave like real-data classifiers.\n");
  return 0;
}

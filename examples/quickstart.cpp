// Quickstart: synthesize a relational table in ~30 lines.
//
//   1. Build (or load via daisy::data::ReadCsv) a table.
//   2. Pick a point in the design space (GanOptions + TransformOptions).
//   3. Fit, generate, and write the synthetic table out as CSV.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/parallel.h"
#include "data/csv.h"
#include "data/profile.h"
#include "data/generators/realistic.h"
#include "obs/run_logger.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value). --log-jsonl PATH streams per-iteration
  // training telemetry; --log-every N thins it.
  std::string log_path;
  size_t log_every = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));
    else if (flag == "--log-jsonl")
      log_path = argv[i + 1];
    else if (flag == "--log-every")
      log_every = std::strtoul(argv[i + 1], nullptr, 10);
  }

  using namespace daisy;

  std::unique_ptr<obs::RunLogger> logger;
  if (!log_path.empty()) {
    auto opened = obs::RunLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", log_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(opened.value());
  }

  // A stand-in for the UCI Adult census table: 6 numerical + 8
  // categorical attributes and a skewed binary income label.
  Rng rng(7);
  data::Table table = data::MakeAdultSim(2000, &rng);
  std::printf("original table profile:\n%s\n",
              data::ProfileToString(data::ProfileTable(table)).c_str());

  // Design-space point: MLP generator, one-hot + GMM transformation,
  // vanilla training with KL warm-up (the paper's recommendation for
  // users who don't want to tune hyper-parameters — Finding 2).
  synth::GanOptions options;
  options.generator = synth::GeneratorArch::kMlp;
  options.iterations = 400;
  options.log_every = log_every == 0 ? 1 : log_every;
  transform::TransformOptions transform_options;
  transform_options.categorical = transform::CategoricalEncoding::kOneHot;
  transform_options.numerical = transform::NumericalNormalization::kGmm;

  synth::TableSynthesizer synthesizer(options, transform_options);
  const Status health = synthesizer.Fit(table, logger.get());
  if (!health.ok())
    std::fprintf(stderr,
                 "training stopped early: %s\n"
                 "generating from the last healthy snapshot\n",
                 health.ToString().c_str());
  if (logger != nullptr)
    std::printf("wrote %zu telemetry records to %s\n",
                logger->lines_written(), logger->path().c_str());

  Rng gen_rng(13);
  data::Table synthetic = synthesizer.Generate(1000, &gen_rng);

  std::printf("synthetic table: %zu records\nfirst rows:\n",
              synthetic.num_records());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < synthetic.num_attributes(); ++j)
      std::printf("%s%s", j ? ", " : "  ",
                  synthetic.CellToString(i, j).c_str());
    std::printf("\n");
  }

  const Status st = data::WriteCsv(synthetic, "synthetic_adult.csv");
  std::printf("wrote synthetic_adult.csv: %s\n", st.ToString().c_str());
  return st.ok() ? 0 : 1;
}

// Quickstart: synthesize a relational table in ~30 lines.
//
//   1. Build (or load via daisy::data::ReadCsv) a table.
//   2. Pick a point in the design space (GanOptions + TransformOptions).
//   3. Fit, generate, and write the synthetic table out as CSV.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "data/csv.h"
#include "data/profile.h"
#include "data/generators/realistic.h"
#include "synth/synthesizer.h"

int main(int argc, char** argv) {
  // Optional --threads N: worker-thread count for the Matrix kernels
  // (equivalent to the DAISY_THREADS environment variable; results are
  // bit-identical for any value).
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads")
      daisy::par::SetNumThreads(
          static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10)));

  using namespace daisy;

  // A stand-in for the UCI Adult census table: 6 numerical + 8
  // categorical attributes and a skewed binary income label.
  Rng rng(7);
  data::Table table = data::MakeAdultSim(2000, &rng);
  std::printf("original table profile:\n%s\n",
              data::ProfileToString(data::ProfileTable(table)).c_str());

  // Design-space point: MLP generator, one-hot + GMM transformation,
  // vanilla training with KL warm-up (the paper's recommendation for
  // users who don't want to tune hyper-parameters — Finding 2).
  synth::GanOptions options;
  options.generator = synth::GeneratorArch::kMlp;
  options.iterations = 400;
  transform::TransformOptions transform_options;
  transform_options.categorical = transform::CategoricalEncoding::kOneHot;
  transform_options.numerical = transform::NumericalNormalization::kGmm;

  synth::TableSynthesizer synthesizer(options, transform_options);
  synthesizer.Fit(table);

  Rng gen_rng(13);
  data::Table synthetic = synthesizer.Generate(1000, &gen_rng);

  std::printf("synthetic table: %zu records\nfirst rows:\n",
              synthetic.num_records());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < synthetic.num_attributes(); ++j)
      std::printf("%s%s", j ? ", " : "  ",
                  synthetic.CellToString(i, j).c_str());
    std::printf("\n");
  }

  const Status st = data::WriteCsv(synthetic, "synthetic_adult.csv");
  std::printf("wrote synthetic_adult.csv: %s\n", st.ToString().c_str());
  return st.ok() ? 0 : 1;
}

// LSTM generator and sequence-to-one LSTM discriminator (paper
// Appendix A.1.3). The generator emits the record attribute-by-
// attribute: the noise z is re-fed at every timestep together with the
// previous step's feature output f, and GMM-normalized attributes take
// two timesteps (value, then mixture component).
#ifndef DAISY_SYNTH_LSTM_NETS_H_
#define DAISY_SYNTH_LSTM_NETS_H_

#include <vector>

#include "nn/linear.h"
#include "nn/lstm.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/heads.h"

namespace daisy::synth {

class LstmGenerator : public Generator {
 public:
  LstmGenerator(size_t noise_dim, size_t cond_dim, size_t hidden_size,
                size_t feature_size,
                const std::vector<transform::AttrSegment>& segments,
                Rng* rng);

  size_t noise_dim() const override { return noise_dim_; }
  size_t cond_dim() const override { return cond_dim_; }
  size_t sample_dim() const override { return sample_dim_; }
  size_t num_timesteps() const { return heads_.size(); }

  Matrix Forward(const Matrix& z, const Matrix& cond, bool training) override;
  Matrix InferenceForward(const Matrix& z, const Matrix& cond) const override;
  void Backward(const Matrix& grad_sample) override;
  std::vector<nn::Parameter*> Params() override;

 private:
  size_t noise_dim_;
  size_t cond_dim_;
  size_t hidden_size_;
  size_t feature_size_;
  size_t sample_dim_;

  nn::LstmCell cell_;
  nn::Parameter fproj_w_;  // hidden -> feature projection (shared)
  nn::Parameter fproj_b_;
  std::vector<HeadProjection> heads_;  // one per timestep

  // Per-step caches for the shared f-projection.
  std::vector<Matrix> step_h_;
  std::vector<Matrix> step_f_;
};

/// Seq-to-one discriminator: the sample is consumed one attribute
/// segment per timestep (each slice zero-padded to the widest segment),
/// and the final hidden state is projected to a logit.
class LstmDiscriminator : public Discriminator {
 public:
  LstmDiscriminator(const std::vector<transform::AttrSegment>& segments,
                    size_t cond_dim, size_t hidden_size, Rng* rng);

  size_t sample_dim() const override { return sample_dim_; }
  size_t cond_dim() const override { return cond_dim_; }

  Matrix Forward(const Matrix& x, const Matrix& cond, bool training) override;
  Matrix Backward(const Matrix& grad_logit) override;
  std::vector<nn::Parameter*> Params() override;

 private:
  std::vector<transform::AttrSegment> segments_;
  size_t sample_dim_;
  size_t cond_dim_;
  size_t slot_width_;  // widest segment
  nn::LstmCell cell_;
  nn::Linear out_;  // hidden -> 1 logit
  size_t cached_batch_ = 0;
};

/// Bidirectional seq-to-one discriminator — the paper lists BiLSTM
/// (Graves et al. [27]) as a future-work architecture; this extension
/// reads the attribute sequence in both directions and scores the
/// concatenated final hidden states.
class BiLstmDiscriminator : public Discriminator {
 public:
  BiLstmDiscriminator(const std::vector<transform::AttrSegment>& segments,
                      size_t cond_dim, size_t hidden_size, Rng* rng);

  size_t sample_dim() const override { return sample_dim_; }
  size_t cond_dim() const override { return cond_dim_; }

  Matrix Forward(const Matrix& x, const Matrix& cond, bool training) override;
  Matrix Backward(const Matrix& grad_logit) override;
  std::vector<nn::Parameter*> Params() override;

 private:
  Matrix StepInput(const Matrix& x, const Matrix& cond, size_t seg) const;

  std::vector<transform::AttrSegment> segments_;
  size_t sample_dim_;
  size_t cond_dim_;
  size_t slot_width_;
  size_t hidden_size_;
  nn::LstmCell fwd_cell_;
  nn::LstmCell bwd_cell_;
  nn::Linear out_;  // 2*hidden -> 1 logit
  size_t cached_batch_ = 0;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_LSTM_NETS_H_

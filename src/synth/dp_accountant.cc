#include "synth/dp_accountant.h"

#include <algorithm>
#include <cmath>

#include "core/status.h"

namespace daisy::synth {

namespace {
constexpr double kMomentsConstant = 2.0;

double SamplingRate(size_t batch, size_t dataset_size) {
  DAISY_CHECK(batch > 0 && dataset_size > 0);
  return std::min(1.0, static_cast<double>(batch) /
                           static_cast<double>(dataset_size));
}
}  // namespace

double ApproxEpsilon(double noise_scale, size_t iterations, size_t batch,
                     size_t dataset_size, double delta) {
  DAISY_CHECK(noise_scale > 0.0 && delta > 0.0 && delta < 1.0);
  const double q = SamplingRate(batch, dataset_size);
  return kMomentsConstant * q *
         std::sqrt(static_cast<double>(iterations) * std::log(1.0 / delta)) /
         noise_scale;
}

double NoiseForEpsilon(double epsilon, size_t iterations, size_t batch,
                       size_t dataset_size, double delta) {
  DAISY_CHECK(epsilon > 0.0);
  const double q = SamplingRate(batch, dataset_size);
  return kMomentsConstant * q *
         std::sqrt(static_cast<double>(iterations) * std::log(1.0 / delta)) /
         epsilon;
}

}  // namespace daisy::synth

// Model persistence for TableSynthesizer (Save/Load declared in
// synthesizer.h). The format is the tagged text stream of
// core/serial.h, versioned via the leading tag. SaveToStream/
// LoadFromStream carry the exact payload so a container format (the
// relational bundle) can embed many models inside one checksummed
// file; the path forms wrap them over a plain fstream.
#include <fstream>
#include <sstream>

#include "core/serial.h"
#include "data/schema_serial.h"
#include "synth/synthesizer.h"

namespace daisy::synth {

namespace {

// v3 adds parent_cond_dim (relational parent conditioning) right after
// the sampler kind. v2 files (pre-relational) load with
// parent_cond_dim = 0; v1 files (pre-TBS) additionally default the
// sampler to kUniform.
constexpr char kFormatTag[] = "daisy-model-v3";
constexpr char kV2FormatTag[] = "daisy-model-v2";
constexpr char kV1FormatTag[] = "daisy-model-v1";

void WriteSegments(Serializer* out,
                   const std::vector<transform::AttrSegment>& segments) {
  out->WriteTag("segments");
  out->WriteU64(segments.size());
  for (const auto& seg : segments) {
    out->WriteU64(static_cast<uint64_t>(seg.kind));
    out->WriteU64(seg.attr_index);
    out->WriteU64(seg.source_col);
    out->WriteU64(seg.offset);
    out->WriteU64(seg.width);
    out->WriteDouble(seg.v_min);
    out->WriteDouble(seg.v_max);
    out->WriteDouble(seg.lo);
    out->WriteDouble(seg.hi);
    out->WriteU64(seg.domain);
    const bool has_gmm =
        seg.kind == transform::AttrSegment::Kind::kGmmNumeric;
    out->WriteU64(has_gmm ? seg.gmm.num_components() : 0);
    if (has_gmm) {
      for (size_t c = 0; c < seg.gmm.num_components(); ++c) {
        out->WriteDouble(seg.gmm.mean(c));
        out->WriteDouble(seg.gmm.stddev(c));
        out->WriteDouble(seg.gmm.weight(c));
      }
    }
  }
}

std::vector<transform::AttrSegment> ReadSegments(Deserializer* in) {
  in->ExpectTag("segments");
  const size_t n = in->ReadU64();
  if (!in->ok() || n > 100000) return {};
  std::vector<transform::AttrSegment> segments(n);
  for (auto& seg : segments) {
    seg.kind = static_cast<transform::AttrSegment::Kind>(in->ReadU64());
    seg.attr_index = in->ReadU64();
    seg.source_col = in->ReadU64();
    seg.offset = in->ReadU64();
    seg.width = in->ReadU64();
    seg.v_min = in->ReadDouble();
    seg.v_max = in->ReadDouble();
    seg.lo = in->ReadDouble();
    seg.hi = in->ReadDouble();
    seg.domain = in->ReadU64();
    const size_t gmm_components = in->ReadU64();
    if (!in->ok() || gmm_components > 1000) return {};
    if (gmm_components > 0) {
      std::vector<double> means(gmm_components), sds(gmm_components),
          ws(gmm_components);
      for (size_t c = 0; c < gmm_components; ++c) {
        means[c] = in->ReadDouble();
        sds[c] = in->ReadDouble();
        ws[c] = in->ReadDouble();
      }
      if (!in->ok()) return {};
      seg.gmm = stats::Gmm1d::FromParams(std::move(means), std::move(sds),
                                         std::move(ws));
    }
  }
  return segments;
}

}  // namespace

Status TableSynthesizer::SaveToStream(std::ostream& os) const {
  if (!fitted_)
    return Status::FailedPrecondition("cannot save an unfitted model");
  Serializer out(&os);

  out.WriteTag(kFormatTag);
  // Options needed to rebuild the networks.
  out.WriteU64(static_cast<uint64_t>(opts_.generator));
  out.WriteU64(static_cast<uint64_t>(opts_.discriminator));
  out.WriteU64(opts_.conditional ? 1 : 0);
  out.WriteU64(opts_.simplified_discriminator ? 1 : 0);
  out.WriteU64(opts_.noise_dim);
  out.WriteU64(opts_.g_hidden.size());
  for (size_t w : opts_.g_hidden) out.WriteU64(w);
  out.WriteU64(opts_.d_hidden.size());
  for (size_t w : opts_.d_hidden) out.WriteU64(w);
  out.WriteU64(opts_.lstm_hidden);
  out.WriteU64(opts_.lstm_feature);
  out.WriteU64(opts_.seed);
  // The sampler kind and parent_cond_dim decide the cond-vector layout
  // at load time (training-by-sampling models condition on attributes,
  // parent-conditioned models on external condition rows).
  out.WriteU64(static_cast<uint64_t>(opts_.sampler));
  out.WriteU64(opts_.parent_cond_dim);
  // Transform options.
  out.WriteU64(static_cast<uint64_t>(topts_.categorical));
  out.WriteU64(static_cast<uint64_t>(topts_.numerical));
  out.WriteU64(static_cast<uint64_t>(topts_.form));
  out.WriteU64(topts_.gmm_components);
  out.WriteU64(topts_.exclude_label ? 1 : 0);

  data::SerializeSchema(&out, full_schema_);
  data::SerializeSchema(&out, transformer_->schema());
  WriteSegments(&out, transformer_->segments());
  out.WriteDoubleVector(label_weights_);
  // Raw per-category generation frequencies for training-by-sampling
  // (empty for other samplers).
  out.WriteTag("tbs");
  out.WriteU64(tbs_weights_.size());
  for (const auto& w : tbs_weights_) out.WriteDoubleVector(w);

  // Current generator parameters and buffers.
  auto* self = const_cast<TableSynthesizer*>(this);
  const StateDict state = GetState(self->g_->Params());
  out.WriteTag("generator");
  out.WriteU64(state.size());
  for (const Matrix& m : state) out.WriteMatrix(m);
  const auto buffers = self->g_->Buffers();
  out.WriteTag("buffers");
  out.WriteU64(buffers.size());
  for (const Matrix* m : buffers) out.WriteMatrix(*m);

  os.flush();
  if (!os) return Status::IOError("model stream write failed");
  return Status::OK();
}

Status TableSynthesizer::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open for write: " + path);
  DAISY_RETURN_IF_ERROR(SaveToStream(file));
  file.flush();
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<TableSynthesizer>> TableSynthesizer::LoadFromStream(
    std::istream& file) {
  // Version dispatch on the leading tag (the tagged-text stream has no
  // peek, so read it before handing the stream to the Deserializer).
  std::string tag;
  if (!(file >> tag))
    return Status::InvalidArgument("empty model stream");
  const bool v3 = tag == kFormatTag;
  const bool v2 = tag == kV2FormatTag;
  if (!v3 && !v2 && tag != kV1FormatTag)
    return Status::InvalidArgument("unrecognized model format tag: " + tag);
  Deserializer in(&file);

  GanOptions opts;
  opts.generator = static_cast<GeneratorArch>(in.ReadU64());
  opts.discriminator = static_cast<DiscriminatorArch>(in.ReadU64());
  opts.conditional = in.ReadU64() == 1;
  opts.simplified_discriminator = in.ReadU64() == 1;
  opts.noise_dim = in.ReadU64();
  const size_t ng = in.ReadU64();
  if (!in.ok() || ng > 64)
    return Status::InvalidArgument("corrupt model file: " + in.error());
  opts.g_hidden.assign(ng, 0);
  for (auto& w : opts.g_hidden) w = in.ReadU64();
  const size_t nd = in.ReadU64();
  if (!in.ok() || nd > 64)
    return Status::InvalidArgument("corrupt model file: " + in.error());
  opts.d_hidden.assign(nd, 0);
  for (auto& w : opts.d_hidden) w = in.ReadU64();
  opts.lstm_hidden = in.ReadU64();
  opts.lstm_feature = in.ReadU64();
  opts.seed = in.ReadU64();
  if (v3 || v2) {
    const uint64_t sampler = in.ReadU64();
    if (sampler > static_cast<uint64_t>(SamplerKind::kTrainingBySampling))
      return Status::InvalidArgument("corrupt model file: bad sampler kind");
    opts.sampler = static_cast<SamplerKind>(sampler);
  }
  if (v3) {
    opts.parent_cond_dim = in.ReadU64();
    if (!in.ok() || opts.parent_cond_dim > 1000000)
      return Status::InvalidArgument("corrupt model file: bad cond dim");
  }

  transform::TransformOptions topts;
  topts.categorical =
      static_cast<transform::CategoricalEncoding>(in.ReadU64());
  topts.numerical =
      static_cast<transform::NumericalNormalization>(in.ReadU64());
  topts.form = static_cast<transform::SampleForm>(in.ReadU64());
  topts.gmm_components = in.ReadU64();
  topts.exclude_label = in.ReadU64() == 1;

  data::Schema full_schema = data::DeserializeSchema(&in);
  data::Schema sub_schema = data::DeserializeSchema(&in);
  auto segments = ReadSegments(&in);
  auto label_weights = in.ReadDoubleVector();
  std::vector<std::vector<double>> tbs_weights;
  if (v3 || v2) {
    in.ExpectTag("tbs");
    const size_t num_tbs = in.ReadU64();
    if (!in.ok() || num_tbs > 100000)
      return Status::InvalidArgument("corrupt model file: " + in.error());
    tbs_weights.resize(num_tbs);
    for (auto& w : tbs_weights) w = in.ReadDoubleVector();
  }

  in.ExpectTag("generator");
  const size_t num_params = in.ReadU64();
  if (!in.ok() || num_params > 10000)
    return Status::InvalidArgument("corrupt model file: " + in.error());
  StateDict state(num_params);
  for (auto& m : state) m = in.ReadMatrix();
  in.ExpectTag("buffers");
  const size_t num_buffers = in.ReadU64();
  if (!in.ok() || num_buffers > 10000)
    return Status::InvalidArgument("corrupt model file: " + in.error());
  std::vector<Matrix> buffers(num_buffers);
  for (auto& m : buffers) m = in.ReadMatrix();
  if (!in.ok())
    return Status::InvalidArgument("corrupt model file: " + in.error());

  auto synth = std::unique_ptr<TableSynthesizer>(
      new TableSynthesizer(opts, topts));
  synth->full_schema_ = std::move(full_schema);
  synth->label_weights_ = std::move(label_weights);
  synth->tbs_weights_ = std::move(tbs_weights);
  synth->transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::FromState(synth->topts_, sub_schema,
                                              std::move(segments)));
  synth->BuildNetworks();
  if (synth->UsesTbs() &&
      synth->tbs_weights_.size() != synth->tbs_blocks_.size())
    return Status::InvalidArgument(
        "model file TBS weights do not match its cond-vector layout");
  const auto params = synth->g_->Params();
  if (params.size() != state.size())
    return Status::InvalidArgument("model file does not match networks");
  for (size_t i = 0; i < params.size(); ++i)
    if (!params[i]->value.SameShape(state[i]))
      return Status::InvalidArgument("parameter shape mismatch in model");
  SetState(params, state);
  const auto buffer_ptrs = synth->g_->Buffers();
  if (buffer_ptrs.size() != buffers.size())
    return Status::InvalidArgument("buffer count mismatch in model");
  for (size_t i = 0; i < buffer_ptrs.size(); ++i) {
    if (!buffer_ptrs[i]->SameShape(buffers[i]))
      return Status::InvalidArgument("buffer shape mismatch in model");
    *buffer_ptrs[i] = buffers[i];
  }
  synth->final_state_ = std::move(state);
  synth->fitted_ = true;
  return synth;
}

Result<std::unique_ptr<TableSynthesizer>> TableSynthesizer::Load(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open for read: " + path);
  auto loaded = LoadFromStream(file);
  if (!loaded.ok() && loaded.status().message() == "empty model stream")
    return Status::InvalidArgument("empty model file: " + path);
  return loaded;
}

}  // namespace daisy::synth

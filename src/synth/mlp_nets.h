// MLP generator and discriminator (paper Appendix A.1.2).
#ifndef DAISY_SYNTH_MLP_NETS_H_
#define DAISY_SYNTH_MLP_NETS_H_

#include <vector>

#include "nn/sequential.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/heads.h"

namespace daisy::synth {

/// Generator: [z | c] -> L x (FC -> BatchNorm -> ReLU) -> attribute-
/// aware output heads.
class MlpGenerator : public Generator {
 public:
  MlpGenerator(size_t noise_dim, size_t cond_dim,
               const std::vector<size_t>& hidden,
               const std::vector<transform::AttrSegment>& segments, Rng* rng);

  size_t noise_dim() const override { return noise_dim_; }
  size_t cond_dim() const override { return cond_dim_; }
  size_t sample_dim() const override { return heads_.sample_dim(); }

  Matrix Forward(const Matrix& z, const Matrix& cond, bool training) override;
  Matrix InferenceForward(const Matrix& z, const Matrix& cond) const override;
  void Backward(const Matrix& grad_sample) override;
  std::vector<nn::Parameter*> Params() override;
  std::vector<Matrix*> Buffers() override { return body_.Buffers(); }

 private:
  size_t noise_dim_;
  size_t cond_dim_;
  nn::Sequential body_;
  AttributeHeads heads_;
};

/// Discriminator: [t | c] -> L x (FC -> LeakyReLU) -> FC -> logit.
/// `simplified` collapses the body to one narrow layer (the §5.2
/// mode-collapse mitigation).
class MlpDiscriminator : public Discriminator {
 public:
  MlpDiscriminator(size_t sample_dim, size_t cond_dim,
                   const std::vector<size_t>& hidden, bool simplified,
                   Rng* rng);

  size_t sample_dim() const override { return sample_dim_; }
  size_t cond_dim() const override { return cond_dim_; }

  Matrix Forward(const Matrix& x, const Matrix& cond, bool training) override;
  Matrix Backward(const Matrix& grad_logit) override;
  std::vector<nn::Parameter*> Params() override;
  std::vector<Matrix*> Buffers() override { return body_.Buffers(); }
  std::unique_ptr<Discriminator> Clone() const override;
  nn::Sequential* FastPathBody() override { return &body_; }

 private:
  // Shell for Clone(): dims only, body filled in by the caller.
  MlpDiscriminator(size_t sample_dim, size_t cond_dim)
      : sample_dim_(sample_dim), cond_dim_(cond_dim) {}

  size_t sample_dim_;
  size_t cond_dim_;
  nn::Sequential body_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_MLP_NETS_H_

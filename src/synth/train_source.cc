#include "synth/train_source.h"

namespace daisy::synth {

InMemoryTrainSource::InMemoryTrainSource(
    const data::Table& table,
    const transform::RecordTransformer* transformer)
    : table_(table), real_all_(transformer->Transform(table)) {
  if (table.schema().has_label()) labels_ = table.Labels();
}

PagedTrainSource::PagedTrainSource(
    const data::PagedTable* table,
    const transform::RecordTransformer* transformer)
    : table_(table), transformer_(transformer) {
  if (table_->schema().has_label()) {
    auto labels = table_->ReadLabels();
    // The file's checksums were verified at Open; a failure here is a
    // hardware/filesystem fault, not bad data.
    DAISY_CHECK(labels.ok());
    labels_ = labels.take();
  }
}

Matrix PagedTrainSource::GatherSamples(
    const std::vector<size_t>& rows) const {
  auto raw = table_->GatherRows(rows);
  DAISY_CHECK(raw.ok());
  const Matrix& cells = raw.value();

  // Rehydrate the batch as a tiny full-schema table so the transformer
  // encodes it exactly as it would the in-memory original (same
  // category validation, same per-record encoding).
  data::Table batch(table_->schema());
  batch.Reserve(rows.size());
  std::vector<double> record(table_->num_attributes());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < record.size(); ++j) record[j] = cells(i, j);
    batch.AppendRecord(record);
  }
  return transformer_->Transform(batch);
}

}  // namespace daisy::synth

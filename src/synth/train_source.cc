#include "synth/train_source.h"

#include <cmath>

namespace daisy::synth {

InMemoryTrainSource::InMemoryTrainSource(
    const data::Table& table,
    const transform::RecordTransformer* transformer)
    : table_(table), real_all_(transformer->Transform(table)) {
  if (table.schema().has_label()) labels_ = table.Labels();
}

std::vector<size_t> InMemoryTrainSource::CategoryColumn(
    size_t source_col) const {
  std::vector<size_t> out(table_.num_records());
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = table_.category(i, source_col);
  return out;
}

PagedTrainSource::PagedTrainSource(
    const data::PagedTable* table,
    const transform::RecordTransformer* transformer)
    : table_(table), transformer_(transformer) {
  if (table_->schema().has_label()) {
    auto labels = table_->ReadLabels();
    // The file's checksums were verified at Open; a failure here is a
    // hardware/filesystem fault, not bad data.
    DAISY_CHECK(labels.ok());
    labels_ = labels.take();
  }
}

Matrix PagedTrainSource::GatherSamples(
    const std::vector<size_t>& rows) const {
  auto raw = table_->GatherRows(rows);
  DAISY_CHECK(raw.ok());
  const Matrix& cells = raw.value();

  // Rehydrate the batch as a tiny full-schema table so the transformer
  // encodes it exactly as it would the in-memory original (same
  // category validation, same per-record encoding).
  data::Table batch(table_->schema());
  batch.Reserve(rows.size());
  std::vector<double> record(table_->num_attributes());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < record.size(); ++j) record[j] = cells(i, j);
    batch.AppendRecord(record);
  }
  return transformer_->Transform(batch);
}

std::vector<size_t> PagedTrainSource::CategoryColumn(
    size_t source_col) const {
  const data::Attribute& attr = table_->schema().attribute(source_col);
  DAISY_CHECK(attr.is_categorical());
  const size_t n = table_->num_records();
  // Cache-bypassing sequential scan: one pass over the column without
  // evicting the page cache the training loop depends on.
  std::vector<double> cells(n);
  auto st = table_->ScanColumn(source_col, 0, n, cells.data());
  DAISY_CHECK(st.ok());
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    // Same round-and-validate as Table::category, so paged pools are
    // identical to in-memory pools for the same data.
    const long long idx = std::llround(cells[i]);
    DAISY_CHECK(idx >= 0 &&
                idx < static_cast<long long>(attr.domain_size()));
    out[i] = static_cast<size_t>(idx);
  }
  return out;
}

}  // namespace daisy::synth

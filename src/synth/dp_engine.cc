#include "synth/dp_engine.h"

#include <cmath>
#include <utility>

#include "core/parallel.h"
#include "nn/per_sample.h"

namespace daisy::synth {

namespace {

const Matrix kNoCond;

/// The vectorized engine needs (a) a Sequential computing the logit,
/// (b) only Linear layers holding parameters (nn/per_sample.h), and
/// (c) that stack owning ALL the discriminator's parameters, in the
/// same order — otherwise the tape would miss gradients.
bool VectorizedSupported(Discriminator* d) {
  nn::Sequential* body = d->FastPathBody();
  if (body == nullptr) return false;
  if (!nn::SupportsPerSampleTape(*body)) return false;
  return body->Params() == d->Params();
}

/// Loss term and dLoss/dLogit for one record half. Matches the batched
/// losses exactly: Wasserstein uses the raw critic score (real: -x,
/// fake: +x), BCE uses the stable log1p form of nn::BceWithLogitsLoss
/// evaluated on a single logit.
double HalfTerm(double logit, bool real_half, bool wasserstein,
                double* delta) {
  if (wasserstein) {
    *delta = real_half ? -1.0 : 1.0;
    return real_half ? -logit : logit;
  }
  const double t = real_half ? 1.0 : 0.0;
  *delta = 1.0 / (1.0 + std::exp(-logit)) - t;
  return std::log1p(std::exp(-std::fabs(logit))) + std::max(logit, 0.0) -
         logit * t;
}

/// One record half through `net`: copy row i into the caller's scratch,
/// forward, backpropagate dLoss/dLogit. Returns the UNSCALED loss term.
double RecordHalf(Discriminator* net, const Matrix& x, const Matrix& cond,
                  size_t i, bool real_half, bool wasserstein, Matrix* x_row,
                  Matrix* c_row, Matrix* grad) {
  x_row->CopyRowFrom(x, i);
  const bool has_cond = !cond.empty();
  if (has_cond) c_row->CopyRowFrom(cond, i);
  Matrix logits =
      net->Forward(*x_row, has_cond ? *c_row : kNoCond, /*training=*/true);
  double delta = 0.0;
  const double term = HalfTerm(logits(0, 0), real_half, wasserstein, &delta);
  (*grad)(0, 0) = delta;
  net->Backward(*grad);
  return term;
}

}  // namespace

DpSgdEngine::DpSgdEngine(Discriminator* d, double max_norm,
                         double noise_scale, DpEngineKind requested)
    : d_(d), max_norm_(max_norm), noise_scale_(noise_scale),
      kind_(requested), agg_(d->Params(), max_norm) {
  switch (requested) {
    case DpEngineKind::kAuto: {
      if (VectorizedSupported(d_)) {
        kind_ = DpEngineKind::kVectorized;
        break;
      }
      auto probe = d_->Clone();
      if (probe != nullptr) {
        kind_ = DpEngineKind::kReplicaParallel;
        partials_.push_back(std::make_unique<nn::DpSgdAggregator>(
            probe->Params(), max_norm_));
        replicas_.push_back(std::move(probe));
        break;
      }
      kind_ = DpEngineKind::kPerSample;
      break;
    }
    case DpEngineKind::kVectorized:
      DAISY_CHECK(VectorizedSupported(d_));
      break;
    case DpEngineKind::kReplicaParallel:
      EnsureReplicas(1);  // fails loudly if Clone is unsupported
      break;
    case DpEngineKind::kPerSample:
      break;
  }
}

void DpSgdEngine::EnsureReplicas(size_t n) {
  while (replicas_.size() < n) {
    auto rep = d_->Clone();
    DAISY_CHECK(rep != nullptr);
    partials_.push_back(
        std::make_unique<nn::DpSgdAggregator>(rep->Params(), max_norm_));
    replicas_.push_back(std::move(rep));
  }
}

double DpSgdEngine::Step(const Matrix& real, const Matrix& real_cond,
                         const Matrix& fake, const Matrix& fake_cond,
                         bool wasserstein, Rng* rng) {
  DAISY_CHECK(real.rows() == fake.rows());
  const size_t m = real.rows();
  DAISY_CHECK(m > 0);
  agg_.Reset();
  last_sample_norms_.assign(m, 0.0);

  double loss = 0.0;
  switch (kind_) {
    case DpEngineKind::kPerSample:
      loss = StepPerSample(real, real_cond, fake, fake_cond, wasserstein);
      break;
    case DpEngineKind::kReplicaParallel:
      loss = StepReplica(real, real_cond, fake, fake_cond, wasserstein);
      break;
    case DpEngineKind::kVectorized:
      loss = StepVectorized(real, real_cond, fake, fake_cond, wasserstein);
      break;
    case DpEngineKind::kAuto:
      DAISY_CHECK(false);  // resolved in the constructor
  }

  // Noise is drawn only here, so the rng stream is engine-independent.
  last_sum_norm_ = agg_.SumNorm();
  agg_.Finalize(d_->Params(), noise_scale_, m, rng);
  return loss;
}

double DpSgdEngine::StepPerSample(const Matrix& real, const Matrix& real_cond,
                                  const Matrix& fake, const Matrix& fake_cond,
                                  bool wasserstein) {
  const size_t m = real.rows();
  const double inv_m = 1.0 / static_cast<double>(m);
  const std::vector<nn::Parameter*> params = d_->Params();
  Matrix grad(1, 1);
  double loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    // Per-record unit: the i-th real record's loss plus the i-th fake
    // sample's, so one real record influences exactly one clipped unit.
    d_->ZeroGrad();
    loss += RecordHalf(d_, real, real_cond, i, /*real_half=*/true,
                       wasserstein, &x_row_, &c_row_, &grad) *
            inv_m;
    loss += RecordHalf(d_, fake, fake_cond, i, /*real_half=*/false,
                       wasserstein, &x_row_, &c_row_, &grad) *
            inv_m;
    last_sample_norms_[i] = agg_.AccumulateSample(params);
  }
  return loss;
}

double DpSgdEngine::StepReplica(const Matrix& real, const Matrix& real_cond,
                                const Matrix& fake, const Matrix& fake_cond,
                                bool wasserstein) {
  const size_t m = real.rows();
  const size_t num_chunks = (m + kChunk - 1) / kChunk;
  EnsureReplicas(num_chunks);
  const std::vector<nn::Parameter*> master = d_->Params();
  std::vector<double> chunk_loss(num_chunks, 0.0);

  // Chunk c always covers records [c*kChunk, ...) and always lands on
  // replica / aggregator c: the work partition and every accumulation
  // grouping are pure functions of m, never of the thread count.
  par::ParallelForIndexed(0, m, kChunk, [&](size_t c, size_t b, size_t e) {
    Discriminator* rep = replicas_[c].get();
    nn::DpSgdAggregator* part = partials_[c].get();
    part->Reset();
    const std::vector<nn::Parameter*> params = rep->Params();
    for (size_t p = 0; p < params.size(); ++p)
      params[p]->value = master[p]->value;
    Matrix x_row;
    Matrix c_row;
    Matrix grad(1, 1);
    double lsum = 0.0;
    for (size_t i = b; i < e; ++i) {
      rep->ZeroGrad();
      lsum += RecordHalf(rep, real, real_cond, i, /*real_half=*/true,
                         wasserstein, &x_row, &c_row, &grad);
      lsum += RecordHalf(rep, fake, fake_cond, i, /*real_half=*/false,
                         wasserstein, &x_row, &c_row, &grad);
      last_sample_norms_[i] = part->AccumulateSample(params);
    }
    chunk_loss[c] = lsum;
  });

  // Fixed ascending-chunk reduction.
  double loss = 0.0;
  for (size_t c = 0; c < num_chunks; ++c) {
    agg_.MergeFrom(*partials_[c]);
    loss += chunk_loss[c];
  }
  return loss / static_cast<double>(m);
}

double DpSgdEngine::StepVectorized(const Matrix& real,
                                   const Matrix& real_cond,
                                   const Matrix& fake,
                                   const Matrix& fake_cond,
                                   bool wasserstein) {
  nn::Sequential* body = d_->FastPathBody();
  const size_t m = real.rows();
  const double inv_m = 1.0 / static_cast<double>(m);

  // One batched forward per half. Linear rows and elementwise
  // activations are computed identically batched or one row at a time,
  // so the logits — and the captured tapes — agree with the per-sample
  // reference. The real tape must be captured before the fake forward
  // overwrites the layer caches.
  std::vector<double> term_r(m), term_f(m);
  Matrix delta_r(m, 1), delta_f(m, 1);

  Matrix logits_r = d_->Forward(real, real_cond, /*training=*/true);
  for (size_t i = 0; i < m; ++i) {
    double dlt = 0.0;
    term_r[i] = HalfTerm(logits_r(i, 0), /*real_half=*/true, wasserstein,
                         &dlt);
    delta_r(i, 0) = dlt;
  }
  nn::PerSampleTape tape_r = nn::CapturePerSampleTape(*body, delta_r);

  Matrix logits_f = d_->Forward(fake, fake_cond, /*training=*/true);
  for (size_t i = 0; i < m; ++i) {
    double dlt = 0.0;
    term_f[i] = HalfTerm(logits_f(i, 0), /*real_half=*/false, wasserstein,
                         &dlt);
    delta_f(i, 0) = dlt;
  }
  nn::PerSampleTape tape_f = nn::CapturePerSampleTape(*body, delta_f);

  double loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    loss += term_r[i] * inv_m;
    loss += term_f[i] * inv_m;
  }

  // Per-record squared gradient norms without materializing any
  // per-record gradient. Record i's weight gradient at layer l is
  // x_r^T d_r + x_f^T d_f (rank <= 2), and <a u^T, b v^T>_F =
  // (a.b)(u.v), so its squared Frobenius norm needs only row norms and
  // row dots; the bias gradient is d_r + d_f.
  const size_t num_layers = tape_r.inputs.size();
  DAISY_CHECK(tape_f.inputs.size() == num_layers);
  Matrix sq(m, 1);
  for (size_t l = 0; l < num_layers; ++l) {
    const Matrix xr2 = tape_r.inputs[l].RowSquaredNorms();
    const Matrix dr2 = tape_r.deltas[l].RowSquaredNorms();
    const Matrix xf2 = tape_f.inputs[l].RowSquaredNorms();
    const Matrix df2 = tape_f.deltas[l].RowSquaredNorms();
    const Matrix xrf = Matrix::RowDots(tape_r.inputs[l], tape_f.inputs[l]);
    const Matrix drf = Matrix::RowDots(tape_r.deltas[l], tape_f.deltas[l]);
    for (size_t i = 0; i < m; ++i) {
      const double weight_part = xr2(i, 0) * dr2(i, 0) +
                                 2.0 * xrf(i, 0) * drf(i, 0) +
                                 xf2(i, 0) * df2(i, 0);
      const double bias_part = dr2(i, 0) + 2.0 * drf(i, 0) + df2(i, 0);
      sq(i, 0) += weight_part + bias_part;
    }
  }

  Matrix scales(m, 1);
  for (size_t i = 0; i < m; ++i) {
    const double norm = std::sqrt(sq(i, 0));
    last_sample_norms_[i] = norm;
    scales(i, 0) = norm > max_norm_ ? max_norm_ / norm : 1.0;
  }

  // Clipped SUM via one scale-rows + GEMM pair per layer:
  //   sum_i s_i (x_i^T d_i) = X^T (S D),   S = diag(s).
  // Gradient order mirrors d_->Params(): per Linear layer, weight then
  // bias, in forward order (checked by VectorizedSupported).
  std::vector<Matrix> grads;
  grads.reserve(2 * num_layers);
  for (size_t l = 0; l < num_layers; ++l) {
    Matrix sdr = tape_r.deltas[l];
    sdr.ScaleRows(scales);
    Matrix sdf = tape_f.deltas[l];
    sdf.ScaleRows(scales);
    Matrix gw = tape_r.inputs[l].TransposeMatMul(sdr);
    gw += tape_f.inputs[l].TransposeMatMul(sdf);
    Matrix gb = sdr.ColSum();
    gb += sdf.ColSum();
    grads.push_back(std::move(gw));
    grads.push_back(std::move(gb));
  }
  agg_.AccumulateClippedSum(grads, m);
  return loss;
}

}  // namespace daisy::synth

// Minibatch samplers over the training table (Figure 2's Sampler).
#ifndef DAISY_SYNTH_SAMPLER_H_
#define DAISY_SYNTH_SAMPLER_H_

#include <vector>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::synth {

/// Uniform sampling with replacement — the default GAN minibatch.
class RandomSampler {
 public:
  explicit RandomSampler(size_t num_records) : n_(num_records) {
    DAISY_CHECK(n_ > 0);
  }

  std::vector<size_t> SampleBatch(size_t m, Rng* rng) const {
    std::vector<size_t> out(m);
    for (auto& idx : out) idx = rng->UniformInt(n_);
    return out;
  }

 private:
  size_t n_;
};

/// Epoch-style sampler tuned for out-of-core training: visits the
/// table as shuffled fixed-size chunks of consecutive records,
/// shuffling within each chunk, so one epoch touches every record
/// exactly once while any minibatch spans at most a couple of chunks —
/// O(1) resident pages under a paged table instead of random faults
/// across the whole file.
///
/// Determinism contract: the index stream is a pure function of
/// (num_records, chunk_rows, seed) and the number of indices drawn so
/// far — independent of batch boundaries, page budgets and thread
/// counts. The sampler owns its rng streams (per-epoch chunk order and
/// per-chunk permutations are derived from `seed`), consuming nothing
/// from the training rng, and AdvanceRows fast-forwards to any stream
/// position without materializing skipped permutations — how a resumed
/// run re-aligns the sampler with its checkpoint.
class ChunkedShuffleSampler {
 public:
  ChunkedShuffleSampler(size_t num_records, size_t chunk_rows,
                        uint64_t seed);

  /// m record indices, continuing the stream (batches freely cross
  /// chunk and epoch boundaries).
  std::vector<size_t> SampleBatch(size_t m);

  /// Skips `rows` indices, as if they had been drawn and discarded.
  void AdvanceRows(uint64_t rows);

  size_t num_chunks() const { return num_chunks_; }
  size_t epoch() const { return epoch_; }

 private:
  void StartEpoch();
  void AdvanceChunk();
  size_t ChunkSize(size_t chunk) const;
  size_t NextIndex();

  size_t n_;
  size_t chunk_rows_;
  size_t num_chunks_;
  uint64_t seed_;

  size_t epoch_ = 0;
  std::vector<size_t> chunk_order_;   // visit order of chunks this epoch
  std::vector<uint64_t> chunk_seeds_; // per visit-position shuffle seed
  size_t visit_pos_ = 0;              // position in chunk_order_
  std::vector<size_t> within_;        // lazily materialized permutation
  size_t pos_within_ = 0;             // indices consumed in this chunk
  size_t drawn_in_epoch_ = 0;         // indices consumed this epoch
};

/// Label-aware sampling (paper §5.3): draws a batch restricted to one
/// label so minority labels get fair training opportunities.
class LabelAwareSampler {
 public:
  explicit LabelAwareSampler(const data::Table& table);

  /// Same pools built from a label vector (how the trainer constructs
  /// it from a TrainDataSource, paged or in-memory). Every entry must
  /// be < num_labels.
  LabelAwareSampler(const std::vector<size_t>& labels, size_t num_labels);

  size_t num_labels() const { return by_label_.size(); }
  /// Number of training records carrying the label.
  size_t label_count(size_t label) const { return by_label_[label].size(); }

  /// m record indices, all with the requested label. Labels with no
  /// records yield an empty batch.
  std::vector<size_t> SampleBatchWithLabel(size_t label, size_t m,
                                           Rng* rng) const;

 private:
  std::vector<std::vector<size_t>> by_label_;
};

/// CTGAN-style training-by-sampling (arXiv:2010.00638), generalizing
/// label-aware sampling from "condition on the label" to "condition on
/// any one-hot categorical attribute": each draw picks a conditionable
/// column uniformly, a category from that column's log-frequency
/// distribution (log(1 + count), so rare categories get orders of
/// magnitude more minibatch appearances than their raw frequency would
/// give), and then a row uniformly among the rows carrying that
/// category. Rare modes thus receive gradient signal every few batches
/// instead of once per epoch.
///
/// Determinism contract: every draw consumes exactly three values from
/// the caller's rng (column, category, row), all serially — the draw
/// stream is a pure function of the rng state and the table contents,
/// independent of DAISY_THREADS and DAISY_SIMD.
class TrainingBySamplingSampler {
 public:
  /// One (row, condition) pair: row index to train on, plus the
  /// (block, category) pair that selects the cond-vector bit.
  struct Draw {
    size_t row = 0;
    size_t block = 0;     // index into the CondBlock layout
    size_t category = 0;  // category within that block
  };

  /// `columns[b]` holds the per-row category indices of conditionable
  /// column b (CondBlock order); `domains[b]` its domain size. Every
  /// entry of columns[b] must be < domains[b]. At least one column with
  /// at least one row is required.
  TrainingBySamplingSampler(const std::vector<std::vector<size_t>>& columns,
                            const std::vector<size_t>& domains);

  size_t num_blocks() const { return pools_.size(); }
  /// Rows carrying category c of block b.
  size_t pool_size(size_t b, size_t c) const { return pools_[b][c].size(); }
  /// log(1 + count) sampling weight of category c of block b (0 for
  /// absent categories — they are never drawn).
  double category_weight(size_t b, size_t c) const {
    return log_weights_[b][c];
  }

  /// m (row, block, category) draws. Absent categories are never
  /// selected, so every draw yields a row.
  std::vector<Draw> SampleBatch(size_t m, Rng* rng) const;

 private:
  // pools_[b][c] = row indices with category c in block b.
  std::vector<std::vector<std::vector<size_t>>> pools_;
  std::vector<std::vector<double>> log_weights_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_SAMPLER_H_

// Minibatch samplers over the training table (Figure 2's Sampler).
#ifndef DAISY_SYNTH_SAMPLER_H_
#define DAISY_SYNTH_SAMPLER_H_

#include <vector>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::synth {

/// Uniform sampling with replacement — the default GAN minibatch.
class RandomSampler {
 public:
  explicit RandomSampler(size_t num_records) : n_(num_records) {
    DAISY_CHECK(n_ > 0);
  }

  std::vector<size_t> SampleBatch(size_t m, Rng* rng) const {
    std::vector<size_t> out(m);
    for (auto& idx : out) idx = rng->UniformInt(n_);
    return out;
  }

 private:
  size_t n_;
};

/// Label-aware sampling (paper §5.3): draws a batch restricted to one
/// label so minority labels get fair training opportunities.
class LabelAwareSampler {
 public:
  explicit LabelAwareSampler(const data::Table& table);

  size_t num_labels() const { return by_label_.size(); }
  /// Number of training records carrying the label.
  size_t label_count(size_t label) const { return by_label_[label].size(); }

  /// m record indices, all with the requested label. Labels with no
  /// records yield an empty batch.
  std::vector<size_t> SampleBatchWithLabel(size_t label, size_t m,
                                           Rng* rng) const;

 private:
  std::vector<std::vector<size_t>> by_label_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_SAMPLER_H_

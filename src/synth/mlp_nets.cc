#include "synth/mlp_nets.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"

namespace daisy::synth {

MlpGenerator::MlpGenerator(
    size_t noise_dim, size_t cond_dim, const std::vector<size_t>& hidden,
    const std::vector<transform::AttrSegment>& segments, Rng* rng)
    : noise_dim_(noise_dim), cond_dim_(cond_dim),
      heads_(hidden.empty() ? noise_dim + cond_dim : hidden.back(), segments,
             rng) {
  size_t in = noise_dim + cond_dim;
  for (size_t width : hidden) {
    body_.Emplace<nn::Linear>(in, width, rng);
    // Batch normalization erases the condition signal under label-aware
    // sampling: a CTrain minibatch is homogeneous in the label, so the
    // condition's contribution is a per-batch constant that BN's
    // mean-subtraction removes. Conditional generators therefore skip
    // BN (unconditional ones keep it, per the paper's architecture).
    if (cond_dim == 0) body_.Emplace<nn::BatchNorm1d>(width);
    body_.Emplace<nn::ReLU>();
    in = width;
  }
}

Matrix MlpGenerator::Forward(const Matrix& z, const Matrix& cond,
                             bool training) {
  DAISY_CHECK(z.cols() == noise_dim_);
  Matrix input = cond_dim_ > 0 ? Matrix::HCat(z, cond) : z;
  Matrix features = body_.Forward(input, training);
  return heads_.Forward(features);
}

Matrix MlpGenerator::InferenceForward(const Matrix& z,
                                      const Matrix& cond) const {
  DAISY_CHECK(z.cols() == noise_dim_);
  Matrix input = cond_dim_ > 0 ? Matrix::HCat(z, cond) : z;
  Matrix features = body_.InferenceForward(input);
  return heads_.InferenceForward(features);
}

void MlpGenerator::Backward(const Matrix& grad_sample) {
  Matrix grad_features = heads_.Backward(grad_sample);
  body_.Backward(grad_features);
}

std::vector<nn::Parameter*> MlpGenerator::Params() {
  auto out = body_.Params();
  auto hp = heads_.Params();
  out.insert(out.end(), hp.begin(), hp.end());
  return out;
}

MlpDiscriminator::MlpDiscriminator(size_t sample_dim, size_t cond_dim,
                                   const std::vector<size_t>& hidden,
                                   bool simplified, Rng* rng)
    : sample_dim_(sample_dim), cond_dim_(cond_dim) {
  std::vector<size_t> layers = hidden;
  if (simplified) {
    // One deliberately narrow layer so D never trains "too well"
    // (avoids generator gradient vanishing, paper Finding 3).
    const size_t narrow =
        std::max<size_t>(8, hidden.empty() ? 16 : hidden.front() / 4);
    layers = {narrow};
  }
  size_t in = sample_dim + cond_dim;
  for (size_t width : layers) {
    body_.Emplace<nn::Linear>(in, width, rng);
    body_.Emplace<nn::LeakyReLU>(0.2);
    in = width;
  }
  body_.Emplace<nn::Linear>(in, 1, rng);
}

Matrix MlpDiscriminator::Forward(const Matrix& x, const Matrix& cond,
                                 bool training) {
  DAISY_CHECK(x.cols() == sample_dim_);
  Matrix input = cond_dim_ > 0 ? Matrix::HCat(x, cond) : x;
  return body_.Forward(input, training);
}

Matrix MlpDiscriminator::Backward(const Matrix& grad_logit) {
  Matrix grad_input = body_.Backward(grad_logit);
  // Strip the condition columns: only the sample slice flows to G.
  return cond_dim_ > 0 ? grad_input.ColRange(0, sample_dim_) : grad_input;
}

std::vector<nn::Parameter*> MlpDiscriminator::Params() {
  return body_.Params();
}

std::unique_ptr<Discriminator> MlpDiscriminator::Clone() const {
  auto body = body_.CloneStack();
  if (body == nullptr) return nullptr;
  std::unique_ptr<MlpDiscriminator> copy(
      new MlpDiscriminator(sample_dim_, cond_dim_));
  copy->body_ = std::move(*body);
  return copy;
}

}  // namespace daisy::synth

#include "synth/trainer.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace daisy::synth {

GanTrainer::GanTrainer(Generator* generator, Discriminator* discriminator,
                       const transform::RecordTransformer* transformer,
                       const GanOptions& options)
    : g_(generator), d_(discriminator), transformer_(transformer),
      opts_(options), kl_(transformer->segments()) {
  DAISY_CHECK(g_->sample_dim() == transformer_->sample_dim());
  DAISY_CHECK(d_->sample_dim() == transformer_->sample_dim());
  DAISY_CHECK(g_->cond_dim() == d_->cond_dim());

  const bool wasserstein =
      opts_.algo == TrainAlgo::kWTrain || opts_.algo == TrainAlgo::kDPTrain;
  if (wasserstein) {
    g_opt_ = std::make_unique<nn::RmsProp>(g_->Params(), opts_.lr_g);
    d_opt_ = std::make_unique<nn::RmsProp>(d_->Params(), opts_.lr_d);
  } else {
    g_opt_ = std::make_unique<nn::Adam>(g_->Params(), opts_.lr_g);
    d_opt_ = std::make_unique<nn::Adam>(d_->Params(), opts_.lr_d);
  }
}

Matrix GanTrainer::SampleNoise(size_t m, Rng* rng) const {
  return Matrix::Randn(m, g_->noise_dim(), rng);
}

Matrix GanTrainer::OneHotLabels(const std::vector<size_t>& labels) const {
  Matrix cond(labels.size(), num_labels_);
  for (size_t i = 0; i < labels.size(); ++i) {
    DAISY_CHECK(labels[i] < num_labels_);
    cond(i, labels[i]) = 1.0;
  }
  return cond;
}

double GanTrainer::DiscriminatorStep(const Matrix& real,
                                     const Matrix& real_cond,
                                     const Matrix& fake,
                                     const Matrix& fake_cond,
                                     bool wasserstein, bool dp, Rng* rng) {
  d_->ZeroGrad();
  double loss = 0.0;
  const double m_real = static_cast<double>(real.rows());
  const double m_fake = static_cast<double>(fake.rows());

  {  // Real half.
    Matrix logits = d_->Forward(real, real_cond, /*training=*/true);
    Matrix grad;
    if (wasserstein) {
      // L_D += -mean(D(real)).
      loss += -logits.Mean();
      grad = Matrix(logits.rows(), 1, -1.0 / m_real);
    } else {
      Matrix ones(logits.rows(), 1, 1.0);
      loss += nn::BceWithLogitsLoss(logits, ones, &grad);
    }
    d_->Backward(grad);
  }
  {  // Fake half.
    Matrix logits = d_->Forward(fake, fake_cond, /*training=*/true);
    Matrix grad;
    if (wasserstein) {
      // L_D += mean(D(fake)).
      loss += logits.Mean();
      grad = Matrix(logits.rows(), 1, 1.0 / m_fake);
    } else {
      Matrix zeros(logits.rows(), 1, 0.0);
      loss += nn::BceWithLogitsLoss(logits, zeros, &grad);
    }
    d_->Backward(grad);
  }

  if (dp) {
    nn::ClipAndNoiseGrads(d_->Params(), opts_.dp_grad_bound,
                          opts_.dp_noise_scale, rng);
  }
  d_opt_->Step();
  if (wasserstein) nn::ClipParams(d_->Params(), opts_.weight_clip);
  return loss;
}

double GanTrainer::GeneratorStep(const Matrix& z, const Matrix& cond,
                                 const Matrix& real_ref, bool wasserstein,
                                 Rng* /*rng*/) {
  g_->ZeroGrad();
  d_->ZeroGrad();  // gradients accumulated below are discarded

  Matrix fake = g_->Forward(z, cond, /*training=*/true);
  Matrix logits = d_->Forward(fake, cond, /*training=*/true);

  double loss = 0.0;
  Matrix grad_logits;
  if (wasserstein) {
    // L_G = -mean(D(G(z))).
    loss = -logits.Mean();
    grad_logits = Matrix(logits.rows(), 1,
                         -1.0 / static_cast<double>(logits.rows()));
  } else {
    // Non-saturating loss: maximize log D(G(z)).
    Matrix ones(logits.rows(), 1, 1.0);
    loss = nn::BceWithLogitsLoss(logits, ones, &grad_logits);
  }
  Matrix grad_fake = d_->Backward(grad_logits);

  if (!wasserstein && !real_ref.empty() && opts_.kl_weight > 0.0) {
    loss += kl_.Compute(real_ref, fake, opts_.kl_weight, &grad_fake);
  }

  g_->Backward(grad_fake);
  g_opt_->Step();
  return loss;
}

TrainResult GanTrainer::Train(const data::Table& table, Rng* rng) {
  const bool wasserstein =
      opts_.algo == TrainAlgo::kWTrain || opts_.algo == TrainAlgo::kDPTrain;
  const bool dp = opts_.algo == TrainAlgo::kDPTrain;
  const bool label_aware = opts_.algo == TrainAlgo::kCTrain;
  const bool conditional = g_->cond_dim() > 0;
  DAISY_CHECK(!conditional || table.schema().has_label());
  if (conditional) num_labels_ = table.schema().num_labels();

  // Pre-transform all real records once.
  const Matrix real_all = transformer_->Transform(table);
  const std::vector<size_t> labels_all =
      table.schema().has_label() ? table.Labels() : std::vector<size_t>();

  RandomSampler random_sampler(table.num_records());
  std::unique_ptr<LabelAwareSampler> label_sampler;
  if (label_aware) label_sampler = std::make_unique<LabelAwareSampler>(table);

  // Empirical label distribution, for sampling fake-batch conditions.
  std::vector<double> label_weights;
  if (conditional) {
    label_weights.assign(num_labels_, 0.0);
    for (size_t l : labels_all) label_weights[l] += 1.0;
  }

  auto gather_cond = [&](const std::vector<size_t>& rows) {
    if (!conditional) return Matrix();
    std::vector<size_t> ls(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) ls[i] = labels_all[rows[i]];
    return OneHotLabels(ls);
  };
  auto random_cond = [&](size_t m) {
    if (!conditional) return Matrix();
    std::vector<size_t> ls(m);
    for (auto& l : ls) l = rng->Categorical(label_weights);
    return OneHotLabels(ls);
  };

  TrainResult result;
  const size_t snapshot_every =
      std::max<size_t>(1, opts_.iterations / std::max<size_t>(1, opts_.snapshots));

  for (size_t iter = 0; iter < opts_.iterations; ++iter) {
    if (label_aware) {
      // Algorithm 3: one D+G update per label, with label-restricted
      // real minibatches.
      double d_loss = 0.0, g_loss = 0.0;
      size_t active = 0;
      for (size_t y = 0; y < num_labels_; ++y) {
        auto rows = label_sampler->SampleBatchWithLabel(y, opts_.batch_size,
                                                        rng);
        if (rows.empty()) continue;
        ++active;
        Matrix real = real_all.GatherRows(rows);
        Matrix cond = OneHotLabels(std::vector<size_t>(rows.size(), y));
        Matrix z = SampleNoise(rows.size(), rng);
        Matrix fake = g_->Forward(z, cond, /*training=*/true);
        d_loss += DiscriminatorStep(real, cond, fake, cond, wasserstein, dp,
                                    rng);
        Matrix z2 = SampleNoise(opts_.batch_size, rng);
        Matrix cond2 =
            OneHotLabels(std::vector<size_t>(opts_.batch_size, y));
        g_loss += GeneratorStep(z2, cond2, real, wasserstein, rng);
      }
      DAISY_CHECK(active > 0);
      result.d_losses.push_back(d_loss / static_cast<double>(active));
      result.g_losses.push_back(g_loss / static_cast<double>(active));
    } else {
      // Algorithms 1/2/4: d_steps discriminator updates, then one
      // generator update.
      double d_loss = 0.0;
      const size_t d_steps = std::max<size_t>(1, opts_.d_steps);
      for (size_t s = 0; s < d_steps; ++s) {
        auto rows = random_sampler.SampleBatch(opts_.batch_size, rng);
        Matrix real = real_all.GatherRows(rows);
        Matrix real_cond = gather_cond(rows);
        Matrix z = SampleNoise(opts_.batch_size, rng);
        Matrix fake_cond = random_cond(opts_.batch_size);
        Matrix fake = g_->Forward(z, fake_cond, /*training=*/true);
        d_loss += DiscriminatorStep(real, real_cond, fake, fake_cond,
                                    wasserstein, dp, rng);
      }
      result.d_losses.push_back(d_loss / static_cast<double>(d_steps));

      auto ref_rows = random_sampler.SampleBatch(opts_.batch_size, rng);
      Matrix real_ref = wasserstein ? Matrix()
                                    : real_all.GatherRows(ref_rows);
      Matrix z = SampleNoise(opts_.batch_size, rng);
      Matrix cond = random_cond(opts_.batch_size);
      result.g_losses.push_back(
          GeneratorStep(z, cond, real_ref, wasserstein, rng));
    }

    if ((iter + 1) % snapshot_every == 0 ||
        iter + 1 == opts_.iterations) {
      if (result.snapshots.size() < opts_.snapshots) {
        result.snapshots.push_back(GetState(g_->Params()));
        result.snapshot_iters.push_back(iter + 1);
      }
    }
  }
  // Guarantee the final state is snapshotted.
  if (result.snapshot_iters.empty() ||
      result.snapshot_iters.back() != opts_.iterations) {
    result.snapshots.push_back(GetState(g_->Params()));
    result.snapshot_iters.push_back(opts_.iterations);
  }
  return result;
}

}  // namespace daisy::synth

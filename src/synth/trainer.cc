#include "synth/trainer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/parallel.h"
#include "core/serial.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/sentinel.h"
#include "obs/timer.h"

namespace daisy::synth {

namespace {

const char* AlgoName(TrainAlgo algo) {
  switch (algo) {
    case TrainAlgo::kVTrain: return "gan.vtrain";
    case TrainAlgo::kWTrain: return "gan.wtrain";
    case TrainAlgo::kCTrain: return "gan.ctrain";
    case TrainAlgo::kDPTrain: return "gan.dptrain";
  }
  return "gan";
}

std::string OptimizerBlob(const nn::Optimizer& opt) {
  std::ostringstream os;
  Serializer ser(&os);
  opt.Save(&ser);
  return os.str();
}

Status LoadOptimizerBlob(nn::Optimizer* opt, const std::string& blob,
                         const char* which) {
  std::istringstream is(blob);
  Deserializer des(&is);
  opt->Load(&des);
  if (!des.ok())
    return Status::InvalidArgument(std::string("checkpoint ") + which +
                                   " optimizer state: " + des.error());
  return Status::OK();
}

bool AllFinite(const StateDict& state) {
  for (const Matrix& m : state)
    for (size_t r = 0; r < m.rows(); ++r)
      for (size_t c = 0; c < m.cols(); ++c)
        if (!std::isfinite(m(r, c))) return false;
  return true;
}

// Shapes of `state` match the live parameter list exactly.
bool ShapesMatch(const std::vector<nn::Parameter*>& params,
                 const StateDict& state) {
  if (params.size() != state.size()) return false;
  for (size_t i = 0; i < params.size(); ++i)
    if (!params[i]->value.SameShape(state[i])) return false;
  return true;
}

bool BufferShapesMatch(const std::vector<Matrix*>& buffers,
                       const StateDict& state) {
  if (buffers.size() != state.size()) return false;
  for (size_t i = 0; i < buffers.size(); ++i)
    if (!buffers[i]->SameShape(state[i])) return false;
  return true;
}

}  // namespace

GanTrainer::GanTrainer(Generator* generator, Discriminator* discriminator,
                       const transform::RecordTransformer* transformer,
                       const GanOptions& options)
    : g_(generator), d_(discriminator), transformer_(transformer),
      opts_(options), kl_(transformer->segments()) {
  DAISY_CHECK(g_->sample_dim() == transformer_->sample_dim());
  DAISY_CHECK(d_->sample_dim() == transformer_->sample_dim());
  DAISY_CHECK(g_->cond_dim() == d_->cond_dim());

  const bool wasserstein =
      opts_.algo == TrainAlgo::kWTrain || opts_.algo == TrainAlgo::kDPTrain;
  if (wasserstein) {
    g_opt_ = std::make_unique<nn::RmsProp>(g_->Params(), opts_.lr_g);
    d_opt_ = std::make_unique<nn::RmsProp>(d_->Params(), opts_.lr_d);
  } else {
    g_opt_ = std::make_unique<nn::Adam>(g_->Params(), opts_.lr_g);
    d_opt_ = std::make_unique<nn::Adam>(d_->Params(), opts_.lr_d);
  }
  if (opts_.algo == TrainAlgo::kDPTrain) {
    dp_engine_ = std::make_unique<DpSgdEngine>(
        d_, opts_.dp_grad_bound, opts_.dp_noise_scale, opts_.dp_engine);
  }
}

Matrix GanTrainer::SampleNoise(size_t m, Rng* rng) const {
  return Matrix::Randn(m, g_->noise_dim(), rng);
}

Matrix GanTrainer::OneHotLabels(const std::vector<size_t>& labels) const {
  Matrix cond(labels.size(), num_labels_);
  for (size_t i = 0; i < labels.size(); ++i) {
    DAISY_CHECK(labels[i] < num_labels_);
    cond(i, labels[i]) = 1.0;
  }
  return cond;
}

Matrix GanTrainer::TbsCond(
    const std::vector<TrainingBySamplingSampler::Draw>& draws) const {
  Matrix cond(draws.size(), CondDim(tbs_blocks_));
  for (size_t i = 0; i < draws.size(); ++i) {
    const CondBlock& b = tbs_blocks_[draws[i].block];
    DAISY_CHECK(draws[i].category < b.domain);
    cond(i, b.cond_offset + draws[i].category) = 1.0;
  }
  return cond;
}

double GanTrainer::DiscriminatorStep(const Matrix& real,
                                     const Matrix& real_cond,
                                     const Matrix& fake,
                                     const Matrix& fake_cond,
                                     bool wasserstein, bool dp, Rng* rng) {
  if (dp)
    return DpDiscriminatorStep(real, real_cond, fake, fake_cond, wasserstein,
                               rng);
  d_->ZeroGrad();
  double loss = 0.0;
  const double m_real = static_cast<double>(real.rows());
  const double m_fake = static_cast<double>(fake.rows());

  {  // Real half.
    Matrix logits = d_->Forward(real, real_cond, /*training=*/true);
    Matrix grad;
    if (wasserstein) {
      // L_D += -mean(D(real)).
      loss += -logits.Mean();
      grad = Matrix(logits.rows(), 1, -1.0 / m_real);
    } else {
      Matrix ones(logits.rows(), 1, 1.0);
      loss += nn::BceWithLogitsLoss(logits, ones, &grad);
    }
    d_->Backward(grad);
  }
  {  // Fake half.
    Matrix logits = d_->Forward(fake, fake_cond, /*training=*/true);
    Matrix grad;
    if (wasserstein) {
      // L_D += mean(D(fake)).
      loss += logits.Mean();
      grad = Matrix(logits.rows(), 1, 1.0 / m_fake);
    } else {
      Matrix zeros(logits.rows(), 1, 0.0);
      loss += nn::BceWithLogitsLoss(logits, zeros, &grad);
    }
    d_->Backward(grad);
  }

  last_d_grad_norm_ = nn::GlobalGradNorm(d_->Params());
  // RCC-GAN-style critic regularization: rescale the update when the
  // critic gradient explodes (heavy-tailed batches), leaving telemetry
  // with the true pre-clamp norm.
  if (opts_.critic_reg > 0.0)
    nn::ClipGradNorm(d_->Params(), opts_.critic_reg);
  d_opt_->Step();
  if (wasserstein) nn::ClipParams(d_->Params(), opts_.weight_clip);
  return loss;
}

double GanTrainer::DpDiscriminatorStep(const Matrix& real,
                                       const Matrix& real_cond,
                                       const Matrix& fake,
                                       const Matrix& fake_cond,
                                       bool wasserstein, Rng* rng) {
  DAISY_CHECK(dp_engine_ != nullptr);
  const double inv_m = 1.0 / static_cast<double>(real.rows());
  const double loss =
      dp_engine_->Step(real, real_cond, fake, fake_cond, wasserstein, rng);
  // Telemetry keeps the documented "true gradient magnitude before
  // noise" semantics: the clipped batch-averaged norm.
  last_d_grad_norm_ = dp_engine_->last_sum_norm() * inv_m;
  // The clamp runs on the already-noised gradient — post-processing of
  // the DP release, so the privacy accounting is unchanged.
  if (opts_.critic_reg > 0.0)
    nn::ClipGradNorm(d_->Params(), opts_.critic_reg);
  d_opt_->Step();
  if (wasserstein) nn::ClipParams(d_->Params(), opts_.weight_clip);
  return loss;
}

double GanTrainer::GeneratorStep(
    const Matrix& z, const Matrix& cond, const Matrix& real_ref,
    bool wasserstein,
    const std::vector<TrainingBySamplingSampler::Draw>* draws,
    Rng* /*rng*/) {
  g_->ZeroGrad();
  d_->ZeroGrad();  // gradients accumulated below are discarded

  Matrix fake = g_->Forward(z, cond, /*training=*/true);
  Matrix logits = d_->Forward(fake, cond, /*training=*/true);

  double loss = 0.0;
  Matrix grad_logits;
  if (wasserstein) {
    // L_G = -mean(D(G(z))).
    loss = -logits.Mean();
    grad_logits = Matrix(logits.rows(), 1,
                         -1.0 / static_cast<double>(logits.rows()));
  } else {
    // Non-saturating loss: maximize log D(G(z)).
    Matrix ones(logits.rows(), 1, 1.0);
    loss = nn::BceWithLogitsLoss(logits, ones, &grad_logits);
  }
  Matrix grad_fake = d_->Backward(grad_logits);

  if (!wasserstein && !real_ref.empty() && opts_.kl_weight > 0.0) {
    loss += kl_.Compute(real_ref, fake, opts_.kl_weight, &grad_fake);
  }

  if (draws != nullptr && opts_.tbs_ce_weight > 0.0) {
    // Conditional cross-entropy (CTGAN Eq. for L_G's cond term): each
    // row pays -log of the probability its conditioned softmax block
    // assigns to the requested category. Without this the generator is
    // free to ignore the cond vector entirely — the discriminator alone
    // only enforces marginal realism. The head's softmax output is the
    // probability, so dCE/dp = -w/(m*p), floored to keep the gradient
    // finite when the generator currently assigns ~0 mass.
    DAISY_CHECK(draws->size() == fake.rows());
    const double w = opts_.tbs_ce_weight;
    const double inv_m = 1.0 / static_cast<double>(draws->size());
    for (size_t i = 0; i < draws->size(); ++i) {
      const CondBlock& b = tbs_blocks_[(*draws)[i].block];
      const size_t col = b.sample_offset + (*draws)[i].category;
      const double p = std::max(fake(i, col), 1e-12);
      loss += w * inv_m * -std::log(p);
      grad_fake(i, col) += w * inv_m * (-1.0 / p);
    }
  }

  g_->Backward(grad_fake);
  last_g_grad_norm_ = nn::GlobalGradNorm(g_->Params());
  g_opt_->Step();
  return loss;
}

ckpt::TrainCheckpoint GanTrainer::MakeCheckpoint(
    size_t completed, uint64_t cursor, const TrainResult& result,
    const StateDict& last_healthy, const StateDict& last_healthy_buffers,
    Rng* rng) {
  ckpt::TrainCheckpoint c;
  c.run = AlgoName(opts_.algo);
  c.phase = 0;
  c.iter = completed;
  c.total_iters = opts_.iterations;
  c.seed = opts_.seed;
  c.telemetry_records = cursor;
  c.rng_state = rng->GetState();

  // Generator state first, discriminator appended — RestoreFromCheckpoint
  // splits at the live generator's parameter count.
  c.params = GetState(g_->Params());
  for (Matrix& m : GetState(d_->Params())) c.params.push_back(std::move(m));
  c.buffers = GetBufferState(g_->Buffers());
  for (Matrix& m : GetBufferState(d_->Buffers()))
    c.buffers.push_back(std::move(m));

  c.optimizer_state = {OptimizerBlob(*g_opt_), OptimizerBlob(*d_opt_)};

  c.healthy_params = last_healthy;
  c.healthy_buffers = last_healthy_buffers;

  c.d_losses = result.d_losses;
  c.g_losses = result.g_losses;
  c.snapshots = result.snapshots;
  c.snapshot_iters.assign(result.snapshot_iters.begin(),
                          result.snapshot_iters.end());
  return c;
}

Status GanTrainer::RestoreFromCheckpoint(const ckpt::TrainCheckpoint& c,
                                         Rng* rng, obs::MetricSink* sink,
                                         TrainResult* result,
                                         StateDict* last_healthy,
                                         StateDict* last_healthy_buffers,
                                         size_t* start_iter) {
  if (c.run != AlgoName(opts_.algo))
    return Status::InvalidArgument("checkpoint is for run '" + c.run +
                                   "', this trainer runs '" +
                                   AlgoName(opts_.algo) + "'");
  if (c.phase != 0)
    return Status::InvalidArgument("GAN checkpoints have a single phase, got " +
                                   std::to_string(c.phase));
  if (c.total_iters != opts_.iterations)
    return Status::InvalidArgument(
        "checkpoint is from a " + std::to_string(c.total_iters) +
        "-iteration run, options say " + std::to_string(opts_.iterations));
  if (c.seed != opts_.seed)
    return Status::InvalidArgument("checkpoint seed " +
                                   std::to_string(c.seed) +
                                   " != options seed " +
                                   std::to_string(opts_.seed));
  if (c.iter > c.total_iters)
    return Status::InvalidArgument("checkpoint iteration counter exceeds its "
                                   "configured run length");

  const std::vector<nn::Parameter*> g_params = g_->Params();
  const std::vector<nn::Parameter*> d_params = d_->Params();
  const std::vector<Matrix*> g_buffers = g_->Buffers();
  const std::vector<Matrix*> d_buffers = d_->Buffers();

  // Validate every shape before mutating anything.
  if (c.params.size() != g_params.size() + d_params.size())
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  if (c.buffers.size() != g_buffers.size() + d_buffers.size())
    return Status::InvalidArgument("checkpoint buffer count mismatch");
  for (size_t i = 0; i < g_params.size(); ++i)
    if (!g_params[i]->value.SameShape(c.params[i]))
      return Status::InvalidArgument("checkpoint generator parameter " +
                                     std::to_string(i) + " shape mismatch");
  for (size_t i = 0; i < d_params.size(); ++i)
    if (!d_params[i]->value.SameShape(c.params[g_params.size() + i]))
      return Status::InvalidArgument("checkpoint discriminator parameter " +
                                     std::to_string(i) + " shape mismatch");
  for (size_t i = 0; i < g_buffers.size(); ++i)
    if (!g_buffers[i]->SameShape(c.buffers[i]))
      return Status::InvalidArgument("checkpoint generator buffer " +
                                     std::to_string(i) + " shape mismatch");
  for (size_t i = 0; i < d_buffers.size(); ++i)
    if (!d_buffers[i]->SameShape(c.buffers[g_buffers.size() + i]))
      return Status::InvalidArgument("checkpoint discriminator buffer " +
                                     std::to_string(i) + " shape mismatch");
  if (!ShapesMatch(g_params, c.healthy_params))
    return Status::InvalidArgument(
        "checkpoint sentinel-baseline parameters do not match the generator");
  if (!BufferShapesMatch(g_buffers, c.healthy_buffers))
    return Status::InvalidArgument(
        "checkpoint sentinel-baseline buffers do not match the generator");
  if (c.snapshots.size() != c.snapshot_iters.size())
    return Status::InvalidArgument("checkpoint snapshot bookkeeping mismatch");
  if (c.d_losses.size() != c.iter || c.g_losses.size() != c.iter)
    return Status::InvalidArgument("checkpoint loss traces do not cover its "
                                   "iteration counter");
  if (c.optimizer_state.size() != 2)
    return Status::InvalidArgument("GAN checkpoints carry two optimizer "
                                   "blobs, got " +
                                   std::to_string(c.optimizer_state.size()));

  // Apply. The optimizer loads run first: each is all-or-nothing, and a
  // kind/shape mismatch inside a blob is the one failure the shape
  // checks above cannot see.
  DAISY_RETURN_IF_ERROR(
      LoadOptimizerBlob(g_opt_.get(), c.optimizer_state[0], "generator"));
  DAISY_RETURN_IF_ERROR(
      LoadOptimizerBlob(d_opt_.get(), c.optimizer_state[1], "discriminator"));
  DAISY_RETURN_IF_ERROR(rng->SetState(c.rng_state));

  for (size_t i = 0; i < g_params.size(); ++i)
    g_params[i]->value = c.params[i];
  for (size_t i = 0; i < d_params.size(); ++i)
    d_params[i]->value = c.params[g_params.size() + i];
  for (size_t i = 0; i < g_buffers.size(); ++i) *g_buffers[i] = c.buffers[i];
  for (size_t i = 0; i < d_buffers.size(); ++i)
    *d_buffers[i] = c.buffers[g_buffers.size() + i];

  *last_healthy = c.healthy_params;
  *last_healthy_buffers = c.healthy_buffers;

  result->d_losses = c.d_losses;
  result->g_losses = c.g_losses;
  result->snapshots = c.snapshots;
  result->snapshot_iters.assign(c.snapshot_iters.begin(),
                                c.snapshot_iters.end());
  result->completed_iters = c.iter;
  *start_iter = c.iter;

  if (sink != nullptr)
    DAISY_RETURN_IF_ERROR(sink->ResumeAt(c.telemetry_records));
  return Status::OK();
}

TrainResult GanTrainer::Train(const data::Table& table, Rng* rng,
                              obs::MetricSink* sink) {
  // Pre-transforms all real records once and serves batches as row
  // gathers — the historical in-memory path.
  InMemoryTrainSource source(table, transformer_);
  return Train(source, rng, sink);
}

TrainResult GanTrainer::Train(const TrainDataSource& source, Rng* rng,
                              obs::MetricSink* sink) {
  const bool wasserstein =
      opts_.algo == TrainAlgo::kWTrain || opts_.algo == TrainAlgo::kDPTrain;
  const bool dp = opts_.algo == TrainAlgo::kDPTrain;
  const bool label_aware = opts_.algo == TrainAlgo::kCTrain;
  // Training-by-sampling repurposes the cond vector for attribute
  // conditions; kCTrain ignores the sampler knob (label-aware pools).
  const bool tbs =
      !label_aware && opts_.sampler == SamplerKind::kTrainingBySampling;
  // Externally supplied per-row conditions (the relational layer's
  // encoded parent attributes): the cond vector is neither the label
  // nor a TBS attribute draw, it is row_cond() row-for-row.
  const bool parent_cond = opts_.parent_cond_dim > 0;
  // Label-conditional (paper §5.3): cond vector carries the label.
  const bool conditional = g_->cond_dim() > 0 && !tbs && !parent_cond;
  DAISY_CHECK(!conditional || source.schema().has_label());
  if (conditional) num_labels_ = source.schema().num_labels();

  if (source.num_records() == 0) {
    TrainResult result;
    result.health = Status::InvalidArgument(
        "cannot train on an empty table: no records to sample");
    result.snapshots.push_back(GetState(g_->Params()));
    result.snapshot_iters.push_back(0);
    return result;
  }

  if (parent_cond) {
    DAISY_CHECK(g_->cond_dim() == opts_.parent_cond_dim);
    const Matrix& rc = source.row_cond();
    if (rc.rows() != source.num_records() ||
        rc.cols() != opts_.parent_cond_dim) {
      TrainResult result;
      result.health = Status::InvalidArgument(
          "parent-conditioned training needs a row_cond matrix of " +
          std::to_string(source.num_records()) + " x " +
          std::to_string(opts_.parent_cond_dim) + ", got " +
          std::to_string(rc.rows()) + " x " + std::to_string(rc.cols()));
      result.snapshots.push_back(GetState(g_->Params()));
      result.snapshot_iters.push_back(0);
      return result;
    }
  }

  const std::vector<size_t>& labels_all = source.labels();

  RandomSampler random_sampler(source.num_records());
  std::unique_ptr<LabelAwareSampler> label_sampler;
  if (label_aware) {
    DAISY_CHECK(source.schema().has_label());
    label_sampler = std::make_unique<LabelAwareSampler>(
        labels_all, source.schema().num_labels());
  }

  std::unique_ptr<TrainingBySamplingSampler> tbs_sampler;
  if (tbs) {
    tbs_blocks_ = BuildCondBlocks(transformer_->segments());
    if (tbs_blocks_.empty()) {
      TrainResult result;
      result.health = Status::InvalidArgument(
          "training-by-sampling needs at least one one-hot categorical "
          "attribute; this table has none");
      result.snapshots.push_back(GetState(g_->Params()));
      result.snapshot_iters.push_back(0);
      return result;
    }
    DAISY_CHECK(g_->cond_dim() == CondDim(tbs_blocks_));
    // Per-category row pools, one column scan each (never in the hot
    // loop). Pools depend only on data, so a resumed run rebuilds them
    // identically and the rng state in the checkpoint covers the rest.
    std::vector<std::vector<size_t>> columns;
    std::vector<size_t> domains;
    columns.reserve(tbs_blocks_.size());
    domains.reserve(tbs_blocks_.size());
    for (const CondBlock& b : tbs_blocks_) {
      columns.push_back(source.CategoryColumn(b.source_col));
      domains.push_back(b.domain);
    }
    tbs_sampler = std::make_unique<TrainingBySamplingSampler>(columns,
                                                              domains);
  } else {
    tbs_blocks_.clear();
  }

  // Empirical label distribution, for sampling fake-batch conditions.
  std::vector<double> label_weights;
  if (conditional) {
    label_weights.assign(num_labels_, 0.0);
    for (size_t l : labels_all) label_weights[l] += 1.0;
  }

  auto gather_cond = [&](const std::vector<size_t>& rows) {
    if (parent_cond) return source.row_cond().GatherRows(rows);
    if (!conditional) return Matrix();
    std::vector<size_t> ls(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) ls[i] = labels_all[rows[i]];
    return OneHotLabels(ls);
  };
  auto random_cond = [&](size_t m) {
    if (parent_cond) {
      // Fake-batch conditions are real parents drawn uniformly — the
      // empirical parent-condition distribution, the analogue of
      // label_weights below.
      std::vector<size_t> rows(m);
      for (auto& r : rows) r = rng->UniformInt(source.num_records());
      return source.row_cond().GatherRows(rows);
    }
    if (!conditional) return Matrix();
    std::vector<size_t> ls(m);
    for (auto& l : ls) l = rng->Categorical(label_weights);
    return OneHotLabels(ls);
  };

  TrainResult result;
  const size_t snapshot_every =
      std::max<size_t>(1, opts_.iterations / std::max<size_t>(1, opts_.snapshots));
  const size_t log_every = std::max<size_t>(1, opts_.log_every);

  const obs::DivergenceSentinel sentinel(opts_.sentinel);
  obs::WallTimer run_timer;
  // The generator state at the end of the last healthy iteration; what
  // the caller gets back if the sentinel trips later. Buffers (batch-
  // norm running stats) are tracked too: inference reads them, and they
  // drift on every training-mode forward pass.
  StateDict last_healthy = GetState(g_->Params());
  StateDict last_healthy_buffers = GetBufferState(g_->Buffers());

  std::unique_ptr<ckpt::CheckpointStore> store;
  if (!opts_.checkpoint_dir.empty())
    store = std::make_unique<ckpt::CheckpointStore>(opts_.checkpoint_dir,
                                                    opts_.checkpoint_keep);

  size_t start_iter = 0;
  if (opts_.resume && store != nullptr) {
    auto loaded = store->LoadLatest();
    if (loaded.ok()) {
      const Status restored = RestoreFromCheckpoint(
          loaded.value(), rng, sink, &result, &last_healthy,
          &last_healthy_buffers, &start_iter);
      if (!restored.ok()) {
        result.health = restored;
        result.snapshots.push_back(GetState(g_->Params()));
        result.snapshot_iters.push_back(0);
        if (sink != nullptr) sink->Flush();
        return result;
      }
    } else if (loaded.status().code() != Status::Code::kNotFound) {
      // Checkpoints exist but none verifies: refusing to silently
      // restart protects the surviving log/model artifacts.
      result.health = loaded.status();
      result.snapshots.push_back(GetState(g_->Params()));
      result.snapshot_iters.push_back(0);
      if (sink != nullptr) sink->Flush();
      return result;
    }
    // NotFound: nothing saved yet — a cold start with resume requested
    // is a fresh run, so schedulers can always pass --resume.
  }

  // Chunked-shuffle sampler (out-of-core locality). It owns streams
  // derived from the run seed — switching sampler kinds never perturbs
  // the main rng — and a resumed run fast-forwards it by exactly the
  // rows each completed iteration consumed: d_steps real batches plus
  // the (unconditionally drawn) KL reference batch.
  std::unique_ptr<ChunkedShuffleSampler> chunk_sampler;
  if (!label_aware && opts_.sampler == SamplerKind::kChunkedShuffle) {
    chunk_sampler = std::make_unique<ChunkedShuffleSampler>(
        source.num_records(), opts_.shuffle_chunk_rows,
        opts_.seed ^ 0xC0FFEE5EED5A55AAULL);
    const size_t d_steps = std::max<size_t>(1, opts_.d_steps);
    chunk_sampler->AdvanceRows(static_cast<uint64_t>(start_iter) *
                               (d_steps + 1) * opts_.batch_size);
  }
  auto sample_rows = [&](size_t m) {
    return chunk_sampler != nullptr ? chunk_sampler->SampleBatch(m)
                                    : random_sampler.SampleBatch(m, rng);
  };

  size_t iters_this_run = 0;
  for (size_t iter = start_iter; iter < opts_.iterations; ++iter) {
    obs::WallTimer iter_timer;
    if (label_aware) {
      // Algorithm 3: one D+G update per label, with label-restricted
      // real minibatches.
      double d_loss = 0.0, g_loss = 0.0;
      size_t active = 0;
      for (size_t y = 0; y < num_labels_; ++y) {
        auto rows = label_sampler->SampleBatchWithLabel(y, opts_.batch_size,
                                                        rng);
        if (rows.empty()) continue;
        ++active;
        Matrix real = source.GatherSamples(rows);
        Matrix cond = OneHotLabels(std::vector<size_t>(rows.size(), y));
        Matrix z = SampleNoise(rows.size(), rng);
        Matrix fake = g_->Forward(z, cond, /*training=*/true);
        d_loss += DiscriminatorStep(real, cond, fake, cond, wasserstein, dp,
                                    rng);
        Matrix z2 = SampleNoise(opts_.batch_size, rng);
        Matrix cond2 =
            OneHotLabels(std::vector<size_t>(opts_.batch_size, y));
        g_loss += GeneratorStep(z2, cond2, real, wasserstein, nullptr, rng);
      }
      // Labels with zero records are skipped, not trained — surface the
      // count so a starved minority label shows up in telemetry instead
      // of silently degrading the conditional generator.
      last_starved_labels_ = num_labels_ - active;
      if (active == 0) {
        result.health = Status::InvalidArgument(
            "label-aware training at iteration " + std::to_string(iter + 1) +
            ": no label has any training records");
        break;
      }
      result.d_losses.push_back(d_loss / static_cast<double>(active));
      result.g_losses.push_back(g_loss / static_cast<double>(active));
    } else {
      // Algorithms 1/2/4: d_steps discriminator updates, then one
      // generator update. Under training-by-sampling every batch is a
      // set of (row, condition) pairs: real rows carry the drawn
      // category, and the fake batch is conditioned identically so the
      // discriminator compares like with like (CTGAN).
      double d_loss = 0.0;
      const size_t d_steps = std::max<size_t>(1, opts_.d_steps);
      for (size_t s = 0; s < d_steps; ++s) {
        Matrix real, real_cond, fake_cond;
        if (tbs) {
          const auto draws =
              tbs_sampler->SampleBatch(opts_.batch_size, rng);
          std::vector<size_t> rows(draws.size());
          for (size_t i = 0; i < draws.size(); ++i) rows[i] = draws[i].row;
          real = source.GatherSamples(rows);
          real_cond = TbsCond(draws);
          fake_cond = real_cond;
        } else {
          auto rows = sample_rows(opts_.batch_size);
          real = source.GatherSamples(rows);
          real_cond = gather_cond(rows);
          fake_cond = random_cond(opts_.batch_size);
        }
        Matrix z = SampleNoise(opts_.batch_size, rng);
        Matrix fake = g_->Forward(z, fake_cond, /*training=*/true);
        d_loss += DiscriminatorStep(real, real_cond, fake, fake_cond,
                                    wasserstein, dp, rng);
      }
      result.d_losses.push_back(d_loss / static_cast<double>(d_steps));

      // The ref batch is drawn even under Wasserstein (where it goes
      // unused) so the sampler stream position per iteration is
      // algorithm-independent.
      std::vector<TrainingBySamplingSampler::Draw> g_draws;
      Matrix real_ref, cond;
      if (tbs) {
        g_draws = tbs_sampler->SampleBatch(opts_.batch_size, rng);
        cond = TbsCond(g_draws);
        if (!wasserstein) {
          std::vector<size_t> rows(g_draws.size());
          for (size_t i = 0; i < g_draws.size(); ++i)
            rows[i] = g_draws[i].row;
          real_ref = source.GatherSamples(rows);
        }
      } else {
        auto ref_rows = sample_rows(opts_.batch_size);
        real_ref = wasserstein ? Matrix()
                               : source.GatherSamples(ref_rows);
        cond = random_cond(opts_.batch_size);
      }
      Matrix z = SampleNoise(opts_.batch_size, rng);
      result.g_losses.push_back(GeneratorStep(z, cond, real_ref, wasserstein,
                                              tbs ? &g_draws : nullptr,
                                              rng));
    }

    obs::MetricRecord rec;
    rec.run = AlgoName(opts_.algo);
    rec.iter = iter + 1;
    rec.d_loss = result.d_losses.back();
    rec.g_loss = result.g_losses.back();
    rec.d_grad_norm = last_d_grad_norm_;
    rec.g_grad_norm = last_g_grad_norm_;
    rec.param_norm = nn::GlobalParamNorm(g_->Params());
    rec.starved_labels = label_aware ? last_starved_labels_ : 0;
    rec.iter_ms = iter_timer.ElapsedMs();
    rec.wall_ms = run_timer.ElapsedMs();
    rec.threads = par::NumThreads();
    rec.seed = opts_.seed;

    const Status health = sentinel.Check(rec);
    if (!health.ok()) {
      // Always surface the failing record, regardless of cadence — it
      // is the one record a post-mortem needs.
      if (sink != nullptr) sink->Log(rec);
      result.health = health;
      // Keep the loss traces NaN-free: the failing iteration's entries
      // are part of the Status, not the data.
      result.d_losses.pop_back();
      result.g_losses.pop_back();
      break;
    }
    result.completed_iters = iter + 1;
    if (sink != nullptr &&
        ((iter + 1) % log_every == 0 || iter + 1 == opts_.iterations)) {
      sink->Log(rec);
    }
    last_healthy = GetState(g_->Params());
    last_healthy_buffers = GetBufferState(g_->Buffers());

    if ((iter + 1) % snapshot_every == 0 ||
        iter + 1 == opts_.iterations) {
      if (result.snapshots.size() < opts_.snapshots) {
        result.snapshots.push_back(GetState(g_->Params()));
        result.snapshot_iters.push_back(iter + 1);
      }
    }

    if (store != nullptr && opts_.checkpoint_every > 0 &&
        (iter + 1) % opts_.checkpoint_every == 0) {
      // The checkpoint record goes to the sink FIRST so the cursor
      // stored in the checkpoint covers it — a resumed run then
      // re-emits the exact same record sequence as an uninterrupted
      // one.
      obs::MetricRecord ckpt_rec = rec;
      ckpt_rec.run += ".ckpt";
      if (sink != nullptr) sink->Log(ckpt_rec);
      const Status saved = store->Save(MakeCheckpoint(
          iter + 1, sink != nullptr ? sink->records_logged() : 0, result,
          last_healthy, last_healthy_buffers, rng));
      if (!saved.ok()) {
        // Fail fast: training on while checkpoints silently rot defeats
        // their purpose.
        result.health = saved;
        break;
      }
    }

    ++iters_this_run;
    if (opts_.max_iters_per_run > 0 &&
        iters_this_run >= opts_.max_iters_per_run &&
        iter + 1 < opts_.iterations) {
      result.paused = true;
      break;
    }
  }

  if (!result.health.ok()) {
    // Durable fallback: the in-memory baseline can itself be poisoned
    // (BatchNorm running stats go non-finite without tripping the
    // param-norm check). Prefer the newest on-disk checkpoint whose
    // sentinel baseline is finite.
    if (store != nullptr &&
        (!AllFinite(last_healthy) || !AllFinite(last_healthy_buffers))) {
      const std::vector<std::string> files = store->ListFiles();
      for (auto it = files.rbegin(); it != files.rend(); ++it) {
        auto fallback = ckpt::LoadCheckpoint(*it);
        if (!fallback.ok()) continue;
        const ckpt::TrainCheckpoint& fc = fallback.value();
        if (!ShapesMatch(g_->Params(), fc.healthy_params) ||
            !BufferShapesMatch(g_->Buffers(), fc.healthy_buffers))
          continue;
        if (!AllFinite(fc.healthy_params) || !AllFinite(fc.healthy_buffers))
          continue;
        last_healthy = fc.healthy_params;
        last_healthy_buffers = fc.healthy_buffers;
        break;
      }
    }
    // Roll the generator back to the last healthy state and make that
    // state the final snapshot, so generation after a diverged run
    // works from sane parameters.
    SetState(g_->Params(), last_healthy);
    SetBufferState(g_->Buffers(), last_healthy_buffers);
    result.snapshots.push_back(std::move(last_healthy));
    result.snapshot_iters.push_back(result.completed_iters);
  } else if (!result.paused &&
             (result.snapshot_iters.empty() ||
              result.snapshot_iters.back() != opts_.iterations)) {
    // Guarantee the final state is snapshotted (a paused run is not
    // final — its resumed continuation does this bookkeeping).
    result.snapshots.push_back(GetState(g_->Params()));
    result.snapshot_iters.push_back(opts_.iterations);
  }
  if (sink != nullptr) sink->Flush();
  return result;
}

}  // namespace daisy::synth

// Attribute-aware generator output heads (paper §5.1 / Appendix A.1.2
// cases C1-C4). Each transformed-attribute segment maps to one or two
// "head units": a Linear projection plus the activation matching its
// transformation scheme.
#ifndef DAISY_SYNTH_HEADS_H_
#define DAISY_SYNTH_HEADS_H_

#include <vector>

#include "nn/linear.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

/// One slice of the sample an output head produces.
struct HeadUnit {
  enum class Act { kTanh, kSoftmax, kSigmoid };
  size_t offset = 0;  // first column in the sample
  size_t width = 0;
  Act act = Act::kTanh;
};

/// Expands attribute segments into head units: simple numeric -> tanh;
/// GMM numeric -> tanh (value) + softmax (component); one-hot ->
/// softmax; ordinal -> sigmoid. A degenerate single-component GMM
/// segment (width 1) yields only the tanh unit — never a width-0
/// softmax head.
std::vector<HeadUnit> BuildHeadUnits(
    const std::vector<transform::AttrSegment>& segments);

/// One conditionable categorical attribute in the training-by-sampling
/// condition vector (CTGAN-style cond vector; arXiv:2010.00638). The
/// cond vector is the concatenation of one one-hot block per one-hot-
/// encoded categorical segment, in segment order; a training draw (or a
/// generation draw) sets exactly one 1.0 — at cond_offset + category of
/// the selected block — and leaves every other block all-zero.
struct CondBlock {
  size_t attr_index = 0;     ///< column in the transformed (sub-)schema
  size_t source_col = 0;     ///< column in the original full table
  size_t cond_offset = 0;    ///< first column of this block in the cond vector
  size_t sample_offset = 0;  ///< the attribute's softmax block in the sample
  size_t domain = 0;         ///< block width = category count
};

/// Derives the cond-vector layout from the transformer segments: one
/// block per kOneHotCat segment, offsets assigned in segment order.
/// Empty when the table has no one-hot categorical attribute (training-
/// by-sampling is then unavailable).
std::vector<CondBlock> BuildCondBlocks(
    const std::vector<transform::AttrSegment>& segments);

/// Total cond-vector width (sum of block domains).
size_t CondDim(const std::vector<CondBlock>& blocks);

/// Linear + activation producing one head unit from a feature vector.
class HeadProjection {
 public:
  HeadProjection(size_t in_features, const HeadUnit& unit, Rng* rng);

  const HeadUnit& unit() const { return unit_; }

  /// batch x in -> batch x unit.width.
  Matrix Forward(const Matrix& features);
  /// Same arithmetic as Forward but const and cache-free (no Backward
  /// possible afterwards); safe for concurrent use on a shared head.
  Matrix InferenceForward(const Matrix& features) const;
  /// dLoss/dUnitOutput -> dLoss/dFeatures (accumulates param grads).
  Matrix Backward(const Matrix& grad_out);

  std::vector<nn::Parameter*> Params() { return linear_.Params(); }

 private:
  HeadUnit unit_;
  nn::Linear linear_;
  Matrix cached_out_;
};

/// All heads applied to one shared feature vector (MLP generator); the
/// LSTM generator instead owns one HeadProjection per timestep.
class AttributeHeads {
 public:
  AttributeHeads(size_t in_features,
                 const std::vector<transform::AttrSegment>& segments,
                 Rng* rng);

  size_t sample_dim() const { return sample_dim_; }

  /// batch x in -> batch x sample_dim (assembled full sample).
  Matrix Forward(const Matrix& features);
  /// Const, cache-free Forward (no Backward possible afterwards).
  Matrix InferenceForward(const Matrix& features) const;
  /// dLoss/dSample -> dLoss/dFeatures.
  Matrix Backward(const Matrix& grad_sample);

  std::vector<nn::Parameter*> Params();

 private:
  size_t sample_dim_;
  std::vector<HeadProjection> projections_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_HEADS_H_

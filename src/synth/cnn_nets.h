// DCGAN-style CNN generator and discriminator (paper Appendix A.1.1).
// Samples are matrix-formed: a record becomes a zero-padded S x S
// square (ordinal encoding + simple normalization only), the generator
// upsamples noise through de-convolutions to that square, and the
// discriminator convolves it down to a logit.
#ifndef DAISY_SYNTH_CNN_NETS_H_
#define DAISY_SYNTH_CNN_NETS_H_

#include "nn/sequential.h"
#include "synth/discriminator.h"
#include "synth/generator.h"

namespace daisy::synth {

class CnnGenerator : public Generator {
 public:
  /// `side` is the sample square's side length (transformer
  /// matrix_side()); sample_dim = side^2.
  CnnGenerator(size_t noise_dim, size_t cond_dim, size_t side, Rng* rng);

  size_t noise_dim() const override { return noise_dim_; }
  size_t cond_dim() const override { return cond_dim_; }
  size_t sample_dim() const override { return side_ * side_; }

  Matrix Forward(const Matrix& z, const Matrix& cond, bool training) override;
  Matrix InferenceForward(const Matrix& z, const Matrix& cond) const override;
  void Backward(const Matrix& grad_sample) override;
  std::vector<nn::Parameter*> Params() override { return body_.Params(); }
  std::vector<Matrix*> Buffers() override { return body_.Buffers(); }

 private:
  size_t noise_dim_;
  size_t cond_dim_;
  size_t side_;
  nn::Sequential body_;
};

class CnnDiscriminator : public Discriminator {
 public:
  CnnDiscriminator(size_t side, size_t cond_dim, Rng* rng);

  size_t sample_dim() const override { return side_ * side_; }
  size_t cond_dim() const override { return cond_dim_; }

  Matrix Forward(const Matrix& x, const Matrix& cond, bool training) override;
  Matrix Backward(const Matrix& grad_logit) override;
  std::vector<nn::Parameter*> Params() override;
  std::vector<Matrix*> Buffers() override {
    std::vector<Matrix*> bufs = conv_body_.Buffers();
    for (Matrix* b : head_.Buffers()) bufs.push_back(b);
    return bufs;
  }

 private:
  size_t side_;
  size_t cond_dim_;
  nn::Sequential conv_body_;   // consumes the S x S square
  nn::Sequential head_;        // [conv features | cond] -> logit
  size_t conv_out_dim_ = 0;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_CNN_NETS_H_

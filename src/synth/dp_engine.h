// Batch-parallel / vectorized DP-SGD discriminator step (the DPTrain
// hot loop). Every engine computes the SAME mechanism — per-record
// gradient clipped to c_g, clipped gradients summed, Gaussian noise
// N(0, (sigma_n c_g)^2) added to the sum, sum divided by B — so the
// per-record L2 sensitivity bound of synth/dp_accountant.h (exactly
// c_g) is engine-independent. The engines differ only in how the
// clipped sum is produced:
//
//   kPerSample        B forward/backward pairs, one record at a time —
//                     the reference implementation (and the bitwise
//                     twin of the original serial trainer loop).
//   kReplicaParallel  The batch is split into fixed kChunk-record
//                     chunks; each chunk runs the per-record loop on
//                     its own discriminator replica, accumulating into
//                     a chunk-local aggregator; partials merge in
//                     ascending chunk order. The chunk partition is a
//                     pure function of the batch size, so results are
//                     bit-identical for every DAISY_THREADS value.
//   kVectorized       For Linear-only stacks: ONE batched forward +
//                     delta-propagation per half yields every
//                     per-record gradient implicitly (nn/per_sample.h);
//                     per-record norms come from the outer-product
//                     identity |x d^T|_F^2 = |x|^2 |d|^2, and the
//                     clipped sum from one scale-rows + GEMM per layer.
//                     O(layers) batched GEMMs instead of 2B backward
//                     passes.
#ifndef DAISY_SYNTH_DP_ENGINE_H_
#define DAISY_SYNTH_DP_ENGINE_H_

#include <memory>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "nn/optimizer.h"
#include "synth/config.h"
#include "synth/discriminator.h"

namespace daisy::synth {

class DpSgdEngine {
 public:
  /// Records per chunk in the replica engine. Fixed (never derived from
  /// the thread count) so the accumulation grouping — and therefore
  /// every bit of the result — is identical for any DAISY_THREADS.
  static constexpr size_t kChunk = 8;

  /// Resolves `requested` against what `d` supports. kAuto picks the
  /// fastest supported engine (vectorized > replica > per-sample);
  /// explicitly requesting an unsupported engine is a fatal error.
  /// `d` must outlive the engine.
  DpSgdEngine(Discriminator* d, double max_norm, double noise_scale,
              DpEngineKind requested);

  /// The engine actually in use (kAuto resolved).
  DpEngineKind kind() const { return kind_; }

  /// One DP discriminator update on B (real, fake) record pairs: leaves
  /// the noised batch-averaged gradient in d->Params() grads (the
  /// caller applies its optimizer) and returns the discriminator loss.
  /// Pair i (i-th real + i-th fake) is one clipped per-record unit.
  /// `rng` is consumed identically (by Finalize only) in every engine.
  double Step(const Matrix& real, const Matrix& real_cond, const Matrix& fake,
              const Matrix& fake_cond, bool wasserstein, Rng* rng);

  /// L2 norm of the clipped pre-noise gradient sum of the last Step.
  double last_sum_norm() const { return last_sum_norm_; }

  /// Pre-clip per-record gradient norms from the last Step, index-
  /// aligned with the batch (testing / telemetry).
  const std::vector<double>& last_sample_norms() const {
    return last_sample_norms_;
  }

 private:
  double StepPerSample(const Matrix& real, const Matrix& real_cond,
                       const Matrix& fake, const Matrix& fake_cond,
                       bool wasserstein);
  double StepReplica(const Matrix& real, const Matrix& real_cond,
                     const Matrix& fake, const Matrix& fake_cond,
                     bool wasserstein);
  double StepVectorized(const Matrix& real, const Matrix& real_cond,
                        const Matrix& fake, const Matrix& fake_cond,
                        bool wasserstein);

  /// Grows the replica / chunk-aggregator pools to `n` entries.
  void EnsureReplicas(size_t n);

  Discriminator* d_;
  double max_norm_;
  double noise_scale_;
  DpEngineKind kind_;

  nn::DpSgdAggregator agg_;

  // Replica engine state, cached across steps (replica c serves chunk
  // c; its parameter values are refreshed from the master each Step).
  std::vector<std::unique_ptr<Discriminator>> replicas_;
  std::vector<std::unique_ptr<nn::DpSgdAggregator>> partials_;

  // Reusable per-record scratch rows for the serial reference path
  // (hoisted out of the inner loop; see Matrix::CopyRowFrom).
  Matrix x_row_;
  Matrix c_row_;

  double last_sum_norm_ = 0.0;
  std::vector<double> last_sample_norms_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_DP_ENGINE_H_

#include "synth/sampler.h"

namespace daisy::synth {

LabelAwareSampler::LabelAwareSampler(const data::Table& table) {
  DAISY_CHECK(table.schema().has_label());
  by_label_.resize(table.schema().num_labels());
  for (size_t i = 0; i < table.num_records(); ++i)
    by_label_[table.label(i)].push_back(i);
}

std::vector<size_t> LabelAwareSampler::SampleBatchWithLabel(size_t label,
                                                            size_t m,
                                                            Rng* rng) const {
  DAISY_CHECK(label < by_label_.size());
  const auto& pool = by_label_[label];
  if (pool.empty()) return {};
  std::vector<size_t> out(m);
  for (auto& idx : out) idx = pool[rng->UniformInt(pool.size())];
  return out;
}

}  // namespace daisy::synth

#include "synth/sampler.h"

#include <algorithm>

namespace daisy::synth {

ChunkedShuffleSampler::ChunkedShuffleSampler(size_t num_records,
                                             size_t chunk_rows,
                                             uint64_t seed)
    : n_(num_records), chunk_rows_(chunk_rows), seed_(seed) {
  DAISY_CHECK(n_ > 0);
  if (chunk_rows_ == 0 || chunk_rows_ > n_) chunk_rows_ = n_;
  num_chunks_ = (n_ + chunk_rows_ - 1) / chunk_rows_;
  StartEpoch();
}

size_t ChunkedShuffleSampler::ChunkSize(size_t chunk) const {
  const size_t begin = chunk * chunk_rows_;
  return std::min(n_, begin + chunk_rows_) - begin;
}

void ChunkedShuffleSampler::StartEpoch() {
  visit_pos_ = 0;
  pos_within_ = 0;
  drawn_in_epoch_ = 0;
  within_.clear();
  // One derived stream per epoch; the golden-gamma multiplier keeps
  // consecutive epoch seeds far apart in splitmix64's input space.
  Rng rng(seed_ + 0x9E3779B97F4A7C15ULL *
                      (static_cast<uint64_t>(epoch_) + 1));
  chunk_order_ = rng.Permutation(num_chunks_);
  chunk_seeds_.resize(num_chunks_);
  for (auto& s : chunk_seeds_) s = rng.Next();
}

void ChunkedShuffleSampler::AdvanceChunk() {
  ++visit_pos_;
  pos_within_ = 0;
  within_.clear();
  if (visit_pos_ == num_chunks_) {
    ++epoch_;
    StartEpoch();
  }
}

size_t ChunkedShuffleSampler::NextIndex() {
  if (within_.empty()) {
    // Materialize the current chunk's permutation on first use (an
    // AdvanceRows skip may have left pos_within_ mid-chunk).
    const size_t chunk = chunk_order_[visit_pos_];
    Rng rng(chunk_seeds_[visit_pos_]);
    within_ = rng.Permutation(ChunkSize(chunk));
    const size_t base = chunk * chunk_rows_;
    for (auto& idx : within_) idx += base;
  }
  ++drawn_in_epoch_;
  const size_t idx = within_[pos_within_++];
  // Roll chunk (and epoch) boundaries eagerly, so the sampler state
  // after drawing k rows is identical to AdvanceRows(k) — epoch()
  // included — which is what makes resume fast-forward exact.
  if (pos_within_ >= within_.size()) AdvanceChunk();
  return idx;
}

std::vector<size_t> ChunkedShuffleSampler::SampleBatch(size_t m) {
  std::vector<size_t> out(m);
  for (auto& idx : out) idx = NextIndex();
  return out;
}

void ChunkedShuffleSampler::AdvanceRows(uint64_t rows) {
  // Resolve epoch crossings first, so the chunk walk below never has
  // to roll an epoch (it always consumes < n_ rows from the current
  // position).
  const uint64_t total = static_cast<uint64_t>(drawn_in_epoch_) + rows;
  if (total >= n_) {
    epoch_ += static_cast<size_t>(total / n_);
    rows = total % n_;
    StartEpoch();
  }
  while (rows > 0) {
    const uint64_t avail = ChunkSize(chunk_order_[visit_pos_]) - pos_within_;
    if (rows >= avail) {
      rows -= avail;
      drawn_in_epoch_ += static_cast<size_t>(avail);
      AdvanceChunk();  // whole-chunk skip: no permutation materialized
    } else {
      pos_within_ += static_cast<size_t>(rows);
      drawn_in_epoch_ += static_cast<size_t>(rows);
      rows = 0;
    }
  }
}

LabelAwareSampler::LabelAwareSampler(const data::Table& table) {
  DAISY_CHECK(table.schema().has_label());
  by_label_.resize(table.schema().num_labels());
  for (size_t i = 0; i < table.num_records(); ++i)
    by_label_[table.label(i)].push_back(i);
}

LabelAwareSampler::LabelAwareSampler(const std::vector<size_t>& labels,
                                     size_t num_labels) {
  by_label_.resize(num_labels);
  for (size_t i = 0; i < labels.size(); ++i) {
    DAISY_CHECK(labels[i] < num_labels);
    by_label_[labels[i]].push_back(i);
  }
}

std::vector<size_t> LabelAwareSampler::SampleBatchWithLabel(size_t label,
                                                            size_t m,
                                                            Rng* rng) const {
  DAISY_CHECK(label < by_label_.size());
  const auto& pool = by_label_[label];
  if (pool.empty()) return {};
  std::vector<size_t> out(m);
  for (auto& idx : out) idx = pool[rng->UniformInt(pool.size())];
  return out;
}

}  // namespace daisy::synth

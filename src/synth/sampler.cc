#include "synth/sampler.h"

#include <algorithm>
#include <cmath>

namespace daisy::synth {

ChunkedShuffleSampler::ChunkedShuffleSampler(size_t num_records,
                                             size_t chunk_rows,
                                             uint64_t seed)
    : n_(num_records), chunk_rows_(chunk_rows), seed_(seed) {
  DAISY_CHECK(n_ > 0);
  if (chunk_rows_ == 0 || chunk_rows_ > n_) chunk_rows_ = n_;
  num_chunks_ = (n_ + chunk_rows_ - 1) / chunk_rows_;
  StartEpoch();
}

size_t ChunkedShuffleSampler::ChunkSize(size_t chunk) const {
  const size_t begin = chunk * chunk_rows_;
  return std::min(n_, begin + chunk_rows_) - begin;
}

void ChunkedShuffleSampler::StartEpoch() {
  visit_pos_ = 0;
  pos_within_ = 0;
  drawn_in_epoch_ = 0;
  within_.clear();
  // One derived stream per epoch; the golden-gamma multiplier keeps
  // consecutive epoch seeds far apart in splitmix64's input space.
  Rng rng(seed_ + 0x9E3779B97F4A7C15ULL *
                      (static_cast<uint64_t>(epoch_) + 1));
  chunk_order_ = rng.Permutation(num_chunks_);
  chunk_seeds_.resize(num_chunks_);
  for (auto& s : chunk_seeds_) s = rng.Next();
}

void ChunkedShuffleSampler::AdvanceChunk() {
  ++visit_pos_;
  pos_within_ = 0;
  within_.clear();
  if (visit_pos_ == num_chunks_) {
    ++epoch_;
    StartEpoch();
  }
}

size_t ChunkedShuffleSampler::NextIndex() {
  if (within_.empty()) {
    // Materialize the current chunk's permutation on first use (an
    // AdvanceRows skip may have left pos_within_ mid-chunk).
    const size_t chunk = chunk_order_[visit_pos_];
    Rng rng(chunk_seeds_[visit_pos_]);
    within_ = rng.Permutation(ChunkSize(chunk));
    const size_t base = chunk * chunk_rows_;
    for (auto& idx : within_) idx += base;
  }
  ++drawn_in_epoch_;
  const size_t idx = within_[pos_within_++];
  // Roll chunk (and epoch) boundaries eagerly, so the sampler state
  // after drawing k rows is identical to AdvanceRows(k) — epoch()
  // included — which is what makes resume fast-forward exact.
  if (pos_within_ >= within_.size()) AdvanceChunk();
  return idx;
}

std::vector<size_t> ChunkedShuffleSampler::SampleBatch(size_t m) {
  std::vector<size_t> out(m);
  for (auto& idx : out) idx = NextIndex();
  return out;
}

void ChunkedShuffleSampler::AdvanceRows(uint64_t rows) {
  // Resolve epoch crossings first, so the chunk walk below never has
  // to roll an epoch (it always consumes < n_ rows from the current
  // position).
  const uint64_t total = static_cast<uint64_t>(drawn_in_epoch_) + rows;
  if (total >= n_) {
    epoch_ += static_cast<size_t>(total / n_);
    rows = total % n_;
    StartEpoch();
  }
  while (rows > 0) {
    const uint64_t avail = ChunkSize(chunk_order_[visit_pos_]) - pos_within_;
    if (rows >= avail) {
      rows -= avail;
      drawn_in_epoch_ += static_cast<size_t>(avail);
      AdvanceChunk();  // whole-chunk skip: no permutation materialized
    } else {
      pos_within_ += static_cast<size_t>(rows);
      drawn_in_epoch_ += static_cast<size_t>(rows);
      rows = 0;
    }
  }
}

LabelAwareSampler::LabelAwareSampler(const data::Table& table) {
  DAISY_CHECK(table.schema().has_label());
  by_label_.resize(table.schema().num_labels());
  for (size_t i = 0; i < table.num_records(); ++i)
    by_label_[table.label(i)].push_back(i);
}

LabelAwareSampler::LabelAwareSampler(const std::vector<size_t>& labels,
                                     size_t num_labels) {
  by_label_.resize(num_labels);
  for (size_t i = 0; i < labels.size(); ++i) {
    DAISY_CHECK(labels[i] < num_labels);
    by_label_[labels[i]].push_back(i);
  }
}

std::vector<size_t> LabelAwareSampler::SampleBatchWithLabel(size_t label,
                                                            size_t m,
                                                            Rng* rng) const {
  DAISY_CHECK(label < by_label_.size());
  const auto& pool = by_label_[label];
  if (pool.empty()) return {};
  std::vector<size_t> out(m);
  for (auto& idx : out) idx = pool[rng->UniformInt(pool.size())];
  return out;
}

TrainingBySamplingSampler::TrainingBySamplingSampler(
    const std::vector<std::vector<size_t>>& columns,
    const std::vector<size_t>& domains) {
  DAISY_CHECK(!columns.empty());
  DAISY_CHECK(columns.size() == domains.size());
  pools_.resize(columns.size());
  log_weights_.resize(columns.size());
  bool any_rows = false;
  for (size_t b = 0; b < columns.size(); ++b) {
    DAISY_CHECK(domains[b] > 0);
    pools_[b].resize(domains[b]);
    for (size_t i = 0; i < columns[b].size(); ++i) {
      DAISY_CHECK(columns[b][i] < domains[b]);
      pools_[b][columns[b][i]].push_back(i);
    }
    log_weights_[b].resize(domains[b]);
    for (size_t c = 0; c < domains[b]; ++c) {
      const size_t count = pools_[b][c].size();
      // log1p flattens the head of a skewed distribution while keeping
      // absent categories at exactly zero weight (never drawn — there
      // is no row to pair the condition with).
      log_weights_[b][c] =
          count > 0 ? std::log1p(static_cast<double>(count)) : 0.0;
      any_rows = any_rows || count > 0;
    }
  }
  DAISY_CHECK(any_rows);
}

std::vector<TrainingBySamplingSampler::Draw>
TrainingBySamplingSampler::SampleBatch(size_t m, Rng* rng) const {
  std::vector<Draw> out(m);
  for (auto& d : out) {
    // Three serial rng draws per item, always in this order; a block
    // whose every category is absent cannot occur (blocks are built
    // from the table's own rows, so each block has >= 1 occupied
    // category whenever the table is non-empty).
    d.block = static_cast<size_t>(rng->UniformInt(pools_.size()));
    d.category = rng->Categorical(log_weights_[d.block]);
    const auto& pool = pools_[d.block][d.category];
    DAISY_CHECK(!pool.empty());
    d.row = pool[rng->UniformInt(pool.size())];
  }
  return out;
}

}  // namespace daisy::synth

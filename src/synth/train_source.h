// Where training minibatches come from (the arrow between Figure 2's
// Sampler and the trainer). GanTrainer::Train is written against this
// interface so the same training loop runs over an in-memory table
// (records pre-transformed once, the historical hot path) or an
// out-of-core paged .dcol table (raw cells faulted per batch under a
// page budget, transformed on the fly). Both yield bitwise-identical
// encoded batches for the same row indices, which is what makes paged
// training byte-identical to in-memory training.
#ifndef DAISY_SYNTH_TRAIN_SOURCE_H_
#define DAISY_SYNTH_TRAIN_SOURCE_H_

#include <vector>

#include "core/matrix.h"
#include "data/columnar.h"
#include "data/table.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

/// Read-only view of the (transformed) training set. Implementations
/// must be deterministic: GatherSamples(rows) is a pure function of the
/// underlying data and `rows`, independent of call history, page
/// budgets or thread counts.
class TrainDataSource {
 public:
  virtual ~TrainDataSource() = default;

  /// Full schema of the underlying table (including the label column).
  virtual const data::Schema& schema() const = 0;
  virtual size_t num_records() const = 0;

  /// Encoded minibatch: row i of the result is the transformed record
  /// rows[i] (d = transformer sample_dim columns).
  virtual Matrix GatherSamples(const std::vector<size_t>& rows) const = 0;

  /// Per-record label indices; empty when the schema has no label.
  virtual const std::vector<size_t>& labels() const = 0;

  /// Per-record category indices of the ORIGINAL table column
  /// `source_col` (which must be categorical). Training-by-sampling
  /// builds its per-category row pools from this — one call per
  /// conditionable column at training start, never in the hot loop.
  virtual std::vector<size_t> CategoryColumn(size_t source_col) const = 0;

  /// External per-row condition matrix (num_records x parent_cond_dim),
  /// set by the relational layer before training when
  /// GanOptions::parent_cond_dim > 0; empty otherwise. Row i is the
  /// encoded parent of record i.
  const Matrix& row_cond() const { return row_cond_; }
  void set_row_cond(Matrix cond) { row_cond_ = std::move(cond); }

 private:
  Matrix row_cond_;
};

/// The historical path: transforms every record once up front, then
/// serves batches as row gathers of the encoded matrix. Fastest per
/// batch; holds n x sample_dim doubles resident.
class InMemoryTrainSource final : public TrainDataSource {
 public:
  /// `table` and `transformer` must outlive this source.
  InMemoryTrainSource(const data::Table& table,
                      const transform::RecordTransformer* transformer);

  const data::Schema& schema() const override { return table_.schema(); }
  size_t num_records() const override { return table_.num_records(); }
  Matrix GatherSamples(const std::vector<size_t>& rows) const override {
    return real_all_.GatherRows(rows);
  }
  const std::vector<size_t>& labels() const override { return labels_; }
  std::vector<size_t> CategoryColumn(size_t source_col) const override;

 private:
  const data::Table& table_;
  Matrix real_all_;            // n x sample_dim, transformed once
  std::vector<size_t> labels_;
};

/// Out-of-core path over a paged .dcol table: each batch gathers raw
/// cells through the table's page cache (never more than its page
/// budget resident) and encodes just those records. EncodeRecord is
/// per-record and deterministic, so the encoded batch is bitwise equal
/// to the in-memory source's gather of the same rows. For a labeled
/// table the label column is read once into memory (8 bytes/record) —
/// conditional training needs random access to it every iteration.
class PagedTrainSource final : public TrainDataSource {
 public:
  /// `table` and `transformer` must outlive this source.
  PagedTrainSource(const data::PagedTable* table,
                   const transform::RecordTransformer* transformer);

  const data::Schema& schema() const override { return table_->schema(); }
  size_t num_records() const override { return table_->num_records(); }
  Matrix GatherSamples(const std::vector<size_t>& rows) const override;
  const std::vector<size_t>& labels() const override { return labels_; }
  std::vector<size_t> CategoryColumn(size_t source_col) const override;

 private:
  const data::PagedTable* table_;
  const transform::RecordTransformer* transformer_;
  std::vector<size_t> labels_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_TRAIN_SOURCE_H_

// Generator interface plus parameter state-dict helpers used for
// snapshot-based model selection (paper §6.2 keeps the best of 10
// training epochs on the validation set).
#ifndef DAISY_SYNTH_GENERATOR_H_
#define DAISY_SYNTH_GENERATOR_H_

#include <vector>

#include "core/matrix.h"
#include "nn/module.h"

namespace daisy::synth {

/// G(z | c): maps noise (and an optional condition vector) to a
/// transformed sample t' in R^d.
class Generator {
 public:
  virtual ~Generator() = default;

  virtual size_t noise_dim() const = 0;
  virtual size_t cond_dim() const = 0;  // 0 when unconditional
  virtual size_t sample_dim() const = 0;

  /// `cond` must be batch x cond_dim (pass an empty Matrix when
  /// cond_dim() == 0).
  virtual Matrix Forward(const Matrix& z, const Matrix& cond,
                         bool training) = 0;

  /// Inference-only forward: the exact arithmetic of
  /// Forward(z, cond, /*training=*/false) — bit-for-bit — but const and
  /// cache-free, so many threads can drive one shared generator
  /// concurrently (the serving path relies on this). Backward must
  /// never follow an InferenceForward.
  virtual Matrix InferenceForward(const Matrix& z,
                                  const Matrix& cond) const = 0;

  /// Backpropagates dLoss/dSample of the last Forward into parameter
  /// gradients (the gradient w.r.t. the noise is discarded).
  virtual void Backward(const Matrix& grad_sample) = 0;

  virtual std::vector<nn::Parameter*> Params() = 0;

  /// Persistent non-parameter state (batch-norm running statistics).
  virtual std::vector<Matrix*> Buffers() { return {}; }

  void ZeroGrad() {
    for (nn::Parameter* p : Params()) p->ZeroGrad();
  }
};

/// Snapshot of parameter values.
using StateDict = std::vector<Matrix>;

inline StateDict GetState(const std::vector<nn::Parameter*>& params) {
  StateDict s;
  s.reserve(params.size());
  for (const nn::Parameter* p : params) s.push_back(p->value);
  return s;
}

inline void SetState(const std::vector<nn::Parameter*>& params,
                     const StateDict& state) {
  DAISY_CHECK(params.size() == state.size());
  for (size_t i = 0; i < params.size(); ++i) {
    DAISY_CHECK(params[i]->value.SameShape(state[i]));
    params[i]->value = state[i];
  }
}

/// Snapshot of buffer values (batch-norm running statistics). Needed
/// alongside GetState/SetState when rolling a network back to a known
/// state: inference-mode Forward reads the running stats, which drift
/// on every training-mode Forward even if parameters are restored.
inline StateDict GetBufferState(const std::vector<Matrix*>& buffers) {
  StateDict s;
  s.reserve(buffers.size());
  for (const Matrix* b : buffers) s.push_back(*b);
  return s;
}

inline void SetBufferState(const std::vector<Matrix*>& buffers,
                           const StateDict& state) {
  DAISY_CHECK(buffers.size() == state.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    DAISY_CHECK(buffers[i]->SameShape(state[i]));
    *buffers[i] = state[i];
  }
}

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_GENERATOR_H_

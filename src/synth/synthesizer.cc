#include "synth/synthesizer.h"

#include "core/parallel.h"
#include "synth/cnn_nets.h"
#include "synth/lstm_nets.h"
#include "synth/mlp_nets.h"

namespace daisy::synth {

TableSynthesizer::TableSynthesizer(
    const GanOptions& options,
    const transform::TransformOptions& transform_options)
    : opts_(options), topts_(transform_options), rng_(options.seed) {
  if (opts_.generator == GeneratorArch::kCnn) {
    // CNN works on matrix-formed samples (which also forces ordinal +
    // simple normalization inside the transformer).
    topts_.form = transform::SampleForm::kMatrix;
    opts_.discriminator = DiscriminatorArch::kCnn;
  }
  if (opts_.conditional) topts_.exclude_label = true;
  if (opts_.algo == TrainAlgo::kCTrain) opts_.conditional = true;
  // Training-by-sampling owns the cond vector (attribute conditions);
  // it cannot be combined with label conditioning.
  DAISY_CHECK(!(UsesTbs() && opts_.conditional));
  // Parent conditioning owns the cond vector outright: no label
  // conditioning, no label-aware sampling, no training-by-sampling.
  if (opts_.parent_cond_dim > 0) {
    DAISY_CHECK(!opts_.conditional);
    DAISY_CHECK(opts_.algo != TrainAlgo::kCTrain);
    DAISY_CHECK(opts_.sampler != SamplerKind::kTrainingBySampling);
  }
}

Status TableSynthesizer::Fit(const data::Table& train,
                             obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 0);
  if (opts_.num_threads > 0) par::SetNumThreads(opts_.num_threads);
  fitted_ = true;
  full_schema_ = train.schema();
  if (opts_.conditional) {
    DAISY_CHECK(full_schema_.has_label());
    topts_.exclude_label = true;
    label_weights_.assign(full_schema_.num_labels(), 0.0);
    const auto counts = train.LabelCounts();
    for (size_t y = 0; y < counts.size(); ++y)
      label_weights_[y] = static_cast<double>(counts[y]);
  }

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::Fit(train, topts_, &rng_));
  BuildNetworks();
  if (UsesTbs()) {
    tbs_weights_.clear();
    for (const CondBlock& b : tbs_blocks_) {
      std::vector<double> w(b.domain, 0.0);
      for (size_t i = 0; i < train.num_records(); ++i)
        w[train.category(i, b.source_col)] += 1.0;
      tbs_weights_.push_back(std::move(w));
    }
  }

  GanTrainer trainer(g_.get(), d_.get(), transformer_.get(), opts_);
  Rng train_rng = rng_.Split();
  result_ = trainer.Train(train, &train_rng, sink);
  // On divergence the trainer has already rolled the generator back to
  // the last healthy snapshot, so this is always a sane state.
  final_state_ = GetState(g_->Params());
  return result_.health;
}

Status TableSynthesizer::Fit(const data::PagedTable& train,
                             obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 0);
  if (opts_.num_threads > 0) par::SetNumThreads(opts_.num_threads);
  fitted_ = true;
  full_schema_ = train.schema();
  if (opts_.conditional) {
    DAISY_CHECK(full_schema_.has_label());
    topts_.exclude_label = true;
    label_weights_.assign(full_schema_.num_labels(), 0.0);
    auto labels = train.ReadLabels();
    DAISY_CHECK(labels.ok());
    for (size_t y : labels.value()) label_weights_[y] += 1.0;
  }

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::FitStreaming(train, topts_, &rng_));
  BuildNetworks();

  GanTrainer trainer(g_.get(), d_.get(), transformer_.get(), opts_);
  Rng train_rng = rng_.Split();
  PagedTrainSource source(&train, transformer_.get());
  if (UsesTbs()) {
    tbs_weights_.clear();
    for (const CondBlock& b : tbs_blocks_) {
      std::vector<double> w(b.domain, 0.0);
      for (size_t c : source.CategoryColumn(b.source_col)) w[c] += 1.0;
      tbs_weights_.push_back(std::move(w));
    }
  }
  result_ = trainer.Train(source, &train_rng, sink);
  final_state_ = GetState(g_->Params());
  return result_.health;
}

Status TableSynthesizer::FitConditioned(const data::Table& train,
                                        const Matrix& row_cond,
                                        obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 0);
  DAISY_CHECK(opts_.parent_cond_dim > 0);
  if (opts_.num_threads > 0) par::SetNumThreads(opts_.num_threads);
  fitted_ = true;
  full_schema_ = train.schema();

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::Fit(train, topts_, &rng_));
  BuildNetworks();

  GanTrainer trainer(g_.get(), d_.get(), transformer_.get(), opts_);
  Rng train_rng = rng_.Split();
  InMemoryTrainSource source(train, transformer_.get());
  source.set_row_cond(row_cond);
  result_ = trainer.Train(source, &train_rng, sink);
  final_state_ = GetState(g_->Params());
  return result_.health;
}

Status TableSynthesizer::FitConditioned(const data::PagedTable& train,
                                        const Matrix& row_cond,
                                        obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 0);
  DAISY_CHECK(opts_.parent_cond_dim > 0);
  if (opts_.num_threads > 0) par::SetNumThreads(opts_.num_threads);
  fitted_ = true;
  full_schema_ = train.schema();

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::FitStreaming(train, topts_, &rng_));
  BuildNetworks();

  GanTrainer trainer(g_.get(), d_.get(), transformer_.get(), opts_);
  Rng train_rng = rng_.Split();
  PagedTrainSource source(&train, transformer_.get());
  source.set_row_cond(row_cond);
  result_ = trainer.Train(source, &train_rng, sink);
  final_state_ = GetState(g_->Params());
  return result_.health;
}

void TableSynthesizer::BuildNetworks() {
  tbs_blocks_ = UsesTbs() ? BuildCondBlocks(transformer_->segments())
                          : std::vector<CondBlock>();
  const size_t cond_dim = opts_.conditional       ? full_schema_.num_labels()
                          : opts_.parent_cond_dim > 0
                              ? opts_.parent_cond_dim
                              : CondDim(tbs_blocks_);
  const auto& segments = transformer_->segments();

  Rng init_rng = rng_.Split();
  switch (opts_.generator) {
    case GeneratorArch::kMlp:
      g_ = std::make_unique<MlpGenerator>(opts_.noise_dim, cond_dim,
                                          opts_.g_hidden, segments,
                                          &init_rng);
      break;
    case GeneratorArch::kLstm:
      g_ = std::make_unique<LstmGenerator>(opts_.noise_dim, cond_dim,
                                           opts_.lstm_hidden,
                                           opts_.lstm_feature, segments,
                                           &init_rng);
      break;
    case GeneratorArch::kCnn:
      g_ = std::make_unique<CnnGenerator>(opts_.noise_dim, cond_dim,
                                          transformer_->matrix_side(),
                                          &init_rng);
      break;
  }
  switch (opts_.discriminator) {
    case DiscriminatorArch::kMlp:
      d_ = std::make_unique<MlpDiscriminator>(
          transformer_->sample_dim(), cond_dim, opts_.d_hidden,
          opts_.simplified_discriminator, &init_rng);
      break;
    case DiscriminatorArch::kLstm:
      d_ = std::make_unique<LstmDiscriminator>(segments, cond_dim,
                                               opts_.lstm_hidden, &init_rng);
      break;
    case DiscriminatorArch::kBiLstm:
      d_ = std::make_unique<BiLstmDiscriminator>(
          segments, cond_dim, opts_.lstm_hidden, &init_rng);
      break;
    case DiscriminatorArch::kCnn:
      d_ = std::make_unique<CnnDiscriminator>(transformer_->matrix_side(),
                                              cond_dim, &init_rng);
      break;
  }
}

void TableSynthesizer::UseSnapshot(size_t i) {
  DAISY_CHECK(fitted_ && i < result_.snapshots.size());
  SetState(g_->Params(), result_.snapshots[i]);
}

void TableSynthesizer::UseFinal() {
  DAISY_CHECK(fitted_);
  SetState(g_->Params(), final_state_);
}

Status TableSynthesizer::OverlayCheckpoint(const ckpt::TrainCheckpoint& c) {
  DAISY_CHECK(fitted_);
  const auto params = g_->Params();
  const auto buffers = g_->Buffers();
  if (c.params.size() < params.size())
    return Status::InvalidArgument(
        "checkpoint holds fewer params than the generator");
  if (c.buffers.size() < buffers.size())
    return Status::InvalidArgument(
        "checkpoint holds fewer buffers than the generator");
  for (size_t i = 0; i < params.size(); ++i)
    if (!params[i]->value.SameShape(c.params[i]))
      return Status::InvalidArgument(
          "checkpoint param shape mismatch at index " + std::to_string(i));
  for (size_t i = 0; i < buffers.size(); ++i)
    if (!buffers[i]->SameShape(c.buffers[i]))
      return Status::InvalidArgument(
          "checkpoint buffer shape mismatch at index " + std::to_string(i));
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = c.params[i];
  for (size_t i = 0; i < buffers.size(); ++i) *buffers[i] = c.buffers[i];
  final_state_ = GetState(params);
  return Status::OK();
}

void TableSynthesizer::DrawLatents(size_t n, Rng* rng, Matrix* z,
                                   Matrix* cond,
                                   std::vector<size_t>* labels) const {
  DAISY_CHECK(fitted_);
  // Parent-conditioned models take caller-provided condition rows —
  // there is no distribution to draw them from here.
  DAISY_CHECK(opts_.parent_cond_dim == 0);
  const size_t noise_dim = g_->noise_dim();
  const bool tbs_gen = !opts_.conditional && !tbs_blocks_.empty();
  if (tbs_gen) DAISY_CHECK(tbs_weights_.size() == tbs_blocks_.size());
  *z = Matrix(n, noise_dim);
  labels->assign(n, 0);
  *cond = opts_.conditional ? Matrix(n, full_schema_.num_labels())
          : tbs_gen         ? Matrix(n, CondDim(tbs_blocks_))
                            : Matrix();
  // Strict per-row order — noise first, then the condition draws — so
  // the stream position after row i never depends on how rows are
  // batched into chunks. That invariant is what makes GenerateChunked
  // bitwise equal to a single-shot Generate for any chunk size.
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < noise_dim; ++c)
      (*z)(i, c) = rng->Gaussian(0.0, 1.0);
    if (opts_.conditional) {
      (*labels)[i] = rng->Categorical(label_weights_);
      (*cond)(i, (*labels)[i]) = 1.0;
    } else if (tbs_gen) {
      // Attribute conditions come from the RAW category frequencies so
      // the generated marginals track the data, not the log-flattened
      // training distribution.
      const size_t b = static_cast<size_t>(
          rng->UniformInt(tbs_blocks_.size()));
      const size_t c = rng->Categorical(tbs_weights_[b]);
      (*cond)(i, tbs_blocks_[b].cond_offset + c) = 1.0;
    }
  }
}

Matrix TableSynthesizer::InferenceSamples(const Matrix& z,
                                          const Matrix& cond) const {
  DAISY_CHECK(fitted_);
  return g_->InferenceForward(z, cond);
}

data::Table TableSynthesizer::DecodeRows(
    const Matrix& samples, const std::vector<size_t>& labels) const {
  DAISY_CHECK(fitted_);
  DAISY_CHECK(labels.size() == samples.rows());
  data::Table decoded = transformer_->InverseTransform(samples);

  // Reassemble rows under the full schema (re-inserting the label
  // column when it was excluded from the transform).
  data::Table out(full_schema_);
  out.Reserve(samples.rows());
  std::vector<double> record(full_schema_.num_attributes());
  const data::Schema& sub = transformer_->schema();
  for (size_t i = 0; i < samples.rows(); ++i) {
    size_t sub_j = 0;
    for (size_t j = 0; j < full_schema_.num_attributes(); ++j) {
      if (opts_.conditional && full_schema_.has_label() &&
          j == full_schema_.label_index()) {
        record[j] = static_cast<double>(labels[i]);
      } else {
        DAISY_CHECK(sub_j < sub.num_attributes());
        record[j] = decoded.value(i, sub_j);
        ++sub_j;
      }
    }
    out.AppendRecord(record);
  }
  return out;
}

void TableSynthesizer::GenerateChunked(
    size_t n, size_t chunk_rows, Rng* rng,
    const std::function<void(const data::Table&)>& emit) const {
  DAISY_CHECK(fitted_);
  DAISY_CHECK(chunk_rows > 0);
  size_t produced = 0;
  while (produced < n) {
    const size_t m = std::min(chunk_rows, n - produced);
    Matrix z;
    Matrix cond;
    std::vector<size_t> labels;
    DrawLatents(m, rng, &z, &cond, &labels);
    emit(DecodeRows(InferenceSamples(z, cond), labels));
    produced += m;
  }
}

Result<data::Table> TableSynthesizer::GenerateConditioned(const Matrix& cond,
                                                          Rng* rng) const {
  DAISY_CHECK(fitted_);
  if (opts_.parent_cond_dim == 0)
    return Status::InvalidArgument(
        "GenerateConditioned needs a model fitted with parent_cond_dim > 0");
  if (cond.cols() != opts_.parent_cond_dim)
    return Status::InvalidArgument(
        "condition matrix has " + std::to_string(cond.cols()) +
        " columns, model expects " + std::to_string(opts_.parent_cond_dim));
  constexpr size_t kGenBatch = 256;
  const size_t n = cond.rows();
  const size_t noise_dim = g_->noise_dim();
  data::Table out(full_schema_);
  out.Reserve(n);
  std::vector<double> record(full_schema_.num_attributes());
  size_t produced = 0;
  while (produced < n) {
    const size_t m = std::min(kGenBatch, n - produced);
    // Noise is drawn in strict per-row order (noise_dim gaussians per
    // row, nothing else), so the output is a pure function of the model
    // state, `cond` and the rng stream — independent of kGenBatch.
    Matrix z(m, noise_dim);
    for (size_t i = 0; i < m; ++i)
      for (size_t c = 0; c < noise_dim; ++c)
        z(i, c) = rng->Gaussian(0.0, 1.0);
    std::vector<size_t> rows(m);
    for (size_t i = 0; i < m; ++i) rows[i] = produced + i;
    const data::Table chunk = DecodeRows(
        InferenceSamples(z, cond.GatherRows(rows)),
        std::vector<size_t>(m, 0));
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < record.size(); ++j) record[j] = chunk.value(i, j);
      out.AppendRecord(record);
    }
    produced += m;
  }
  return out;
}

data::Table TableSynthesizer::Generate(size_t n, Rng* rng) const {
  DAISY_CHECK(fitted_);
  constexpr size_t kGenBatch = 256;
  data::Table out(full_schema_);
  out.Reserve(n);
  std::vector<double> record(full_schema_.num_attributes());
  GenerateChunked(n, kGenBatch, rng, [&](const data::Table& chunk) {
    for (size_t i = 0; i < chunk.num_records(); ++i) {
      for (size_t j = 0; j < full_schema_.num_attributes(); ++j)
        record[j] = chunk.value(i, j);
      out.AppendRecord(record);
    }
  });
  return out;
}

}  // namespace daisy::synth

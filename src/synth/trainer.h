// Phase II of the framework: adversarial training. Implements the four
// algorithms of paper Table 1 / Appendix A.2 over any Generator /
// Discriminator pair:
//
//   VTrain  — vanilla GAN, Adam, random sampling, non-saturating G loss
//             plus the per-attribute KL warm-up of Eq. (2)
//   WTrain  — Wasserstein GAN, RMSProp, d_steps critic iterations,
//             weight clipping (Algorithm 2)
//   CTrain  — conditional GAN with label-aware sampling (Algorithm 3)
//   DPTrain — WTrain plus clipped & noised discriminator gradients
//             (Algorithm 4, DPGAN)
#ifndef DAISY_SYNTH_TRAINER_H_
#define DAISY_SYNTH_TRAINER_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "data/table.h"
#include "nn/optimizer.h"
#include "synth/config.h"
#include "synth/sampler.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/kl_regularizer.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

/// What a training run produces: loss traces and periodic generator
/// snapshots for validation-based model selection (paper §6.2).
struct TrainResult {
  std::vector<double> g_losses;        // one entry per generator update
  std::vector<double> d_losses;
  std::vector<StateDict> snapshots;    // GanOptions::snapshots entries
  std::vector<size_t> snapshot_iters;
};

/// Runs one of the four training algorithms. The trainer does not own
/// the networks; the caller keeps them for generation afterwards.
class GanTrainer {
 public:
  GanTrainer(Generator* generator, Discriminator* discriminator,
             const transform::RecordTransformer* transformer,
             const GanOptions& options);

  /// Trains on `table` (already the training split). The table must be
  /// labeled when options.conditional or algo == kCTrain.
  TrainResult Train(const data::Table& table, Rng* rng);

 private:
  // One discriminator update on given real rows + equally sized fake
  // batch; returns the discriminator loss. Wasserstein flag switches
  // between BCE-with-logits and critic score losses.
  double DiscriminatorStep(const Matrix& real, const Matrix& real_cond,
                           const Matrix& fake, const Matrix& fake_cond,
                           bool wasserstein, bool dp, Rng* rng);

  // One generator update; returns the generator loss. `real_ref` is a
  // real minibatch for the KL warm-up (empty to skip the term).
  double GeneratorStep(const Matrix& z, const Matrix& cond,
                       const Matrix& real_ref, bool wasserstein, Rng* rng);

  Matrix SampleNoise(size_t m, Rng* rng) const;
  Matrix OneHotLabels(const std::vector<size_t>& labels) const;

  Generator* g_;
  Discriminator* d_;
  const transform::RecordTransformer* transformer_;
  GanOptions opts_;
  KlRegularizer kl_;
  size_t num_labels_ = 0;

  std::unique_ptr<nn::Optimizer> g_opt_;
  std::unique_ptr<nn::Optimizer> d_opt_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_TRAINER_H_

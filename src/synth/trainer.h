// Phase II of the framework: adversarial training. Implements the four
// algorithms of paper Table 1 / Appendix A.2 over any Generator /
// Discriminator pair:
//
//   VTrain  — vanilla GAN, Adam, random sampling, non-saturating G loss
//             plus the per-attribute KL warm-up of Eq. (2)
//   WTrain  — Wasserstein GAN, RMSProp, d_steps critic iterations,
//             weight clipping (Algorithm 2)
//   CTrain  — conditional GAN with label-aware sampling (Algorithm 3)
//   DPTrain — WTrain plus clipped & noised discriminator gradients
//             (Algorithm 4, DPGAN)
#ifndef DAISY_SYNTH_TRAINER_H_
#define DAISY_SYNTH_TRAINER_H_

#include <memory>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/rng.h"
#include "data/table.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "synth/config.h"
#include "synth/dp_engine.h"
#include "synth/heads.h"
#include "synth/sampler.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/kl_regularizer.h"
#include "synth/train_source.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

/// What a training run produces: loss traces and periodic generator
/// snapshots for validation-based model selection (paper §6.2).
///
/// Health contract: `health` is OK when all requested iterations ran;
/// otherwise it describes why training stopped early (divergence
/// detected by the sentinel, or an empty-label table under CTrain).
/// The loss traces and `completed_iters` cover only healthy
/// iterations — no NaN/Inf ever lands in them while the sentinel is
/// enabled — and the last snapshot is the last healthy generator
/// state, which is also what the generator's parameters hold after
/// Train returns.
struct TrainResult {
  std::vector<double> g_losses;        // one entry per generator update
  std::vector<double> d_losses;
  std::vector<StateDict> snapshots;    // GanOptions::snapshots entries
  std::vector<size_t> snapshot_iters;
  Status health;                       // OK, or why the run stopped early
  size_t completed_iters = 0;          // healthy iterations applied

  /// True when the run stopped early because it exhausted
  /// GanOptions::max_iters_per_run (health stays OK). A paused run did
  /// no rollback / final-snapshot bookkeeping; resume it from its
  /// checkpoint directory to finish.
  bool paused = false;
};

/// Runs one of the four training algorithms. The trainer does not own
/// the networks; the caller keeps them for generation afterwards.
class GanTrainer {
 public:
  GanTrainer(Generator* generator, Discriminator* discriminator,
             const transform::RecordTransformer* transformer,
             const GanOptions& options);

  /// Trains on `table` (already the training split). The table must be
  /// labeled when options.conditional or algo == kCTrain. When `sink`
  /// is non-null it receives one obs::MetricRecord every
  /// options.log_every iterations (losses, global grad norms, generator
  /// param norm, wall-clock timings); the divergence sentinel
  /// (options.sentinel) is checked every iteration either way, and its
  /// verdict lands in TrainResult::health.
  TrainResult Train(const data::Table& table, Rng* rng,
                    obs::MetricSink* sink = nullptr);

  /// Same training loop over any TrainDataSource — the out-of-core
  /// entry point (Train(table) is a thin wrapper over an
  /// InMemoryTrainSource). For a fixed options/seed/source content the
  /// run is bitwise identical whichever source implementation serves
  /// it, because encoded batches are (see train_source.h).
  TrainResult Train(const TrainDataSource& source, Rng* rng,
                    obs::MetricSink* sink = nullptr);

 private:
  // One discriminator update on given real rows + equally sized fake
  // batch; returns the discriminator loss. Wasserstein flag switches
  // between BCE-with-logits and critic score losses. When dp is set,
  // the update is delegated to DpDiscriminatorStep.
  double DiscriminatorStep(const Matrix& real, const Matrix& real_cond,
                           const Matrix& fake, const Matrix& fake_cond,
                           bool wasserstein, bool dp, Rng* rng);

  // DP-SGD discriminator update (Algorithm 4): per-sample clipping to
  // dp_grad_bound, then noised-sum averaging, delegated to DpSgdEngine
  // (options.dp_engine picks the reference, replica-parallel or
  // vectorized implementation; kAuto takes the fastest supported).
  double DpDiscriminatorStep(const Matrix& real, const Matrix& real_cond,
                             const Matrix& fake, const Matrix& fake_cond,
                             bool wasserstein, Rng* rng);

  // One generator update; returns the generator loss. `real_ref` is a
  // real minibatch for the KL warm-up (empty to skip the term). Under
  // training-by-sampling `draws` carries the batch's (block, category)
  // conditions and the loss gains the conditional cross-entropy term
  // (opts_.tbs_ce_weight) that penalizes generated rows whose
  // conditioned softmax block ignores the requested category.
  double GeneratorStep(
      const Matrix& z, const Matrix& cond, const Matrix& real_ref,
      bool wasserstein,
      const std::vector<TrainingBySamplingSampler::Draw>* draws, Rng* rng);

  Matrix SampleNoise(size_t m, Rng* rng) const;
  Matrix OneHotLabels(const std::vector<size_t>& labels) const;
  // Cond matrix for a training-by-sampling batch: row i is all-zero
  // except a 1.0 at blocks[draw.block].cond_offset + draw.category.
  Matrix TbsCond(
      const std::vector<TrainingBySamplingSampler::Draw>& draws) const;

  // Snapshots the complete mutable training state after `completed`
  // iterations: G+D parameter values and buffers, both optimizer
  // blobs, the rng engine, loss traces / snapshots accumulated so far,
  // the sentinel baselines and the telemetry cursor.
  ckpt::TrainCheckpoint MakeCheckpoint(size_t completed, uint64_t cursor,
                                       const TrainResult& result,
                                       const StateDict& last_healthy,
                                       const StateDict& last_healthy_buffers,
                                       Rng* rng);

  // Applies a checkpoint produced by MakeCheckpoint. Validates run
  // tag, configured length, seed and every shape BEFORE mutating
  // anything, so a mismatched or hostile checkpoint leaves the trainer
  // untouched.
  Status RestoreFromCheckpoint(const ckpt::TrainCheckpoint& c, Rng* rng,
                               obs::MetricSink* sink, TrainResult* result,
                               StateDict* last_healthy,
                               StateDict* last_healthy_buffers,
                               size_t* start_iter);

  Generator* g_;
  Discriminator* d_;
  const transform::RecordTransformer* transformer_;
  GanOptions opts_;
  KlRegularizer kl_;
  size_t num_labels_ = 0;

  // Cond-vector layout under training-by-sampling (empty otherwise);
  // set once per Train call from the transformer segments.
  std::vector<CondBlock> tbs_blocks_;

  // Telemetry captured by the step functions: the global grad norm
  // right after the backward pass (before the optimizer applies it).
  // With multiple D steps (or labels) per iteration, the last step's
  // value is what gets logged.
  double last_d_grad_norm_ = 0.0;
  double last_g_grad_norm_ = 0.0;
  // CTrain only: labels with zero training records in the last
  // iteration (skipped silently before; now surfaced per record).
  size_t last_starved_labels_ = 0;

  std::unique_ptr<nn::Optimizer> g_opt_;
  std::unique_ptr<nn::Optimizer> d_opt_;
  std::unique_ptr<DpSgdEngine> dp_engine_;  // non-null iff algo == kDPTrain
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_TRAINER_H_

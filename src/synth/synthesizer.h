// Public facade over the three-phase pipeline (paper Figure 2):
// Fit() = Phase I (transformation) + Phase II (adversarial training),
// Generate() = Phase III (sampling + inverse transformation).
#ifndef DAISY_SYNTH_SYNTHESIZER_H_
#define DAISY_SYNTH_SYNTHESIZER_H_

#include <functional>
#include <iosfwd>
#include <memory>

#include "ckpt/checkpoint.h"
#include "synth/config.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/trainer.h"

namespace daisy::synth {

/// End-to-end relational-table synthesizer. Typical use:
///
///   GanOptions opts;             // pick the design-space point
///   TableSynthesizer synth(opts, transform_options);
///   synth.Fit(train_table);
///   data::Table fake = synth.Generate(train_table.num_records(), &rng);
///
/// Snapshot selection (paper §6.2) is supported via UseSnapshot().
class TableSynthesizer {
 public:
  TableSynthesizer(const GanOptions& options,
                   const transform::TransformOptions& transform_options);

  /// Fits the transformer and trains the GAN on `train`.
  /// Must be called exactly once before Generate. When `sink` is
  /// non-null it receives per-iteration training telemetry (see
  /// GanTrainer::Train). Returns the run's health: OK when all
  /// iterations ran; a descriptive error when the divergence sentinel
  /// stopped training early — in which case the generator holds the
  /// last healthy snapshot and Generate still works.
  Status Fit(const data::Table& train, obs::MetricSink* sink = nullptr);

  /// Out-of-core Fit over a paged .dcol table: transformer statistics
  /// come from streaming fits (RecordTransformer::FitStreaming) and
  /// training minibatches fault through the table's page cache, so
  /// peak memory is bounded by the page budget + model size instead of
  /// the table size. Consumes this synthesizer's rng exactly like the
  /// in-memory Fit, so for equivalent data the fitted model is bitwise
  /// identical at any page budget / thread count. Prefer
  /// GanOptions::SamplerKind::kChunkedShuffle with this overload —
  /// uniform sampling random-faults pages every batch.
  Status Fit(const data::PagedTable& train, obs::MetricSink* sink = nullptr);

  /// Parent-conditioned Fit (requires GanOptions::parent_cond_dim > 0):
  /// trains with row i of `row_cond` (num_records x parent_cond_dim) as
  /// the condition vector of record i — the relational layer's encoded
  /// parent attributes. The fitted model generates via
  /// GenerateConditioned only.
  Status FitConditioned(const data::Table& train, const Matrix& row_cond,
                        obs::MetricSink* sink = nullptr);
  /// Out-of-core parent-conditioned Fit (see the paged Fit overload for
  /// the memory contract). `row_cond` is dense in memory — one encoded
  /// parent row per record — which the relational layer keeps small by
  /// encoding only the parent's modeled columns.
  Status FitConditioned(const data::PagedTable& train, const Matrix& row_cond,
                        obs::MetricSink* sink = nullptr);

  /// Health of the training run (same Status that Fit returned).
  const Status& health() const { return result_.health; }

  /// Persists the fitted model (transformer state + generator
  /// parameters) so Generate can run in a later process without
  /// retraining. Snapshots are not saved — the current generator
  /// parameters are.
  Status Save(const std::string& path) const;

  /// Restores a model written by Save. The returned synthesizer is
  /// ready for Generate (Fit must not be called on it).
  static Result<std::unique_ptr<TableSynthesizer>> Load(
      const std::string& path);

  /// Stream forms of Save/Load: the exact model payload without the
  /// checksum/atomic-write envelope, so a container format (the
  /// relational bundle) can embed many models in one checksummed file.
  Status SaveToStream(std::ostream& os) const;
  static Result<std::unique_ptr<TableSynthesizer>> LoadFromStream(
      std::istream& is);

  /// Generates n synthetic records. With a conditional model, labels
  /// are drawn from the training label distribution and appended as
  /// the label column; otherwise the GAN generates the label attribute
  /// like any other.
  ///
  /// Latents are consumed from `rng` in a fixed per-row order (for each
  /// row: noise_dim gaussians, then — for conditional models — one
  /// categorical label), so the output is a pure function of the model
  /// state and the rng stream, independent of internal batching.
  data::Table Generate(size_t n, Rng* rng) const;

  /// Streaming Generate: emits the n records as a sequence of decoded
  /// tables of at most `chunk_rows` rows each, holding only one chunk
  /// in memory at a time (how the serving path keeps a 10M-row request
  /// bounded). Because latents are drawn per row from the single `rng`
  /// stream, the concatenated chunks are bitwise identical to a
  /// single-shot Generate(n, rng) for ANY chunk size.
  void GenerateChunked(
      size_t n, size_t chunk_rows, Rng* rng,
      const std::function<void(const data::Table&)>& emit) const;

  /// Generation for a parent-conditioned model: one output record per
  /// row of `cond` (cond.rows() x parent_cond_dim), record i generated
  /// under condition row i, in order. Latents are noise-only, drawn in
  /// strict per-row order, so the output is independent of internal
  /// batching. Fails unless the model was fitted with
  /// parent_cond_dim == cond.cols().
  Result<data::Table> GenerateConditioned(const Matrix& cond,
                                          Rng* rng) const;

  /// Serving hooks — the three phases of one Generate chunk, exposed
  /// separately so a request scheduler can draw latents per request
  /// (own rng) yet run coalesced generator passes across requests.
  /// All three are const and safe to call concurrently.
  ///
  /// Fills z (n x noise_dim), cond (n x num_labels, empty when
  /// unconditional) and labels (n, zeros when unconditional) drawing in
  /// the fixed per-row order documented at Generate.
  void DrawLatents(size_t n, Rng* rng, Matrix* z, Matrix* cond,
                   std::vector<size_t>* labels) const;
  /// Transformed samples for drawn latents: one inference-only
  /// generator pass. Per-row outputs do not depend on which other rows
  /// share the batch, so callers may concatenate latents from many
  /// requests into one pass and split the result.
  Matrix InferenceSamples(const Matrix& z, const Matrix& cond) const;
  /// Inverse-transforms generator output and reassembles full-schema
  /// records (re-inserting the label column for conditional models).
  data::Table DecodeRows(const Matrix& samples,
                         const std::vector<size_t>& labels) const;

  /// Number of generator snapshots captured during training.
  size_t num_snapshots() const { return result_.snapshots.size(); }
  /// Loads snapshot i's parameters into the generator.
  void UseSnapshot(size_t i);
  /// Restores the final trained parameters.
  void UseFinal();

  /// Overlays the generator weights stored in a training checkpoint
  /// onto this (already Load-ed or Fit-ted) synthesizer. Checkpoints
  /// store generator params/buffers first, then the discriminator's, so
  /// the generator prefix is taken; every matrix must match the live
  /// generator's shape or the overlay is rejected untouched. This is
  /// how the serving registry refreshes a model from a training run's
  /// checkpoint directory without a full Save.
  Status OverlayCheckpoint(const ckpt::TrainCheckpoint& c);

  /// Schema of generated tables (the full training schema, including a
  /// conditional model's label column).
  const data::Schema& schema() const { return full_schema_; }

  const TrainResult& train_result() const { return result_; }
  const transform::RecordTransformer& transformer() const {
    return *transformer_;
  }
  const GanOptions& options() const { return opts_; }

 private:
  /// Builds generator + discriminator for the current options and
  /// transformer (shared by Fit and Load). Under training-by-sampling
  /// this also derives the cond-vector layout (tbs_blocks_) from the
  /// transformer segments.
  void BuildNetworks();

  /// True when the cond vector carries training-by-sampling attribute
  /// conditions instead of the label (kCTrain ignores the sampler knob).
  bool UsesTbs() const {
    return opts_.sampler == SamplerKind::kTrainingBySampling &&
           opts_.algo != TrainAlgo::kCTrain;
  }

  GanOptions opts_;
  transform::TransformOptions topts_;
  Rng rng_;

  std::unique_ptr<transform::RecordTransformer> transformer_;
  std::unique_ptr<Generator> g_;
  std::unique_ptr<Discriminator> d_;
  TrainResult result_;
  StateDict final_state_;

  // Full schema + label distribution kept for conditional generation.
  data::Schema full_schema_;
  std::vector<double> label_weights_;

  // Training-by-sampling state: cond-vector layout (from the segments)
  // and the raw per-category frequencies of each conditionable column.
  // Generation draws its conditions from the RAW frequencies — the
  // log-flattened weights are a training-time reweighting only, and
  // using them at generation time would oversample rare categories in
  // the output (see arXiv:2010.00638).
  std::vector<CondBlock> tbs_blocks_;
  std::vector<std::vector<double>> tbs_weights_;

  bool fitted_ = false;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_SYNTHESIZER_H_

// Public facade over the three-phase pipeline (paper Figure 2):
// Fit() = Phase I (transformation) + Phase II (adversarial training),
// Generate() = Phase III (sampling + inverse transformation).
#ifndef DAISY_SYNTH_SYNTHESIZER_H_
#define DAISY_SYNTH_SYNTHESIZER_H_

#include <memory>

#include "synth/config.h"
#include "synth/discriminator.h"
#include "synth/generator.h"
#include "synth/trainer.h"

namespace daisy::synth {

/// End-to-end relational-table synthesizer. Typical use:
///
///   GanOptions opts;             // pick the design-space point
///   TableSynthesizer synth(opts, transform_options);
///   synth.Fit(train_table);
///   data::Table fake = synth.Generate(train_table.num_records(), &rng);
///
/// Snapshot selection (paper §6.2) is supported via UseSnapshot().
class TableSynthesizer {
 public:
  TableSynthesizer(const GanOptions& options,
                   const transform::TransformOptions& transform_options);

  /// Fits the transformer and trains the GAN on `train`.
  /// Must be called exactly once before Generate. When `sink` is
  /// non-null it receives per-iteration training telemetry (see
  /// GanTrainer::Train). Returns the run's health: OK when all
  /// iterations ran; a descriptive error when the divergence sentinel
  /// stopped training early — in which case the generator holds the
  /// last healthy snapshot and Generate still works.
  Status Fit(const data::Table& train, obs::MetricSink* sink = nullptr);

  /// Health of the training run (same Status that Fit returned).
  const Status& health() const { return result_.health; }

  /// Persists the fitted model (transformer state + generator
  /// parameters) so Generate can run in a later process without
  /// retraining. Snapshots are not saved — the current generator
  /// parameters are.
  Status Save(const std::string& path) const;

  /// Restores a model written by Save. The returned synthesizer is
  /// ready for Generate (Fit must not be called on it).
  static Result<std::unique_ptr<TableSynthesizer>> Load(
      const std::string& path);

  /// Generates n synthetic records. With a conditional model, labels
  /// are drawn from the training label distribution and appended as
  /// the label column; otherwise the GAN generates the label attribute
  /// like any other.
  data::Table Generate(size_t n, Rng* rng);

  /// Number of generator snapshots captured during training.
  size_t num_snapshots() const { return result_.snapshots.size(); }
  /// Loads snapshot i's parameters into the generator.
  void UseSnapshot(size_t i);
  /// Restores the final trained parameters.
  void UseFinal();

  const TrainResult& train_result() const { return result_; }
  const transform::RecordTransformer& transformer() const {
    return *transformer_;
  }
  const GanOptions& options() const { return opts_; }

 private:
  /// Builds generator + discriminator for the current options and
  /// transformer (shared by Fit and Load).
  void BuildNetworks();

  GanOptions opts_;
  transform::TransformOptions topts_;
  Rng rng_;

  std::unique_ptr<transform::RecordTransformer> transformer_;
  std::unique_ptr<Generator> g_;
  std::unique_ptr<Discriminator> d_;
  TrainResult result_;
  StateDict final_state_;

  // Full schema + label distribution kept for conditional generation.
  data::Schema full_schema_;
  std::vector<double> label_weights_;
  bool fitted_ = false;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_SYNTHESIZER_H_

#include "synth/lstm_nets.h"

#include <cmath>

#include "nn/activations.h"

namespace daisy::synth {

LstmGenerator::LstmGenerator(
    size_t noise_dim, size_t cond_dim, size_t hidden_size,
    size_t feature_size, const std::vector<transform::AttrSegment>& segments,
    Rng* rng)
    : noise_dim_(noise_dim), cond_dim_(cond_dim), hidden_size_(hidden_size),
      feature_size_(feature_size),
      cell_(noise_dim + feature_size + cond_dim, hidden_size, rng) {
  sample_dim_ = 0;
  for (const auto& seg : segments) sample_dim_ += seg.width;
  const double bound =
      std::sqrt(6.0 / static_cast<double>(hidden_size + feature_size));
  fproj_w_ = nn::Parameter(
      "lstm_g.fproj_w",
      Matrix::RandUniform(hidden_size, feature_size, rng, -bound, bound));
  fproj_b_ = nn::Parameter("lstm_g.fproj_b", Matrix(1, feature_size));
  for (const HeadUnit& unit : BuildHeadUnits(segments))
    heads_.emplace_back(feature_size, unit, rng);
}

Matrix LstmGenerator::Forward(const Matrix& z, const Matrix& cond,
                              bool /*training*/) {
  DAISY_CHECK(z.cols() == noise_dim_);
  const size_t batch = z.rows();
  cell_.ClearCache();
  step_h_.clear();
  step_f_.clear();

  nn::LstmState state = cell_.InitialState(batch);
  Matrix f_prev(batch, feature_size_);
  Matrix sample(batch, sample_dim_);

  for (auto& head : heads_) {
    Matrix x = Matrix::HCat(z, f_prev);
    if (cond_dim_ > 0) x = Matrix::HCat(x, cond);
    state = cell_.StepForward(x, state);

    Matrix pre_f = state.h.MatMul(fproj_w_.value);
    pre_f.AddRowBroadcast(fproj_b_.value);
    Matrix f = nn::TanhMat(pre_f);
    step_h_.push_back(state.h);
    step_f_.push_back(f);

    const Matrix out = head.Forward(f);
    const HeadUnit& u = head.unit();
    for (size_t r = 0; r < batch; ++r)
      for (size_t c = 0; c < u.width; ++c)
        sample(r, u.offset + c) = out(r, c);
    f_prev = std::move(f);
  }
  return sample;
}

Matrix LstmGenerator::InferenceForward(const Matrix& z,
                                       const Matrix& cond) const {
  DAISY_CHECK(z.cols() == noise_dim_);
  const size_t batch = z.rows();

  // Mirrors Forward step-for-step (StepInference shares StepForward's
  // gate arithmetic) so the two paths agree to the last bit.
  nn::LstmState state = cell_.InitialState(batch);
  Matrix f_prev(batch, feature_size_);
  Matrix sample(batch, sample_dim_);

  for (const auto& head : heads_) {
    Matrix x = Matrix::HCat(z, f_prev);
    if (cond_dim_ > 0) x = Matrix::HCat(x, cond);
    state = cell_.StepInference(x, state);

    Matrix pre_f = state.h.MatMul(fproj_w_.value);
    pre_f.AddRowBroadcast(fproj_b_.value);
    Matrix f = nn::TanhMat(pre_f);

    const Matrix out = head.InferenceForward(f);
    const HeadUnit& u = head.unit();
    for (size_t r = 0; r < batch; ++r)
      for (size_t c = 0; c < u.width; ++c)
        sample(r, u.offset + c) = out(r, c);
    f_prev = std::move(f);
  }
  return sample;
}

void LstmGenerator::Backward(const Matrix& grad_sample) {
  DAISY_CHECK(grad_sample.cols() == sample_dim_);
  const size_t batch = grad_sample.rows();
  const size_t steps = heads_.size();
  DAISY_CHECK(cell_.cache_depth() == steps);

  Matrix grad_h_next(batch, hidden_size_);
  Matrix grad_c_next(batch, hidden_size_);
  Matrix grad_f_next(batch, feature_size_);  // dLoss/df_j via step j+1 input

  for (size_t j = steps; j-- > 0;) {
    HeadProjection& head = heads_[j];
    const HeadUnit& u = head.unit();
    Matrix g_unit(batch, u.width);
    for (size_t r = 0; r < batch; ++r)
      for (size_t c = 0; c < u.width; ++c)
        g_unit(r, c) = grad_sample(r, u.offset + c);

    Matrix grad_f = head.Backward(g_unit);
    grad_f += grad_f_next;

    // Through f = tanh(h W + b).
    Matrix grad_pre(batch, feature_size_);
    for (size_t r = 0; r < batch; ++r)
      for (size_t c = 0; c < feature_size_; ++c) {
        const double y = step_f_[j](r, c);
        grad_pre(r, c) = grad_f(r, c) * (1.0 - y * y);
      }
    fproj_w_.grad += step_h_[j].TransposeMatMul(grad_pre);
    fproj_b_.grad += grad_pre.ColSum();
    Matrix grad_h = grad_pre.MatMulTranspose(fproj_w_.value);
    grad_h += grad_h_next;

    auto sg = cell_.StepBackward(grad_h, grad_c_next);
    grad_h_next = std::move(sg.dh_prev);
    grad_c_next = std::move(sg.dc_prev);
    // sg.dx layout: [z | f_prev | cond]; route the f_prev slice to the
    // previous step (z and cond gradients are discarded).
    grad_f_next =
        sg.dx.ColRange(noise_dim_, noise_dim_ + feature_size_);
  }
}

std::vector<nn::Parameter*> LstmGenerator::Params() {
  std::vector<nn::Parameter*> out = cell_.Params();
  out.push_back(&fproj_w_);
  out.push_back(&fproj_b_);
  for (auto& head : heads_) {
    auto hp = head.Params();
    out.insert(out.end(), hp.begin(), hp.end());
  }
  return out;
}

namespace {

size_t MaxSegmentWidth(const std::vector<transform::AttrSegment>& segments) {
  size_t w = 1;
  for (const auto& seg : segments) w = std::max(w, seg.width);
  return w;
}

size_t TotalWidth(const std::vector<transform::AttrSegment>& segments) {
  size_t w = 0;
  for (const auto& seg : segments) w += seg.width;
  return w;
}

}  // namespace

LstmDiscriminator::LstmDiscriminator(
    const std::vector<transform::AttrSegment>& segments, size_t cond_dim,
    size_t hidden_size, Rng* rng)
    : segments_(segments), sample_dim_(TotalWidth(segments)),
      cond_dim_(cond_dim), slot_width_(MaxSegmentWidth(segments)),
      cell_(slot_width_ + cond_dim, hidden_size, rng),
      out_(hidden_size, 1, rng) {}

Matrix LstmDiscriminator::Forward(const Matrix& x, const Matrix& cond,
                                  bool training) {
  DAISY_CHECK(x.cols() == sample_dim_);
  const size_t batch = x.rows();
  cached_batch_ = batch;
  cell_.ClearCache();
  nn::LstmState state = cell_.InitialState(batch);
  for (const auto& seg : segments_) {
    Matrix step_in(batch, slot_width_ + cond_dim_);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t c = 0; c < seg.width; ++c)
        step_in(r, c) = x(r, seg.offset + c);
      for (size_t c = 0; c < cond_dim_; ++c)
        step_in(r, slot_width_ + c) = cond(r, c);
    }
    state = cell_.StepForward(step_in, state);
  }
  return out_.Forward(state.h, training);
}

Matrix LstmDiscriminator::Backward(const Matrix& grad_logit) {
  Matrix grad_h = out_.Backward(grad_logit);
  Matrix grad_c(cached_batch_, cell_.hidden_size());
  Matrix grad_x(cached_batch_, sample_dim_);
  for (size_t j = segments_.size(); j-- > 0;) {
    auto sg = cell_.StepBackward(grad_h, grad_c);
    const auto& seg = segments_[j];
    for (size_t r = 0; r < cached_batch_; ++r)
      for (size_t c = 0; c < seg.width; ++c)
        grad_x(r, seg.offset + c) = sg.dx(r, c);
    grad_h = std::move(sg.dh_prev);
    grad_c = std::move(sg.dc_prev);
  }
  return grad_x;
}

std::vector<nn::Parameter*> LstmDiscriminator::Params() {
  std::vector<nn::Parameter*> out = cell_.Params();
  auto op = out_.Params();
  out.insert(out.end(), op.begin(), op.end());
  return out;
}

BiLstmDiscriminator::BiLstmDiscriminator(
    const std::vector<transform::AttrSegment>& segments, size_t cond_dim,
    size_t hidden_size, Rng* rng)
    : segments_(segments), sample_dim_(TotalWidth(segments)),
      cond_dim_(cond_dim), slot_width_(MaxSegmentWidth(segments)),
      hidden_size_(hidden_size),
      fwd_cell_(slot_width_ + cond_dim, hidden_size, rng),
      bwd_cell_(slot_width_ + cond_dim, hidden_size, rng),
      out_(2 * hidden_size, 1, rng) {}

Matrix BiLstmDiscriminator::StepInput(const Matrix& x, const Matrix& cond,
                                      size_t seg) const {
  const auto& s = segments_[seg];
  Matrix step_in(x.rows(), slot_width_ + cond_dim_);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < s.width; ++c)
      step_in(r, c) = x(r, s.offset + c);
    for (size_t c = 0; c < cond_dim_; ++c)
      step_in(r, slot_width_ + c) = cond(r, c);
  }
  return step_in;
}

Matrix BiLstmDiscriminator::Forward(const Matrix& x, const Matrix& cond,
                                    bool training) {
  DAISY_CHECK(x.cols() == sample_dim_);
  cached_batch_ = x.rows();
  fwd_cell_.ClearCache();
  bwd_cell_.ClearCache();
  nn::LstmState fwd = fwd_cell_.InitialState(cached_batch_);
  nn::LstmState bwd = bwd_cell_.InitialState(cached_batch_);
  for (size_t j = 0; j < segments_.size(); ++j) {
    fwd = fwd_cell_.StepForward(StepInput(x, cond, j), fwd);
    bwd = bwd_cell_.StepForward(
        StepInput(x, cond, segments_.size() - 1 - j), bwd);
  }
  return out_.Forward(Matrix::HCat(fwd.h, bwd.h), training);
}

Matrix BiLstmDiscriminator::Backward(const Matrix& grad_logit) {
  Matrix grad_h = out_.Backward(grad_logit);
  Matrix grad_h_fwd = grad_h.ColRange(0, hidden_size_);
  Matrix grad_h_bwd = grad_h.ColRange(hidden_size_, 2 * hidden_size_);
  Matrix grad_c_fwd(cached_batch_, hidden_size_);
  Matrix grad_c_bwd(cached_batch_, hidden_size_);
  Matrix grad_x(cached_batch_, sample_dim_);

  for (size_t j = segments_.size(); j-- > 0;) {
    auto gf = fwd_cell_.StepBackward(grad_h_fwd, grad_c_fwd);
    auto gb = bwd_cell_.StepBackward(grad_h_bwd, grad_c_bwd);
    // Forward cell's step j reads segment j; backward cell's step j
    // reads segment (T-1-j).
    const auto& sf = segments_[j];
    const auto& sb = segments_[segments_.size() - 1 - j];
    for (size_t r = 0; r < cached_batch_; ++r) {
      for (size_t c = 0; c < sf.width; ++c)
        grad_x(r, sf.offset + c) += gf.dx(r, c);
      for (size_t c = 0; c < sb.width; ++c)
        grad_x(r, sb.offset + c) += gb.dx(r, c);
    }
    grad_h_fwd = std::move(gf.dh_prev);
    grad_c_fwd = std::move(gf.dc_prev);
    grad_h_bwd = std::move(gb.dh_prev);
    grad_c_bwd = std::move(gb.dc_prev);
  }
  return grad_x;
}

std::vector<nn::Parameter*> BiLstmDiscriminator::Params() {
  std::vector<nn::Parameter*> out = fwd_cell_.Params();
  for (auto* p : bwd_cell_.Params()) out.push_back(p);
  for (auto* p : out_.Params()) out.push_back(p);
  return out;
}

}  // namespace daisy::synth

#include "synth/cnn_nets.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace daisy::synth {

CnnGenerator::CnnGenerator(size_t noise_dim, size_t cond_dim, size_t side,
                           Rng* rng)
    : noise_dim_(noise_dim), cond_dim_(cond_dim), side_(side) {
  DAISY_CHECK(side >= 2);
  // [z | c] -> FC -> (16, s0, s0) -> deconv+BN+ReLU -> deconv -> tanh,
  // with stride-1 de-convolutions growing s0 -> s0+1 -> side.
  const size_t s0 = (side + 1) / 2;
  const size_t c0 = 16;
  body_.Emplace<nn::Linear>(noise_dim + cond_dim, c0 * s0 * s0, rng);
  body_.Emplace<nn::BatchNorm1d>(c0 * s0 * s0);
  body_.Emplace<nn::ReLU>();
  nn::ImageShape shape{c0, s0, s0};
  auto* deconv1 = body_.Emplace<nn::ConvTranspose2d>(shape, 8, /*kernel=*/2,
                                                     /*stride=*/1,
                                                     /*padding=*/0, rng);
  shape = deconv1->out_shape();
  body_.Emplace<nn::BatchNorm1d>(shape.Flat());
  body_.Emplace<nn::ReLU>();
  const size_t k2 = side - shape.height + 1;
  body_.Emplace<nn::ConvTranspose2d>(shape, 1, k2, /*stride=*/1,
                                     /*padding=*/0, rng);
  body_.Emplace<nn::Tanh>();
}

Matrix CnnGenerator::Forward(const Matrix& z, const Matrix& cond,
                             bool training) {
  DAISY_CHECK(z.cols() == noise_dim_);
  Matrix input = cond_dim_ > 0 ? Matrix::HCat(z, cond) : z;
  Matrix out = body_.Forward(input, training);
  DAISY_CHECK(out.cols() == side_ * side_);
  return out;
}

Matrix CnnGenerator::InferenceForward(const Matrix& z,
                                      const Matrix& cond) const {
  DAISY_CHECK(z.cols() == noise_dim_);
  Matrix input = cond_dim_ > 0 ? Matrix::HCat(z, cond) : z;
  Matrix out = body_.InferenceForward(input);
  DAISY_CHECK(out.cols() == side_ * side_);
  return out;
}

void CnnGenerator::Backward(const Matrix& grad_sample) {
  body_.Backward(grad_sample);
}

CnnDiscriminator::CnnDiscriminator(size_t side, size_t cond_dim, Rng* rng)
    : side_(side), cond_dim_(cond_dim) {
  DAISY_CHECK(side >= 2);
  nn::ImageShape shape{1, side, side};
  auto* conv1 = conv_body_.Emplace<nn::Conv2d>(shape, 8, /*kernel=*/2,
                                               /*stride=*/1, /*padding=*/0,
                                               rng);
  shape = conv1->out_shape();
  conv_body_.Emplace<nn::LeakyReLU>(0.2);
  if (shape.height >= 2) {
    auto* conv2 = conv_body_.Emplace<nn::Conv2d>(shape, 16, /*kernel=*/2,
                                                 /*stride=*/1, /*padding=*/0,
                                                 rng);
    shape = conv2->out_shape();
    conv_body_.Emplace<nn::LeakyReLU>(0.2);
  }
  conv_out_dim_ = shape.Flat();
  head_.Emplace<nn::Linear>(conv_out_dim_ + cond_dim, 32, rng);
  head_.Emplace<nn::LeakyReLU>(0.2);
  head_.Emplace<nn::Linear>(32, 1, rng);
}

Matrix CnnDiscriminator::Forward(const Matrix& x, const Matrix& cond,
                                 bool training) {
  DAISY_CHECK(x.cols() == side_ * side_);
  Matrix features = conv_body_.Forward(x, training);
  if (cond_dim_ > 0) features = Matrix::HCat(features, cond);
  return head_.Forward(features, training);
}

Matrix CnnDiscriminator::Backward(const Matrix& grad_logit) {
  Matrix grad_features = head_.Backward(grad_logit);
  if (cond_dim_ > 0) grad_features = grad_features.ColRange(0, conv_out_dim_);
  return conv_body_.Backward(grad_features);
}

std::vector<nn::Parameter*> CnnDiscriminator::Params() {
  auto out = conv_body_.Params();
  auto hp = head_.Params();
  out.insert(out.end(), hp.begin(), hp.end());
  return out;
}

}  // namespace daisy::synth

// Differentiable per-attribute divergence warm-up for VTrain (paper
// §5.2, Eq. 2): the generator loss adds sum_j KL(T[j], T'[j]).
//
// For categorical blocks (one-hot segments and the GMM component
// blocks) the batch-mean of the generator's softmax outputs is a
// differentiable estimate of the synthetic marginal, so exact discrete
// KL and its gradient are available. For continuous scalar dimensions
// (simple-normalized values, v_gmm, ordinal positions) a histogram KL
// is not differentiable; we use first/second-moment matching, which
// provides the same "pull the marginals together" warm-up signal.
#ifndef DAISY_SYNTH_KL_REGULARIZER_H_
#define DAISY_SYNTH_KL_REGULARIZER_H_

#include <vector>

#include "core/matrix.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

class KlRegularizer {
 public:
  explicit KlRegularizer(std::vector<transform::AttrSegment> segments)
      : segments_(std::move(segments)) {}

  /// Computes the warm-up loss between a real minibatch and a fake
  /// minibatch (both in transformed-sample space) and ADDS its gradient
  /// (scaled by `weight`) into `grad_fake`.
  double Compute(const Matrix& real, const Matrix& fake, double weight,
                 Matrix* grad_fake) const;

 private:
  std::vector<transform::AttrSegment> segments_;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_KL_REGULARIZER_H_

#include "synth/kl_regularizer.h"

#include <algorithm>
#include <cmath>

namespace daisy::synth {

namespace {

constexpr double kEps = 1e-8;

/// KL(p||q) over one probability block, with dKL/dfake accumulated.
/// p = column means of the real block (true one-hots), q = column
/// means of the fake block (softmax outputs).
double CategoricalBlockKl(const Matrix& real, const Matrix& fake,
                          size_t offset, size_t width, double weight,
                          Matrix* grad_fake) {
  const double m_real = static_cast<double>(real.rows());
  const double m_fake = static_cast<double>(fake.rows());
  std::vector<double> p(width), q(width);
  for (size_t c = 0; c < width; ++c) {
    double ps = 0.0, qs = 0.0;
    for (size_t r = 0; r < real.rows(); ++r) ps += real(r, offset + c);
    for (size_t r = 0; r < fake.rows(); ++r) qs += fake(r, offset + c);
    // Clamp at zero before smoothing: the "real" reference may carry
    // negative block entries (e.g. PATE-GAN's Laplace-noised marginal
    // anchor rows), and a negative pseudo-probability would feed
    // log(p/q) a negative ratio — NaN loss and a sign-flipped gradient.
    p[c] = std::max(ps / m_real, 0.0) + kEps;
    q[c] = std::max(qs / m_fake, 0.0) + kEps;
  }
  double psum = 0.0, qsum = 0.0;
  for (size_t c = 0; c < width; ++c) {
    psum += p[c];
    qsum += q[c];
  }
  double kl = 0.0;
  for (size_t c = 0; c < width; ++c) {
    p[c] /= psum;
    q[c] /= qsum;
    kl += p[c] * std::log(p[c] / q[c]);
    // d kl / d q_c = -p_c / q_c; d q_c / d fake(r, c) = 1 / m_fake.
    const double g = weight * (-p[c] / q[c]) / m_fake;
    for (size_t r = 0; r < fake.rows(); ++r)
      (*grad_fake)(r, offset + c) += g;
  }
  return std::max(kl, 0.0);
}

/// Moment matching for one scalar dimension: (mu_f - mu_r)^2 +
/// (var_f - var_r)^2, with gradient on the fake column.
double ScalarMomentLoss(const Matrix& real, const Matrix& fake, size_t col,
                        double weight, Matrix* grad_fake) {
  const double m_real = static_cast<double>(real.rows());
  const double m_fake = static_cast<double>(fake.rows());
  double mu_r = 0.0, mu_f = 0.0;
  for (size_t r = 0; r < real.rows(); ++r) mu_r += real(r, col);
  for (size_t r = 0; r < fake.rows(); ++r) mu_f += fake(r, col);
  mu_r /= m_real;
  mu_f /= m_fake;
  double var_r = 0.0, var_f = 0.0;
  for (size_t r = 0; r < real.rows(); ++r)
    var_r += (real(r, col) - mu_r) * (real(r, col) - mu_r);
  for (size_t r = 0; r < fake.rows(); ++r)
    var_f += (fake(r, col) - mu_f) * (fake(r, col) - mu_f);
  var_r /= m_real;
  var_f /= m_fake;

  const double dmu = mu_f - mu_r;
  const double dvar = var_f - var_r;
  const double loss = dmu * dmu + dvar * dvar;
  for (size_t r = 0; r < fake.rows(); ++r) {
    // d mu_f / d x_r = 1/m; d var_f / d x_r = 2 (x_r - mu_f) / m.
    const double g = 2.0 * dmu / m_fake +
                     2.0 * dvar * 2.0 * (fake(r, col) - mu_f) / m_fake;
    (*grad_fake)(r, col) += weight * g;
  }
  return loss;
}

}  // namespace

double KlRegularizer::Compute(const Matrix& real, const Matrix& fake,
                              double weight, Matrix* grad_fake) const {
  DAISY_CHECK(real.cols() == fake.cols());
  DAISY_CHECK(grad_fake->SameShape(fake));
  using Kind = transform::AttrSegment::Kind;
  double total = 0.0;
  for (const auto& seg : segments_) {
    switch (seg.kind) {
      case Kind::kOneHotCat:
        total += CategoricalBlockKl(real, fake, seg.offset, seg.width,
                                    weight, grad_fake);
        break;
      case Kind::kGmmNumeric:
        total += ScalarMomentLoss(real, fake, seg.offset, weight, grad_fake);
        total += CategoricalBlockKl(real, fake, seg.offset + 1,
                                    seg.width - 1, weight, grad_fake);
        break;
      case Kind::kSimpleNumeric:
      case Kind::kOrdinalCat:
        total += ScalarMomentLoss(real, fake, seg.offset, weight, grad_fake);
        break;
    }
  }
  return total;
}

}  // namespace daisy::synth

// Configuration surface of the GAN-based synthesis framework — the
// design space of Figure 3 in the paper, expressed as options.
#ifndef DAISY_SYNTH_CONFIG_H_
#define DAISY_SYNTH_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/sentinel.h"
#include "transform/record_transformer.h"

namespace daisy::synth {

/// Generator neural-network family (paper §5.1).
enum class GeneratorArch { kMlp, kLstm, kCnn };

/// Discriminator family. MLP everywhere except the Table 11 ablation;
/// kBiLstm is this repository's future-work extension (paper §3.2
/// mentions Bidirectional LSTM as unexplored).
enum class DiscriminatorArch { kMlp, kLstm, kBiLstm, kCnn };

/// Training algorithm (paper Table 1).
enum class TrainAlgo { kVTrain, kWTrain, kCTrain, kDPTrain };

/// How DPTrain computes its clipped per-sample gradient sum. All
/// engines implement the SAME mechanism (clip each record's gradient to
/// c_g, sum, noise the sum) and differ only in floating-point summation
/// grouping; each is bit-identical across thread counts.
enum class DpEngineKind {
  kAuto,             ///< Vectorized if supported, else replica, else serial.
  kPerSample,        ///< Reference: one backward pass per record.
  kReplicaParallel,  ///< Per-record passes on per-chunk replicas, parallel.
  kVectorized,       ///< Batched norms + scaled GEMMs (Linear-only stacks).
};

/// Minibatch sampler for the non-label-aware algorithms (Figure 2's
/// Sampler box). kUniform draws with replacement from the whole table
/// — the paper's sampler and the default. kChunkedShuffle visits the
/// table as shuffled chunks of shuffle_chunk_rows consecutive records
/// (shuffled within each chunk): one epoch covers every record once,
/// and a minibatch touches O(1) pages of a paged table instead of
/// random-faulting the whole file — the out-of-core mode. The chunked
/// sampler derives its own rng streams from the seed and consumes
/// nothing from the training rng. kTrainingBySampling is CTGAN-style
/// training-by-sampling (arXiv:2010.00638): each draw conditions on a
/// (column, category) pair drawn from the column's log-frequency
/// distribution, so rare categories are trained orders of magnitude
/// more often than uniform sampling would; requires at least one
/// one-hot categorical attribute and is incompatible with
/// `conditional` (the cond vector is the attribute condition, not the
/// label). kCTrain ignores this knob (label-aware sampling needs
/// per-label pools).
enum class SamplerKind { kUniform, kChunkedShuffle, kTrainingBySampling };

/// Hyper-parameters shared by the architectures and trainers. The
/// sampler choice (Figure 2's Sampler box) is implied by the training
/// algorithm: kCTrain uses label-aware sampling, everything else uses
/// `sampler` (uniform by default).
struct GanOptions {
  GeneratorArch generator = GeneratorArch::kMlp;
  DiscriminatorArch discriminator = DiscriminatorArch::kMlp;
  TrainAlgo algo = TrainAlgo::kVTrain;

  /// Feed the label as a condition vector to G and D (conditional GAN,
  /// paper §5.3). Requires a labeled table.
  bool conditional = false;

  /// Use a deliberately weaker discriminator (1 narrow layer) — the
  /// "Simplified" mode-collapse mitigation of §5.2.
  bool simplified_discriminator = false;

  /// Width of an externally supplied per-row condition vector (the
  /// relational layer's encoded parent attributes). When > 0 the
  /// trainer conditions G and D on the source's row_cond() matrix
  /// instead of the label or a TBS attribute condition, and generation
  /// takes one caller-provided condition row per output record.
  /// Mutually exclusive with `conditional`, kCTrain and
  /// kTrainingBySampling.
  size_t parent_cond_dim = 0;

  // Network sizes.
  size_t noise_dim = 32;
  std::vector<size_t> g_hidden = {96, 96};   // MLP generator layers
  std::vector<size_t> d_hidden = {96, 96};   // MLP discriminator layers
  size_t lstm_hidden = 64;                   // LSTM cell width
  size_t lstm_feature = 32;                  // LSTM per-step output f

  // Training.
  size_t iterations = 300;   // generator updates
  size_t batch_size = 64;
  double lr_g = 1e-3;
  double lr_d = 1e-3;
  size_t d_steps = 1;        // discriminator steps per generator step
  SamplerKind sampler = SamplerKind::kUniform;
  size_t shuffle_chunk_rows = 4096;  // kChunkedShuffle chunk size
  double weight_clip = 0.01; // WGAN parameter clipping
  double kl_weight = 1.0;    // VTrain warm-up term weight

  /// RCC-GAN-style critic regularization (arXiv:2205.11693): when > 0,
  /// the discriminator/critic gradient is rescaled before the optimizer
  /// step whenever its global L2 norm exceeds this bound. Tames the
  /// critic's exploding gradients on heavy-tailed numeric columns,
  /// where extreme (but valid) samples otherwise dominate the batch
  /// gradient. 0 disables. Applies to every training algorithm; under
  /// DPTrain the clamp runs after noising (post-processing, so the
  /// privacy accounting is unchanged).
  double critic_reg = 0.0;

  /// Weight of the generator's conditional cross-entropy term under
  /// kTrainingBySampling: penalizes generated rows whose conditioned
  /// attribute's softmax block puts low mass on the requested category.
  /// This is what forces the generator to *use* the cond vector.
  double tbs_ce_weight = 1.0;

  // Differential privacy (DPTrain).
  double dp_noise_scale = 1.0;  // sigma_n
  double dp_grad_bound = 1.0;   // c_g
  DpEngineKind dp_engine = DpEngineKind::kAuto;

  /// Number of evaluation snapshots over the run (paper divides
  /// training into 10 epochs and selects the best on validation).
  size_t snapshots = 10;

  /// Telemetry cadence: when a MetricSink is wired into Train, it
  /// receives one record every log_every iterations (plus the final
  /// iteration, and the failing record on divergence). The divergence
  /// sentinel itself runs every iteration regardless.
  size_t log_every = 1;

  /// Divergence sentinel thresholds (obs/sentinel.h). Set
  /// sentinel.enabled = false to reproduce the old push-NaNs behavior.
  obs::SentinelOptions sentinel;

  /// Crash-safe checkpointing (src/ckpt). With checkpoint_every > 0
  /// and a non-empty checkpoint_dir, the trainer writes an atomic,
  /// checksummed TrainCheckpoint every checkpoint_every iterations and
  /// keeps the newest checkpoint_keep files. With resume set, training
  /// restores the newest valid checkpoint in checkpoint_dir (if any)
  /// and continues bit-for-bit where that run left off: identical
  /// parameters, rng stream and telemetry as an uninterrupted run.
  size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  size_t checkpoint_keep = 3;
  bool resume = false;

  /// Preemption budget: when > 0, the trainer pauses cleanly (no
  /// rollback, no final-snapshot bookkeeping) after this many
  /// iterations in the current process, leaving completion to a later
  /// resumed run. 0 disables. Used by tests and budgeted schedulers to
  /// split one logical run across processes deterministically.
  size_t max_iters_per_run = 0;

  /// Worker threads for the Matrix kernels during training and
  /// generation. 0 keeps the process-wide default (the DAISY_THREADS
  /// environment variable, else hardware_concurrency); any other value
  /// is applied via par::SetNumThreads when Fit starts. Results are
  /// bit-identical for every setting.
  size_t num_threads = 0;

  uint64_t seed = 17;
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_CONFIG_H_

#include "synth/heads.h"

#include "nn/activations.h"

namespace daisy::synth {

std::vector<HeadUnit> BuildHeadUnits(
    const std::vector<transform::AttrSegment>& segments) {
  using Kind = transform::AttrSegment::Kind;
  std::vector<HeadUnit> units;
  for (const auto& seg : segments) {
    switch (seg.kind) {
      case Kind::kSimpleNumeric:
        units.push_back({seg.offset, 1, HeadUnit::Act::kTanh});
        break;
      case Kind::kGmmNumeric:
        units.push_back({seg.offset, 1, HeadUnit::Act::kTanh});
        // A single-component GMM has width 1: just the normalized
        // value, no component-selector columns. Emitting a width-0
        // softmax unit here used to build a head whose SoftmaxRows
        // read x(r, 0) of a rows x 0 matrix.
        if (seg.width > 1) {
          units.push_back({seg.offset + 1, seg.width - 1,
                           HeadUnit::Act::kSoftmax});
        }
        break;
      case Kind::kOneHotCat:
        units.push_back({seg.offset, seg.width, HeadUnit::Act::kSoftmax});
        break;
      case Kind::kOrdinalCat:
        units.push_back({seg.offset, 1, HeadUnit::Act::kSigmoid});
        break;
    }
  }
  return units;
}

std::vector<CondBlock> BuildCondBlocks(
    const std::vector<transform::AttrSegment>& segments) {
  std::vector<CondBlock> blocks;
  size_t cond_offset = 0;
  for (const auto& seg : segments) {
    if (seg.kind != transform::AttrSegment::Kind::kOneHotCat) continue;
    CondBlock b;
    b.attr_index = seg.attr_index;
    b.source_col = seg.source_col;
    b.cond_offset = cond_offset;
    b.sample_offset = seg.offset;
    b.domain = seg.width;
    cond_offset += b.domain;
    blocks.push_back(b);
  }
  return blocks;
}

size_t CondDim(const std::vector<CondBlock>& blocks) {
  size_t dim = 0;
  for (const auto& b : blocks) dim += b.domain;
  return dim;
}

HeadProjection::HeadProjection(size_t in_features, const HeadUnit& unit,
                               Rng* rng)
    : unit_(unit), linear_(in_features, unit.width, rng) {
  // A width-0 unit would project onto an empty slice and feed
  // zero-column matrices into the activation kernels; BuildHeadUnits
  // never emits one, and ad-hoc callers must not either.
  DAISY_CHECK(unit.width > 0);
}

Matrix HeadProjection::Forward(const Matrix& features) {
  Matrix pre = linear_.Forward(features, /*training=*/true);
  switch (unit_.act) {
    case HeadUnit::Act::kTanh:
      cached_out_ = nn::TanhMat(pre);
      break;
    case HeadUnit::Act::kSoftmax:
      cached_out_ = nn::SoftmaxRows(pre);
      break;
    case HeadUnit::Act::kSigmoid:
      cached_out_ = nn::SigmoidMat(pre);
      break;
  }
  return cached_out_;
}

Matrix HeadProjection::InferenceForward(const Matrix& features) const {
  Matrix pre = linear_.InferenceForward(features);
  switch (unit_.act) {
    case HeadUnit::Act::kTanh:
      return nn::TanhMat(pre);
    case HeadUnit::Act::kSoftmax:
      return nn::SoftmaxRows(pre);
    case HeadUnit::Act::kSigmoid:
      return nn::SigmoidMat(pre);
  }
  DAISY_CHECK(false);
  return Matrix();
}

Matrix HeadProjection::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_out_));
  Matrix grad_pre;
  switch (unit_.act) {
    case HeadUnit::Act::kTanh:
      grad_pre = nn::TanhBackwardFromOutput(cached_out_, grad_out);
      break;
    case HeadUnit::Act::kSigmoid:
      grad_pre = nn::SigmoidBackwardFromOutput(cached_out_, grad_out);
      break;
    case HeadUnit::Act::kSoftmax:
      grad_pre = nn::SoftmaxRowsBackward(cached_out_, grad_out);
      break;
  }
  return linear_.Backward(grad_pre);
}

AttributeHeads::AttributeHeads(
    size_t in_features, const std::vector<transform::AttrSegment>& segments,
    Rng* rng) {
  sample_dim_ = 0;
  for (const auto& seg : segments) sample_dim_ += seg.width;
  for (const HeadUnit& unit : BuildHeadUnits(segments))
    projections_.emplace_back(in_features, unit, rng);
}

Matrix AttributeHeads::Forward(const Matrix& features) {
  Matrix sample(features.rows(), sample_dim_);
  for (auto& proj : projections_) {
    const Matrix out = proj.Forward(features);
    const HeadUnit& u = proj.unit();
    for (size_t r = 0; r < out.rows(); ++r)
      for (size_t c = 0; c < u.width; ++c)
        sample(r, u.offset + c) = out(r, c);
  }
  return sample;
}

Matrix AttributeHeads::InferenceForward(const Matrix& features) const {
  Matrix sample(features.rows(), sample_dim_);
  for (const auto& proj : projections_) {
    const Matrix out = proj.InferenceForward(features);
    const HeadUnit& u = proj.unit();
    for (size_t r = 0; r < out.rows(); ++r)
      for (size_t c = 0; c < u.width; ++c)
        sample(r, u.offset + c) = out(r, c);
  }
  return sample;
}

Matrix AttributeHeads::Backward(const Matrix& grad_sample) {
  DAISY_CHECK(grad_sample.cols() == sample_dim_);
  Matrix grad_features;
  for (auto& proj : projections_) {
    const HeadUnit& u = proj.unit();
    Matrix g(grad_sample.rows(), u.width);
    for (size_t r = 0; r < g.rows(); ++r)
      for (size_t c = 0; c < u.width; ++c)
        g(r, c) = grad_sample(r, u.offset + c);
    Matrix gf = proj.Backward(g);
    if (grad_features.empty()) {
      grad_features = std::move(gf);
    } else {
      grad_features += gf;
    }
  }
  return grad_features;
}

std::vector<nn::Parameter*> AttributeHeads::Params() {
  std::vector<nn::Parameter*> out;
  for (auto& proj : projections_) {
    auto ps = proj.Params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

}  // namespace daisy::synth

// Discriminator interface. Outputs raw logits (batch x 1): VTrain-style
// losses apply a sigmoid via BCE-with-logits; Wasserstein training uses
// the score directly (the paper's "remove the sigmoid of D").
#ifndef DAISY_SYNTH_DISCRIMINATOR_H_
#define DAISY_SYNTH_DISCRIMINATOR_H_

#include <vector>

#include "core/matrix.h"
#include "nn/module.h"

namespace daisy::synth {

/// D(t | c): scores how "real" each sample looks.
class Discriminator {
 public:
  virtual ~Discriminator() = default;

  virtual size_t sample_dim() const = 0;
  virtual size_t cond_dim() const = 0;

  virtual Matrix Forward(const Matrix& x, const Matrix& cond,
                         bool training) = 0;

  /// dLoss/dLogit -> dLoss/dSample (the path that trains the
  /// generator); parameter gradients accumulate as a side effect.
  virtual Matrix Backward(const Matrix& grad_logit) = 0;

  virtual std::vector<nn::Parameter*> Params() = 0;

  void ZeroGrad() {
    for (nn::Parameter* p : Params()) p->ZeroGrad();
  }
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_DISCRIMINATOR_H_

// Discriminator interface. Outputs raw logits (batch x 1): VTrain-style
// losses apply a sigmoid via BCE-with-logits; Wasserstein training uses
// the score directly (the paper's "remove the sigmoid of D").
#ifndef DAISY_SYNTH_DISCRIMINATOR_H_
#define DAISY_SYNTH_DISCRIMINATOR_H_

#include <memory>
#include <vector>

#include "core/matrix.h"
#include "nn/module.h"
#include "nn/sequential.h"

namespace daisy::synth {

/// D(t | c): scores how "real" each sample looks.
class Discriminator {
 public:
  virtual ~Discriminator() = default;

  virtual size_t sample_dim() const = 0;
  virtual size_t cond_dim() const = 0;

  virtual Matrix Forward(const Matrix& x, const Matrix& cond,
                         bool training) = 0;

  /// dLoss/dLogit -> dLoss/dSample (the path that trains the
  /// generator); parameter gradients accumulate as a side effect.
  virtual Matrix Backward(const Matrix& grad_logit) = 0;

  virtual std::vector<nn::Parameter*> Params() = 0;

  /// Persistent non-parameter state (batch-norm running statistics),
  /// mirroring Generator::Buffers; checkpoints capture these so a
  /// resumed discriminator scores exactly like the original.
  virtual std::vector<Matrix*> Buffers() { return {}; }

  /// Deep replica with identical parameter values, zeroed gradients and
  /// empty caches, or nullptr when the architecture does not support
  /// replication. The DP-SGD replica engine runs concurrent per-sample
  /// backward passes on replicas; callers must fall back to a serial
  /// path on nullptr.
  virtual std::unique_ptr<Discriminator> Clone() const { return nullptr; }

  /// The plain Sequential stack computing logit = body([x | cond]) when
  /// the whole discriminator is such a stack, else nullptr. When the
  /// stack also passes nn::SupportsPerSampleTape, the vectorized DP
  /// engine can form per-sample gradients from one batched pass.
  virtual nn::Sequential* FastPathBody() { return nullptr; }

  void ZeroGrad() {
    for (nn::Parameter* p : Params()) p->ZeroGrad();
  }
};

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_DISCRIMINATOR_H_

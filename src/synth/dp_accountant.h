// Back-of-envelope (eps, delta) accounting for DPTrain. DPGAN's
// moments accountant is approximated with the standard composition
// bound eps ~= c * q * sqrt(T * ln(1/delta)) / sigma (Abadi et al.),
// which is monotone in sigma and therefore invertible — enough to
// sweep "privacy level" the way the paper's Figure 8 does. Not a
// certified accountant; documented as an approximation in DESIGN.md.
//
// Accounting assumption (matches nn::ClipAndNoiseGrads): the
// discriminator gradients this bound covers are BATCH-AVERAGED, and
// the injected per-coordinate noise is N(0, (sigma_n c_g / B)^2) —
// i.e. the canonical DP-SGD mechanism "sum clipped per-sample grads,
// add N(0, sigma_n^2 c_g^2 I), divide by B" with the division applied
// to the noise as well. The global-norm clip is applied to the
// averaged batch gradient rather than per sample, which clips no less
// aggressively than per-sample clipping (the average of vectors each
// of norm <= c has norm <= c), so sensitivity c_g is still an upper
// bound and epsilon here stays a (loose) upper estimate.
#ifndef DAISY_SYNTH_DP_ACCOUNTANT_H_
#define DAISY_SYNTH_DP_ACCOUNTANT_H_

#include <cstddef>

namespace daisy::synth {

/// Approximate epsilon spent by `iterations` noisy discriminator
/// updates with sampling rate batch/dataset and noise multiplier
/// `noise_scale`.
double ApproxEpsilon(double noise_scale, size_t iterations, size_t batch,
                     size_t dataset_size, double delta = 1e-5);

/// Inverse of ApproxEpsilon: the noise multiplier needed to stay within
/// `epsilon` over the given training run.
double NoiseForEpsilon(double epsilon, size_t iterations, size_t batch,
                       size_t dataset_size, double delta = 1e-5);

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_DP_ACCOUNTANT_H_

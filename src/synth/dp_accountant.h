// Back-of-envelope (eps, delta) accounting for DPTrain. DPGAN's
// moments accountant is approximated with the standard composition
// bound eps ~= c * q * sqrt(T * ln(1/delta)) / sigma (Abadi et al.),
// which is monotone in sigma and therefore invertible — enough to
// sweep "privacy level" the way the paper's Figure 8 does. Not a
// certified accountant; documented as an approximation in DESIGN.md.
//
// Accounting assumption (matches nn::DpSgdAggregator as used by
// GanTrainer::DpDiscriminatorStep): each record's gradient is clipped
// to c_g BEFORE summation, the SUM receives N(0, (sigma_n c_g)^2 I),
// and sum and noise are divided by B together — the canonical DP-SGD
// mechanism of Abadi et al. Per-sample clipping is what makes the
// per-record L2 sensitivity of the noised sum exactly c_g. (Clipping
// only the batch-averaged gradient bounds the output's norm, not any
// single record's influence on it — sensitivity would stay
// Theta(c_g) while the noise shrank with B, under-noising by ~B.)
//
// The DpSgdEngine execution strategies (per-sample reference,
// replica-parallel, vectorized; synth/dp_engine.h) do not change this
// accounting: all three clip EVERY record's gradient to c_g before it
// enters the sum and noise the sum once, so the per-record sensitivity
// is exactly c_g regardless of which engine — or how many threads —
// produced the sum. They differ only in floating-point summation
// grouping.
#ifndef DAISY_SYNTH_DP_ACCOUNTANT_H_
#define DAISY_SYNTH_DP_ACCOUNTANT_H_

#include <cstddef>

namespace daisy::synth {

/// Approximate epsilon spent by `iterations` noisy discriminator
/// updates with sampling rate batch/dataset and noise multiplier
/// `noise_scale`.
double ApproxEpsilon(double noise_scale, size_t iterations, size_t batch,
                     size_t dataset_size, double delta = 1e-5);

/// Inverse of ApproxEpsilon: the noise multiplier needed to stay within
/// `epsilon` over the given training run.
double NoiseForEpsilon(double epsilon, size_t iterations, size_t batch,
                       size_t dataset_size, double delta = 1e-5);

}  // namespace daisy::synth

#endif  // DAISY_SYNTH_DP_ACCOUNTANT_H_

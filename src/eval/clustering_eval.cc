#include "eval/clustering_eval.h"

#include <cmath>

#include "stats/kmeans.h"
#include "stats/metrics.h"

namespace daisy::eval {

namespace {

Matrix NormalizedFeatures(const data::Table& table) {
  Matrix x = table.FeatureMatrix();
  for (size_t j = 0; j < x.cols(); ++j) {
    double lo = x(0, j), hi = x(0, j);
    for (size_t i = 1; i < x.rows(); ++i) {
      lo = std::min(lo, x(i, j));
      hi = std::max(hi, x(i, j));
    }
    const double range = hi - lo;
    for (size_t i = 0; i < x.rows(); ++i)
      x(i, j) = range > 1e-12 ? (x(i, j) - lo) / range : 0.0;
  }
  return x;
}

}  // namespace

double ClusteringNmi(const data::Table& table, Rng* rng) {
  DAISY_CHECK(table.schema().has_label());
  DAISY_CHECK(table.num_records() > 1);
  Matrix x = NormalizedFeatures(table);
  stats::KMeansOptions opts;
  opts.k = table.schema().num_labels();
  const auto result = stats::KMeans(x, opts, rng);
  return stats::NormalizedMutualInformation(result.labels, table.Labels());
}

double ClusteringDiff(const data::Table& real, const data::Table& synthetic,
                      Rng* rng) {
  const double nmi_real = ClusteringNmi(real, rng);
  const double nmi_synth = ClusteringNmi(synthetic, rng);
  return std::fabs(nmi_real - nmi_synth);
}

}  // namespace daisy::eval

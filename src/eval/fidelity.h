// Statistical-fidelity metrics beyond task utility: how well the
// synthetic table preserves marginals, pairwise attribute associations
// and (approximate) functional dependencies of the original table.
// These implement the analysis behind the paper's appendix Figures
// 13/14 and its future-work direction on capturing attribute
// correlations explicitly (FakeTables [16], §8 direction 2).
//
// EvaluateFidelity and DiscoverFds fan their pairwise loops out over
// core/parallel into per-pair slots reduced in a fixed order, so both
// are bitwise identical for any DAISY_THREADS value.
#ifndef DAISY_EVAL_FIDELITY_H_
#define DAISY_EVAL_FIDELITY_H_

#include <vector>

#include "data/table.h"

namespace daisy::eval {

/// Aggregate fidelity of a synthetic table against the original.
struct FidelityReport {
  /// Mean |Pearson(real) - Pearson(synth)| over numeric attribute
  /// pairs (0 when fewer than two numeric attributes).
  double numeric_correlation_diff = 0.0;
  /// Mean |CramersV(real) - CramersV(synth)| over categorical pairs.
  double categorical_association_diff = 0.0;
  /// Mean per-attribute marginal KL(real || synth): histogram KL for
  /// numeric attributes (bins over the real range, plus explicit
  /// under/overflow bins so synthetic mass outside the real support is
  /// penalized rather than clamped), count KL for categorical ones.
  double marginal_kl = 0.0;

  /// Wall-clock attribution per section (obs::ScopedTimerMs), so the
  /// evaluation suite can report each metric's own cost.
  double numeric_ms = 0.0;
  double categorical_ms = 0.0;
  double marginal_kl_ms = 0.0;
};

struct FidelityOptions {
  size_t histogram_bins = 10;
};

/// Computes the report; both tables must share the schema.
FidelityReport EvaluateFidelity(const data::Table& real,
                                const data::Table& synthetic,
                                const FidelityOptions& options = {});

/// Cramér's V association between two categorical attributes in [0, 1].
double CramersV(const data::Table& table, size_t attr_a, size_t attr_b);

/// Rare-mode coverage of a synthetic table: across every categorical
/// attribute, a real category is a "rare mode" when its real frequency
/// is nonzero but at most `rare_threshold`; it is "recovered" when the
/// synthetic table emits it at least once. Mode-collapsed generators
/// score near 0 here while looking fine on aggregate KL — this is the
/// headline metric of the heavy-tail robustness sweep.
struct RareModeReport {
  size_t rare_modes = 0;       ///< rare real categories, summed over attrs
  size_t recovered_modes = 0;  ///< of those, present in the synthetic table
  double recall = 1.0;         ///< recovered/rare; 1 when nothing is rare
};

/// Computes rare-mode recall; both tables must share the schema.
RareModeReport RareModeRecall(const data::Table& real,
                              const data::Table& synthetic,
                              double rare_threshold = 0.01);

/// Mean smoothed KL(real || synth) over the categorical marginals,
/// add-lambda smoothed (both sides) so a synthetic table that drops a
/// category entirely is penalized by a large finite term instead of
/// infinity. Unlike FidelityReport::marginal_kl this covers only
/// categorical attributes and never saturates, which is what makes it
/// sensitive to tail categories. 0 when the schema has no categorical
/// attribute.
double PerCategoryKl(const data::Table& real, const data::Table& synthetic,
                     double smoothing = 0.5);

/// An (approximate) functional dependency lhs -> rhs between two
/// categorical attributes, with the value mapping observed in the
/// table it was discovered on.
struct FunctionalDependency {
  size_t lhs = 0;
  size_t rhs = 0;
  double confidence = 0.0;          // fraction of records obeying it
  std::vector<size_t> mapping;      // lhs category -> dominant rhs category
  /// rhs domain size of the *discovery* table; mapping entries equal to
  /// it mark "lhs value unseen at discovery time". Kept explicitly so
  /// violation checks don't have to guess the sentinel from whatever
  /// schema the synthetic table carries.
  size_t rhs_domain = 0;
};

/// Finds single-attribute categorical FDs lhs -> rhs whose confidence
/// (fraction of records where rhs equals the lhs value's dominant rhs)
/// is at least `min_confidence`. Trivial dependencies through constant
/// columns are kept — they are real FDs.
std::vector<FunctionalDependency> DiscoverFds(const data::Table& table,
                                              double min_confidence = 0.95);

/// Fraction of synthetic records violating the given dependencies
/// (macro-averaged over FDs; lhs values unseen at discovery don't
/// count as violations). 0 = all discovered FDs preserved.
double FdViolationRate(const data::Table& synthetic,
                       const std::vector<FunctionalDependency>& fds);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_FIDELITY_H_

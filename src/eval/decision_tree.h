// CART decision tree (Gini impurity, axis-aligned threshold splits).
// Also the base learner for the random forest and, at depth 1, the
// AdaBoost stumps.
#ifndef DAISY_EVAL_DECISION_TREE_H_
#define DAISY_EVAL_DECISION_TREE_H_

#include <vector>

#include "eval/classifier.h"

namespace daisy::eval {

struct DecisionTreeOptions {
  size_t max_depth = 10;
  size_t min_samples_split = 2;
  /// Features considered per split; 0 = all (random forests pass
  /// ~sqrt(m) for decorrelated trees).
  size_t max_features = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions opts = {}) : opts_(opts) {}

  void Fit(const Matrix& x, const std::vector<size_t>& y, size_t num_classes,
           Rng* rng) override;
  /// Weighted fit (AdaBoost). Weights need not be normalized.
  void FitWeighted(const Matrix& x, const std::vector<size_t>& y,
                   const std::vector<double>& weights, size_t num_classes,
                   Rng* rng);

  size_t Predict(const double* x) const override;
  std::vector<double> PredictProba(const double* x) const override;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int left = -1;    // -1 marks a leaf
    int right = -1;
    size_t feature = 0;
    double threshold = 0.0;
    std::vector<double> class_probs;  // leaf distribution
  };

  int Build(const Matrix& x, const std::vector<size_t>& y,
            const std::vector<double>& w, std::vector<size_t>& indices,
            size_t begin, size_t end, size_t depth, size_t num_classes,
            Rng* rng);

  DecisionTreeOptions opts_;
  size_t num_classes_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace daisy::eval

#endif  // DAISY_EVAL_DECISION_TREE_H_

// One-call evaluation harness for the full paper report: classification
// utility (F1 / AUC diff per classifier), clustering utility (NMI
// diff), statistical fidelity (marginal KL, pairwise associations, FD
// violations), privacy risk (hitting rate, DCR) and AQP relative-error
// difference — each metric timed with obs::WallTimer and optionally
// streamed as one JSONL record through any obs::MetricSink (RunLogger),
// so evaluation cost lands in the same telemetry stream as training.
//
// Every metric the suite runs is deterministic for a fixed seed and
// bitwise identical for any DAISY_THREADS value (the underlying
// implementations draw their random probes serially and parallelize
// with fixed-order reductions).
#ifndef DAISY_EVAL_SUITE_H_
#define DAISY_EVAL_SUITE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/table.h"
#include "eval/aqp.h"
#include "eval/fidelity.h"
#include "obs/metrics.h"

namespace daisy::eval {

/// One evaluated metric: a dotted name ("privacy.hitting_rate",
/// "utility.f1_diff.RF10", ...), its value, and the wall-clock it cost.
struct SuiteMetric {
  std::string name;
  double value = 0.0;
  double wall_ms = 0.0;
};

struct SuiteOptions {
  SuiteOptions() { aqp_workload.num_queries = 100; }

  /// Fraction of the real table used to train the reference
  /// classifiers; the rest is the held-out test split.
  double train_ratio = 2.0 / 3.0;

  /// Section toggles. Utility / clustering silently skip when the
  /// schema has no label.
  bool utility = true;
  bool clustering = true;
  bool fidelity = true;
  bool privacy = true;
  bool aqp = true;

  /// Also report AUC diffs (binary label problems only; doubles the
  /// classifier training cost of the utility section).
  bool utility_auc = false;

  /// Records sampled by the privacy metrics.
  size_t privacy_samples = 500;

  FidelityOptions fidelity_opts;
  /// Real-frequency ceiling below which a (nonzero) category counts as
  /// a rare mode for fidelity.rare_mode_recall.
  double rare_mode_threshold = 0.01;
  double fd_min_confidence = 0.95;
  AqpWorkloadOptions aqp_workload;
  AqpDiffOptions aqp_diff;

  uint64_t seed = 61;
};

struct SuiteReport {
  std::vector<SuiteMetric> metrics;
  double total_ms = 0.0;

  /// First metric with the given name, or nullptr.
  const SuiteMetric* Find(const std::string& name) const;
};

class EvaluationSuite {
 public:
  explicit EvaluationSuite(SuiteOptions opts = {}) : opts_(std::move(opts)) {}

  /// Runs every enabled section against the table pair. Both tables
  /// must share the schema width. `sink` may be null; when given, one
  /// MetricRecord per metric is emitted (run = "eval.<name>", value =
  /// metric value, iter_ms = metric wall ms, wall_ms = elapsed since
  /// the suite started, iter = 1-based metric index) and the sink is
  /// flushed at the end.
  Result<SuiteReport> Run(const data::Table& real,
                          const data::Table& synthetic,
                          obs::MetricSink* sink = nullptr) const;

  const SuiteOptions& options() const { return opts_; }

 private:
  SuiteOptions opts_;
};

}  // namespace daisy::eval

#endif  // DAISY_EVAL_SUITE_H_

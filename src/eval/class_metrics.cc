#include "eval/class_metrics.h"

#include <algorithm>
#include <limits>

#include "core/status.h"

namespace daisy::eval {

double F1ForLabel(const std::vector<size_t>& predicted,
                  const std::vector<size_t>& truth, size_t label) {
  DAISY_CHECK(predicted.size() == truth.size());
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const bool p = predicted[i] == label;
    const bool t = truth[i] == label;
    if (p && t) ++tp;
    else if (p) ++fp;
    else if (t) ++fn;
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

size_t EvaluationLabel(const std::vector<size_t>& truth, size_t num_classes) {
  DAISY_CHECK(num_classes >= 2);
  std::vector<size_t> counts(num_classes, 0);
  for (size_t t : truth) {
    DAISY_CHECK(t < num_classes);
    ++counts[t];
  }
  // Rarest label with enough support for a stable F1 (≥10 instances,
  // matching the intent of the paper's "rare label" while avoiding a
  // 0-or-1 score from a label with a couple of test records). Falls
  // back to the rarest label present.
  constexpr size_t kMinSupport = 10;
  size_t best = 0;
  size_t best_count = std::numeric_limits<size_t>::max();
  bool found_supported = false;
  for (size_t c = 0; c < num_classes; ++c) {
    if (counts[c] == 0) continue;
    const bool supported = counts[c] >= kMinSupport;
    if (supported && !found_supported) {
      // First supported label beats any unsupported incumbent.
      found_supported = true;
      best = c;
      best_count = counts[c];
      continue;
    }
    if (supported == found_supported && counts[c] < best_count) {
      best = c;
      best_count = counts[c];
    }
  }
  return best;
}

double PaperF1(const std::vector<size_t>& predicted,
               const std::vector<size_t>& truth, size_t num_classes) {
  return F1ForLabel(predicted, truth, EvaluationLabel(truth, num_classes));
}

double AucBinary(const std::vector<double>& positive_scores,
                 const std::vector<size_t>& truth, size_t positive_label) {
  DAISY_CHECK(positive_scores.size() == truth.size());
  // Sort by score; AUC = normalized sum of positive ranks.
  std::vector<size_t> order(truth.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return positive_scores[a] < positive_scores[b];
  });

  double rank_sum = 0.0;
  size_t n_pos = 0, n_neg = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() &&
           positive_scores[order[j]] == positive_scores[order[i]])
      ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j - 1) + 1.0;
    for (size_t t = i; t < j; ++t) {
      if (truth[order[t]] == positive_label) {
        rank_sum += avg_rank;
        ++n_pos;
      } else {
        ++n_neg;
      }
    }
    i = j;
  }
  if (n_pos == 0 || n_neg == 0) return 0.5;
  return (rank_sum - 0.5 * n_pos * (n_pos + 1)) /
         (static_cast<double>(n_pos) * n_neg);
}

double Accuracy(const std::vector<size_t>& predicted,
                const std::vector<size_t>& truth) {
  DAISY_CHECK(predicted.size() == truth.size() && !truth.empty());
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i)
    if (predicted[i] == truth[i]) ++correct;
  return static_cast<double>(correct) / truth.size();
}

}  // namespace daisy::eval

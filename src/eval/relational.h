// Relational evaluation metrics: do the synthetic tables keep the
// CROSS-table structure the single-table suite cannot see? Three
// checks per FK edge:
//   - FK validity rate: fraction of child rows whose FK matches some
//     parent PK (the generator constructs this to be 1.0; the metric
//     verifies instead of assumes).
//   - Join-size KL: KL divergence between the real and synthetic
//     children-per-parent count distributions (zero-child parents
//     included), the signature of the fan-out model.
//   - Cross-table correlation diff: mean absolute difference of
//     Pearson correlations between parent and child numeric non-key
//     columns over the FK join — the signal parent-conditioned
//     generation exists to preserve.
// All metrics are deterministic (no sampling) and thread-invariant.
#ifndef DAISY_EVAL_RELATIONAL_H_
#define DAISY_EVAL_RELATIONAL_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/relational_schema.h"
#include "data/table.h"
#include "eval/suite.h"
#include "obs/metrics.h"

namespace daisy::eval {

/// Fraction of child records whose `child_fk` value equals some
/// parent's `parent_pk` value. 1.0 for an empty child table (no row
/// violates).
Result<double> FkValidityRate(const data::Table& parent, size_t parent_pk,
                              const data::Table& child, size_t child_fk);

/// KL(real || synthetic) over the children-per-parent count histograms
/// of an FK edge. Parents with zero children count; both histograms
/// are Laplace-smoothed over the union support so the divergence is
/// finite.
Result<double> JoinSizeKl(const data::Table& real_parent, size_t real_pk,
                          const data::Table& real_child, size_t real_fk,
                          const data::Table& synth_parent, size_t synth_pk,
                          const data::Table& synth_child, size_t synth_fk);

/// Mean |corr_real - corr_synth| of Pearson correlations between every
/// (parent numeric non-key, child numeric non-key) column pair, each
/// computed over the FK inner join. Zero-variance columns contribute a
/// correlation of 0. Returns 0 when there are no pairs or no joined
/// rows.
Result<double> CrossTableCorrDiff(
    const data::RelationalSchema& schema, size_t child_index,
    const data::Table& real_parent, const data::Table& real_child,
    const data::Table& synth_parent, const data::Table& synth_child);

/// Runs all three metrics for every FK edge of the schema. `real` and
/// `synth` are parallel to schema.tables(). Emits one SuiteMetric per
/// (metric, child table): "relational.fk_validity.<child>",
/// "relational.join_size_kl.<child>", "relational.xcorr_diff.<child>";
/// mirrored into `sink` (when non-null) with run = "eval.<name>".
Result<SuiteReport> RunRelationalSuite(
    const data::RelationalSchema& schema,
    const std::vector<data::Table>& real,
    const std::vector<data::Table>& synth,
    obs::MetricSink* sink = nullptr);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_RELATIONAL_H_

#include "eval/privacy.h"

#include <cmath>
#include <limits>

#include "core/parallel.h"

namespace daisy::eval {

namespace {

struct AttrNorm {
  bool categorical = false;
  double lo = 0.0;
  double inv_range = 1.0;
};

std::vector<AttrNorm> FitNorms(const data::Table& table) {
  std::vector<AttrNorm> norms(table.num_attributes());
  for (size_t j = 0; j < norms.size(); ++j) {
    norms[j].categorical = table.schema().attribute(j).is_categorical();
    if (!norms[j].categorical) {
      const double lo = table.AttributeMin(j);
      const double hi = table.AttributeMax(j);
      norms[j].lo = lo;
      norms[j].inv_range = hi > lo ? 1.0 / (hi - lo) : 1.0;
    }
  }
  return norms;
}

Status ValidateTables(const data::Table& original,
                      const data::Table& synthetic) {
  if (original.num_records() == 0 || synthetic.num_records() == 0)
    return Status::InvalidArgument(
        "privacy metrics require non-empty original and synthetic tables");
  if (original.num_attributes() != synthetic.num_attributes())
    return Status::InvalidArgument(
        "privacy metrics require tables of the same width");
  return Status::OK();
}

// Per-probe-row scans are heavy (O(n x m) each); a small grain keeps
// the partial buffers short while still amortizing dispatch.
constexpr size_t kSampleGrain = 8;

}  // namespace

Result<double> HittingRate(const data::Table& original,
                           const data::Table& synthetic,
                           const HittingRateOptions& opts, Rng* rng) {
  if (opts.num_synthetic_samples == 0)
    return Status::InvalidArgument(
        "HittingRateOptions::num_synthetic_samples must be > 0");
  if (!(opts.range_divisor > 0.0))
    return Status::InvalidArgument(
        "HittingRateOptions::range_divisor must be > 0");
  DAISY_RETURN_IF_ERROR(ValidateTables(original, synthetic));
  const size_t m = original.num_attributes();

  // Per-attribute numeric thresholds from the original table.
  std::vector<double> thresholds(m, 0.0);
  std::vector<bool> categorical(m, false);
  for (size_t j = 0; j < m; ++j) {
    categorical[j] = original.schema().attribute(j).is_categorical();
    if (!categorical[j]) {
      thresholds[j] = (original.AttributeMax(j) - original.AttributeMin(j)) /
                      opts.range_divisor;
    }
  }

  const size_t samples =
      std::min(opts.num_synthetic_samples, synthetic.num_records());
  // Draw every probe row serially first: the rng stream is consumed in
  // sample order regardless of the thread count, and the scans below
  // only read shared state.
  std::vector<size_t> probe_rows(samples);
  for (auto& r : probe_rows) r = rng->UniformInt(synthetic.num_records());

  std::vector<size_t> chunk_hits(par::NumChunks(0, samples, kSampleGrain), 0);
  par::ParallelForIndexed(
      0, samples, kSampleGrain, [&](size_t chunk, size_t b, size_t e) {
        size_t h = 0;
        for (size_t s = b; s < e; ++s) {
          const size_t row = probe_rows[s];
          bool hit = false;
          for (size_t i = 0; i < original.num_records() && !hit; ++i) {
            bool similar = true;
            for (size_t j = 0; j < m && similar; ++j) {
              const double sv = synthetic.value(row, j);
              const double ov = original.value(i, j);
              if (categorical[j]) {
                similar = std::llround(sv) == std::llround(ov);
              } else {
                similar = std::fabs(sv - ov) <= thresholds[j];
              }
            }
            hit = similar;
          }
          if (hit) ++h;
        }
        chunk_hits[chunk] = h;
      });
  size_t hits = 0;
  for (size_t h : chunk_hits) hits += h;
  return static_cast<double>(hits) / static_cast<double>(samples);
}

Result<double> DistanceToClosestRecord(const data::Table& original,
                                       const data::Table& synthetic,
                                       const DcrOptions& opts, Rng* rng) {
  if (opts.num_original_samples == 0)
    return Status::InvalidArgument(
        "DcrOptions::num_original_samples must be > 0");
  DAISY_RETURN_IF_ERROR(ValidateTables(original, synthetic));
  const size_t m = original.num_attributes();
  const auto norms = FitNorms(original);

  const size_t samples =
      std::min(opts.num_original_samples, original.num_records());
  std::vector<size_t> probe_rows(samples);
  for (auto& r : probe_rows) r = rng->UniformInt(original.num_records());

  // Per-chunk partial sums, reduced in ascending chunk order below:
  // the partition is a pure function of (samples, grain), so the
  // floating-point accumulation order never depends on DAISY_THREADS.
  std::vector<double> chunk_totals(par::NumChunks(0, samples, kSampleGrain),
                                   0.0);
  par::ParallelForIndexed(
      0, samples, kSampleGrain, [&](size_t chunk, size_t b, size_t e) {
        double total = 0.0;
        for (size_t s = b; s < e; ++s) {
          const size_t row = probe_rows[s];
          double best = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < synthetic.num_records(); ++i) {
            double d2 = 0.0;
            for (size_t j = 0; j < m && d2 < best; ++j) {
              double diff;
              if (norms[j].categorical) {
                diff = std::llround(original.value(row, j)) ==
                               std::llround(synthetic.value(i, j))
                           ? 0.0
                           : 1.0;
              } else {
                diff = (original.value(row, j) - synthetic.value(i, j)) *
                       norms[j].inv_range;
              }
              d2 += diff * diff;
            }
            best = std::min(best, d2);
          }
          total += std::sqrt(best);
        }
        chunk_totals[chunk] = total;
      });
  double total = 0.0;
  for (double t : chunk_totals) total += t;
  return total / static_cast<double>(samples);
}

}  // namespace daisy::eval

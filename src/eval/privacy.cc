#include "eval/privacy.h"

#include <cmath>
#include <limits>

namespace daisy::eval {

namespace {

struct AttrNorm {
  bool categorical = false;
  double lo = 0.0;
  double inv_range = 1.0;
};

std::vector<AttrNorm> FitNorms(const data::Table& table) {
  std::vector<AttrNorm> norms(table.num_attributes());
  for (size_t j = 0; j < norms.size(); ++j) {
    norms[j].categorical = table.schema().attribute(j).is_categorical();
    if (!norms[j].categorical) {
      const double lo = table.AttributeMin(j);
      const double hi = table.AttributeMax(j);
      norms[j].lo = lo;
      norms[j].inv_range = hi > lo ? 1.0 / (hi - lo) : 1.0;
    }
  }
  return norms;
}

}  // namespace

double HittingRate(const data::Table& original, const data::Table& synthetic,
                   const HittingRateOptions& opts, Rng* rng) {
  DAISY_CHECK(original.num_records() > 0 && synthetic.num_records() > 0);
  DAISY_CHECK(original.num_attributes() == synthetic.num_attributes());
  const size_t m = original.num_attributes();

  // Per-attribute numeric thresholds from the original table.
  std::vector<double> thresholds(m, 0.0);
  std::vector<bool> categorical(m, false);
  for (size_t j = 0; j < m; ++j) {
    categorical[j] = original.schema().attribute(j).is_categorical();
    if (!categorical[j]) {
      thresholds[j] = (original.AttributeMax(j) - original.AttributeMin(j)) /
                      opts.range_divisor;
    }
  }

  const size_t samples =
      std::min(opts.num_synthetic_samples, synthetic.num_records());
  size_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    const size_t row = rng->UniformInt(synthetic.num_records());
    bool hit = false;
    for (size_t i = 0; i < original.num_records() && !hit; ++i) {
      bool similar = true;
      for (size_t j = 0; j < m && similar; ++j) {
        const double sv = synthetic.value(row, j);
        const double ov = original.value(i, j);
        if (categorical[j]) {
          similar = std::llround(sv) == std::llround(ov);
        } else {
          similar = std::fabs(sv - ov) <= thresholds[j];
        }
      }
      hit = similar;
    }
    if (hit) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double DistanceToClosestRecord(const data::Table& original,
                               const data::Table& synthetic,
                               const DcrOptions& opts, Rng* rng) {
  DAISY_CHECK(original.num_records() > 0 && synthetic.num_records() > 0);
  DAISY_CHECK(original.num_attributes() == synthetic.num_attributes());
  const size_t m = original.num_attributes();
  const auto norms = FitNorms(original);

  const size_t samples =
      std::min(opts.num_original_samples, original.num_records());
  double total = 0.0;
  for (size_t s = 0; s < samples; ++s) {
    const size_t row = rng->UniformInt(original.num_records());
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < synthetic.num_records(); ++i) {
      double d2 = 0.0;
      for (size_t j = 0; j < m && d2 < best; ++j) {
        double diff;
        if (norms[j].categorical) {
          diff = std::llround(original.value(row, j)) ==
                         std::llround(synthetic.value(i, j))
                     ? 0.0
                     : 1.0;
        } else {
          diff = (original.value(row, j) - synthetic.value(i, j)) *
                 norms[j].inv_range;
        }
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(samples);
}

}  // namespace daisy::eval

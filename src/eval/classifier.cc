#include "eval/classifier.h"

#include "eval/adaboost.h"
#include "eval/decision_tree.h"
#include "eval/logistic_regression.h"
#include "eval/random_forest.h"

namespace daisy::eval {

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kDt10:
      return "DT10";
    case ClassifierKind::kDt30:
      return "DT30";
    case ClassifierKind::kRf10:
      return "RF10";
    case ClassifierKind::kRf20:
      return "RF20";
    case ClassifierKind::kAdaBoost:
      return "AB";
    case ClassifierKind::kLogReg:
      return "LR";
  }
  return "?";
}

std::vector<ClassifierKind> AllClassifierKinds() {
  return {ClassifierKind::kDt10, ClassifierKind::kDt30,
          ClassifierKind::kRf10, ClassifierKind::kRf20,
          ClassifierKind::kAdaBoost, ClassifierKind::kLogReg};
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kDt10: {
      DecisionTreeOptions o;
      o.max_depth = 10;
      return std::make_unique<DecisionTree>(o);
    }
    case ClassifierKind::kDt30: {
      DecisionTreeOptions o;
      o.max_depth = 30;
      return std::make_unique<DecisionTree>(o);
    }
    case ClassifierKind::kRf10: {
      RandomForestOptions o;
      o.max_depth = 10;
      return std::make_unique<RandomForest>(o);
    }
    case ClassifierKind::kRf20: {
      RandomForestOptions o;
      o.max_depth = 20;
      return std::make_unique<RandomForest>(o);
    }
    case ClassifierKind::kAdaBoost:
      return std::make_unique<AdaBoost>();
    case ClassifierKind::kLogReg:
      return std::make_unique<LogisticRegression>();
  }
  return nullptr;
}

}  // namespace daisy::eval

#include "eval/aqp.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"

namespace daisy::eval {

namespace {

bool Matches(const data::Table& table, size_t row, const AqpQuery& query) {
  for (const auto& pred : query.predicates) {
    const double v = table.value(row, pred.attr);
    if (pred.is_categorical) {
      // Compare as signed: casting a negative cell to size_t would wrap
      // it to a huge index that can spuriously equal pred.category.
      const long long c = std::llround(v);
      if (c < 0 || static_cast<unsigned long long>(c) != pred.category)
        return false;
    } else {
      if (v < pred.lo || v > pred.hi) return false;
    }
  }
  return true;
}

}  // namespace

AqpResult ExecuteAqpQuery(const data::Table& table, const AqpQuery& query,
                          double scale) {
  struct Acc {
    double count = 0.0;
    double sum = 0.0;
  };
  std::map<size_t, Acc> groups;
  for (size_t i = 0; i < table.num_records(); ++i) {
    if (!Matches(table, i, query)) continue;
    const size_t g = query.group_by_attr >= 0
                         ? table.category(i, query.group_by_attr)
                         : 0;
    Acc& acc = groups[g];
    acc.count += 1.0;
    if (query.target_attr >= 0) acc.sum += table.value(i, query.target_attr);
  }

  AqpResult result;
  for (const auto& [g, acc] : groups) {
    switch (query.func) {
      case AggFunc::kCount:
        result[g] = acc.count * scale;
        break;
      case AggFunc::kSum:
        result[g] = acc.sum * scale;
        break;
      case AggFunc::kAvg:
        result[g] = acc.count > 0.0 ? acc.sum / acc.count : 0.0;
        break;
    }
  }
  return result;
}

double RelativeError(const AqpResult& exact, const AqpResult& approx) {
  if (exact.empty()) return approx.empty() ? 0.0 : 1.0;
  double total = 0.0;
  for (const auto& [g, v] : exact) {
    const auto it = approx.find(g);
    if (it == approx.end()) {
      total += 1.0;
      continue;
    }
    const double denom = std::max(std::fabs(v), 1e-9);
    total += std::min(std::fabs(v - it->second) / denom, 1.0);
  }
  return total / static_cast<double>(exact.size());
}

Result<std::vector<AqpQuery>> GenerateAqpWorkload(
    const data::Table& table, const AqpWorkloadOptions& opts, Rng* rng) {
  if (table.num_records() == 0)
    return Status::InvalidArgument("AQP workload requires a non-empty table");
  if (opts.num_queries == 0)
    return Status::InvalidArgument(
        "AqpWorkloadOptions::num_queries must be > 0");
  if (opts.max_predicates < opts.min_predicates)
    return Status::InvalidArgument(
        "AqpWorkloadOptions::max_predicates must be >= min_predicates "
        "(the unsigned predicate-count range would wrap)");
  const data::Schema& schema = table.schema();
  std::vector<size_t> numeric_attrs, categorical_attrs;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (schema.has_label() && j == schema.label_index()) continue;
    if (schema.attribute(j).is_categorical()) categorical_attrs.push_back(j);
    else numeric_attrs.push_back(j);
  }
  if (numeric_attrs.empty() && categorical_attrs.empty())
    return Status::InvalidArgument(
        "AQP workload requires at least one non-label attribute");

  std::vector<AqpQuery> workload;
  workload.reserve(opts.num_queries);
  while (workload.size() < opts.num_queries) {
    AqpQuery q;
    // Aggregate function; sum/avg require a numeric target.
    const size_t f = rng->UniformInt(3);
    q.func = static_cast<AggFunc>(f);
    if (q.func != AggFunc::kCount) {
      if (numeric_attrs.empty()) {
        q.func = AggFunc::kCount;
      } else {
        q.target_attr = static_cast<int>(
            numeric_attrs[rng->UniformInt(numeric_attrs.size())]);
      }
    }

    const size_t num_preds =
        opts.min_predicates +
        rng->UniformInt(opts.max_predicates - opts.min_predicates + 1);
    for (size_t p = 0; p < num_preds; ++p) {
      AqpPredicate pred;
      const bool use_cat =
          !categorical_attrs.empty() &&
          (numeric_attrs.empty() || rng->Uniform() < 0.5);
      if (use_cat) {
        pred.attr =
            categorical_attrs[rng->UniformInt(categorical_attrs.size())];
        pred.is_categorical = true;
        pred.category = rng->UniformInt(
            schema.attribute(pred.attr).domain_size());
      } else {
        pred.attr = numeric_attrs[rng->UniformInt(numeric_attrs.size())];
        pred.is_categorical = false;
        const double lo = table.AttributeMin(pred.attr);
        const double hi = table.AttributeMax(pred.attr);
        // Random sub-range covering 20-80% of the domain.
        const double width = (hi - lo) * rng->Uniform(0.2, 0.8);
        const double start = lo + rng->Uniform() * ((hi - lo) - width);
        pred.lo = start;
        pred.hi = start + width;
      }
      q.predicates.push_back(pred);
    }

    if (!categorical_attrs.empty() && rng->Uniform() < opts.group_by_prob) {
      q.group_by_attr = static_cast<int>(
          categorical_attrs[rng->UniformInt(categorical_attrs.size())]);
    }
    workload.push_back(std::move(q));
  }
  return workload;
}

Result<double> AqpDiff(const data::Table& real, const data::Table& synthetic,
                       const std::vector<AqpQuery>& workload,
                       const AqpDiffOptions& opts, Rng* rng) {
  if (workload.empty())
    return Status::InvalidArgument("AqpDiff requires a non-empty workload");
  if (real.num_records() == 0 || synthetic.num_records() == 0)
    return Status::InvalidArgument("AqpDiff requires non-empty tables");
  if (opts.sample_repeats == 0)
    return Status::InvalidArgument(
        "AqpDiffOptions::sample_repeats must be > 0");
  if (!(opts.sample_ratio > 0.0) || opts.sample_ratio > 1.0)
    return Status::InvalidArgument(
        "AqpDiffOptions::sample_ratio must be in (0, 1]");
  const size_t n = real.num_records();
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(opts.sample_ratio * static_cast<double>(n)));
  const double sample_scale =
      static_cast<double>(n) / static_cast<double>(sample_size);
  const double synth_scale =
      static_cast<double>(n) / static_cast<double>(synthetic.num_records());

  // Pre-draw the repeated baseline samples serially: the rng stream is
  // independent of the thread count.
  std::vector<data::Table> samples;
  samples.reserve(opts.sample_repeats);
  for (size_t s = 0; s < opts.sample_repeats; ++s) {
    std::vector<size_t> rows(sample_size);
    for (auto& r : rows) r = rng->UniformInt(n);
    samples.push_back(real.Gather(rows));
  }

  // Phase 1: exact and synthetic results per query (disjoint slots).
  const size_t num_queries = workload.size();
  const size_t num_samples = samples.size();
  std::vector<AqpResult> exact(num_queries);
  std::vector<double> e_synth(num_queries, 0.0);
  par::ParallelFor(0, num_queries, 1, [&](size_t q0, size_t q1) {
    for (size_t q = q0; q < q1; ++q) {
      exact[q] = ExecuteAqpQuery(real, workload[q]);
      e_synth[q] = RelativeError(
          exact[q], ExecuteAqpQuery(synthetic, workload[q], synth_scale));
    }
  });

  // Phase 2: the (query x baseline-sample) grid, one error per cell.
  std::vector<double> cell_err(num_queries * num_samples, 0.0);
  par::ParallelFor(
      0, num_queries * num_samples, 1, [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          const size_t q = c / num_samples;
          const size_t s = c % num_samples;
          cell_err[c] = RelativeError(
              exact[q],
              ExecuteAqpQuery(samples[s], workload[q], sample_scale));
        }
      });

  // Fixed-order reduction (sample order inside query order) — the same
  // floating-point accumulation the serial implementation performed.
  double total = 0.0;
  for (size_t q = 0; q < num_queries; ++q) {
    double e_sample = 0.0;
    for (size_t s = 0; s < num_samples; ++s)
      e_sample += cell_err[q * num_samples + s];
    e_sample /= static_cast<double>(num_samples);
    total += std::fabs(e_sample - e_synth[q]);
  }
  return total / static_cast<double>(num_queries);
}

}  // namespace daisy::eval

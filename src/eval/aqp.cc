#include "eval/aqp.h"

#include <algorithm>
#include <cmath>

namespace daisy::eval {

namespace {

bool Matches(const data::Table& table, size_t row, const AqpQuery& query) {
  for (const auto& pred : query.predicates) {
    const double v = table.value(row, pred.attr);
    if (pred.is_categorical) {
      if (static_cast<size_t>(std::llround(v)) != pred.category) return false;
    } else {
      if (v < pred.lo || v > pred.hi) return false;
    }
  }
  return true;
}

}  // namespace

AqpResult ExecuteAqpQuery(const data::Table& table, const AqpQuery& query,
                          double scale) {
  struct Acc {
    double count = 0.0;
    double sum = 0.0;
  };
  std::map<size_t, Acc> groups;
  for (size_t i = 0; i < table.num_records(); ++i) {
    if (!Matches(table, i, query)) continue;
    const size_t g = query.group_by_attr >= 0
                         ? table.category(i, query.group_by_attr)
                         : 0;
    Acc& acc = groups[g];
    acc.count += 1.0;
    if (query.target_attr >= 0) acc.sum += table.value(i, query.target_attr);
  }

  AqpResult result;
  for (const auto& [g, acc] : groups) {
    switch (query.func) {
      case AggFunc::kCount:
        result[g] = acc.count * scale;
        break;
      case AggFunc::kSum:
        result[g] = acc.sum * scale;
        break;
      case AggFunc::kAvg:
        result[g] = acc.count > 0.0 ? acc.sum / acc.count : 0.0;
        break;
    }
  }
  return result;
}

double RelativeError(const AqpResult& exact, const AqpResult& approx) {
  if (exact.empty()) return approx.empty() ? 0.0 : 1.0;
  double total = 0.0;
  for (const auto& [g, v] : exact) {
    const auto it = approx.find(g);
    if (it == approx.end()) {
      total += 1.0;
      continue;
    }
    const double denom = std::max(std::fabs(v), 1e-9);
    total += std::min(std::fabs(v - it->second) / denom, 1.0);
  }
  return total / static_cast<double>(exact.size());
}

std::vector<AqpQuery> GenerateAqpWorkload(const data::Table& table,
                                          const AqpWorkloadOptions& opts,
                                          Rng* rng) {
  DAISY_CHECK(table.num_records() > 0);
  const data::Schema& schema = table.schema();
  std::vector<size_t> numeric_attrs, categorical_attrs;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (schema.has_label() && j == schema.label_index()) continue;
    if (schema.attribute(j).is_categorical()) categorical_attrs.push_back(j);
    else numeric_attrs.push_back(j);
  }

  std::vector<AqpQuery> workload;
  workload.reserve(opts.num_queries);
  while (workload.size() < opts.num_queries) {
    AqpQuery q;
    // Aggregate function; sum/avg require a numeric target.
    const size_t f = rng->UniformInt(3);
    q.func = static_cast<AggFunc>(f);
    if (q.func != AggFunc::kCount) {
      if (numeric_attrs.empty()) {
        q.func = AggFunc::kCount;
      } else {
        q.target_attr = static_cast<int>(
            numeric_attrs[rng->UniformInt(numeric_attrs.size())]);
      }
    }

    const size_t num_preds =
        opts.min_predicates +
        rng->UniformInt(opts.max_predicates - opts.min_predicates + 1);
    for (size_t p = 0; p < num_preds; ++p) {
      AqpPredicate pred;
      const bool use_cat =
          !categorical_attrs.empty() &&
          (numeric_attrs.empty() || rng->Uniform() < 0.5);
      if (use_cat) {
        pred.attr =
            categorical_attrs[rng->UniformInt(categorical_attrs.size())];
        pred.is_categorical = true;
        pred.category = rng->UniformInt(
            schema.attribute(pred.attr).domain_size());
      } else {
        pred.attr = numeric_attrs[rng->UniformInt(numeric_attrs.size())];
        pred.is_categorical = false;
        const double lo = table.AttributeMin(pred.attr);
        const double hi = table.AttributeMax(pred.attr);
        // Random sub-range covering 20-80% of the domain.
        const double width = (hi - lo) * rng->Uniform(0.2, 0.8);
        const double start = lo + rng->Uniform() * ((hi - lo) - width);
        pred.lo = start;
        pred.hi = start + width;
      }
      q.predicates.push_back(pred);
    }

    if (!categorical_attrs.empty() && rng->Uniform() < opts.group_by_prob) {
      q.group_by_attr = static_cast<int>(
          categorical_attrs[rng->UniformInt(categorical_attrs.size())]);
    }
    workload.push_back(std::move(q));
  }
  return workload;
}

double AqpDiff(const data::Table& real, const data::Table& synthetic,
               const std::vector<AqpQuery>& workload,
               const AqpDiffOptions& opts, Rng* rng) {
  DAISY_CHECK(!workload.empty());
  const size_t n = real.num_records();
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(opts.sample_ratio * static_cast<double>(n)));
  const double sample_scale =
      static_cast<double>(n) / static_cast<double>(sample_size);
  const double synth_scale =
      static_cast<double>(n) / static_cast<double>(synthetic.num_records());

  // Pre-draw the repeated baseline samples.
  std::vector<data::Table> samples;
  samples.reserve(opts.sample_repeats);
  for (size_t s = 0; s < opts.sample_repeats; ++s) {
    std::vector<size_t> rows(sample_size);
    for (auto& r : rows) r = rng->UniformInt(n);
    samples.push_back(real.Gather(rows));
  }

  double total = 0.0;
  for (const auto& q : workload) {
    const AqpResult exact = ExecuteAqpQuery(real, q);
    const AqpResult synth = ExecuteAqpQuery(synthetic, q, synth_scale);
    const double e_synth = RelativeError(exact, synth);
    double e_sample = 0.0;
    for (const auto& sample : samples)
      e_sample += RelativeError(exact, ExecuteAqpQuery(sample, q,
                                                       sample_scale));
    e_sample /= static_cast<double>(samples.size());
    total += std::fabs(e_sample - e_synth);
  }
  return total / static_cast<double>(workload.size());
}

}  // namespace daisy::eval

// Multinomial logistic regression (softmax regression) trained by
// full-batch gradient descent on standardized features — the paper's
// "LR" classifier.
#ifndef DAISY_EVAL_LOGISTIC_REGRESSION_H_
#define DAISY_EVAL_LOGISTIC_REGRESSION_H_

#include <vector>

#include "eval/classifier.h"

namespace daisy::eval {

struct LogisticRegressionOptions {
  /// Full-batch gradient-descent epochs.
  size_t epochs = 200;
  /// Learning rate.
  double lr = 0.1;
  /// L2 regularization strength.
  double l2 = 1e-4;
};

/// Softmax regression over standardized features.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions opts = {})
      : opts_(opts) {}

  void Fit(const Matrix& x, const std::vector<size_t>& y, size_t num_classes,
           Rng* rng) override;
  size_t Predict(const double* x) const override;
  std::vector<double> PredictProba(const double* x) const override;

 private:
  std::vector<double> Standardize(const double* x) const;

  LogisticRegressionOptions opts_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  Matrix weights_;  // features x classes
  std::vector<double> bias_;
};

}  // namespace daisy::eval

#endif  // DAISY_EVAL_LOGISTIC_REGRESSION_H_

#include "eval/suite.h"

#include <cmath>
#include <utility>

#include "core/parallel.h"
#include "core/rng.h"
#include "eval/classifier.h"
#include "eval/clustering_eval.h"
#include "eval/privacy.h"
#include "eval/utility.h"
#include "obs/timer.h"

namespace daisy::eval {

namespace {

// Appends metrics to a report and mirrors each one into the sink with
// the suite's shared record fields filled in.
class MetricEmitter {
 public:
  MetricEmitter(SuiteReport* report, obs::MetricSink* sink, uint64_t seed)
      : report_(report), sink_(sink), seed_(seed) {}

  void Add(std::string name, double value, double wall_ms) {
    report_->metrics.push_back({name, value, wall_ms});
    if (sink_ == nullptr) return;
    obs::MetricRecord rec;
    rec.run = "eval." + name;
    rec.iter = report_->metrics.size();  // 1-based metric index
    rec.value = value;
    rec.iter_ms = wall_ms;
    rec.wall_ms = suite_timer_.ElapsedMs();
    rec.threads = par::NumThreads();
    rec.seed = seed_;
    sink_->Log(rec);
  }

  double ElapsedMs() const { return suite_timer_.ElapsedMs(); }

 private:
  SuiteReport* report_;
  obs::MetricSink* sink_;
  uint64_t seed_;
  obs::WallTimer suite_timer_;
};

}  // namespace

const SuiteMetric* SuiteReport::Find(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

Result<SuiteReport> EvaluationSuite::Run(const data::Table& real,
                                         const data::Table& synthetic,
                                         obs::MetricSink* sink) const {
  if (real.num_attributes() != synthetic.num_attributes())
    return Status::InvalidArgument(
        "evaluation suite: real and synthetic schema widths differ");
  if (real.num_records() < 2 || synthetic.num_records() < 2)
    return Status::InvalidArgument(
        "evaluation suite: both tables need at least two records");
  if (!(opts_.train_ratio > 0.0 && opts_.train_ratio < 1.0))
    return Status::InvalidArgument(
        "evaluation suite: train_ratio must be in (0, 1)");

  SuiteReport report;
  MetricEmitter emit(&report, sink, opts_.seed);
  const bool has_label = real.schema().has_label();

  // ---- Classification utility (Eq. 1) -----------------------------
  if (opts_.utility && has_label) {
    Rng split_rng(opts_.seed);
    const auto split =
        data::SplitTable(real, opts_.train_ratio, 0.0, &split_rng);
    const bool binary =
        opts_.utility_auc && real.schema().num_labels() == 2;
    for (auto kind : AllClassifierKinds()) {
      const std::string clf = ClassifierKindName(kind);
      {
        obs::WallTimer t;
        Rng r1(opts_.seed + 1), r2(opts_.seed + 1);
        const double f1_real =
            TrainAndScoreF1(split.train, split.test, kind, &r1);
        const double f1_synth =
            TrainAndScoreF1(synthetic, split.test, kind, &r2);
        emit.Add("utility.f1_diff." + clf, std::fabs(f1_real - f1_synth),
                 t.ElapsedMs());
      }
      if (binary) {
        obs::WallTimer t;
        Rng r1(opts_.seed + 1), r2(opts_.seed + 1);
        const double auc_real =
            TrainAndScoreAuc(split.train, split.test, kind, &r1);
        const double auc_synth =
            TrainAndScoreAuc(synthetic, split.test, kind, &r2);
        emit.Add("utility.auc_diff." + clf, std::fabs(auc_real - auc_synth),
                 t.ElapsedMs());
      }
    }
  }

  // ---- Clustering utility (DiffCST) -------------------------------
  if (opts_.clustering && has_label) {
    obs::WallTimer t;
    Rng rng(opts_.seed + 5);
    const double diff = ClusteringDiff(real, synthetic, &rng);
    emit.Add("clustering.nmi_diff", diff, t.ElapsedMs());
  }

  // ---- Statistical fidelity ---------------------------------------
  if (opts_.fidelity) {
    const auto fid = EvaluateFidelity(real, synthetic, opts_.fidelity_opts);
    emit.Add("fidelity.marginal_kl", fid.marginal_kl, fid.marginal_kl_ms);
    emit.Add("fidelity.numeric_corr_diff", fid.numeric_correlation_diff,
             fid.numeric_ms);
    emit.Add("fidelity.cat_assoc_diff", fid.categorical_association_diff,
             fid.categorical_ms);

    {
      // Heavy-tail diagnostics: rare-mode coverage and a smoothed
      // categorical KL that stays finite (and sensitive) when the
      // generator drops tail categories.
      obs::WallTimer t;
      const auto rare =
          RareModeRecall(real, synthetic, opts_.rare_mode_threshold);
      emit.Add("fidelity.rare_mode_recall", rare.recall, t.ElapsedMs());
    }
    {
      obs::WallTimer t;
      emit.Add("fidelity.per_category_kl", PerCategoryKl(real, synthetic),
               t.ElapsedMs());
    }

    obs::WallTimer t;
    const auto fds = DiscoverFds(real, opts_.fd_min_confidence);
    if (!fds.empty()) {
      emit.Add("fidelity.fd_violation_rate", FdViolationRate(synthetic, fds),
               t.ElapsedMs());
    }
  }

  // ---- Privacy risk -----------------------------------------------
  if (opts_.privacy) {
    {
      obs::WallTimer t;
      HittingRateOptions hopts;
      hopts.num_synthetic_samples = opts_.privacy_samples;
      Rng rng(opts_.seed + 2);
      auto hit = HittingRate(real, synthetic, hopts, &rng);
      if (!hit.ok()) return hit.status();
      emit.Add("privacy.hitting_rate", hit.value(), t.ElapsedMs());
    }
    {
      obs::WallTimer t;
      DcrOptions dopts;
      dopts.num_original_samples = opts_.privacy_samples;
      Rng rng(opts_.seed + 3);
      auto dcr = DistanceToClosestRecord(real, synthetic, dopts, &rng);
      if (!dcr.ok()) return dcr.status();
      emit.Add("privacy.dcr", dcr.value(), t.ElapsedMs());
    }
  }

  // ---- AQP utility (DiffAQP) --------------------------------------
  if (opts_.aqp) {
    obs::WallTimer t;
    Rng rng(opts_.seed + 4);
    auto workload = GenerateAqpWorkload(real, opts_.aqp_workload, &rng);
    if (!workload.ok()) return workload.status();
    auto diff =
        AqpDiff(real, synthetic, workload.value(), opts_.aqp_diff, &rng);
    if (!diff.ok()) return diff.status();
    emit.Add("aqp.diff", diff.value(), t.ElapsedMs());
  }

  report.total_ms = emit.ElapsedMs();
  if (sink != nullptr) DAISY_RETURN_IF_ERROR(sink->Flush());
  return report;
}

}  // namespace daisy::eval

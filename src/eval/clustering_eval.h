// Clustering-utility evaluation (paper §6.2): K-Means on features
// (label held out as gold standard), NMI against the labels, and the
// DiffCST between real and synthetic tables.
#ifndef DAISY_EVAL_CLUSTERING_EVAL_H_
#define DAISY_EVAL_CLUSTERING_EVAL_H_

#include "core/rng.h"
#include "data/table.h"

namespace daisy::eval {

/// NMI of K-Means clusters (k = number of labels) against the gold
/// labels, with features min-max normalized so attributes contribute
/// comparably.
double ClusteringNmi(const data::Table& table, Rng* rng);

/// DiffCST = | NMI(real) - NMI(synthetic) | (smaller is better).
double ClusteringDiff(const data::Table& real, const data::Table& synthetic,
                      Rng* rng);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_CLUSTERING_EVAL_H_

// Random forest: bagged CART trees with per-split feature subsampling.
// Fit trains trees in parallel, one seed-derived rng stream per tree,
// so training is bitwise identical for any DAISY_THREADS value.
#ifndef DAISY_EVAL_RANDOM_FOREST_H_
#define DAISY_EVAL_RANDOM_FOREST_H_

#include <vector>

#include "eval/decision_tree.h"

namespace daisy::eval {

struct RandomForestOptions {
  size_t num_trees = 20;
  size_t max_depth = 10;
  /// 0 = use round(sqrt(num_features)).
  size_t max_features = 0;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions opts = {}) : opts_(opts) {}

  void Fit(const Matrix& x, const std::vector<size_t>& y, size_t num_classes,
           Rng* rng) override;
  size_t Predict(const double* x) const override;
  std::vector<double> PredictProba(const double* x) const override;

 private:
  RandomForestOptions opts_;
  size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace daisy::eval

#endif  // DAISY_EVAL_RANDOM_FOREST_H_

#include "eval/relational.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/parallel.h"
#include "obs/timer.h"

namespace daisy::eval {

namespace {

// suite.cc's MetricEmitter is file-local by design; this is the same
// shape with the relational suite's seed-free records.
class RelEmitter {
 public:
  RelEmitter(SuiteReport* report, obs::MetricSink* sink)
      : report_(report), sink_(sink) {}

  void Add(std::string name, double value, double wall_ms) {
    report_->metrics.push_back({name, value, wall_ms});
    if (sink_ == nullptr) return;
    obs::MetricRecord rec;
    rec.run = "eval." + name;
    rec.iter = report_->metrics.size();
    rec.value = value;
    rec.iter_ms = wall_ms;
    rec.wall_ms = suite_timer_.ElapsedMs();
    rec.threads = par::NumThreads();
    sink_->Log(rec);
  }

  double ElapsedMs() const { return suite_timer_.ElapsedMs(); }

 private:
  SuiteReport* report_;
  obs::MetricSink* sink_;
  obs::WallTimer suite_timer_;
};

/// Children-per-parent counts keyed by parent ROW (zero included).
/// Child rows whose FK matches no parent are skipped here — dangling
/// links are FkValidityRate's finding, not a join size.
std::vector<size_t> ChildrenPerParent(const data::Table& parent,
                                      size_t parent_pk,
                                      const data::Table& child,
                                      size_t child_fk) {
  std::unordered_map<double, size_t> pk_row;
  pk_row.reserve(parent.num_records());
  for (size_t r = 0; r < parent.num_records(); ++r)
    pk_row.emplace(parent.value(r, parent_pk), r);
  std::vector<size_t> counts(parent.num_records(), 0);
  for (size_t r = 0; r < child.num_records(); ++r) {
    const auto it = pk_row.find(child.value(r, child_fk));
    if (it != pk_row.end()) ++counts[it->second];
  }
  return counts;
}

double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  if (n == 0) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Status CheckKeyColumn(const data::Table& t, size_t col, const char* what) {
  if (col >= t.num_attributes())
    return Status::InvalidArgument(std::string(what) +
                                   " column index out of range");
  if (t.schema().attribute(col).is_categorical())
    return Status::InvalidArgument(std::string(what) +
                                   " column must be numerical");
  return Status::OK();
}

}  // namespace

Result<double> FkValidityRate(const data::Table& parent, size_t parent_pk,
                              const data::Table& child, size_t child_fk) {
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(parent, parent_pk, "parent key"));
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(child, child_fk, "child key"));
  if (child.num_records() == 0) return 1.0;
  std::unordered_set<double> keys;
  keys.reserve(parent.num_records());
  for (size_t r = 0; r < parent.num_records(); ++r)
    keys.insert(parent.value(r, parent_pk));
  size_t valid = 0;
  for (size_t r = 0; r < child.num_records(); ++r)
    if (keys.count(child.value(r, child_fk)) > 0) ++valid;
  return static_cast<double>(valid) /
         static_cast<double>(child.num_records());
}

Result<double> JoinSizeKl(const data::Table& real_parent, size_t real_pk,
                          const data::Table& real_child, size_t real_fk,
                          const data::Table& synth_parent, size_t synth_pk,
                          const data::Table& synth_child, size_t synth_fk) {
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(real_parent, real_pk, "parent key"));
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(real_child, real_fk, "child key"));
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(synth_parent, synth_pk, "parent key"));
  DAISY_RETURN_IF_ERROR(CheckKeyColumn(synth_child, synth_fk, "child key"));
  if (real_parent.num_records() == 0 || synth_parent.num_records() == 0)
    return Status::InvalidArgument("join-size KL needs non-empty parents");

  const auto real_counts =
      ChildrenPerParent(real_parent, real_pk, real_child, real_fk);
  const auto synth_counts =
      ChildrenPerParent(synth_parent, synth_pk, synth_child, synth_fk);

  const size_t max_real =
      *std::max_element(real_counts.begin(), real_counts.end());
  const size_t max_synth =
      *std::max_element(synth_counts.begin(), synth_counts.end());
  const size_t support = std::max(max_real, max_synth) + 1;

  std::vector<double> p(support, 0.0), q(support, 0.0);
  for (size_t c : real_counts) p[c] += 1.0;
  for (size_t c : synth_counts) q[c] += 1.0;

  // Laplace smoothing over the union support keeps KL finite when the
  // synthetic fan-out misses a count the real data has.
  const double eps = 1.0;
  const double np = static_cast<double>(real_counts.size()) +
                    eps * static_cast<double>(support);
  const double nq = static_cast<double>(synth_counts.size()) +
                    eps * static_cast<double>(support);
  double kl = 0.0;
  for (size_t c = 0; c < support; ++c) {
    const double pc = (p[c] + eps) / np;
    const double qc = (q[c] + eps) / nq;
    kl += pc * std::log(pc / qc);
  }
  return kl;
}

Result<double> CrossTableCorrDiff(
    const data::RelationalSchema& schema, size_t child_index,
    const data::Table& real_parent, const data::Table& real_child,
    const data::Table& synth_parent, const data::Table& synth_child) {
  const data::ForeignKey* edge = schema.ParentEdge(child_index);
  if (edge == nullptr)
    return Status::InvalidArgument("table '" +
                                   schema.table(child_index).name +
                                   "' has no parent edge");
  const int pi = schema.FindTable(edge->parent_table);
  DAISY_CHECK(pi >= 0);
  const size_t parent_index = static_cast<size_t>(pi);
  const size_t parent_pk = schema.PrimaryKeyColumn(parent_index);
  const int fk = schema.table(child_index)
                     .schema.FindAttribute(edge->child_column);
  DAISY_CHECK(fk >= 0);
  const size_t child_fk = static_cast<size_t>(fk);

  // Numeric non-key columns on both sides.
  std::vector<size_t> pcols, ccols;
  for (size_t j : schema.ModeledColumns(parent_index))
    if (!schema.table(parent_index).schema.attribute(j).is_categorical())
      pcols.push_back(j);
  for (size_t j : schema.ModeledColumns(child_index))
    if (!schema.table(child_index).schema.attribute(j).is_categorical())
      ccols.push_back(j);
  if (pcols.empty() || ccols.empty()) return 0.0;

  // corr over the FK inner join, per table pair.
  auto join_corrs = [&](const data::Table& parent, const data::Table& child)
      -> std::vector<double> {
    std::unordered_map<double, size_t> pk_row;
    pk_row.reserve(parent.num_records());
    for (size_t r = 0; r < parent.num_records(); ++r)
      pk_row.emplace(parent.value(r, parent_pk), r);
    std::vector<size_t> child_rows, parent_rows;
    for (size_t r = 0; r < child.num_records(); ++r) {
      const auto it = pk_row.find(child.value(r, child_fk));
      if (it == pk_row.end()) continue;
      child_rows.push_back(r);
      parent_rows.push_back(it->second);
    }
    std::vector<double> corrs;
    corrs.reserve(pcols.size() * ccols.size());
    std::vector<double> x(child_rows.size()), y(child_rows.size());
    for (size_t a : pcols) {
      for (size_t i = 0; i < parent_rows.size(); ++i)
        x[i] = parent.value(parent_rows[i], a);
      for (size_t b : ccols) {
        for (size_t i = 0; i < child_rows.size(); ++i)
          y[i] = child.value(child_rows[i], b);
        corrs.push_back(Pearson(x, y));
      }
    }
    return corrs;
  };

  const auto real_corrs = join_corrs(real_parent, real_child);
  const auto synth_corrs = join_corrs(synth_parent, synth_child);
  DAISY_CHECK(real_corrs.size() == synth_corrs.size());
  if (real_corrs.empty()) return 0.0;
  double diff = 0.0;
  for (size_t i = 0; i < real_corrs.size(); ++i)
    diff += std::fabs(real_corrs[i] - synth_corrs[i]);
  return diff / static_cast<double>(real_corrs.size());
}

Result<SuiteReport> RunRelationalSuite(
    const data::RelationalSchema& schema,
    const std::vector<data::Table>& real,
    const std::vector<data::Table>& synth, obs::MetricSink* sink) {
  if (real.size() != schema.num_tables() ||
      synth.size() != schema.num_tables())
    return Status::InvalidArgument(
        "relational suite: table vectors must parallel the schema");
  SuiteReport report;
  RelEmitter emit(&report, sink);

  for (size_t i = 0; i < schema.num_tables(); ++i) {
    const data::ForeignKey* edge = schema.ParentEdge(i);
    if (edge == nullptr) continue;
    const std::string& child = schema.table(i).name;
    const size_t p = static_cast<size_t>(schema.FindTable(edge->parent_table));
    const size_t parent_pk = schema.PrimaryKeyColumn(p);
    const int fk = schema.table(i).schema.FindAttribute(edge->child_column);
    DAISY_CHECK(fk >= 0);

    {
      obs::WallTimer t;
      auto v = FkValidityRate(synth[p], parent_pk, synth[i],
                              static_cast<size_t>(fk));
      DAISY_RETURN_IF_ERROR(v.status());
      emit.Add("relational.fk_validity." + child, v.value(), t.ElapsedMs());
    }
    {
      obs::WallTimer t;
      auto v = JoinSizeKl(real[p], parent_pk, real[i],
                          static_cast<size_t>(fk), synth[p], parent_pk,
                          synth[i], static_cast<size_t>(fk));
      DAISY_RETURN_IF_ERROR(v.status());
      emit.Add("relational.join_size_kl." + child, v.value(), t.ElapsedMs());
    }
    {
      obs::WallTimer t;
      auto v = CrossTableCorrDiff(schema, i, real[p], real[i], synth[p],
                                  synth[i]);
      DAISY_RETURN_IF_ERROR(v.status());
      emit.Add("relational.xcorr_diff." + child, v.value(), t.ElapsedMs());
    }
  }
  report.total_ms = emit.ElapsedMs();
  if (sink != nullptr) sink->Flush();
  return report;
}

}  // namespace daisy::eval

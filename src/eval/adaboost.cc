#include "eval/adaboost.h"

#include <algorithm>
#include <cmath>

namespace daisy::eval {

void AdaBoost::Fit(const Matrix& x, const std::vector<size_t>& y,
                   size_t num_classes, Rng* rng) {
  DAISY_CHECK(x.rows() == y.size() && x.rows() > 0);
  DAISY_CHECK(num_classes >= 2);
  num_classes_ = num_classes;
  estimators_.clear();
  alphas_.clear();

  const size_t n = x.rows();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  const double k = static_cast<double>(num_classes);

  for (size_t t = 0; t < opts_.num_estimators; ++t) {
    DecisionTreeOptions topts;
    topts.max_depth = opts_.base_depth;
    DecisionTree stump(topts);
    stump.FitWeighted(x, y, weights, num_classes, rng);

    double err = 0.0;
    std::vector<bool> wrong(n);
    for (size_t i = 0; i < n; ++i) {
      wrong[i] = stump.Predict(x.row(i)) != y[i];
      if (wrong[i]) err += weights[i];
    }
    // SAMME requires err < 1 - 1/K; stop if the learner is no better
    // than chance, and bail out early on a perfect learner.
    if (err <= 1e-12) {
      estimators_.push_back(std::move(stump));
      alphas_.push_back(10.0);  // effectively decides alone
      break;
    }
    if (err >= 1.0 - 1.0 / k) break;

    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
    estimators_.push_back(std::move(stump));
    alphas_.push_back(alpha);

    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
      sum += weights[i];
    }
    for (auto& w : weights) w /= sum;
  }

  if (estimators_.empty()) {
    // Degenerate data: fall back to a single stump.
    DecisionTreeOptions topts;
    topts.max_depth = opts_.base_depth;
    estimators_.emplace_back(topts);
    estimators_.back().Fit(x, y, num_classes, rng);
    alphas_.push_back(1.0);
  }
}

std::vector<double> AdaBoost::PredictProba(const double* x) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (size_t t = 0; t < estimators_.size(); ++t)
    votes[estimators_[t].Predict(x)] += alphas_[t];
  double sum = 0.0;
  for (double v : votes) sum += v;
  if (sum <= 0.0) {
    std::fill(votes.begin(), votes.end(),
              1.0 / static_cast<double>(num_classes_));
    return votes;
  }
  for (auto& v : votes) v /= sum;
  return votes;
}

size_t AdaBoost::Predict(const double* x) const {
  const auto probs = PredictProba(x);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace daisy::eval

#include "eval/utility.h"

#include <cmath>

#include "eval/class_metrics.h"

namespace daisy::eval {

namespace {

/// Trains `kind` on `train` and returns predictions on `test`.
std::vector<size_t> TrainAndPredict(const data::Table& train,
                                    const data::Table& test,
                                    ClassifierKind kind, Rng* rng) {
  DAISY_CHECK(train.schema().has_label() && test.schema().has_label());
  DAISY_CHECK(train.num_records() > 0 && test.num_records() > 0);
  auto clf = MakeClassifier(kind);
  clf->Fit(train.FeatureMatrix(), train.Labels(),
           train.schema().num_labels(), rng);
  return clf->PredictAll(test.FeatureMatrix());
}

}  // namespace

double TrainAndScoreF1(const data::Table& train, const data::Table& test,
                       ClassifierKind kind, Rng* rng) {
  const auto preds = TrainAndPredict(train, test, kind, rng);
  return PaperF1(preds, test.Labels(), test.schema().num_labels());
}

double TrainAndScoreAuc(const data::Table& train, const data::Table& test,
                        ClassifierKind kind, Rng* rng) {
  DAISY_CHECK(train.schema().has_label() && test.schema().has_label());
  auto clf = MakeClassifier(kind);
  clf->Fit(train.FeatureMatrix(), train.Labels(),
           train.schema().num_labels(), rng);
  const auto truth = test.Labels();
  const size_t positive =
      EvaluationLabel(truth, test.schema().num_labels());
  Matrix x = test.FeatureMatrix();
  std::vector<double> scores(x.rows());
  for (size_t i = 0; i < x.rows(); ++i)
    scores[i] = clf->PredictProba(x.row(i))[positive];
  return AucBinary(scores, truth, positive);
}

double F1Diff(const data::Table& real_train, const data::Table& synthetic,
              const data::Table& test, ClassifierKind kind, Rng* rng) {
  const double f1_real = TrainAndScoreF1(real_train, test, kind, rng);
  const double f1_synth = TrainAndScoreF1(synthetic, test, kind, rng);
  return std::fabs(f1_real - f1_synth);
}

std::vector<double> SnapshotF1Curve(synth::TableSynthesizer* synthesizer,
                                    const data::Table& valid,
                                    const SnapshotSelectionOptions& opts,
                                    Rng* rng) {
  DAISY_CHECK(synthesizer->num_snapshots() > 0);
  const size_t gen_size =
      opts.gen_size > 0 ? opts.gen_size : valid.num_records();
  std::vector<double> curve;
  curve.reserve(synthesizer->num_snapshots());
  for (size_t i = 0; i < synthesizer->num_snapshots(); ++i) {
    synthesizer->UseSnapshot(i);
    data::Table fake = synthesizer->Generate(gen_size, rng);
    // A snapshot may fail to emit some label entirely (mode collapse);
    // score it 0 rather than crashing the sweep.
    bool trainable = false;
    const auto counts = fake.LabelCounts();
    size_t nonzero = 0;
    for (size_t c : counts) nonzero += c > 0 ? 1 : 0;
    trainable = nonzero >= 2;
    curve.push_back(
        trainable ? TrainAndScoreF1(fake, valid, opts.kind, rng) : 0.0);
  }
  synthesizer->UseFinal();
  return curve;
}

size_t SelectBestSnapshot(synth::TableSynthesizer* synthesizer,
                          const data::Table& valid,
                          const SnapshotSelectionOptions& opts, Rng* rng) {
  const auto curve = SnapshotF1Curve(synthesizer, valid, opts, rng);
  size_t best = 0;
  for (size_t i = 1; i < curve.size(); ++i)
    if (curve[i] > curve[best]) best = i;
  synthesizer->UseSnapshot(best);
  return best;
}

}  // namespace daisy::eval

#include "eval/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace daisy::eval {

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<size_t>& y,
                       size_t num_classes, Rng* rng) {
  FitWeighted(x, y, std::vector<double>(y.size(), 1.0), num_classes, rng);
}

void DecisionTree::FitWeighted(const Matrix& x, const std::vector<size_t>& y,
                               const std::vector<double>& weights,
                               size_t num_classes, Rng* rng) {
  DAISY_CHECK(x.rows() == y.size() && y.size() == weights.size());
  DAISY_CHECK(x.rows() > 0 && num_classes >= 1);
  num_classes_ = num_classes;
  nodes_.clear();
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Build(x, y, weights, indices, 0, indices.size(), 0, num_classes, rng);
}

int DecisionTree::Build(const Matrix& x, const std::vector<size_t>& y,
                        const std::vector<double>& w,
                        std::vector<size_t>& indices, size_t begin,
                        size_t end, size_t depth, size_t num_classes,
                        Rng* rng) {
  std::vector<double> counts(num_classes, 0.0);
  double total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    counts[y[indices[i]]] += w[indices[i]];
    total += w[indices[i]];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    // Leaf distribution (kept even for internal nodes: costs little and
    // simplifies pruning experiments).
    std::vector<double> probs(num_classes, 0.0);
    for (size_t c = 0; c < num_classes; ++c)
      probs[c] = total > 0.0 ? counts[c] / total
                             : 1.0 / static_cast<double>(num_classes);
    nodes_[node_id].class_probs = std::move(probs);
  }

  const double parent_gini = GiniFromCounts(counts, total);
  const size_t n = end - begin;
  if (depth >= opts_.max_depth || n < opts_.min_samples_split ||
      parent_gini <= 1e-12) {
    return node_id;  // leaf
  }

  // Candidate features (all, or a random subset for forests).
  const size_t m = x.cols();
  std::vector<size_t> features(m);
  std::iota(features.begin(), features.end(), 0);
  size_t num_feats = m;
  if (opts_.max_features > 0 && opts_.max_features < m) {
    for (size_t i = 0; i < opts_.max_features; ++i) {
      const size_t j = i + rng->UniformInt(m - i);
      std::swap(features[i], features[j]);
    }
    num_feats = opts_.max_features;
  }

  double best_gain = 1e-12;
  size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, size_t>> sorted(n);  // (value, row)
  std::vector<double> left_counts(num_classes);
  for (size_t fi = 0; fi < num_feats; ++fi) {
    const size_t f = features[fi];
    for (size_t i = 0; i < n; ++i) {
      const size_t row = indices[begin + i];
      sorted[i] = {x(row, f), row};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_total = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const size_t row = sorted[i].second;
      left_counts[y[row]] += w[row];
      left_total += w[row];
      if (sorted[i].first == sorted[i + 1].first) continue;
      const double right_total = total - left_total;
      if (left_total <= 0.0 || right_total <= 0.0) continue;
      double right_gini = 1.0, left_gini = 1.0;
      {
        double ls = 0.0, rs = 0.0;
        for (size_t c = 0; c < num_classes; ++c) {
          const double lp = left_counts[c] / left_total;
          const double rp = (counts[c] - left_counts[c]) / right_total;
          ls += lp * lp;
          rs += rp * rp;
        }
        left_gini = 1.0 - ls;
        right_gini = 1.0 - rs;
      }
      const double child_gini =
          (left_total * left_gini + right_total * right_gini) / total;
      const double gain = parent_gini - child_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;  // no useful split

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end,
      [&](size_t row) { return x(row, best_feature) <= best_threshold; });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left =
      Build(x, y, w, indices, begin, mid, depth + 1, num_classes, rng);
  const int right =
      Build(x, y, w, indices, mid, end, depth + 1, num_classes, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

size_t DecisionTree::Predict(const double* x) const {
  const auto probs = PredictProba(x);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<double> DecisionTree::PredictProba(const double* x) const {
  DAISY_CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].left >= 0) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].class_probs;
}

}  // namespace daisy::eval

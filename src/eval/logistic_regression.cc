#include "eval/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace daisy::eval {

void LogisticRegression::Fit(const Matrix& x, const std::vector<size_t>& y,
                             size_t num_classes, Rng* /*rng*/) {
  DAISY_CHECK(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = num_classes;
  num_features_ = x.cols();
  const size_t n = x.rows(), m = x.cols(), k = num_classes;

  mean_.assign(m, 0.0);
  inv_std_.assign(m, 1.0);
  for (size_t j = 0; j < m; ++j) {
    double mu = 0.0;
    for (size_t i = 0; i < n; ++i) mu += x(i, j);
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) var += (x(i, j) - mu) * (x(i, j) - mu);
    var /= static_cast<double>(n);
    mean_[j] = mu;
    inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }

  Matrix xs(n, m);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < m; ++j)
      xs(i, j) = (x(i, j) - mean_[j]) * inv_std_[j];

  weights_ = Matrix(m, k);
  bias_.assign(k, 0.0);

  Matrix probs(n, k);
  for (size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Forward: softmax(xs W + b).
    for (size_t i = 0; i < n; ++i) {
      double mx = -1e300;
      for (size_t c = 0; c < k; ++c) {
        double s = bias_[c];
        for (size_t j = 0; j < m; ++j) s += xs(i, j) * weights_(j, c);
        probs(i, c) = s;
        mx = std::max(mx, s);
      }
      double sum = 0.0;
      for (size_t c = 0; c < k; ++c) {
        probs(i, c) = std::exp(probs(i, c) - mx);
        sum += probs(i, c);
      }
      for (size_t c = 0; c < k; ++c) probs(i, c) /= sum;
    }
    // Gradient step.
    const double scale = opts_.lr / static_cast<double>(n);
    Matrix gw(m, k);
    std::vector<double> gb(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        const double d = probs(i, c) - (y[i] == c ? 1.0 : 0.0);
        gb[c] += d;
        for (size_t j = 0; j < m; ++j) gw(j, c) += d * xs(i, j);
      }
    }
    for (size_t j = 0; j < m; ++j)
      for (size_t c = 0; c < k; ++c)
        weights_(j, c) -=
            scale * (gw(j, c) + opts_.l2 * weights_(j, c) *
                                    static_cast<double>(n));
    for (size_t c = 0; c < k; ++c) bias_[c] -= scale * gb[c];
  }
}

std::vector<double> LogisticRegression::Standardize(const double* x) const {
  std::vector<double> xs(num_features_);
  for (size_t j = 0; j < num_features_; ++j)
    xs[j] = (x[j] - mean_[j]) * inv_std_[j];
  return xs;
}

std::vector<double> LogisticRegression::PredictProba(const double* x) const {
  const auto xs = Standardize(x);
  std::vector<double> probs(num_classes_);
  double mx = -1e300;
  for (size_t c = 0; c < num_classes_; ++c) {
    double s = bias_[c];
    for (size_t j = 0; j < num_features_; ++j) s += xs[j] * weights_(j, c);
    probs[c] = s;
    mx = std::max(mx, s);
  }
  double sum = 0.0;
  for (auto& p : probs) {
    p = std::exp(p - mx);
    sum += p;
  }
  for (auto& p : probs) p /= sum;
  return probs;
}

size_t LogisticRegression::Predict(const double* x) const {
  const auto probs = PredictProba(x);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace daisy::eval

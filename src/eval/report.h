// One-call quality report for a synthetic table: the paper's utility
// metric per classifier, statistical fidelity, privacy risk and a
// side-by-side attribute profile, rendered as markdown (the CLI's
// `eval --report` output).
#ifndef DAISY_EVAL_REPORT_H_
#define DAISY_EVAL_REPORT_H_

#include <string>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::eval {

struct QualityReportOptions {
  /// Fraction of the real table used to train the reference
  /// classifier; the rest is the test split.
  double train_ratio = 2.0 / 3.0;
  /// Records sampled for the privacy metrics.
  size_t privacy_samples = 500;
  /// Skip the (slow) classifier utility section.
  bool include_utility = true;
  uint64_t seed = 61;
};

/// Runs every evaluation in the repository against the pair of tables
/// and renders the result as a markdown document. Both tables must
/// share the schema; the label (if any) drives the utility section.
std::string GenerateQualityReport(const data::Table& real,
                                  const data::Table& synthetic,
                                  const QualityReportOptions& options = {});

}  // namespace daisy::eval

#endif  // DAISY_EVAL_REPORT_H_

#include "eval/fidelity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parallel.h"
#include "obs/timer.h"
#include "stats/metrics.h"

namespace daisy::eval {

namespace {

std::vector<size_t> NumericAttrs(const data::Schema& schema) {
  std::vector<size_t> out;
  for (size_t j = 0; j < schema.num_attributes(); ++j)
    if (!schema.attribute(j).is_categorical()) out.push_back(j);
  return out;
}

std::vector<size_t> CategoricalAttrs(const data::Schema& schema) {
  std::vector<size_t> out;
  for (size_t j = 0; j < schema.num_attributes(); ++j)
    if (schema.attribute(j).is_categorical()) out.push_back(j);
  return out;
}

struct AttrPair {
  size_t a = 0;
  size_t b = 0;
};

// All (i, j) i < j pairs in the lexicographic order the serial loops
// used — the reduction below walks this order, so the floating-point
// sum matches the serial implementation bit for bit.
std::vector<AttrPair> UpperTrianglePairs(const std::vector<size_t>& attrs) {
  std::vector<AttrPair> pairs;
  pairs.reserve(attrs.size() * (attrs.size() - 1) / 2);
  for (size_t i = 0; i < attrs.size(); ++i)
    for (size_t j = i + 1; j < attrs.size(); ++j)
      pairs.push_back({attrs[i], attrs[j]});
  return pairs;
}

}  // namespace

double CramersV(const data::Table& table, size_t attr_a, size_t attr_b) {
  DAISY_CHECK(table.schema().attribute(attr_a).is_categorical());
  DAISY_CHECK(table.schema().attribute(attr_b).is_categorical());
  const size_t ka = table.schema().attribute(attr_a).domain_size();
  const size_t kb = table.schema().attribute(attr_b).domain_size();
  const size_t n = table.num_records();
  DAISY_CHECK(n > 0);

  std::vector<double> joint(ka * kb, 0.0), ma(ka, 0.0), mb(kb, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t a = table.category(i, attr_a);
    const size_t b = table.category(i, attr_b);
    joint[a * kb + b] += 1.0;
    ma[a] += 1.0;
    mb[b] += 1.0;
  }
  double chi2 = 0.0;
  const double dn = static_cast<double>(n);
  for (size_t a = 0; a < ka; ++a) {
    for (size_t b = 0; b < kb; ++b) {
      const double expected = ma[a] * mb[b] / dn;
      if (expected <= 0.0) continue;
      const double d = joint[a * kb + b] - expected;
      chi2 += d * d / expected;
    }
  }
  const size_t min_dim = std::min(ka, kb);
  if (min_dim <= 1) return 0.0;
  return std::sqrt(chi2 / (dn * static_cast<double>(min_dim - 1)));
}

FidelityReport EvaluateFidelity(const data::Table& real,
                                const data::Table& synthetic,
                                const FidelityOptions& options) {
  DAISY_CHECK(real.num_attributes() == synthetic.num_attributes());
  DAISY_CHECK(real.num_records() > 1 && synthetic.num_records() > 1);
  FidelityReport report;

  // Pairwise numeric correlation difference.
  const auto nums = NumericAttrs(real.schema());
  if (nums.size() >= 2) {
    obs::ScopedTimerMs timer(&report.numeric_ms);
    // Materialize every numeric column once; the parallel pair loop
    // then only reads shared state.
    std::vector<std::vector<double>> real_cols(nums.size());
    std::vector<std::vector<double>> synth_cols(nums.size());
    for (size_t i = 0; i < nums.size(); ++i) {
      real_cols[i] = real.Column(nums[i]);
      synth_cols[i] = synthetic.Column(nums[i]);
    }
    std::vector<std::pair<size_t, size_t>> index_pairs;
    for (size_t i = 0; i < nums.size(); ++i)
      for (size_t j = i + 1; j < nums.size(); ++j)
        index_pairs.push_back({i, j});
    std::vector<double> diffs(index_pairs.size(), 0.0);
    par::ParallelFor(0, index_pairs.size(), 1, [&](size_t p0, size_t p1) {
      for (size_t p = p0; p < p1; ++p) {
        const auto [i, j] = index_pairs[p];
        const double cr =
            stats::PearsonCorrelation(real_cols[i], real_cols[j]);
        const double cs =
            stats::PearsonCorrelation(synth_cols[i], synth_cols[j]);
        diffs[p] = std::fabs(cr - cs);
      }
    });
    double total = 0.0;
    for (double d : diffs) total += d;
    report.numeric_correlation_diff =
        total / static_cast<double>(diffs.size());
  }

  // Pairwise categorical association difference.
  const auto cats = CategoricalAttrs(real.schema());
  if (cats.size() >= 2) {
    obs::ScopedTimerMs timer(&report.categorical_ms);
    const auto pairs = UpperTrianglePairs(cats);
    std::vector<double> diffs(pairs.size(), 0.0);
    par::ParallelFor(0, pairs.size(), 1, [&](size_t p0, size_t p1) {
      for (size_t p = p0; p < p1; ++p) {
        diffs[p] = std::fabs(CramersV(real, pairs[p].a, pairs[p].b) -
                             CramersV(synthetic, pairs[p].a, pairs[p].b));
      }
    });
    double total = 0.0;
    for (double d : diffs) total += d;
    report.categorical_association_diff =
        total / static_cast<double>(diffs.size());
  }

  // Mean marginal KL, one independent slot per attribute.
  {
    obs::ScopedTimerMs timer(&report.marginal_kl_ms);
    std::vector<double> kl(real.num_attributes(), 0.0);
    par::ParallelFor(0, real.num_attributes(), 1, [&](size_t j0, size_t j1) {
      for (size_t j = j0; j < j1; ++j) {
        const auto& attr = real.schema().attribute(j);
        if (attr.is_categorical()) {
          std::vector<double> hr(attr.domain_size(), 0.0);
          std::vector<double> hs(attr.domain_size(), 0.0);
          for (size_t i = 0; i < real.num_records(); ++i)
            hr[real.category(i, j)] += 1.0;
          for (size_t i = 0; i < synthetic.num_records(); ++i)
            hs[synthetic.category(i, j)] += 1.0;
          kl[j] = stats::KlDivergence(hr, hs);
        } else {
          // Histogram with explicit under/overflow bins: synthetic
          // values outside the real [lo, hi] support land in the
          // outlier bins and are penalized by the KL term instead of
          // being clamped into the edge bins (which understated the
          // divergence of out-of-range synthesis).
          const double lo = real.AttributeMin(j);
          const double hi = real.AttributeMax(j);
          kl[j] = stats::KlDivergence(
              stats::HistogramWithOutliers(real.Column(j), lo, hi,
                                           options.histogram_bins),
              stats::HistogramWithOutliers(synthetic.Column(j), lo, hi,
                                           options.histogram_bins));
        }
      }
    });
    double kl_total = 0.0;
    for (double v : kl) kl_total += v;
    report.marginal_kl =
        kl_total / static_cast<double>(real.num_attributes());
  }
  return report;
}

RareModeReport RareModeRecall(const data::Table& real,
                              const data::Table& synthetic,
                              double rare_threshold) {
  DAISY_CHECK(real.num_attributes() == synthetic.num_attributes());
  DAISY_CHECK(real.num_records() > 0);
  RareModeReport report;
  const double n = static_cast<double>(real.num_records());
  for (size_t j = 0; j < real.num_attributes(); ++j) {
    const auto& attr = real.schema().attribute(j);
    if (!attr.is_categorical()) continue;
    std::vector<size_t> cr(attr.domain_size(), 0);
    std::vector<size_t> cs(attr.domain_size(), 0);
    for (size_t i = 0; i < real.num_records(); ++i)
      ++cr[real.category(i, j)];
    for (size_t i = 0; i < synthetic.num_records(); ++i)
      ++cs[synthetic.category(i, j)];
    for (size_t c = 0; c < attr.domain_size(); ++c) {
      if (cr[c] == 0) continue;  // absent in the data: not a mode at all
      if (static_cast<double>(cr[c]) / n > rare_threshold) continue;
      ++report.rare_modes;
      if (cs[c] > 0) ++report.recovered_modes;
    }
  }
  report.recall = report.rare_modes == 0
                      ? 1.0
                      : static_cast<double>(report.recovered_modes) /
                            static_cast<double>(report.rare_modes);
  return report;
}

double PerCategoryKl(const data::Table& real, const data::Table& synthetic,
                     double smoothing) {
  DAISY_CHECK(real.num_attributes() == synthetic.num_attributes());
  DAISY_CHECK(real.num_records() > 0 && synthetic.num_records() > 0);
  DAISY_CHECK(smoothing > 0.0);
  double total = 0.0;
  size_t cat_attrs = 0;
  for (size_t j = 0; j < real.num_attributes(); ++j) {
    const auto& attr = real.schema().attribute(j);
    if (!attr.is_categorical()) continue;
    ++cat_attrs;
    const size_t k = attr.domain_size();
    std::vector<double> cr(k, 0.0), cs(k, 0.0);
    for (size_t i = 0; i < real.num_records(); ++i)
      cr[real.category(i, j)] += 1.0;
    for (size_t i = 0; i < synthetic.num_records(); ++i)
      cs[synthetic.category(i, j)] += 1.0;
    const double zr = static_cast<double>(real.num_records()) +
                      smoothing * static_cast<double>(k);
    const double zs = static_cast<double>(synthetic.num_records()) +
                      smoothing * static_cast<double>(k);
    double kl = 0.0;
    for (size_t c = 0; c < k; ++c) {
      const double p = (cr[c] + smoothing) / zr;
      const double q = (cs[c] + smoothing) / zs;
      kl += p * std::log(p / q);
    }
    total += kl;
  }
  return cat_attrs > 0 ? total / static_cast<double>(cat_attrs) : 0.0;
}

std::vector<FunctionalDependency> DiscoverFds(const data::Table& table,
                                              double min_confidence) {
  DAISY_CHECK(table.num_records() > 0);
  const auto cats = CategoricalAttrs(table.schema());
  const double n = static_cast<double>(table.num_records());

  // All ordered (lhs, rhs) candidate pairs, in the serial scan order.
  std::vector<AttrPair> candidates;
  for (size_t li = 0; li < cats.size(); ++li)
    for (size_t ri = 0; ri < cats.size(); ++ri)
      if (li != ri) candidates.push_back({cats[li], cats[ri]});

  std::vector<FunctionalDependency> discovered(candidates.size());
  par::ParallelFor(0, candidates.size(), 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const size_t lhs = candidates[c].a, rhs = candidates[c].b;
      const size_t kl = table.schema().attribute(lhs).domain_size();
      const size_t kr = table.schema().attribute(rhs).domain_size();
      std::vector<double> joint(kl * kr, 0.0);
      for (size_t i = 0; i < table.num_records(); ++i)
        joint[table.category(i, lhs) * kr + table.category(i, rhs)] += 1.0;

      FunctionalDependency fd;
      fd.lhs = lhs;
      fd.rhs = rhs;
      fd.rhs_domain = kr;
      fd.mapping.assign(kl, kr);  // kr marks "lhs value unseen"
      double agree = 0.0;
      for (size_t a = 0; a < kl; ++a) {
        double best = 0.0, total = 0.0;
        size_t best_b = kr;
        for (size_t b = 0; b < kr; ++b) {
          total += joint[a * kr + b];
          if (joint[a * kr + b] > best) {
            best = joint[a * kr + b];
            best_b = b;
          }
        }
        if (total > 0.0) fd.mapping[a] = best_b;
        agree += best;
      }
      fd.confidence = agree / n;
      discovered[c] = std::move(fd);
    }
  });

  std::vector<FunctionalDependency> fds;
  for (auto& fd : discovered)
    if (fd.confidence >= min_confidence) fds.push_back(std::move(fd));
  return fds;
}

double FdViolationRate(const data::Table& synthetic,
                       const std::vector<FunctionalDependency>& fds) {
  if (fds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& fd : fds) {
    // The unseen-lhs sentinel is the *discovery* table's rhs domain
    // size, not the synthetic schema's: comparing against the synthetic
    // domain would mistake the sentinel for a real category whenever
    // the synthetic schema's rhs domain is larger.
    const size_t sentinel = fd.rhs_domain > 0
                                ? fd.rhs_domain
                                : std::numeric_limits<size_t>::max();
    size_t checked = 0, violated = 0;
    for (size_t i = 0; i < synthetic.num_records(); ++i) {
      const size_t a = synthetic.category(i, fd.lhs);
      DAISY_CHECK(a < fd.mapping.size());
      const size_t expected = fd.mapping[a];
      if (expected >= sentinel)
        continue;  // lhs value unseen at discovery time
      ++checked;
      if (synthetic.category(i, fd.rhs) != expected) ++violated;
    }
    total += checked > 0
                 ? static_cast<double>(violated) / static_cast<double>(checked)
                 : 0.0;
  }
  return total / static_cast<double>(fds.size());
}

}  // namespace daisy::eval

#include "eval/fidelity.h"

#include <algorithm>
#include <cmath>

#include "stats/metrics.h"

namespace daisy::eval {

namespace {

std::vector<size_t> NumericAttrs(const data::Schema& schema) {
  std::vector<size_t> out;
  for (size_t j = 0; j < schema.num_attributes(); ++j)
    if (!schema.attribute(j).is_categorical()) out.push_back(j);
  return out;
}

std::vector<size_t> CategoricalAttrs(const data::Schema& schema) {
  std::vector<size_t> out;
  for (size_t j = 0; j < schema.num_attributes(); ++j)
    if (schema.attribute(j).is_categorical()) out.push_back(j);
  return out;
}

}  // namespace

double CramersV(const data::Table& table, size_t attr_a, size_t attr_b) {
  DAISY_CHECK(table.schema().attribute(attr_a).is_categorical());
  DAISY_CHECK(table.schema().attribute(attr_b).is_categorical());
  const size_t ka = table.schema().attribute(attr_a).domain_size();
  const size_t kb = table.schema().attribute(attr_b).domain_size();
  const size_t n = table.num_records();
  DAISY_CHECK(n > 0);

  std::vector<double> joint(ka * kb, 0.0), ma(ka, 0.0), mb(kb, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t a = table.category(i, attr_a);
    const size_t b = table.category(i, attr_b);
    joint[a * kb + b] += 1.0;
    ma[a] += 1.0;
    mb[b] += 1.0;
  }
  double chi2 = 0.0;
  const double dn = static_cast<double>(n);
  for (size_t a = 0; a < ka; ++a) {
    for (size_t b = 0; b < kb; ++b) {
      const double expected = ma[a] * mb[b] / dn;
      if (expected <= 0.0) continue;
      const double d = joint[a * kb + b] - expected;
      chi2 += d * d / expected;
    }
  }
  const size_t min_dim = std::min(ka, kb);
  if (min_dim <= 1) return 0.0;
  return std::sqrt(chi2 / (dn * static_cast<double>(min_dim - 1)));
}

FidelityReport EvaluateFidelity(const data::Table& real,
                                const data::Table& synthetic,
                                const FidelityOptions& options) {
  DAISY_CHECK(real.num_attributes() == synthetic.num_attributes());
  DAISY_CHECK(real.num_records() > 1 && synthetic.num_records() > 1);
  FidelityReport report;

  // Pairwise numeric correlation difference.
  const auto nums = NumericAttrs(real.schema());
  if (nums.size() >= 2) {
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < nums.size(); ++i) {
      const auto real_i = real.Column(nums[i]);
      const auto synth_i = synthetic.Column(nums[i]);
      for (size_t j = i + 1; j < nums.size(); ++j) {
        const double cr =
            stats::PearsonCorrelation(real_i, real.Column(nums[j]));
        const double cs =
            stats::PearsonCorrelation(synth_i, synthetic.Column(nums[j]));
        total += std::fabs(cr - cs);
        ++pairs;
      }
    }
    report.numeric_correlation_diff = total / static_cast<double>(pairs);
  }

  // Pairwise categorical association difference.
  const auto cats = CategoricalAttrs(real.schema());
  if (cats.size() >= 2) {
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < cats.size(); ++i) {
      for (size_t j = i + 1; j < cats.size(); ++j) {
        total += std::fabs(CramersV(real, cats[i], cats[j]) -
                           CramersV(synthetic, cats[i], cats[j]));
        ++pairs;
      }
    }
    report.categorical_association_diff =
        total / static_cast<double>(pairs);
  }

  // Mean marginal KL.
  double kl_total = 0.0;
  for (size_t j = 0; j < real.num_attributes(); ++j) {
    const auto& attr = real.schema().attribute(j);
    if (attr.is_categorical()) {
      std::vector<double> hr(attr.domain_size(), 0.0);
      std::vector<double> hs(attr.domain_size(), 0.0);
      for (size_t i = 0; i < real.num_records(); ++i)
        hr[real.category(i, j)] += 1.0;
      for (size_t i = 0; i < synthetic.num_records(); ++i)
        hs[synthetic.category(i, j)] += 1.0;
      kl_total += stats::KlDivergence(hr, hs);
    } else {
      const double lo = real.AttributeMin(j);
      const double hi = real.AttributeMax(j);
      kl_total += stats::KlDivergence(
          stats::Histogram(real.Column(j), lo, hi, options.histogram_bins),
          stats::Histogram(synthetic.Column(j), lo, hi,
                           options.histogram_bins));
    }
  }
  report.marginal_kl =
      kl_total / static_cast<double>(real.num_attributes());
  return report;
}

std::vector<FunctionalDependency> DiscoverFds(const data::Table& table,
                                              double min_confidence) {
  DAISY_CHECK(table.num_records() > 0);
  std::vector<FunctionalDependency> fds;
  const auto cats = CategoricalAttrs(table.schema());
  const double n = static_cast<double>(table.num_records());
  for (size_t li = 0; li < cats.size(); ++li) {
    for (size_t ri = 0; ri < cats.size(); ++ri) {
      if (li == ri) continue;
      const size_t lhs = cats[li], rhs = cats[ri];
      const size_t kl = table.schema().attribute(lhs).domain_size();
      const size_t kr = table.schema().attribute(rhs).domain_size();
      std::vector<double> joint(kl * kr, 0.0);
      for (size_t i = 0; i < table.num_records(); ++i)
        joint[table.category(i, lhs) * kr + table.category(i, rhs)] += 1.0;

      FunctionalDependency fd;
      fd.lhs = lhs;
      fd.rhs = rhs;
      fd.mapping.assign(kl, kr);  // kr marks "lhs value unseen"
      double agree = 0.0;
      for (size_t a = 0; a < kl; ++a) {
        double best = 0.0, total = 0.0;
        size_t best_b = kr;
        for (size_t b = 0; b < kr; ++b) {
          total += joint[a * kr + b];
          if (joint[a * kr + b] > best) {
            best = joint[a * kr + b];
            best_b = b;
          }
        }
        if (total > 0.0) fd.mapping[a] = best_b;
        agree += best;
      }
      fd.confidence = agree / n;
      if (fd.confidence >= min_confidence) fds.push_back(std::move(fd));
    }
  }
  return fds;
}

double FdViolationRate(const data::Table& synthetic,
                       const std::vector<FunctionalDependency>& fds) {
  if (fds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& fd : fds) {
    size_t checked = 0, violated = 0;
    for (size_t i = 0; i < synthetic.num_records(); ++i) {
      const size_t a = synthetic.category(i, fd.lhs);
      DAISY_CHECK(a < fd.mapping.size());
      const size_t expected = fd.mapping[a];
      if (expected >= synthetic.schema().attribute(fd.rhs).domain_size())
        continue;  // lhs value unseen at discovery time
      ++checked;
      if (synthetic.category(i, fd.rhs) != expected) ++violated;
    }
    total += checked > 0
                 ? static_cast<double>(violated) / static_cast<double>(checked)
                 : 0.0;
  }
  return total / static_cast<double>(fds.size());
}

}  // namespace daisy::eval

// Approximate-query-processing utility evaluation (paper §2.1 / §6.2,
// following the query generation of the Bing AQP benchmark [36]):
// aggregate queries (count / sum / avg) with conjunctive selection
// predicates and optional group-by, executed against the original
// table, the synthetic table, and fixed-size random samples. The
// reported measure is DiffAQP = mean over the workload of |e - e'|.
//
// AqpDiff draws its repeated baseline samples serially and then
// executes the (query x baseline-sample) grid in parallel with a
// fixed-order reduction, so the result is bitwise identical for any
// DAISY_THREADS value.
#ifndef DAISY_EVAL_AQP_H_
#define DAISY_EVAL_AQP_H_

#include <map>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "data/table.h"

namespace daisy::eval {

enum class AggFunc { kCount, kSum, kAvg };

/// Conjunctive selection condition on one attribute.
struct AqpPredicate {
  size_t attr = 0;
  bool is_categorical = false;
  size_t category = 0;        // equality, categorical attributes
  double lo = 0.0, hi = 0.0;  // inclusive range, numerical attributes
};

struct AqpQuery {
  AggFunc func = AggFunc::kCount;
  int target_attr = -1;              // numerical; required for sum/avg
  std::vector<AqpPredicate> predicates;
  int group_by_attr = -1;            // categorical, or -1 for none
};

/// Query result: group key (0 when ungrouped) -> aggregate value.
using AqpResult = std::map<size_t, double>;

/// Scans the table. `scale` multiplies count/sum results (used to
/// extrapolate from a sample: scale = 1/sample_ratio).
AqpResult ExecuteAqpQuery(const data::Table& table, const AqpQuery& query,
                          double scale = 1.0);

/// Relative error of `approx` against `exact`, averaged over the
/// groups of the exact result; a group missing from `approx` counts
/// as error 1.
double RelativeError(const AqpResult& exact, const AqpResult& approx);

struct AqpWorkloadOptions {
  size_t num_queries = 1000;   // must be > 0
  size_t min_predicates = 1;
  size_t max_predicates = 3;   // must be >= min_predicates
  double group_by_prob = 0.5;
};

/// Random workload over the table's schema (statistics for numeric
/// ranges come from the table itself). Returns InvalidArgument for a
/// degenerate options struct (zero queries, max_predicates below
/// min_predicates — which would otherwise wrap the predicate count to
/// a huge unsigned value) or a table with no non-label attributes.
Result<std::vector<AqpQuery>> GenerateAqpWorkload(
    const data::Table& table, const AqpWorkloadOptions& opts, Rng* rng);

struct AqpDiffOptions {
  double sample_ratio = 0.01;  // the paper's 1% baseline sample; (0, 1]
  size_t sample_repeats = 10;  // averaged to remove sampling noise; > 0
};

/// DiffAQP between real and synthetic tables over a workload. Returns
/// InvalidArgument on an empty workload/table or degenerate options
/// (zero sample_repeats would otherwise yield a 0/0 NaN).
Result<double> AqpDiff(const data::Table& real, const data::Table& synthetic,
                       const std::vector<AqpQuery>& workload,
                       const AqpDiffOptions& opts, Rng* rng);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_AQP_H_

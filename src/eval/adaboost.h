// AdaBoost (SAMME, multi-class capable) over shallow decision trees —
// the paper's "AB" classifier.
#ifndef DAISY_EVAL_ADABOOST_H_
#define DAISY_EVAL_ADABOOST_H_

#include <vector>

#include "eval/decision_tree.h"

namespace daisy::eval {

struct AdaBoostOptions {
  /// Boosting rounds (weak learners trained).
  size_t num_estimators = 30;
  /// Depth of each weak learner; 1 = decision stumps.
  size_t base_depth = 1;
};

/// Boosted shallow trees; multi-class via the SAMME vote weighting.
class AdaBoost : public Classifier {
 public:
  explicit AdaBoost(AdaBoostOptions opts = {}) : opts_(opts) {}

  void Fit(const Matrix& x, const std::vector<size_t>& y, size_t num_classes,
           Rng* rng) override;
  size_t Predict(const double* x) const override;
  std::vector<double> PredictProba(const double* x) const override;

 private:
  AdaBoostOptions opts_;
  size_t num_classes_ = 0;
  std::vector<DecisionTree> estimators_;
  std::vector<double> alphas_;
};

}  // namespace daisy::eval

#endif  // DAISY_EVAL_ADABOOST_H_

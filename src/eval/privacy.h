// Privacy risk metrics (paper §6.2): hitting rate and distance to the
// closest record (DCR), both estimating re-identification risk.
//
// Both metrics sample their probe rows from the caller's Rng serially
// up front and then fan the per-row scans out over core/parallel with
// fixed-order reductions, so results are bitwise identical for any
// DAISY_THREADS value.
#ifndef DAISY_EVAL_PRIVACY_H_
#define DAISY_EVAL_PRIVACY_H_

#include "core/rng.h"
#include "core/status.h"
#include "data/table.h"

namespace daisy::eval {

struct HittingRateOptions {
  /// Synthetic records sampled (paper: 5000). Must be > 0.
  size_t num_synthetic_samples = 5000;
  /// Numeric similarity threshold = attribute range / divisor
  /// (paper: 30). Must be > 0.
  double range_divisor = 30.0;
};

/// Fraction of sampled synthetic records that "hit" (are similar to) at
/// least one original record: every categorical value equal and every
/// numeric value within range/divisor. Returned as a fraction in
/// [0, 1] (the paper reports it as a percentage). Returns
/// InvalidArgument on empty tables, mismatched schema widths, or
/// degenerate options (zero samples would otherwise yield a 0/0 NaN).
Result<double> HittingRate(const data::Table& original,
                           const data::Table& synthetic,
                           const HittingRateOptions& opts, Rng* rng);

struct DcrOptions {
  /// Original records sampled (paper: 3000). Must be > 0.
  size_t num_original_samples = 3000;
};

/// Average Euclidean distance from sampled original records to their
/// nearest synthetic record, after attribute-wise min-max
/// normalization (categorical mismatch contributes 1). Larger = better
/// privacy; 0 means the synthetic table leaks a real record. Returns
/// InvalidArgument on empty tables, mismatched schema widths, or zero
/// samples.
Result<double> DistanceToClosestRecord(const data::Table& original,
                                       const data::Table& synthetic,
                                       const DcrOptions& opts, Rng* rng);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_PRIVACY_H_

// Classifier interface for the data-utility evaluation (paper §6.2):
// decision trees (depth 10/30), random forests (depth 10/20), AdaBoost
// and logistic regression, all trained on a feature matrix where
// categorical attributes appear as ordinal indices.
#ifndef DAISY_EVAL_CLASSIFIER_H_
#define DAISY_EVAL_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"

namespace daisy::eval {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on rows of X with labels y in [0, num_classes).
  virtual void Fit(const Matrix& x, const std::vector<size_t>& y,
                   size_t num_classes, Rng* rng) = 0;

  /// Predicted class of one feature row.
  virtual size_t Predict(const double* x) const = 0;

  /// Class-probability estimates (sums to 1).
  virtual std::vector<double> PredictProba(const double* x) const = 0;

  /// Predictions for every row.
  std::vector<size_t> PredictAll(const Matrix& x) const {
    std::vector<size_t> out(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) out[i] = Predict(x.row(i));
    return out;
  }
};

/// The classifier suite of the paper's evaluation.
enum class ClassifierKind { kDt10, kDt30, kRf10, kRf20, kAdaBoost, kLogReg };

/// "DT10", "RF20", ... as used in the paper's tables.
std::string ClassifierKindName(ClassifierKind kind);

/// All six kinds, in the paper's column order.
std::vector<ClassifierKind> AllClassifierKinds();

/// Factory with paper-matching hyper-parameters.
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_CLASSIFIER_H_

#include "eval/random_forest.h"

#include <algorithm>
#include <cmath>

namespace daisy::eval {

void RandomForest::Fit(const Matrix& x, const std::vector<size_t>& y,
                       size_t num_classes, Rng* rng) {
  DAISY_CHECK(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = num_classes;
  trees_.clear();

  size_t max_features = opts_.max_features;
  if (max_features == 0) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               std::sqrt(static_cast<double>(x.cols())))));
  }

  for (size_t t = 0; t < opts_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> rows(x.rows());
    for (auto& r : rows) r = rng->UniformInt(x.rows());
    Matrix bx = x.GatherRows(rows);
    std::vector<size_t> by(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) by[i] = y[rows[i]];

    DecisionTreeOptions topts;
    topts.max_depth = opts_.max_depth;
    topts.max_features = max_features;
    trees_.emplace_back(topts);
    trees_.back().Fit(bx, by, num_classes, rng);
  }
}

std::vector<double> RandomForest::PredictProba(const double* x) const {
  DAISY_CHECK(!trees_.empty());
  std::vector<double> probs(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.PredictProba(x);
    for (size_t c = 0; c < num_classes_; ++c) probs[c] += p[c];
  }
  for (auto& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

size_t RandomForest::Predict(const double* x) const {
  const auto probs = PredictProba(x);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace daisy::eval

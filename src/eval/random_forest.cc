#include "eval/random_forest.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"

namespace daisy::eval {

void RandomForest::Fit(const Matrix& x, const std::vector<size_t>& y,
                       size_t num_classes, Rng* rng) {
  DAISY_CHECK(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = num_classes;

  size_t max_features = opts_.max_features;
  if (max_features == 0) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               std::sqrt(static_cast<double>(x.cols())))));
  }
  DecisionTreeOptions topts;
  topts.max_depth = opts_.max_depth;
  topts.max_features = max_features;
  trees_.assign(opts_.num_trees, DecisionTree(topts));

  // One independent deterministic stream per tree, split from the
  // caller's rng serially up front (the PATE-GAN teacher pattern): each
  // tree draws its bootstrap sample and split features from its own
  // stream and writes only its own slot, so the bagging fan-out is
  // bitwise identical for any thread count.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(opts_.num_trees);
  for (size_t t = 0; t < opts_.num_trees; ++t)
    tree_rngs.push_back(rng->Split());

  par::ParallelFor(0, opts_.num_trees, 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      Rng& trng = tree_rngs[t];
      std::vector<size_t> rows(x.rows());
      for (auto& r : rows) r = trng.UniformInt(x.rows());
      Matrix bx = x.GatherRows(rows);
      std::vector<size_t> by(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) by[i] = y[rows[i]];
      trees_[t].Fit(bx, by, num_classes, &trng);
    }
  });
}

std::vector<double> RandomForest::PredictProba(const double* x) const {
  DAISY_CHECK(!trees_.empty());
  std::vector<double> probs(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.PredictProba(x);
    for (size_t c = 0; c < num_classes_; ++c) probs[c] += p[c];
  }
  for (auto& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

size_t RandomForest::Predict(const double* x) const {
  const auto probs = PredictProba(x);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace daisy::eval

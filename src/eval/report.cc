#include "eval/report.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "data/profile.h"
#include "eval/fidelity.h"
#include "eval/privacy.h"
#include "eval/utility.h"

namespace daisy::eval {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string GenerateQualityReport(const data::Table& real,
                                  const data::Table& synthetic,
                                  const QualityReportOptions& options) {
  DAISY_CHECK(real.num_attributes() == synthetic.num_attributes());
  DAISY_CHECK(real.num_records() > 1 && synthetic.num_records() > 1);
  std::string out;
  out += "# Synthetic data quality report\n\n";
  Append(&out, "Real table: %zu records. Synthetic table: %zu records.\n\n",
         real.num_records(), synthetic.num_records());

  // ---- Utility (Eq. 1) -------------------------------------------
  if (options.include_utility && real.schema().has_label()) {
    out += "## Classification utility (F1 Diff; lower is better)\n\n";
    out += "| Classifier | F1 (real) | F1 (synthetic) | Diff |\n";
    out += "|---|---|---|---|\n";
    Rng split_rng(options.seed);
    auto split = data::SplitTable(real, options.train_ratio, 0.0,
                                  &split_rng);
    for (auto kind : AllClassifierKinds()) {
      Rng r1(options.seed + 1), r2(options.seed + 1);
      const double f1_real =
          TrainAndScoreF1(split.train, split.test, kind, &r1);
      const double f1_synth =
          TrainAndScoreF1(synthetic, split.test, kind, &r2);
      Append(&out, "| %s | %.4f | %.4f | %.4f |\n",
             ClassifierKindName(kind).c_str(), f1_real, f1_synth,
             std::fabs(f1_real - f1_synth));
    }
    out += "\n";
  }

  // ---- Fidelity ---------------------------------------------------
  {
    const auto fid = EvaluateFidelity(real, synthetic);
    out += "## Statistical fidelity (lower is better)\n\n";
    Append(&out, "- mean marginal KL: **%.4f**\n", fid.marginal_kl);
    Append(&out, "- mean pairwise numeric-correlation diff: **%.4f**\n",
           fid.numeric_correlation_diff);
    Append(&out, "- mean pairwise categorical-association diff: "
                 "**%.4f**\n",
           fid.categorical_association_diff);
    const auto fds = DiscoverFds(real, 0.95);
    if (!fds.empty()) {
      Append(&out,
             "- functional dependencies: %zu discovered in the real "
             "table; violation rate in the synthetic table **%.4f**\n",
             fds.size(), FdViolationRate(synthetic, fds));
    }
    out += "\n";
  }

  // ---- Privacy ----------------------------------------------------
  {
    out += "## Privacy risk\n\n";
    HittingRateOptions hopts;
    hopts.num_synthetic_samples = options.privacy_samples;
    DcrOptions dopts;
    dopts.num_original_samples = options.privacy_samples;
    Rng r1(options.seed + 2), r2(options.seed + 3);
    const auto hit = HittingRate(real, synthetic, hopts, &r1);
    const auto dcr = DistanceToClosestRecord(real, synthetic, dopts, &r2);
    // The report asserts table sanity up front, so a privacy error here
    // can only be a degenerate options struct — a caller bug.
    DAISY_CHECK(hit.ok() && dcr.ok());
    Append(&out,
           "- hitting rate: **%.2f%%** of sampled synthetic records "
           "match a real record attribute-for-attribute\n",
           100.0 * hit.value());
    Append(&out,
           "- DCR: average normalized distance from a real record to "
           "its closest synthetic record is **%.4f** (0 would mean a "
           "leaked record)\n\n",
           dcr.value());
  }

  // ---- Profiles ---------------------------------------------------
  out += "## Attribute profiles\n\n### Real\n\n```\n";
  out += data::ProfileToString(data::ProfileTable(real));
  out += "```\n\n### Synthetic\n\n```\n";
  out += data::ProfileToString(data::ProfileTable(synthetic));
  out += "```\n";
  return out;
}

}  // namespace daisy::eval

// Classification metrics: per-label F1, the paper's evaluation F1
// (positive label for binary, rarest label for multi-class), and AUC.
#ifndef DAISY_EVAL_CLASS_METRICS_H_
#define DAISY_EVAL_CLASS_METRICS_H_

#include <cstddef>
#include <vector>

namespace daisy::eval {

/// F1 score of one class (0 when the class never appears in either
/// predictions or truth).
double F1ForLabel(const std::vector<size_t>& predicted,
                  const std::vector<size_t>& truth, size_t label);

/// The label whose F1 the paper reports: for binary problems the
/// positive (rarer) label, for multi-class the rarest label in `truth`.
size_t EvaluationLabel(const std::vector<size_t>& truth, size_t num_classes);

/// Paper-style F1: F1ForLabel at EvaluationLabel.
double PaperF1(const std::vector<size_t>& predicted,
               const std::vector<size_t>& truth, size_t num_classes);

/// Area under the ROC curve from positive-class scores (binary).
/// Rank-based (Mann-Whitney); ties get half credit.
double AucBinary(const std::vector<double>& positive_scores,
                 const std::vector<size_t>& truth, size_t positive_label);

/// Plain accuracy.
double Accuracy(const std::vector<size_t>& predicted,
                const std::vector<size_t>& truth);

}  // namespace daisy::eval

#endif  // DAISY_EVAL_CLASS_METRICS_H_

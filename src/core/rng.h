// Deterministic random number generation. Every stochastic component in
// the library takes an explicit Rng so experiments are reproducible.
#ifndef DAISY_CORE_RNG_H_
#define DAISY_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/status.h"

namespace daisy {

/// xoshiro256** PRNG seeded via splitmix64. Fast, high quality, and
/// deterministic across platforms (unlike distributions in <random>).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();

  /// Normal with the given mean / stddev.
  double Gaussian(double mean, double stddev);

  /// Laplace(0, b) noise via inverse CDF.
  double Laplace(double b);

  /// Index drawn from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size()-1 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Fork a new independent stream (e.g. one per worker / component).
  Rng Split();

  /// Complete engine state as opaque words: the four xoshiro words plus
  /// the Box-Muller cache (has_cached flag and cached value bits).
  /// Restoring via SetState resumes the exact output stream, so a
  /// checkpointed run continues bit-for-bit where it left off.
  std::vector<uint64_t> GetState() const;

  /// Restores state captured by GetState. Rejects wrong-sized vectors
  /// and an all-zero xoshiro state (which would lock the engine at 0).
  Status SetState(const std::vector<uint64_t>& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace daisy

#endif  // DAISY_CORE_RNG_H_

// Parallel-execution substrate: a lazily-initialized fixed thread pool
// and a ParallelFor primitive used by the Matrix kernels (and anything
// else that wants deterministic data parallelism).
//
// Determinism contract: ParallelFor partitions [begin, end) into chunks
// of `grain` iterations purely as a function of (begin, end, grain) —
// never of the thread count — and each chunk is executed sequentially
// by exactly one thread. A kernel whose chunks write disjoint outputs
// (and whose per-output accumulation order is fixed by the code, not by
// the partition) therefore produces bit-identical results for any
// DAISY_THREADS value, including 1.
#ifndef DAISY_CORE_PARALLEL_H_
#define DAISY_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace daisy::par {

/// Resolved worker count: the last SetNumThreads() value, else the
/// DAISY_THREADS environment variable, else hardware_concurrency.
/// Always >= 1.
size_t NumThreads();

/// Overrides the thread count. `n == 0` restores automatic resolution
/// (DAISY_THREADS env var, then hardware_concurrency); `n == 1` is an
/// exact single-threaded fallback — ParallelFor runs the body inline on
/// the calling thread with no pool interaction at all.
void SetNumThreads(size_t n);

/// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end)
/// into chunks of `grain` iterations (the last chunk may be short).
/// Chunks run concurrently across the pool; each chunk runs on exactly
/// one thread. Falls back to a single inline fn(begin, end) call when
/// there is one chunk, one configured thread, or the caller is itself
/// inside a ParallelFor body (no nested parallelism).
///
/// fn must tolerate any partition of the range (see the determinism
/// contract above) and must not throw.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Like ParallelFor, but fn also receives the chunk index
/// ((chunk_begin - begin) / grain). Unlike ParallelFor — whose inline
/// fallback runs one fn(begin, end) call over the whole range — the
/// single-threaded/nested fallback here still invokes fn once per
/// chunk, in ascending chunk order. Callers that accumulate into
/// chunk-indexed partial sums (reduced in chunk order afterwards)
/// therefore see the exact same partition, and produce bit-identical
/// results, for any DAISY_THREADS value.
void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t chunk, size_t, size_t)>& fn);

/// Number of chunks ParallelFor / ParallelForIndexed partition
/// [begin, end) into for the given grain — a pure function of the
/// range, never of the thread count. Callers that reduce per-chunk
/// partial results in ascending chunk order use it to size the partial
/// buffer. Returns 0 for an empty range.
size_t NumChunks(size_t begin, size_t end, size_t grain);

}  // namespace daisy::par

#endif  // DAISY_CORE_PARALLEL_H_

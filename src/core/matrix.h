// Dense row-major matrix of doubles: the numeric workhorse underneath
// the neural-network and statistics substrates. Deliberately small —
// only the operations the library needs, all bounds-checked via
// DAISY_CHECK on shape mismatches.
#ifndef DAISY_CORE_MATRIX_H_
#define DAISY_CORE_MATRIX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"

namespace daisy {

class Rng;

/// Row-major dense matrix. A batch of N samples with F features is an
/// N x F matrix; a single vector is 1 x F.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer data (test convenience).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// rows x cols with i.i.d. N(0, stddev^2) entries.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng, double stddev = 1.0);

  /// rows x cols with i.i.d. Uniform(lo, hi) entries.
  static Matrix RandUniform(size_t rows, size_t cols, Rng* rng, double lo,
                            double hi);

  /// Identity matrix n x n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    DAISY_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    DAISY_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  /// Matrix product: (n x k) * (k x m) -> (n x m).
  Matrix MatMul(const Matrix& other) const;
  /// this^T * other: (k x n)^T treated as...; computes Transpose().MatMul
  /// without materializing the transpose.
  Matrix TransposeMatMul(const Matrix& other) const;
  /// this * other^T without materializing the transpose.
  Matrix MatMulTranspose(const Matrix& other) const;

  Matrix Transpose() const;

  // Elementwise arithmetic (shapes must match exactly).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;

  /// Hadamard (elementwise) product.
  Matrix CWiseMul(const Matrix& other) const;

  /// Adds a 1 x cols row vector to every row (broadcast).
  Matrix& AddRowBroadcast(const Matrix& row_vec);

  /// Applies f to every element, returning a new matrix. Large
  /// matrices are processed in parallel, so f must be a pure function
  /// of its argument (no mutable captured state). COLD PATH ONLY: f is
  /// an indirect std::function call per element — training/serving hot
  /// loops (activations, losses) go through the dispatched SIMD
  /// kernels in core/kernels/ instead.
  Matrix Apply(const std::function<double(double)>& f) const;
  /// Applies f in place. Same purity and cold-path caveats as Apply.
  void ApplyInPlace(const std::function<double(double)>& f);

  /// rows x 1 vector of per-row squared L2 norms.
  Matrix RowSquaredNorms() const;
  /// rows x 1 vector of per-row dot products a_i . b_i (same shape).
  static Matrix RowDots(const Matrix& a, const Matrix& b);
  /// Scales row i by scales(i, 0) in place (`scales` is rows x 1).
  Matrix& ScaleRows(const Matrix& scales);

  /// Sum over all elements.
  double Sum() const;
  /// 1 x cols vector of column sums.
  Matrix ColSum() const;
  /// 1 x cols vector of column means.
  Matrix ColMean() const;
  /// Mean of all elements.
  double Mean() const;
  /// Frobenius norm.
  double Norm() const;
  /// Max absolute element.
  double MaxAbs() const;

  /// Extracts rows [begin, end) as a new matrix.
  Matrix RowRange(size_t begin, size_t end) const;
  /// Extracts columns [begin, end) as a new matrix.
  Matrix ColRange(size_t begin, size_t end) const;
  /// Gathers the given rows into a new matrix.
  Matrix GatherRows(const std::vector<size_t>& indices) const;
  /// Overwrites this matrix with row `src_row` of `src`, reshaping to
  /// 1 x src.cols() only when needed — a reusable scratch row that
  /// avoids the per-call allocation of GatherRows({r}).
  void CopyRowFrom(const Matrix& src, size_t src_row);
  /// Horizontally concatenates (same row count).
  static Matrix HCat(const Matrix& a, const Matrix& b);
  /// Vertically concatenates (same column count).
  static Matrix VCat(const Matrix& a, const Matrix& b);

  /// Index of the max element in row r.
  size_t ArgMaxRow(size_t r) const;

  /// Appends one row. An empty matrix adopts the row's width;
  /// otherwise `n` must equal cols(). Amortized O(n).
  void AppendRow(const double* vals, size_t n);
  void AppendRow(const std::vector<double>& vals) {
    AppendRow(vals.data(), vals.size());
  }
  /// Reserves backing storage for the given number of rows. An empty
  /// matrix has no width yet, so callers reserving ahead of the first
  /// AppendRow must pass the expected column count via `cols`; on a
  /// matrix that already has a width the hint is optional but must
  /// agree with cols() when given.
  void ReserveRows(size_t rows, size_t cols = 0) {
    if (cols == 0) {
      DAISY_CHECK(cols_ > 0 || rows == 0);
      data_.reserve(rows * cols_);
    } else {
      DAISY_CHECK(cols_ == 0 || cols == cols_);
      data_.reserve(rows * cols);
    }
  }

  /// Fill every element with v.
  void Fill(double v);
  /// Clamp every element into [lo, hi].
  void Clip(double lo, double hi);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Debug rendering, row per line.
  std::string ToString(int max_rows = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace daisy

#endif  // DAISY_CORE_MATRIX_H_

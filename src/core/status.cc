#include "core/status.h"

namespace daisy {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kFailedPrecondition:
      name = "FailedPrecondition";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  return std::string(name) + ": " + message_;
}

}  // namespace daisy

#include "core/serial.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace daisy {

void Serializer::WriteTag(const std::string& tag) { *os_ << tag << '\n'; }

void Serializer::WriteU64(uint64_t v) { *os_ << v << '\n'; }

void Serializer::WriteDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *os_ << buf << '\n';
}

void Serializer::WriteString(const std::string& s) {
  *os_ << "S" << s.size() << ":" << s << '\n';
}

void Serializer::WriteMatrix(const Matrix& m) {
  *os_ << m.rows() << ' ' << m.cols() << '\n';
  char buf[40];
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.17g", m(r, c));
      *os_ << buf << (c + 1 == m.cols() ? '\n' : ' ');
    }
  }
  if (m.rows() == 0 || m.cols() == 0) *os_ << '\n';
}

void Serializer::WriteDoubleVector(const std::vector<double>& v) {
  *os_ << v.size() << '\n';
  char buf[40];
  for (size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    *os_ << buf << (i + 1 == v.size() ? '\n' : ' ');
  }
  if (v.empty()) *os_ << '\n';
}

void Deserializer::Fail(const std::string& what) {
  if (ok_) {
    ok_ = false;
    error_ = what;
  }
}

void Deserializer::ExpectTag(const std::string& tag) {
  if (!ok_) return;
  std::string got;
  if (!(*is_ >> got)) {
    Fail("unexpected end of stream; wanted tag " + tag);
    return;
  }
  if (got != tag) Fail("tag mismatch: wanted " + tag + ", got " + got);
}

uint64_t Deserializer::ReadU64() {
  if (!ok_) return 0;
  uint64_t v = 0;
  if (!(*is_ >> v)) Fail("failed to read u64");
  return v;
}

double Deserializer::ReadDouble() {
  if (!ok_) return 0.0;
  // istream's num_get refuses the "nan" / "inf" tokens that %.17g
  // emits, so read a whitespace-delimited token and hand it to strtod,
  // which accepts them. The whole token must be consumed.
  std::string tok;
  if (!(*is_ >> tok)) {
    Fail("failed to read double");
    return 0.0;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty()) {
    Fail("malformed double: " + tok);
    return 0.0;
  }
  return v;
}

std::string Deserializer::ReadString() {
  if (!ok_) return "";
  char ch = 0;
  *is_ >> ch;
  if (ch != 'S') {
    Fail("malformed string header");
    return "";
  }
  size_t len = 0;
  if (!(*is_ >> len)) {
    Fail("malformed string length");
    return "";
  }
  if (len > (1u << 30)) {
    Fail("implausible string length");
    return "";
  }
  if (is_->get() != ':') {
    Fail("malformed string separator");
    return "";
  }
  std::string out(len, '\0');
  is_->read(out.data(), static_cast<std::streamsize>(len));
  if (is_->gcount() != static_cast<std::streamsize>(len)) {
    Fail("truncated string");
    return "";
  }
  return out;
}

Matrix Deserializer::ReadMatrix() {
  if (!ok_) return Matrix();
  const size_t rows = ReadU64();
  const size_t cols = ReadU64();
  if (!ok_) return Matrix();
  if (rows > (1u << 24) || cols > (1u << 24)) {
    Fail("implausible matrix dimensions");
    return Matrix();
  }
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows && ok_; ++r)
    for (size_t c = 0; c < cols && ok_; ++c) m(r, c) = ReadDouble();
  return m;
}

std::vector<double> Deserializer::ReadDoubleVector() {
  if (!ok_) return {};
  const size_t n = ReadU64();
  if (!ok_ || n > (1u << 26)) {
    Fail("implausible vector length");
    return {};
  }
  std::vector<double> v(n);
  for (size_t i = 0; i < n && ok_; ++i) v[i] = ReadDouble();
  return v;
}

}  // namespace daisy

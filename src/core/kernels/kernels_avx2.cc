// AVX2 kernel table. Compiled with -mavx2 -ffp-contract=off (and only
// linked into the dispatcher when the toolchain supports it); executed
// only after the runtime CPUID check in dispatch.cc.
//
// Bit-equality with the scalar table is a hard contract (DESIGN.md
// §5g): every vector sequence here transcribes the per-lane algorithm
// in lane_ops.h op for op — same Horner order, same Cody-Waite
// reduction, same (s0+s2)+(s1+s3) stripe combine, no FMA — and vector
// tails fall back to those exact lane functions. kernels_test.cc
// compares the two tables bitwise on every kernel.
#include "core/kernels/tables.h"

#if defined(DAISY_HAVE_AVX2_BUILD)

#include <immintrin.h>

#include <cstdint>

#include "core/kernels/lane_ops.h"

namespace daisy::kern {
namespace {

// --- vector transcription of lane_ops.h ------------------------------

// 2^k per lane for integer-valued k (normal biased-exponent range), the
// vector form of lane::Pow2Int. k fits int32 (|k| <= ~1075), so the
// pd->epi32->epi64 round trip is exact.
inline __m256d Pow2IntV(__m256d k) {
  const __m128i k32 = _mm256_cvtpd_epi32(k);  // integral input: exact
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_castsi256_pd(bits);
}

// lane::Exp on four lanes. Out-of-range and NaN lanes are computed on
// clamped input and then overwritten by blends, mirroring the scalar
// early returns.
inline __m256d ExpV(__m256d x) {
  const __m256d max_x = _mm256_set1_pd(lane::kExpMax);
  const __m256d min_x = _mm256_set1_pd(lane::kExpMin);
  const __m256d xc = _mm256_min_pd(_mm256_max_pd(x, min_x), max_x);

  const __m256d n = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(lane::kLog2E), xc), _mm256_set1_pd(0.5)));
  __m256d r =
      _mm256_sub_pd(xc, _mm256_mul_pd(n, _mm256_set1_pd(lane::kExpC1)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(n, _mm256_set1_pd(lane::kExpC2)));
  const __m256d rr = _mm256_mul_pd(r, r);

  __m256d p = _mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(lane::kExpP0), rr),
      _mm256_set1_pd(lane::kExpP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, rr), _mm256_set1_pd(lane::kExpP2));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(lane::kExpQ0), rr),
      _mm256_set1_pd(lane::kExpQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, rr), _mm256_set1_pd(lane::kExpQ2));
  q = _mm256_add_pd(_mm256_mul_pd(q, rr), _mm256_set1_pd(lane::kExpQ3));

  const __m256d one = _mm256_set1_pd(1.0);
  __m256d e = _mm256_add_pd(
      one, _mm256_mul_pd(_mm256_set1_pd(2.0),
                         _mm256_div_pd(p, _mm256_sub_pd(q, p))));

  const __m256d n1 = _mm256_floor_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), n));
  e = _mm256_mul_pd(_mm256_mul_pd(e, Pow2IntV(n1)),
                    Pow2IntV(_mm256_sub_pd(n, n1)));

  // Special cases last, in the same precedence as the scalar ifs:
  // overflow -> +inf, underflow -> 0, NaN -> propagate x.
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  e = _mm256_blendv_pd(e, inf, _mm256_cmp_pd(x, max_x, _CMP_GT_OQ));
  e = _mm256_blendv_pd(e, _mm256_setzero_pd(),
                       _mm256_cmp_pd(x, min_x, _CMP_LT_OQ));
  e = _mm256_blendv_pd(e, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  return e;
}

inline __m256d AbsV(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

// lane::Tanh on four lanes: poly branch and exp branch both computed,
// then blended on z < kTanhPolyCut exactly like the scalar if.
inline __m256d TanhV(__m256d x) {
  const __m256d z = _mm256_mul_pd(x, x);

  __m256d p = _mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(lane::kTanhP0), z),
      _mm256_set1_pd(lane::kTanhP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(lane::kTanhP2));
  __m256d q = _mm256_add_pd(z, _mm256_set1_pd(lane::kTanhQ0));
  q = _mm256_add_pd(_mm256_mul_pd(q, z), _mm256_set1_pd(lane::kTanhQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, z), _mm256_set1_pd(lane::kTanhQ2));
  const __m256d poly = _mm256_add_pd(
      x, _mm256_mul_pd(x, _mm256_mul_pd(z, _mm256_div_pd(p, q))));

  const __m256d e = ExpV(_mm256_mul_pd(_mm256_set1_pd(2.0), AbsV(x)));
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d t = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_set1_pd(2.0), _mm256_add_pd(e, one)));
  // copysign(t, x): t is non-negative here.
  const __m256d signbit = _mm256_and_pd(x, _mm256_set1_pd(-0.0));
  t = _mm256_or_pd(t, signbit);

  __m256d y = _mm256_blendv_pd(
      t, poly, _mm256_cmp_pd(z, _mm256_set1_pd(lane::kTanhPolyCut),
                             _CMP_LT_OQ));
  return _mm256_blendv_pd(y, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
}

// lane::Sigmoid on four lanes.
inline __m256d SigmoidV(__m256d x) {
  const __m256d e = ExpV(_mm256_sub_pd(_mm256_setzero_pd(), AbsV(x)));
  const __m256d d = _mm256_add_pd(_mm256_set1_pd(1.0), e);
  const __m256d pos = _mm256_div_pd(_mm256_set1_pd(1.0), d);
  const __m256d neg = _mm256_div_pd(e, d);
  __m256d y = _mm256_blendv_pd(
      neg, pos, _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ));
  return _mm256_blendv_pd(y, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
}

// Horizontal stripe combine matching lane::CombineStripes:
// (s0+s2)+(s1+s3).
inline double CombineV(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);           // {s0, s1}
  const __m128d hi = _mm256_extractf128_pd(acc, 1);         // {s2, s3}
  const __m128d s = _mm_add_pd(lo, hi);                     // {s0+s2, s1+s3}
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// --- kernels ----------------------------------------------------------

void GemmPanelAvx2(const double* a, const double* b, size_t b_stride,
                   size_t pn, double* o, size_t jn) {
  size_t j = 0;
  // 16-wide j blocks: four accumulators stay in registers across the
  // whole p panel. Ascending-p accumulation per element, same as the
  // scalar kernel.
  for (; j + 16 <= jn; j += 16) {
    __m256d o0 = _mm256_loadu_pd(o + j);
    __m256d o1 = _mm256_loadu_pd(o + j + 4);
    __m256d o2 = _mm256_loadu_pd(o + j + 8);
    __m256d o3 = _mm256_loadu_pd(o + j + 12);
    for (size_t p = 0; p < pn; ++p) {
      const __m256d ap = _mm256_set1_pd(a[p]);
      const double* br = b + p * b_stride + j;
      o0 = _mm256_add_pd(o0, _mm256_mul_pd(ap, _mm256_loadu_pd(br)));
      o1 = _mm256_add_pd(o1, _mm256_mul_pd(ap, _mm256_loadu_pd(br + 4)));
      o2 = _mm256_add_pd(o2, _mm256_mul_pd(ap, _mm256_loadu_pd(br + 8)));
      o3 = _mm256_add_pd(o3, _mm256_mul_pd(ap, _mm256_loadu_pd(br + 12)));
    }
    _mm256_storeu_pd(o + j, o0);
    _mm256_storeu_pd(o + j + 4, o1);
    _mm256_storeu_pd(o + j + 8, o2);
    _mm256_storeu_pd(o + j + 12, o3);
  }
  for (; j + 4 <= jn; j += 4) {
    __m256d oj = _mm256_loadu_pd(o + j);
    for (size_t p = 0; p < pn; ++p) {
      const __m256d ap = _mm256_set1_pd(a[p]);
      oj = _mm256_add_pd(
          oj, _mm256_mul_pd(ap, _mm256_loadu_pd(b + p * b_stride + j)));
    }
    _mm256_storeu_pd(o + j, oj);
  }
  for (; j < jn; ++j) {
    double acc = o[j];
    for (size_t p = 0; p < pn; ++p) acc += a[p] * b[p * b_stride + j];
    o[j] = acc;
  }
}

void AxpyAvx2(double a, const double* x, double* y, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  for (; i < n; ++i) y[i] += a * x[i];
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  if (i < n) {
    alignas(32) double s[4];
    _mm256_store_pd(s, acc);
    for (; i < n; ++i) s[i & 3] += a[i] * b[i];
    return lane::CombineStripes(s);
  }
  return CombineV(acc);
}

void ScaleAvx2(double s, double* d, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), sv));
  for (; i < n; ++i) d[i] *= s;
}

void AddAvx2(const double* s, double* d, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(d + i, _mm256_add_pd(_mm256_loadu_pd(d + i),
                                          _mm256_loadu_pd(s + i)));
  for (; i < n; ++i) d[i] += s[i];
}

void SubAvx2(const double* s, double* d, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(d + i, _mm256_sub_pd(_mm256_loadu_pd(d + i),
                                          _mm256_loadu_pd(s + i)));
  for (; i < n; ++i) d[i] -= s[i];
}

void MulAvx2(const double* s, double* d, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i),
                                          _mm256_loadu_pd(s + i)));
  for (; i < n; ++i) d[i] *= s[i];
}

void TanhAvx2(const double* x, double* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, TanhV(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) y[i] = lane::Tanh(x[i]);
}

void SigmoidAvx2(const double* x, double* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, SigmoidV(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) y[i] = lane::Sigmoid(x[i]);
}

void ReluAvx2(const double* x, double* y, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y + i,
                     _mm256_and_pd(v, _mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void LeakyReluAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(
        y + i, _mm256_blendv_pd(_mm256_mul_pd(av, v), v,
                                _mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : alpha * x[i];
}

void TanhBwdAvx2(const double* y, double* g, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(yv, yv));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  for (; i < n; ++i) g[i] = g[i] * (1.0 - y[i] * y[i]);
}

void SigmoidBwdAvx2(const double* y, double* g, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d d = _mm256_mul_pd(yv, _mm256_sub_pd(one, yv));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  for (; i < n; ++i) g[i] = g[i] * (y[i] * (1.0 - y[i]));
}

void ReluBwdAvx2(const double* x, double* g, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_pd(g + i, _mm256_and_pd(_mm256_loadu_pd(g + i), mask));
  }
  for (; i < n; ++i) {
    if (!(x[i] > 0.0)) g[i] = 0.0;
  }
}

void LeakyReluBwdAvx2(double alpha, const double* x, double* g, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gv = _mm256_loadu_pd(g + i);
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_pd(g + i,
                     _mm256_blendv_pd(_mm256_mul_pd(av, gv), gv, mask));
  }
  for (; i < n; ++i) {
    if (!(x[i] > 0.0)) g[i] = alpha * g[i];
  }
}

void SoftmaxRowAvx2(const double* x, double* y, size_t n) {
  // Stripe max in vmaxpd comparator form, combined like lane::Max2
  // over lanes 0..3 (max is order-insensitive for the finite inputs
  // softmax sees, so any fixed combine matches the scalar scan).
  double mx;
  size_t i = 0;
  if (n >= 4) {
    __m256d m = _mm256_loadu_pd(x);
    for (i = 4; i + 4 <= n; i += 4)
      m = _mm256_max_pd(m, _mm256_loadu_pd(x + i));
    alignas(32) double ml[4];
    _mm256_store_pd(ml, m);
    for (; i < n; ++i) ml[i & 3] = lane::Max2(ml[i & 3], x[i]);
    mx = lane::Max2(lane::Max2(ml[0], ml[1]), lane::Max2(ml[2], ml[3]));
  } else {
    mx = x[0];
    for (i = 1; i < n; ++i) mx = lane::Max2(mx, x[i]);
  }

  const __m256d mv = _mm256_set1_pd(mx);
  __m256d acc = _mm256_setzero_pd();
  for (i = 0; i + 4 <= n; i += 4) {
    const __m256d e = ExpV(_mm256_sub_pd(_mm256_loadu_pd(x + i), mv));
    _mm256_storeu_pd(y + i, e);
    acc = _mm256_add_pd(acc, e);
  }
  double sum;
  if (i < n) {
    alignas(32) double s[4];
    _mm256_store_pd(s, acc);
    for (; i < n; ++i) {
      y[i] = lane::Exp(x[i] - mx);
      s[i & 3] += y[i];
    }
    sum = lane::CombineStripes(s);
  } else {
    sum = CombineV(acc);
  }

  const double inv = 1.0 / sum;
  const __m256d iv = _mm256_set1_pd(inv);
  for (i = 0; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), iv));
  for (; i < n; ++i) y[i] = y[i] * inv;
}

void SoftmaxRowBwdAvx2(const double* y, const double* g, double* out,
                       size_t n) {
  const double dot = DotAvx2(g, y, n);
  const __m256d dv = _mm256_set1_pd(dot);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(y + i),
                               _mm256_sub_pd(_mm256_loadu_pd(g + i), dv)));
  for (; i < n; ++i) out[i] = y[i] * (g[i] - dot);
}

size_t ArgMaxAvx2(const double* x, size_t n) {
  // Striped first-max: stripe l tracks the first maximum among indices
  // ≡ l (mod 4); the combine takes the lowest index among stripes that
  // reach the overall max. For NaN-free input this provably returns
  // the same index as the scalar first-wins scan (see kernels.h).
  if (n < 8) {
    size_t best = 0;
    for (size_t i = 1; i < n; ++i)
      if (x[i] > x[best]) best = i;
    return best;
  }
  __m256d bv = _mm256_loadu_pd(x);
  __m256d bi = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  __m256d ci = bi;
  const __m256d four = _mm256_set1_pd(4.0);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    ci = _mm256_add_pd(ci, four);
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d gt = _mm256_cmp_pd(v, bv, _CMP_GT_OQ);
    bv = _mm256_blendv_pd(bv, v, gt);
    bi = _mm256_blendv_pd(bi, ci, gt);
  }
  alignas(32) double vals[4], idxs[4];
  _mm256_store_pd(vals, bv);
  _mm256_store_pd(idxs, bi);
  for (; i < n; ++i) {
    const size_t l = i & 3;
    if (x[i] > vals[l]) {
      vals[l] = x[i];
      idxs[l] = static_cast<double>(i);
    }
  }
  double best_v = vals[0];
  double best_i = idxs[0];
  for (int l = 1; l < 4; ++l) {
    if (vals[l] > best_v || (vals[l] == best_v && idxs[l] < best_i)) {
      best_v = vals[l];
      best_i = idxs[l];
    }
  }
  return static_cast<size_t>(best_i);
}

}  // namespace

const KernelTable kAvx2Table = {
    .gemm_panel = GemmPanelAvx2,
    .axpy = AxpyAvx2,
    .dot = DotAvx2,
    .scale = ScaleAvx2,
    .add = AddAvx2,
    .sub = SubAvx2,
    .mul = MulAvx2,
    .tanh = TanhAvx2,
    .sigmoid = SigmoidAvx2,
    .relu = ReluAvx2,
    .leaky_relu = LeakyReluAvx2,
    .tanh_bwd = TanhBwdAvx2,
    .sigmoid_bwd = SigmoidBwdAvx2,
    .relu_bwd = ReluBwdAvx2,
    .leaky_relu_bwd = LeakyReluBwdAvx2,
    .softmax_row = SoftmaxRowAvx2,
    .softmax_row_bwd = SoftmaxRowBwdAvx2,
    .argmax = ArgMaxAvx2,
};

}  // namespace daisy::kern

#endif  // DAISY_HAVE_AVX2_BUILD

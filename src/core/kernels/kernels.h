// SIMD kernel layer under core::Matrix: per-ISA specializations of the
// numeric hot loops (GEMM microkernel, elementwise activations,
// row-scale/row-norm, softmax and one-hot argmax decode) behind a
// runtime CPU-feature dispatcher.
//
// Dispatch model (after intel/ScalableVectorSearch): every kernel is a
// plain function pointer in a KernelTable; one table per ISA is
// compiled into the library (the AVX2 one only when the toolchain
// supports -mavx2), and the active table is chosen exactly once, at
// first use, from CPUID — overridable with DAISY_SIMD=scalar|avx2 for
// testing and CI. Callers grab the table through Active() and never
// branch on the ISA themselves.
//
// Determinism contract (DESIGN.md §5g):
//  * Within a build the active table is fixed, every kernel's
//    reduction order is a pure function of the element index (never of
//    the thread partition), and callers only split work at row or
//    chunk boundaries — so results are bit-identical for any
//    DAISY_THREADS value.
//  * Across ISAs the scalar and AVX2 tables execute the same IEEE
//    operation sequence per element (shared per-lane algorithms in
//    lane_ops.h, striped reductions, no FMA), so forcing
//    DAISY_SIMD=scalar vs avx2 is *also* bitwise identical. The
//    equivalence suite in tests/core/kernels_test.cc pins this.
//  * argmax assumes NaN-free input (it decodes softmax/one-hot
//    samples); with NaNs present the scalar and AVX2 tie-breaks can
//    differ.
#ifndef DAISY_CORE_KERNELS_KERNELS_H_
#define DAISY_CORE_KERNELS_KERNELS_H_

#include <cstddef>

namespace daisy::kern {

enum class Isa { kScalar, kAvx2 };

/// One ISA's implementations of the hot kernels. All pointers are
/// non-null in every installed table.
struct KernelTable {
  /// GEMM panel microkernel: o[j] += a[p] * b[p*b_stride + j] for
  /// p in [0, pn), j in [0, jn); the p-accumulation into each o[j]
  /// runs ascending regardless of vector width.
  void (*gemm_panel)(const double* a, const double* b, size_t b_stride,
                     size_t pn, double* o, size_t jn);
  /// y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, size_t n);
  /// Striped dot product (stripe i mod 4, combine (s0+s2)+(s1+s3)).
  double (*dot)(const double* a, const double* b, size_t n);
  /// d[i] *= s.
  void (*scale)(double s, double* d, size_t n);
  /// d[i] += s[i] / d[i] -= s[i] / d[i] *= s[i].
  void (*add)(const double* s, double* d, size_t n);
  void (*sub)(const double* s, double* d, size_t n);
  void (*mul)(const double* s, double* d, size_t n);

  // Elementwise activations, forward...
  void (*tanh)(const double* x, double* y, size_t n);
  void (*sigmoid)(const double* x, double* y, size_t n);
  void (*relu)(const double* x, double* y, size_t n);
  void (*leaky_relu)(double alpha, const double* x, double* y, size_t n);
  // ...and backward. tanh/sigmoid scale the incoming gradient by the
  // derivative expressed in the cached *output* y; relu variants gate
  // on the cached *input* x.
  void (*tanh_bwd)(const double* y, double* g, size_t n);
  void (*sigmoid_bwd)(const double* y, double* g, size_t n);
  void (*relu_bwd)(const double* x, double* g, size_t n);
  void (*leaky_relu_bwd)(double alpha, const double* x, double* g, size_t n);

  /// One softmax row: y = exp(x - max(x)) / sum(...), striped max and
  /// sum, normalization by multiplication with 1/sum. n must be >= 1.
  void (*softmax_row)(const double* x, double* y, size_t n);
  /// One softmax-backward row: out[c] = y[c] * (g[c] - dot(g, y)).
  void (*softmax_row_bwd)(const double* y, const double* g, double* out,
                          size_t n);
  /// First index of the row maximum (ties -> lowest index). n >= 1,
  /// NaN-free input.
  size_t (*argmax)(const double* x, size_t n);
};

/// True when the running CPU reports AVX2 support (false on non-x86).
bool CpuSupportsAvx2();

/// True when `isa` can be used here: kScalar always; kAvx2 only when
/// the AVX2 table was compiled in *and* the CPU supports it.
bool IsaAvailable(Isa isa);

/// The ISA the active table was selected for.
Isa ActiveIsa();

/// "scalar" or "avx2".
const char* IsaName(Isa isa);

/// The active kernel table. First call resolves the startup choice:
/// DAISY_SIMD=scalar|avx2 when set (falling back to scalar with a
/// stderr warning if avx2 is unavailable), else the best available ISA.
const KernelTable& Active();

/// A specific ISA's table; DAISY_CHECKs IsaAvailable(isa).
const KernelTable& Table(Isa isa);

/// Overrides the active table (DAISY_CHECKs availability). Test-only:
/// call while no kernels are in flight. ResetIsaForTesting restores
/// the startup resolution (env var / auto-detect).
void SetIsaForTesting(Isa isa);
void ResetIsaForTesting();

}  // namespace daisy::kern

#endif  // DAISY_CORE_KERNELS_KERNELS_H_

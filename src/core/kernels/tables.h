// Internal: the per-ISA kernel tables the dispatcher selects between.
// Not part of the public API — include core/kernels/kernels.h instead.
// kAvx2Table exists only when the library was built with AVX2 support
// (DAISY_HAVE_AVX2_BUILD is a daisy_core-private compile definition).
#ifndef DAISY_CORE_KERNELS_TABLES_H_
#define DAISY_CORE_KERNELS_TABLES_H_

#include "core/kernels/kernels.h"

namespace daisy::kern {

extern const KernelTable kScalarTable;
#if defined(DAISY_HAVE_AVX2_BUILD)
extern const KernelTable kAvx2Table;
#endif

}  // namespace daisy::kern

#endif  // DAISY_CORE_KERNELS_TABLES_H_

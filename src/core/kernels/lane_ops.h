// Per-lane scalar definitions of every transcendental kernel, shared by
// the scalar and AVX2 translation units.
//
// The SIMD determinism contract (DESIGN.md §5g) requires the scalar
// fallback and each vector specialization to execute the *same* IEEE
// operation sequence per element: same polynomial, same Horner order,
// no FMA contraction (both kernel TUs build with -ffp-contract=off),
// branch-free special-case handling that a vector blend can mirror
// exactly. Anything that computes per-lane math therefore lives here,
// once, and the AVX2 file transcribes it op-for-op with intrinsics; the
// cross-ISA equivalence suite (kernels_test.cc) pins the two bitwise
// equal.
//
// Exp/tanh use the Cephes rational approximations (Moshier, netlib
// cephes/cmath), which are within a few ULP of correctly-rounded libm
// over the full double range. The accuracy policy is documented in
// DESIGN.md §5g and pinned by KernelAccuracyTest.
#ifndef DAISY_CORE_KERNELS_LANE_OPS_H_
#define DAISY_CORE_KERNELS_LANE_OPS_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace daisy::kern::lane {

// --- exp ------------------------------------------------------------
// Cody-Waite argument reduction (x = n*ln2 + r) with the ln2 split into
// a high part exactly representable in 32 bits and a low correction, so
// r keeps full precision; then the Cephes degree-2/3 rational in r².
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kExpC1 = 6.93145751953125E-1;
inline constexpr double kExpC2 = 1.42860682030941723212E-6;
inline constexpr double kExpP0 = 1.26177193074810590878E-4;
inline constexpr double kExpP1 = 3.02994407707441961300E-2;
inline constexpr double kExpP2 = 9.99999999999999999910E-1;
inline constexpr double kExpQ0 = 3.00198505138664455042E-6;
inline constexpr double kExpQ1 = 2.52448340349684104192E-3;
inline constexpr double kExpQ2 = 2.27265548208155028766E-1;
inline constexpr double kExpQ3 = 2.00000000000000000005E0;
// exp overflows double above kExpMax and underflows (past subnormals)
// below kExpMin.
inline constexpr double kExpMax = 709.782712893383996843;
inline constexpr double kExpMin = -745.133219101941108420;

/// 2^k for integer-valued k with k+1023 in [1, 2046] (normal range),
/// built directly in the exponent field.
inline double Pow2Int(double k) {
  return std::bit_cast<double>((static_cast<int64_t>(k) + 1023) << 52);
}

/// exp(x) to within a few ULP. Saturates to +inf / 0 outside the
/// representable range; propagates NaN.
inline double Exp(double x) {
  if (x != x) return x;
  if (x > kExpMax) return std::numeric_limits<double>::infinity();
  if (x < kExpMin) return 0.0;
  const double n = std::floor(kLog2E * x + 0.5);
  double r = x - n * kExpC1;
  r = r - n * kExpC2;
  const double rr = r * r;
  double p = (kExpP0 * rr + kExpP1) * rr + kExpP2;
  p = p * r;
  const double q = ((kExpQ0 * rr + kExpQ1) * rr + kExpQ2) * rr + kExpQ3;
  const double e = 1.0 + 2.0 * (p / (q - p));
  // Scale by 2^n in two exactly-representable halves so exponents down
  // to the subnormal range round gradually instead of overflowing the
  // biased-exponent construction.
  const double n1 = std::floor(0.5 * n);
  return (e * Pow2Int(n1)) * Pow2Int(n - n1);
}

// --- tanh -----------------------------------------------------------
// |x| < 0.625: Cephes rational poly x + x*z*P(z)/Q(z), z = x² (avoids
// the catastrophic cancellation of the exp form near 0). Otherwise
// 1 - 2/(exp(2|x|)+1) with the sign restored; exp saturation makes the
// large-|x| limit exactly ±1 with no overflow.
inline constexpr double kTanhP0 = -9.64399179425052238628E-1;
inline constexpr double kTanhP1 = -9.92877231001918586564E1;
inline constexpr double kTanhP2 = -1.61468768441708447952E3;
inline constexpr double kTanhQ0 = 1.12811678491632931402E2;
inline constexpr double kTanhQ1 = 2.23548839060100448583E3;
inline constexpr double kTanhQ2 = 4.84406305325125486048E3;
inline constexpr double kTanhPolyCut = 0.390625;  // 0.625²

inline double Tanh(double x) {
  if (x != x) return x;
  const double z = x * x;
  if (z < kTanhPolyCut) {
    const double p = (kTanhP0 * z + kTanhP1) * z + kTanhP2;
    const double q = ((z + kTanhQ0) * z + kTanhQ1) * z + kTanhQ2;
    return x + x * (z * (p / q));
  }
  const double e = Exp(2.0 * std::fabs(x));
  const double t = 1.0 - 2.0 / (e + 1.0);
  return std::copysign(t, x);
}

// --- sigmoid --------------------------------------------------------
// Branch-stable two-sided form: exp only ever sees -|x| (<= 0, never
// overflows), and both branches share the 1+e denominator, so extreme
// logits land exactly on 0 / 1 instead of round-tripping through inf.
inline double Sigmoid(double x) {
  if (x != x) return x;
  const double e = Exp(-std::fabs(x));
  const double d = 1.0 + e;
  return x >= 0.0 ? 1.0 / d : e / d;
}

// --- striped reductions ---------------------------------------------
// Sums and dot products reduce in four interleaved stripes (element i
// belongs to stripe i mod 4 — exactly the lanes of one 256-bit vector)
// and combine as (s0+s2)+(s1+s3), matching the AVX2 horizontal add.
// The stripe assignment depends only on the element index, never on
// the thread partition, so results are bit-identical for any
// DAISY_THREADS and for scalar vs AVX2.
inline double CombineStripes(const double s[4]) {
  return (s[0] + s[2]) + (s[1] + s[3]);
}

inline double DotStriped(const double* a, const double* b, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s[0] += a[i] * b[i];
    s[1] += a[i + 1] * b[i + 1];
    s[2] += a[i + 2] * b[i + 2];
    s[3] += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s[i & 3] += a[i] * b[i];
  return CombineStripes(s);
}

inline double SumStriped(const double* x, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s[0] += x[i];
    s[1] += x[i + 1];
    s[2] += x[i + 2];
    s[3] += x[i + 3];
  }
  for (; i < n; ++i) s[i & 3] += x[i];
  return CombineStripes(s);
}

/// Max in vmaxpd comparator form ((a > b) ? a : b). Order-insensitive
/// for finite input, so no striping needed for bit-equality.
inline double Max2(double a, double b) { return a > b ? a : b; }

}  // namespace daisy::kern::lane

#endif  // DAISY_CORE_KERNELS_LANE_OPS_H_

// Scalar kernel table: the portable fallback and the reference the
// AVX2 specialization must match bitwise. Per-lane math comes from
// lane_ops.h (shared with the AVX2 TU); reductions use the striped
// order documented there. Built with -ffp-contract=off so the compiler
// cannot fuse the mul+add sequences the contract fixes.
#include "core/kernels/kernels.h"
#include "core/kernels/lane_ops.h"
#include "core/kernels/tables.h"

namespace daisy::kern {
namespace {

void GemmPanelScalar(const double* a, const double* b, size_t b_stride,
                     size_t pn, double* o, size_t jn) {
  for (size_t p = 0; p < pn; ++p) {
    const double ap = a[p];
    const double* br = b + p * b_stride;
    for (size_t j = 0; j < jn; ++j) o[j] += ap * br[j];
  }
}

void AxpyScalar(double a, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double DotScalar(const double* a, const double* b, size_t n) {
  return lane::DotStriped(a, b, n);
}

void ScaleScalar(double s, double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] *= s;
}

void AddScalar(const double* s, double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] += s[i];
}

void SubScalar(const double* s, double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] -= s[i];
}

void MulScalar(const double* s, double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] *= s[i];
}

void TanhScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = lane::Tanh(x[i]);
}

void SigmoidScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = lane::Sigmoid(x[i]);
}

void ReluScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void LeakyReluScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : alpha * x[i];
}

void TanhBwdScalar(const double* y, double* g, size_t n) {
  for (size_t i = 0; i < n; ++i) g[i] = g[i] * (1.0 - y[i] * y[i]);
}

void SigmoidBwdScalar(const double* y, double* g, size_t n) {
  for (size_t i = 0; i < n; ++i) g[i] = g[i] * (y[i] * (1.0 - y[i]));
}

void ReluBwdScalar(const double* x, double* g, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!(x[i] > 0.0)) g[i] = 0.0;
  }
}

void LeakyReluBwdScalar(double alpha, const double* x, double* g, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!(x[i] > 0.0)) g[i] = alpha * g[i];
  }
}

void SoftmaxRowScalar(const double* x, double* y, size_t n) {
  double mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = lane::Max2(mx, x[i]);
  for (size_t i = 0; i < n; ++i) y[i] = lane::Exp(x[i] - mx);
  const double inv = 1.0 / lane::SumStriped(y, n);
  for (size_t i = 0; i < n; ++i) y[i] = y[i] * inv;
}

void SoftmaxRowBwdScalar(const double* y, const double* g, double* out,
                         size_t n) {
  const double dot = lane::DotStriped(g, y, n);
  for (size_t i = 0; i < n; ++i) out[i] = y[i] * (g[i] - dot);
}

size_t ArgMaxScalar(const double* x, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i)
    if (x[i] > x[best]) best = i;
  return best;
}

}  // namespace

const KernelTable kScalarTable = {
    .gemm_panel = GemmPanelScalar,
    .axpy = AxpyScalar,
    .dot = DotScalar,
    .scale = ScaleScalar,
    .add = AddScalar,
    .sub = SubScalar,
    .mul = MulScalar,
    .tanh = TanhScalar,
    .sigmoid = SigmoidScalar,
    .relu = ReluScalar,
    .leaky_relu = LeakyReluScalar,
    .tanh_bwd = TanhBwdScalar,
    .sigmoid_bwd = SigmoidBwdScalar,
    .relu_bwd = ReluBwdScalar,
    .leaky_relu_bwd = LeakyReluBwdScalar,
    .softmax_row = SoftmaxRowScalar,
    .softmax_row_bwd = SoftmaxRowBwdScalar,
    .argmax = ArgMaxScalar,
};

}  // namespace daisy::kern

// Runtime kernel dispatch: pick the widest ISA the CPU (and build)
// supports, exactly once, at first use; allow DAISY_SIMD=scalar|avx2
// to override for testing, CI fallback coverage, and benchmarking.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/kernels/tables.h"
#include "core/status.h"

namespace daisy::kern {
namespace {

struct Choice {
  const KernelTable* table;
  Isa isa;
};

// Packed into one atomic-pointer-sized install so ActiveIsa() and
// Active() can never disagree mid-switch.
std::atomic<const Choice*> g_active{nullptr};

Isa ResolveStartupIsa() {
  const char* env = std::getenv("DAISY_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (IsaAvailable(Isa::kAvx2)) return Isa::kAvx2;
      std::fprintf(stderr,
                   "daisy: DAISY_SIMD=avx2 requested but %s; "
                   "falling back to scalar kernels\n",
                   CpuSupportsAvx2() ? "the build has no AVX2 kernels"
                                     : "the CPU lacks AVX2");
      return Isa::kScalar;
    }
    std::fprintf(stderr,
                 "daisy: ignoring unrecognized DAISY_SIMD value '%s' "
                 "(expected 'scalar' or 'avx2'); auto-selecting\n",
                 env);
  }
  return IsaAvailable(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
}

const Choice* MakeChoice(Isa isa) {
  static const Choice kScalarChoice{&kScalarTable, Isa::kScalar};
#if defined(DAISY_HAVE_AVX2_BUILD)
  static const Choice kAvx2Choice{&kAvx2Table, Isa::kAvx2};
  if (isa == Isa::kAvx2) return &kAvx2Choice;
#endif
  DAISY_CHECK(isa == Isa::kScalar);
  return &kScalarChoice;
}

const Choice* ActiveChoice() {
  const Choice* c = g_active.load(std::memory_order_acquire);
  if (c == nullptr) {
    // Benign race: concurrent first calls resolve to the same value.
    c = MakeChoice(ResolveStartupIsa());
    g_active.store(c, std::memory_order_release);
  }
  return c;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool IsaAvailable(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(DAISY_HAVE_AVX2_BUILD)
  return CpuSupportsAvx2();
#else
  return false;
#endif
}

Isa ActiveIsa() { return ActiveChoice()->isa; }

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

const KernelTable& Active() { return *ActiveChoice()->table; }

const KernelTable& Table(Isa isa) {
  DAISY_CHECK(IsaAvailable(isa));
  return *MakeChoice(isa)->table;
}

void SetIsaForTesting(Isa isa) {
  DAISY_CHECK(IsaAvailable(isa));
  g_active.store(MakeChoice(isa), std::memory_order_release);
}

void ResetIsaForTesting() {
  g_active.store(MakeChoice(ResolveStartupIsa()), std::memory_order_release);
}

}  // namespace daisy::kern

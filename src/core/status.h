// Lightweight Status / Result error handling, in the spirit of
// RocksDB's Status: recoverable, user-facing failures are reported as
// values rather than exceptions; programming errors use DAISY_CHECK.
#ifndef DAISY_CORE_STATUS_H_
#define DAISY_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace daisy {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kFailedPrecondition,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad schema".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : ok_(false), status_(std::move(status)) {}  // NOLINT

  bool ok() const { return ok_; }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& take() { return std::move(value_); }

 private:
  bool ok_;
  T value_{};
  Status status_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "DAISY_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

// Invariant check for programming errors; active in all build types.
#define DAISY_CHECK(expr)                                   \
  do {                                                      \
    if (!(expr)) {                                          \
      ::daisy::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                       \
  } while (0)

#define DAISY_RETURN_IF_ERROR(expr)         \
  do {                                      \
    ::daisy::Status _st = (expr);           \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace daisy

#endif  // DAISY_CORE_STATUS_H_

#include "core/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "core/rng.h"

namespace daisy {

namespace {

// Kernel tiling parameters. The j (output-column) tile keeps the
// streamed slice of B resident in L1; the p (inner-dimension) tile
// bounds the working set of A-panel x B-panel per pass. Accumulation
// order over p for any fixed output element is ascending regardless of
// tiling or threading, so results are bit-identical to the naive loop.
constexpr size_t kTileJ = 256;
constexpr size_t kTileP = 64;

// Row-block grain: aim for at least this many flops per ParallelFor
// chunk so small matrices never pay scheduling overhead. Must depend
// only on problem shape (never thread count) to keep the partition —
// and therefore chunk-local accumulation — deterministic.
size_t RowGrain(size_t flops_per_row) {
  constexpr size_t kMinFlopsPerChunk = 1 << 15;
  return std::max<size_t>(1, kMinFlopsPerChunk / std::max<size_t>(1, flops_per_row));
}

// Elementwise ops only fan out when the array is big enough to amortize
// the pool handoff; each element is touched by exactly one chunk.
constexpr size_t kElemGrain = 1 << 14;

}  // namespace

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    DAISY_CHECK(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::RandUniform(size_t rows, size_t cols, Rng* rng, double lo,
                           double hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  DAISY_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const size_t k = cols_, m = other.cols_;
  // Row blocks own disjoint output rows; within a block the j/p tiles
  // keep the active B panel hot while the dispatched microkernel
  // streams A and B forward. Per output element the p-sum runs 0..k
  // ascending for every ISA, so results are bit-identical for any
  // thread count and for scalar vs AVX2.
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, rows_, RowGrain(2 * k * m), [&](size_t r0, size_t r1) {
    for (size_t j0 = 0; j0 < m; j0 += kTileJ) {
      const size_t j1 = std::min(m, j0 + kTileJ);
      for (size_t p0 = 0; p0 < k; p0 += kTileP) {
        const size_t p1 = std::min(k, p0 + kTileP);
        for (size_t i = r0; i < r1; ++i) {
          kt.gemm_panel(row(i) + p0, other.row(p0) + j0, other.cols_,
                        p1 - p0, out.row(i) + j0, j1 - j0);
        }
      }
    }
  });
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  // (this^T)(other): this is (n x k), other is (n x m) -> (k x m).
  DAISY_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  const size_t n = rows_, k = cols_, m = other.cols_;
  // Parallelize over output rows (the p axis): each chunk scans every
  // input row but writes only its own out rows, so there is no sharing
  // and the i-accumulation order per element is always 0..n ascending.
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, k, RowGrain(2 * n * m), [&](size_t p0, size_t p1) {
    for (size_t j0 = 0; j0 < m; j0 += kTileJ) {
      const size_t j1 = std::min(m, j0 + kTileJ);
      for (size_t i = 0; i < n; ++i) {
        const double* a = row(i);
        const double* b = other.row(i);
        for (size_t p = p0; p < p1; ++p)
          kt.axpy(a[p], b + j0, out.row(p) + j0, j1 - j0);
      }
    }
  });
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  // this (n x k) * other^T where other is (m x k) -> (n x m).
  DAISY_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  const size_t k = cols_, m = other.rows_;
  // Both operands are scanned along contiguous rows (dot products), so
  // only a j tile is needed to keep the B panel resident. The dot
  // kernel reduces in the fixed striped order, a pure function of the
  // element index — identical for any thread count or ISA.
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, rows_, RowGrain(2 * k * m), [&](size_t r0, size_t r1) {
    for (size_t j0 = 0; j0 < m; j0 += kTileJ) {
      const size_t j1 = std::min(m, j0 + kTileJ);
      for (size_t i = r0; i < r1; ++i) {
        const double* a = row(i);
        double* o = out.row(i);
        for (size_t j = j0; j < j1; ++j) o[j] = kt.dot(a, other.row(j), k);
      }
    }
  });
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DAISY_CHECK(SameShape(other));
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, data_.size(), kElemGrain, [&](size_t b, size_t e) {
    kt.add(other.data_.data() + b, data_.data() + b, e - b);
  });
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DAISY_CHECK(SameShape(other));
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, data_.size(), kElemGrain, [&](size_t b, size_t e) {
    kt.sub(other.data_.data() + b, data_.data() + b, e - b);
  });
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  kern::Active().scale(s, data_.data(), data_.size());
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::CWiseMul(const Matrix& other) const {
  DAISY_CHECK(SameShape(other));
  Matrix out = *this;
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, data_.size(), kElemGrain, [&](size_t b, size_t e) {
    kt.mul(other.data_.data() + b, out.data_.data() + b, e - b);
  });
  return out;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row_vec) {
  DAISY_CHECK(row_vec.rows_ == 1 && row_vec.cols_ == cols_);
  const kern::KernelTable& kt = kern::Active();
  for (size_t r = 0; r < rows_; ++r)
    kt.add(row_vec.data_.data(), row(r), cols_);
  return *this;
}

Matrix Matrix::Apply(const std::function<double(double)>& f) const {
  Matrix out = *this;
  out.ApplyInPlace(f);
  return out;
}

void Matrix::ApplyInPlace(const std::function<double(double)>& f) {
  // f goes through std::function (indirect call per element), so the
  // grain is smaller than for the raw arithmetic loops.
  par::ParallelFor(0, data_.size(), kElemGrain / 4, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) data_[i] = f(data_[i]);
  });
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  // Partition by column so every column is summed over rows 0..N in
  // ascending order by exactly one thread — bit-identical for any
  // thread count (a row partition would need a reduction whose
  // grouping changes the floating-point result).
  par::ParallelFor(0, cols_, RowGrain(2 * rows_), [&](size_t c0, size_t c1) {
    for (size_t r = 0; r < rows_; ++r) {
      const double* d = row(r);
      for (size_t c = c0; c < c1; ++c) out.data_[c] += d[c];
    }
  });
  return out;
}

Matrix Matrix::ColMean() const {
  DAISY_CHECK(rows_ > 0);
  Matrix out = ColSum();
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

double Matrix::Mean() const {
  DAISY_CHECK(!data_.empty());
  return Sum() / static_cast<double>(data_.size());
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::RowRange(size_t begin, size_t end) const {
  DAISY_CHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  for (size_t r = begin; r < end; ++r)
    for (size_t c = 0; c < cols_; ++c) out(r - begin, c) = (*this)(r, c);
  return out;
}

Matrix Matrix::ColRange(size_t begin, size_t end) const {
  DAISY_CHECK(begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = begin; c < end; ++c) out(r, c - begin) = (*this)(r, c);
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    DAISY_CHECK(indices[i] < rows_);
    const double* src = row(indices[i]);
    double* dst = out.row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::CopyRowFrom(const Matrix& src, size_t src_row) {
  DAISY_CHECK(src_row < src.rows_);
  if (rows_ != 1 || cols_ != src.cols_) {
    rows_ = 1;
    cols_ = src.cols_;
    data_.resize(cols_);
  }
  const double* s = src.row(src_row);
  for (size_t c = 0; c < cols_; ++c) data_[c] = s[c];
}

Matrix Matrix::RowSquaredNorms() const {
  Matrix out(rows_, 1);
  // Each row is reduced by exactly one chunk owner in the kernel's
  // fixed striped order — bit-identical for any thread count.
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, rows_, RowGrain(2 * cols_), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const double* d = row(r);
      out.data_[r] = kt.dot(d, d, cols_);
    }
  });
  return out;
}

Matrix Matrix::RowDots(const Matrix& a, const Matrix& b) {
  DAISY_CHECK(a.SameShape(b));
  Matrix out(a.rows_, 1);
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, a.rows_, RowGrain(2 * a.cols_),
                   [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r)
      out.data_[r] = kt.dot(a.row(r), b.row(r), a.cols_);
  });
  return out;
}

Matrix& Matrix::ScaleRows(const Matrix& scales) {
  DAISY_CHECK(scales.rows_ == rows_ && scales.cols_ == 1);
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, rows_, RowGrain(cols_), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) kt.scale(scales.data_[r], row(r), cols_);
  });
  return *this;
}

Matrix Matrix::HCat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  DAISY_CHECK(a.rows_ == b.rows_);
  Matrix out(a.rows_, a.cols_ + b.cols_);
  for (size_t r = 0; r < a.rows_; ++r) {
    for (size_t c = 0; c < a.cols_; ++c) out(r, c) = a(r, c);
    for (size_t c = 0; c < b.cols_; ++c) out(r, a.cols_ + c) = b(r, c);
  }
  return out;
}

Matrix Matrix::VCat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  DAISY_CHECK(a.cols_ == b.cols_);
  Matrix out(a.rows_ + b.rows_, a.cols_);
  for (size_t r = 0; r < a.rows_; ++r)
    for (size_t c = 0; c < a.cols_; ++c) out(r, c) = a(r, c);
  for (size_t r = 0; r < b.rows_; ++r)
    for (size_t c = 0; c < a.cols_; ++c) out(a.rows_ + r, c) = b(r, c);
  return out;
}

size_t Matrix::ArgMaxRow(size_t r) const {
  DAISY_CHECK(r < rows_ && cols_ > 0);
  return kern::Active().argmax(row(r), cols_);
}

void Matrix::AppendRow(const double* vals, size_t n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  DAISY_CHECK(n == cols_ && n > 0);
  data_.insert(data_.end(), vals, vals + n);
  ++rows_;
}

void Matrix::Fill(double v) {
  for (auto& x : data_) x = v;
}

void Matrix::Clip(double lo, double hi) {
  for (auto& x : data_) x = std::min(hi, std::max(lo, x));
}

std::string Matrix::ToString(int max_rows) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + ")\n";
  const size_t show = std::min<size_t>(rows_, static_cast<size_t>(max_rows));
  char buf[32];
  for (size_t r = 0; r < show; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%9.4f ", (*this)(r, c));
      out += buf;
    }
    out += "\n";
  }
  if (show < rows_) out += "...\n";
  return out;
}

}  // namespace daisy

// Minimal tagged text serialization for model persistence. The format
// is whitespace-separated tokens: tags are bare words, numbers are
// printed in round-trip precision, strings are length-prefixed so they
// may contain any byte. Deserialization is non-throwing: failures
// latch an error flag checked once at the end of loading.
#ifndef DAISY_CORE_SERIAL_H_
#define DAISY_CORE_SERIAL_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace daisy {

/// Streams values out. All writers are infallible (stream state is
/// checked by the caller at the end via stream.good()).
class Serializer {
 public:
  explicit Serializer(std::ostream* os) : os_(os) {}

  void WriteTag(const std::string& tag);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteMatrix(const Matrix& m);
  void WriteDoubleVector(const std::vector<double>& v);

 private:
  std::ostream* os_;
};

/// Streams values back in. Every reader returns a default on failure
/// and latches ok() = false; ExpectTag also fails on tag mismatch, so
/// format drift is caught deterministically.
class Deserializer {
 public:
  explicit Deserializer(std::istream* is) : is_(is) {}

  bool ok() const { return ok_; }
  /// Error description for the first failure (empty when ok).
  const std::string& error() const { return error_; }

  void ExpectTag(const std::string& tag);
  uint64_t ReadU64();
  double ReadDouble();
  std::string ReadString();
  Matrix ReadMatrix();
  std::vector<double> ReadDoubleVector();

  /// Latches the first failure. Public so that callers layering their
  /// own validation on top (optimizer shape checks, checkpoint version
  /// gates) report errors through the same channel.
  void Fail(const std::string& what);

 private:
  std::istream* is_;
  bool ok_ = true;
  std::string error_;
};

}  // namespace daisy

#endif  // DAISY_CORE_SERIAL_H_

#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace daisy::par {

namespace {

// 0 means "not overridden": fall back to env var / hardware.
std::atomic<size_t> g_override{0};

size_t AutoThreads() {
  if (const char* env = std::getenv("DAISY_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

// One parallel region in flight. Workers pull chunk indices from a
// shared atomic counter; the partition itself (chunk -> iteration
// range) is fixed by (begin, grain, num_chunks), so which thread runs a
// chunk never affects what the chunk computes.
struct Job {
  const std::function<void(size_t, size_t)>* fn = nullptr;
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  size_t active_workers = 0;  // pool workers allowed to join this job
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> completed{0};

  void RunChunks() {
    size_t c;
    while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const size_t b = begin + c * grain;
      const size_t e = std::min(end, b + grain);
      (*fn)(b, e);
      completed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

// True while this thread is executing a ParallelFor body; nested calls
// run inline instead of deadlocking on the single in-flight job.
thread_local bool t_in_parallel_region = false;

class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // leaked: workers may outlive statics
    return *pool;
  }

  void Run(size_t begin, size_t end, size_t grain,
           const std::function<void(size_t, size_t)>& fn, size_t num_chunks,
           size_t threads) {
    // Only one region at a time; concurrent callers degrade to inline.
    if (!region_mu_.try_lock()) {
      fn(begin, end);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->num_chunks = num_chunks;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const size_t want = std::min(threads - 1, num_chunks - 1);
      while (workers_.size() < want)
        workers_.emplace_back(&Pool::WorkerLoop, this, workers_.size());
      job->active_workers = want;
      job_ = job;
      ++job_id_;
    }
    cv_job_.notify_all();

    t_in_parallel_region = true;
    job->RunChunks();  // the calling thread is worker #0
    t_in_parallel_region = false;

    if (job->completed.load(std::memory_order_acquire) < job->num_chunks) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {
        return job->completed.load(std::memory_order_acquire) ==
               job->num_chunks;
      });
    }
    region_mu_.unlock();
  }

 private:
  void WorkerLoop(size_t index) {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_job_.wait(lk, [&] { return job_id_ != seen; });
        seen = job_id_;
        job = job_;
      }
      // A worker spawned before a later SetNumThreads() downgrade sits
      // this job out so the configured parallelism is respected.
      if (index >= job->active_workers) continue;
      t_in_parallel_region = true;
      job->RunChunks();
      t_in_parallel_region = false;
      if (job->completed.load(std::memory_order_acquire) ==
          job->num_chunks) {
        { std::lock_guard<std::mutex> lk(mu_); }
        cv_done_.notify_all();
      }
    }
  }

  std::mutex region_mu_;  // serializes parallel regions
  std::mutex mu_;         // guards job publication + worker spawn
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  uint64_t job_id_ = 0;
};

}  // namespace

size_t NumThreads() {
  const size_t o = g_override.load(std::memory_order_relaxed);
  return o != 0 ? o : AutoThreads();
}

void SetNumThreads(size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  const size_t threads = NumThreads();
  if (threads == 1 || num_chunks == 1 || t_in_parallel_region) {
    fn(begin, end);
    return;
  }
  Pool::Instance().Run(begin, end, grain, fn, num_chunks, threads);
}

size_t NumChunks(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;
  // Reuse ParallelFor over the chunk axis with grain 1: each pool chunk
  // is exactly one caller chunk, and the inline fallback's single
  // fn(0, num_chunks) call walks the chunks sequentially — the same
  // partition either way.
  ParallelFor(0, num_chunks, 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const size_t b = begin + c * grain;
      fn(c, b, std::min(end, b + grain));
    }
  });
}

}  // namespace daisy::par

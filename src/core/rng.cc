#include "core/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "core/status.h"

namespace daisy {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  DAISY_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Laplace(double b) {
  const double u = Uniform() - 0.5;
  return -b * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  DAISY_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DAISY_CHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size() - 1;
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

std::vector<uint64_t> Rng::GetState() const {
  return {s_[0], s_[1], s_[2], s_[3],
          has_cached_gaussian_ ? 1ULL : 0ULL,
          std::bit_cast<uint64_t>(cached_gaussian_)};
}

Status Rng::SetState(const std::vector<uint64_t>& state) {
  if (state.size() != 6) {
    return Status::InvalidArgument("rng state must hold 6 words, got " +
                                   std::to_string(state.size()));
  }
  if ((state[0] | state[1] | state[2] | state[3]) == 0) {
    return Status::InvalidArgument("all-zero xoshiro state");
  }
  if (state[4] > 1) {
    return Status::InvalidArgument("rng cached-gaussian flag must be 0 or 1");
  }
  for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  has_cached_gaussian_ = state[4] == 1;
  cached_gaussian_ = std::bit_cast<double>(state[5]);
  return Status::OK();
}

}  // namespace daisy

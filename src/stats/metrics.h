// Information-theoretic and descriptive metrics shared across the
// library: NMI for clustering quality, discrete KL divergence for the
// VTrain warm-up term and distribution-fidelity reporting, histograms,
// and Pearson correlation.
#ifndef DAISY_STATS_METRICS_H_
#define DAISY_STATS_METRICS_H_

#include <cstddef>
#include <vector>

namespace daisy::stats {

/// Normalized mutual information between two labelings of the same n
/// items (values may be arbitrary small non-negative integers).
/// Returns a value in [0, 1]; 1 means identical partitions.
double NormalizedMutualInformation(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b);

/// KL(p || q) over discrete distributions given as unnormalized counts.
/// q is smoothed with `smoothing` mass per bin so the result is finite.
double KlDivergence(const std::vector<double>& p_counts,
                    const std::vector<double>& q_counts,
                    double smoothing = 1e-6);

/// Equi-width histogram of `values` over [lo, hi] with `bins` buckets.
/// Values outside the range are clamped into the terminal buckets.
std::vector<double> Histogram(const std::vector<double>& values, double lo,
                              double hi, size_t bins);

/// Like Histogram, but with explicit outlier buckets: returns bins + 2
/// counts where [0] holds values strictly below lo, [bins + 1] values
/// strictly above hi, and [1 .. bins] the in-range equi-width buckets.
/// Divergence metrics use this so out-of-support mass is penalized
/// instead of being silently clamped into the edge bins.
std::vector<double> HistogramWithOutliers(const std::vector<double>& values,
                                          double lo, double hi, size_t bins);

/// Pearson correlation coefficient of two equal-length series.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Basic descriptive statistics.
struct Descriptive {
  double min = 0, max = 0, mean = 0, stddev = 0;
};
Descriptive Describe(const std::vector<double>& values);

}  // namespace daisy::stats

#endif  // DAISY_STATS_METRICS_H_

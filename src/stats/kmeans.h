// K-Means clustering (Lloyd's algorithm, k-means++ init) — used by the
// clustering-utility evaluation (paper Section 6.2).
#ifndef DAISY_STATS_KMEANS_H_
#define DAISY_STATS_KMEANS_H_

#include <vector>

#include "core/matrix.h"
#include "core/rng.h"

namespace daisy::stats {

/// Result of a K-Means run.
struct KMeansResult {
  Matrix centroids;              // k x features
  std::vector<size_t> labels;    // cluster index per row
  double inertia = 0.0;          // sum of squared distances to centroid
};

struct KMeansOptions {
  size_t k = 8;
  size_t max_iters = 50;
  double tol = 1e-6;  // stop when centroid movement is below this
};

/// Runs Lloyd's algorithm on the rows of `data`.
KMeansResult KMeans(const Matrix& data, const KMeansOptions& opts, Rng* rng);

}  // namespace daisy::stats

#endif  // DAISY_STATS_KMEANS_H_

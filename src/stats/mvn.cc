#include "stats/mvn.h"

#include <cmath>

namespace daisy::stats {

Result<Matrix> Cholesky(const Matrix& a) {
  const size_t n = a.rows();
  if (n != a.cols())
    return Status::InvalidArgument("Cholesky needs a square matrix");
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0)
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Matrix RegularizeCovariance(const Matrix& a, double lambda) {
  DAISY_CHECK(a.rows() == a.cols());
  DAISY_CHECK(lambda >= 0.0 && lambda <= 1.0);
  Matrix out = a * (1.0 - lambda);
  for (size_t i = 0; i < a.rows(); ++i) out(i, i) += lambda;
  return out;
}

Matrix CovarianceMatrix(const Matrix& data) {
  const size_t n = data.rows(), d = data.cols();
  DAISY_CHECK(n > 1);
  Matrix mean = data.ColMean();
  Matrix cov(d, d);
  for (size_t r = 0; r < n; ++r) {
    const double* row = data.row(r);
    for (size_t i = 0; i < d; ++i) {
      const double di = row[i] - mean(0, i);
      for (size_t j = i; j < d; ++j)
        cov(i, j) += di * (row[j] - mean(0, j));
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < d; ++i)
    for (size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

Matrix CorrelationMatrix(const Matrix& data) {
  Matrix cov = CovarianceMatrix(data);
  const size_t d = cov.rows();
  std::vector<double> inv_sd(d);
  for (size_t i = 0; i < d; ++i)
    inv_sd[i] = cov(i, i) > 1e-12 ? 1.0 / std::sqrt(cov(i, i)) : 0.0;
  Matrix corr(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j)
      corr(i, j) = cov(i, j) * inv_sd[i] * inv_sd[j];
    corr(i, i) = 1.0;
  }
  return corr;
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  DAISY_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

MvnSampler::MvnSampler(Matrix chol) : chol_(std::move(chol)) {
  DAISY_CHECK(chol_.rows() == chol_.cols());
}

std::vector<double> MvnSampler::Sample(Rng* rng) const {
  const size_t d = dim();
  std::vector<double> z(d), x(d, 0.0);
  for (auto& v : z) v = rng->Gaussian();
  for (size_t i = 0; i < d; ++i)
    for (size_t j = 0; j <= i; ++j) x[i] += chol_(i, j) * z[j];
  return x;
}

Matrix MvnSampler::SampleBatch(size_t n, Rng* rng) const {
  Matrix out(n, dim());
  for (size_t r = 0; r < n; ++r) {
    const auto x = Sample(rng);
    for (size_t c = 0; c < dim(); ++c) out(r, c) = x[c];
  }
  return out;
}

}  // namespace daisy::stats

// One-dimensional Gaussian Mixture Model fitted with EM — the engine
// behind mode-specific ("GMM-based") normalization in paper Section 4.
#ifndef DAISY_STATS_GMM_H_
#define DAISY_STATS_GMM_H_

#include <vector>

#include "core/rng.h"

namespace daisy::stats {

/// Read-only access to a sequence of doubles that may live out of
/// core (e.g. one column of a paged table). `Read` is the streaming
/// primitive; `At` serves point lookups (k-means++ reseeds).
class ValueSource {
 public:
  virtual ~ValueSource() = default;
  virtual size_t size() const = 0;
  virtual double At(size_t i) const = 0;
  /// Fills out[0 .. end-begin) with values [begin, end).
  virtual void Read(size_t begin, size_t end, double* out) const = 0;
};

/// In-memory adapter over a vector (tests, equivalence checks).
class VectorSource final : public ValueSource {
 public:
  explicit VectorSource(const std::vector<double>& values)
      : values_(values) {}
  size_t size() const override { return values_.size(); }
  double At(size_t i) const override { return values_[i]; }
  void Read(size_t begin, size_t end, double* out) const override {
    for (size_t i = begin; i < end; ++i) out[i - begin] = values_[i];
  }

 private:
  const std::vector<double>& values_;
};

/// A fitted 1-D mixture of `s` Gaussians.
class Gmm1d {
 public:
  struct Options {
    size_t components = 5;
    size_t max_iters = 100;
    double tol = 1e-6;        // stop when log-likelihood improves less
    double min_stddev = 1e-3; // variance floor to avoid collapse
  };

  Gmm1d() = default;

  /// Fits by EM with k-means++-style initialization of the means.
  static Gmm1d Fit(const std::vector<double>& values, const Options& opts,
                   Rng* rng);

  /// Out-of-core Fit: streams `values` in fixed windows instead of
  /// requiring them in memory, holding O(window + n/grain) state. The
  /// rng consumption order, chunk partition (kRowGrain rows) and every
  /// ascending-order reduction replicate Fit exactly, so the fitted
  /// parameters are bitwise identical to Fit on the same sequence, for
  /// any DAISY_THREADS. Costs one extra pass per EM iteration
  /// (responsibilities are recomputed rather than stored).
  static Gmm1d FitStreaming(const ValueSource& values, const Options& opts,
                            Rng* rng);

  /// Reconstructs a fitted model from its parameters (persistence).
  static Gmm1d FromParams(std::vector<double> means,
                          std::vector<double> stddevs,
                          std::vector<double> weights);

  size_t num_components() const { return means_.size(); }
  double mean(size_t i) const { return means_[i]; }
  double stddev(size_t i) const { return stddevs_[i]; }
  double weight(size_t i) const { return weights_[i]; }

  /// Posterior responsibilities p(component | v), normalized.
  std::vector<double> Responsibilities(double v) const;

  /// Index of the most likely component for v (argmax responsibility).
  size_t MostLikelyComponent(double v) const;

  /// Log-likelihood of a value under the mixture.
  double LogLikelihood(double v) const;

  /// Average log-likelihood of a dataset.
  double AvgLogLikelihood(const std::vector<double>& values) const;

  /// Draws one value from the mixture.
  double Sample(Rng* rng) const;

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
  std::vector<double> weights_;
};

}  // namespace daisy::stats

#endif  // DAISY_STATS_GMM_H_

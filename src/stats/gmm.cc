#include "stats/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "core/parallel.h"
#include "core/status.h"

namespace daisy::stats {

namespace {

double LogNormalPdf(double v, double mean, double stddev) {
  const double z = (v - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double LogSumExp(const std::vector<double>& xs) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : xs) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

Gmm1d Gmm1d::Fit(const std::vector<double>& values, const Options& opts,
                 Rng* rng) {
  DAISY_CHECK(!values.empty());
  const size_t k = std::max<size_t>(1, std::min(opts.components, values.size()));
  const size_t n = values.size();

  Gmm1d gmm;
  gmm.means_.resize(k);
  gmm.stddevs_.assign(k, 0.0);
  gmm.weights_.assign(k, 1.0 / static_cast<double>(k));

  // k-means++-style seeding of the means.
  gmm.means_[0] = values[rng->UniformInt(n)];
  std::vector<double> d2(n);
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < c; ++j) {
        const double d = values[i] - gmm.means_[j];
        best = std::min(best, d * d);
      }
      d2[i] = best;
    }
    gmm.means_[c] = values[rng->Categorical(d2)];
  }

  double global_var = 0.0, global_mean = 0.0;
  for (double v : values) global_mean += v;
  global_mean /= static_cast<double>(n);
  for (double v : values) global_var += (v - global_mean) * (v - global_mean);
  global_var /= static_cast<double>(n);
  const double init_sd =
      std::max(opts.min_stddev, std::sqrt(global_var / static_cast<double>(k)));
  for (auto& s : gmm.stddevs_) s = init_sd;

  std::vector<std::vector<double>> resp(n, std::vector<double>(k));
  double prev_ll = -std::numeric_limits<double>::infinity();
  // Rows are independent in the E step and enter the M step only
  // through sums, so both fan out over fixed-size row chunks; per-chunk
  // partials are reduced in ascending chunk order, keeping every result
  // bit-identical for any thread count (the partition depends only on
  // n). The grain amortizes dispatch over the per-row k*LogNormalPdf
  // work.
  constexpr size_t kRowGrain = 256;
  const size_t num_chunks = (n + kRowGrain - 1) / kRowGrain;
  std::vector<double> ll_part(num_chunks);
  std::vector<std::vector<double>> nj_part(num_chunks);
  std::vector<std::vector<double>> mu_part(num_chunks);
  std::vector<std::vector<double>> var_part(num_chunks);
  for (size_t iter = 0; iter < opts.max_iters; ++iter) {
    // E step: responsibilities per row (disjoint writes) plus chunked
    // log-likelihood partials.
    par::ParallelForIndexed(0, n, kRowGrain,
                            [&](size_t c, size_t b, size_t e) {
      std::vector<double> logp(k);
      double lsum = 0.0;
      for (size_t i = b; i < e; ++i) {
        for (size_t j = 0; j < k; ++j)
          logp[j] = std::log(std::max(gmm.weights_[j], 1e-300)) +
                    LogNormalPdf(values[i], gmm.means_[j], gmm.stddevs_[j]);
        const double lse = LogSumExp(logp);
        lsum += lse;
        for (size_t j = 0; j < k; ++j) resp[i][j] = std::exp(logp[j] - lse);
      }
      ll_part[c] = lsum;
    });
    double ll = 0.0;
    for (size_t c = 0; c < num_chunks; ++c) ll += ll_part[c];

    // M step, pass 1: chunked (nj, sum resp*v) partials for every
    // component at once.
    par::ParallelForIndexed(0, n, kRowGrain,
                            [&](size_t c, size_t b, size_t e) {
      nj_part[c].assign(k, 0.0);
      mu_part[c].assign(k, 0.0);
      for (size_t i = b; i < e; ++i)
        for (size_t j = 0; j < k; ++j) {
          nj_part[c][j] += resp[i][j];
          mu_part[c][j] += resp[i][j] * values[i];
        }
    });
    std::vector<double> nj(k, 0.0);
    std::vector<double> mu(k, 0.0);
    for (size_t c = 0; c < num_chunks; ++c)
      for (size_t j = 0; j < k; ++j) {
        nj[j] += nj_part[c][j];
        mu[j] += mu_part[c][j];
      }

    // Serial per-component resolution, ascending j so dead-component
    // reseeds consume the rng in the same order as the serial code.
    std::vector<bool> alive(k, false);
    for (size_t j = 0; j < k; ++j) {
      if (nj[j] < 1e-10) {
        // Dead component: re-seed at a random point.
        gmm.means_[j] = values[rng->UniformInt(n)];
        gmm.stddevs_[j] = init_sd;
        gmm.weights_[j] = 1.0 / static_cast<double>(n);
        continue;
      }
      alive[j] = true;
      mu[j] /= nj[j];
    }

    // M step, pass 2: variances around the final means.
    par::ParallelForIndexed(0, n, kRowGrain,
                            [&](size_t c, size_t b, size_t e) {
      var_part[c].assign(k, 0.0);
      for (size_t i = b; i < e; ++i)
        for (size_t j = 0; j < k; ++j) {
          const double d = values[i] - mu[j];
          var_part[c][j] += resp[i][j] * d * d;
        }
    });
    for (size_t j = 0; j < k; ++j) {
      if (!alive[j]) continue;
      double var = 0.0;
      for (size_t c = 0; c < num_chunks; ++c) var += var_part[c][j];
      var /= nj[j];
      gmm.means_[j] = mu[j];
      gmm.stddevs_[j] = std::max(opts.min_stddev, std::sqrt(var));
      gmm.weights_[j] = nj[j] / static_cast<double>(n);
    }
    // Renormalize: the dead-component reseed above assigns 1/n without
    // taking that mass from anyone, so the weights only sum to 1 up to
    // reseeds. Responsibilities, LogLikelihood and Sample all assume a
    // proper mixture.
    double wsum = 0.0;
    for (double w : gmm.weights_) wsum += w;
    if (wsum > 0.0)
      for (auto& w : gmm.weights_) w /= wsum;
    if (std::fabs(ll - prev_ll) < opts.tol * static_cast<double>(n)) break;
    prev_ll = ll;
  }
  return gmm;
}

Gmm1d Gmm1d::FitStreaming(const ValueSource& values, const Options& opts,
                          Rng* rng) {
  const size_t n = values.size();
  DAISY_CHECK(n > 0);
  const size_t k = std::max<size_t>(1, std::min(opts.components, n));

  Gmm1d gmm;
  gmm.means_.resize(k);
  gmm.stddevs_.assign(k, 0.0);
  gmm.weights_.assign(k, 1.0 / static_cast<double>(k));

  // Windowed scans: window boundaries are multiples of kRowGrain, so
  // the per-window ParallelForIndexed calls below partition rows into
  // exactly the chunks Fit's whole-range calls produce, and filling the
  // same chunk-indexed partials yields bit-identical reductions.
  constexpr size_t kRowGrain = 256;
  constexpr size_t kWindowRows = 64 * kRowGrain;
  std::vector<double> window(std::min(n, kWindowRows));
  const auto for_each_window =
      [&](const std::function<void(size_t, size_t, const double*)>& fn) {
        for (size_t b = 0; b < n; b += kWindowRows) {
          const size_t e = std::min(n, b + kWindowRows);
          values.Read(b, e, window.data());
          fn(b, e, window.data());
        }
      };

  // k-means++ seeding with Fit's exact rng stream: one UniformInt for
  // the first mean, then one Categorical over the min squared
  // distances per extra component. Rng::Categorical sums the weights
  // in ascending order, draws Uniform()*total and subtract-scans — and
  // consumes no Uniform at all when total <= 0 — so it is re-enacted
  // here as two streaming scans.
  gmm.means_[0] = values.At(rng->UniformInt(n));
  for (size_t c = 1; c < k; ++c) {
    const auto min_d2 = [&](double v) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < c; ++j) {
        const double d = v - gmm.means_[j];
        best = std::min(best, d * d);
      }
      return best;
    };
    double total = 0.0;
    for_each_window([&](size_t b, size_t e, const double* vals) {
      for (size_t i = b; i < e; ++i) total += min_d2(vals[i - b]);
    });
    size_t pick = n - 1;
    if (total > 0.0) {
      double x = rng->Uniform() * total;
      bool found = false;
      for (size_t b = 0; b < n && !found; b += kWindowRows) {
        const size_t e = std::min(n, b + kWindowRows);
        values.Read(b, e, window.data());
        for (size_t i = b; i < e; ++i) {
          x -= min_d2(window[i - b]);
          if (x < 0.0) {
            pick = i;
            found = true;
            break;
          }
        }
      }
    }
    gmm.means_[c] = values.At(pick);
  }

  // Global mean then variance, each a serial ascending scan as in Fit.
  double global_var = 0.0, global_mean = 0.0;
  for_each_window([&](size_t b, size_t e, const double* vals) {
    for (size_t i = b; i < e; ++i) global_mean += vals[i - b];
  });
  global_mean /= static_cast<double>(n);
  for_each_window([&](size_t b, size_t e, const double* vals) {
    for (size_t i = b; i < e; ++i)
      global_var += (vals[i - b] - global_mean) * (vals[i - b] - global_mean);
  });
  global_var /= static_cast<double>(n);
  const double init_sd =
      std::max(opts.min_stddev, std::sqrt(global_var / static_cast<double>(k)));
  for (auto& s : gmm.stddevs_) s = init_sd;

  const size_t num_chunks = (n + kRowGrain - 1) / kRowGrain;
  std::vector<double> ll_part(num_chunks);
  std::vector<std::vector<double>> nj_part(num_chunks);
  std::vector<std::vector<double>> mu_part(num_chunks);
  std::vector<std::vector<double>> var_part(num_chunks);
  std::vector<double> old_means, old_stddevs, old_weights;
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < opts.max_iters; ++iter) {
    // The dead-component reseeds below mutate the parameters the E
    // step just used; the variance scan recomputes responsibilities,
    // so it needs this pre-update snapshot.
    old_means = gmm.means_;
    old_stddevs = gmm.stddevs_;
    old_weights = gmm.weights_;

    // Scan 1: E step fused with M-step pass 1. Per chunk this runs the
    // same rows in the same order as Fit's two separate loops, and each
    // accumulator (lsum, nj, mu) sees the same additions in the same
    // order, so the partials are bit-identical; responsibilities are
    // recomputed per row instead of being stored n x k.
    for_each_window([&](size_t wb, size_t we, const double* vals) {
      par::ParallelForIndexed(wb, we, kRowGrain,
                              [&](size_t c, size_t b, size_t e) {
        const size_t chunk = wb / kRowGrain + c;
        std::vector<double> logp(k), r(k);
        double lsum = 0.0;
        nj_part[chunk].assign(k, 0.0);
        mu_part[chunk].assign(k, 0.0);
        for (size_t i = b; i < e; ++i) {
          const double v = vals[i - wb];
          for (size_t j = 0; j < k; ++j)
            logp[j] = std::log(std::max(gmm.weights_[j], 1e-300)) +
                      LogNormalPdf(v, gmm.means_[j], gmm.stddevs_[j]);
          const double lse = LogSumExp(logp);
          lsum += lse;
          for (size_t j = 0; j < k; ++j) r[j] = std::exp(logp[j] - lse);
          for (size_t j = 0; j < k; ++j) {
            nj_part[chunk][j] += r[j];
            mu_part[chunk][j] += r[j] * v;
          }
        }
        ll_part[chunk] = lsum;
      });
    });
    double ll = 0.0;
    for (size_t c = 0; c < num_chunks; ++c) ll += ll_part[c];
    std::vector<double> nj(k, 0.0);
    std::vector<double> mu(k, 0.0);
    for (size_t c = 0; c < num_chunks; ++c)
      for (size_t j = 0; j < k; ++j) {
        nj[j] += nj_part[c][j];
        mu[j] += mu_part[c][j];
      }

    std::vector<bool> alive(k, false);
    for (size_t j = 0; j < k; ++j) {
      if (nj[j] < 1e-10) {
        gmm.means_[j] = values.At(rng->UniformInt(n));
        gmm.stddevs_[j] = init_sd;
        gmm.weights_[j] = 1.0 / static_cast<double>(n);
        continue;
      }
      alive[j] = true;
      mu[j] /= nj[j];
    }

    // Scan 2: variance partials around the new means, responsibilities
    // recomputed from the snapshot (bitwise equal to Fit's stored resp:
    // same inputs, same expressions).
    for_each_window([&](size_t wb, size_t we, const double* vals) {
      par::ParallelForIndexed(wb, we, kRowGrain,
                              [&](size_t c, size_t b, size_t e) {
        const size_t chunk = wb / kRowGrain + c;
        std::vector<double> logp(k);
        var_part[chunk].assign(k, 0.0);
        for (size_t i = b; i < e; ++i) {
          const double v = vals[i - wb];
          for (size_t j = 0; j < k; ++j)
            logp[j] = std::log(std::max(old_weights[j], 1e-300)) +
                      LogNormalPdf(v, old_means[j], old_stddevs[j]);
          const double lse = LogSumExp(logp);
          for (size_t j = 0; j < k; ++j) {
            const double d = v - mu[j];
            var_part[chunk][j] += std::exp(logp[j] - lse) * d * d;
          }
        }
      });
    });
    for (size_t j = 0; j < k; ++j) {
      if (!alive[j]) continue;
      double var = 0.0;
      for (size_t c = 0; c < num_chunks; ++c) var += var_part[c][j];
      var /= nj[j];
      gmm.means_[j] = mu[j];
      gmm.stddevs_[j] = std::max(opts.min_stddev, std::sqrt(var));
      gmm.weights_[j] = nj[j] / static_cast<double>(n);
    }
    double wsum = 0.0;
    for (double w : gmm.weights_) wsum += w;
    if (wsum > 0.0)
      for (auto& w : gmm.weights_) w /= wsum;
    if (std::fabs(ll - prev_ll) < opts.tol * static_cast<double>(n)) break;
    prev_ll = ll;
  }
  return gmm;
}

Gmm1d Gmm1d::FromParams(std::vector<double> means,
                        std::vector<double> stddevs,
                        std::vector<double> weights) {
  DAISY_CHECK(!means.empty());
  DAISY_CHECK(means.size() == stddevs.size() &&
              means.size() == weights.size());
  for (double s : stddevs) DAISY_CHECK(s > 0.0);
  Gmm1d gmm;
  gmm.means_ = std::move(means);
  gmm.stddevs_ = std::move(stddevs);
  gmm.weights_ = std::move(weights);
  return gmm;
}

std::vector<double> Gmm1d::Responsibilities(double v) const {
  std::vector<double> logp(means_.size());
  for (size_t j = 0; j < means_.size(); ++j)
    logp[j] = std::log(std::max(weights_[j], 1e-300)) +
              LogNormalPdf(v, means_[j], stddevs_[j]);
  const double lse = LogSumExp(logp);
  std::vector<double> out(means_.size());
  for (size_t j = 0; j < means_.size(); ++j) out[j] = std::exp(logp[j] - lse);
  return out;
}

size_t Gmm1d::MostLikelyComponent(double v) const {
  const auto r = Responsibilities(v);
  return static_cast<size_t>(
      std::max_element(r.begin(), r.end()) - r.begin());
}

double Gmm1d::LogLikelihood(double v) const {
  std::vector<double> logp(means_.size());
  for (size_t j = 0; j < means_.size(); ++j)
    logp[j] = std::log(std::max(weights_[j], 1e-300)) +
              LogNormalPdf(v, means_[j], stddevs_[j]);
  return LogSumExp(logp);
}

double Gmm1d::AvgLogLikelihood(const std::vector<double>& values) const {
  DAISY_CHECK(!values.empty());
  double s = 0.0;
  for (double v : values) s += LogLikelihood(v);
  return s / static_cast<double>(values.size());
}

double Gmm1d::Sample(Rng* rng) const {
  const size_t j = rng->Categorical(weights_);
  return rng->Gaussian(means_[j], stddevs_[j]);
}

}  // namespace daisy::stats

#include "stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/status.h"

namespace daisy::stats {

double NormalizedMutualInformation(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b) {
  DAISY_CHECK(a.size() == b.size());
  DAISY_CHECK(!a.empty());
  const double n = static_cast<double>(a.size());

  std::unordered_map<size_t, double> ca, cb;
  std::unordered_map<uint64_t, double> cab;
  for (size_t i = 0; i < a.size(); ++i) {
    ca[a[i]] += 1.0;
    cb[b[i]] += 1.0;
    cab[(static_cast<uint64_t>(a[i]) << 32) | b[i]] += 1.0;
  }

  auto entropy = [n](const std::unordered_map<size_t, double>& counts) {
    double h = 0.0;
    for (const auto& [_, c] : counts) {
      const double p = c / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(ca);
  const double hb = entropy(cb);

  double mi = 0.0;
  for (const auto& [key, c] : cab) {
    const size_t ia = key >> 32, ib = key & 0xFFFFFFFFULL;
    const double pab = c / n;
    const double pa = ca[ia] / n;
    const double pb = cb[ib] / n;
    mi += pab * std::log(pab / (pa * pb));
  }

  const double denom = std::sqrt(ha * hb);
  if (denom < 1e-12) return ha < 1e-12 && hb < 1e-12 ? 1.0 : 0.0;
  return std::clamp(mi / denom, 0.0, 1.0);
}

double KlDivergence(const std::vector<double>& p_counts,
                    const std::vector<double>& q_counts, double smoothing) {
  DAISY_CHECK(p_counts.size() == q_counts.size());
  DAISY_CHECK(!p_counts.empty());
  double ps = 0.0, qs = 0.0;
  for (size_t i = 0; i < p_counts.size(); ++i) {
    DAISY_CHECK(p_counts[i] >= 0.0 && q_counts[i] >= 0.0);
    ps += p_counts[i] + smoothing;
    qs += q_counts[i] + smoothing;
  }
  double kl = 0.0;
  for (size_t i = 0; i < p_counts.size(); ++i) {
    const double p = (p_counts[i] + smoothing) / ps;
    const double q = (q_counts[i] + smoothing) / qs;
    if (p > 0.0) kl += p * std::log(p / q);
  }
  return std::max(kl, 0.0);
}

std::vector<double> Histogram(const std::vector<double>& values, double lo,
                              double hi, size_t bins) {
  DAISY_CHECK(bins > 0);
  DAISY_CHECK(hi >= lo);
  std::vector<double> h(bins, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    size_t idx;
    if (width <= 0.0 || v <= lo) {
      idx = 0;
    } else if (v >= hi) {
      idx = bins - 1;
    } else {
      idx = static_cast<size_t>((v - lo) / width);
      idx = std::min(idx, bins - 1);
    }
    h[idx] += 1.0;
  }
  return h;
}

std::vector<double> HistogramWithOutliers(const std::vector<double>& values,
                                          double lo, double hi, size_t bins) {
  DAISY_CHECK(bins > 0);
  DAISY_CHECK(hi >= lo);
  std::vector<double> h(bins + 2, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    size_t idx;
    if (v < lo) {
      idx = 0;  // underflow
    } else if (v > hi) {
      idx = bins + 1;  // overflow
    } else if (width <= 0.0 || v <= lo) {
      idx = 1;
    } else if (v >= hi) {
      idx = bins;
    } else {
      idx = 1 + static_cast<size_t>((v - lo) / width);
      idx = std::min(idx, bins);
    }
    h[idx] += 1.0;
  }
  return h;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  DAISY_CHECK(x.size() == y.size());
  DAISY_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double mx = 0, my = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom < 1e-12) return 0.0;
  return sxy / denom;
}

Descriptive Describe(const std::vector<double>& values) {
  DAISY_CHECK(!values.empty());
  Descriptive d;
  d.min = values[0];
  d.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    d.min = std::min(d.min, v);
    d.max = std::max(d.max, v);
    sum += v;
  }
  d.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - d.mean) * (v - d.mean);
  d.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return d;
}

}  // namespace daisy::stats

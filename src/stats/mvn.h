// Dense Cholesky factorization and multivariate-normal sampling — the
// numerical substrate of the Gaussian-copula baseline.
#ifndef DAISY_STATS_MVN_H_
#define DAISY_STATS_MVN_H_

#include "core/matrix.h"
#include "core/rng.h"
#include "core/status.h"

namespace daisy::stats {

/// Lower-triangular Cholesky factor L with A = L L^T. A must be
/// symmetric; returns an error for non-positive-definite input (use
/// RegularizeCovariance first for near-singular matrices).
Result<Matrix> Cholesky(const Matrix& a);

/// Shrinks a covariance/correlation matrix toward the identity:
/// (1 - lambda) * A + lambda * I. Guarantees positive definiteness for
/// any valid correlation matrix and lambda > 0.
Matrix RegularizeCovariance(const Matrix& a, double lambda);

/// Sample covariance matrix of the rows of `data`.
Matrix CovarianceMatrix(const Matrix& data);

/// Pearson correlation matrix of the rows of `data` (unit diagonal;
/// constant columns get zero off-diagonal correlation).
Matrix CorrelationMatrix(const Matrix& data);

/// Standard normal CDF Phi(z).
double NormalCdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). p must be in (0, 1).
double NormalQuantile(double p);

/// Draws from N(0, Sigma) given Sigma's Cholesky factor L: x = L z.
class MvnSampler {
 public:
  /// `chol` must be the lower-triangular factor of the target
  /// covariance.
  explicit MvnSampler(Matrix chol);

  size_t dim() const { return chol_.rows(); }

  /// One draw (1 x dim).
  std::vector<double> Sample(Rng* rng) const;

  /// n draws (n x dim).
  Matrix SampleBatch(size_t n, Rng* rng) const;

 private:
  Matrix chol_;
};

}  // namespace daisy::stats

#endif  // DAISY_STATS_MVN_H_

#include "stats/kmeans.h"

#include <cmath>
#include <limits>

namespace daisy::stats {

namespace {

double SqDist(const double* a, const double* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeansResult KMeans(const Matrix& data, const KMeansOptions& opts, Rng* rng) {
  const size_t n = data.rows(), d = data.cols();
  DAISY_CHECK(n > 0 && d > 0);
  const size_t k = std::min(opts.k, n);

  KMeansResult result;
  result.centroids = Matrix(k, d);
  result.labels.assign(n, 0);

  // k-means++ seeding.
  size_t first = rng->UniformInt(n);
  for (size_t c = 0; c < d; ++c) result.centroids(0, c) = data(first, c);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  for (size_t j = 1; j < k; ++j) {
    for (size_t i = 0; i < n; ++i)
      d2[i] = std::min(d2[i],
                       SqDist(data.row(i), result.centroids.row(j - 1), d));
    const size_t pick = rng->Categorical(d2);
    for (size_t c = 0; c < d; ++c) result.centroids(j, c) = data(pick, c);
  }

  std::vector<size_t> counts(k);
  for (size_t iter = 0; iter < opts.max_iters; ++iter) {
    // Assignment.
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t bj = 0;
      for (size_t j = 0; j < k; ++j) {
        const double dist = SqDist(data.row(i), result.centroids.row(j), d);
        if (dist < best) {
          best = dist;
          bj = j;
        }
      }
      result.labels[i] = bj;
    }
    // Update.
    Matrix next(k, d);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = result.labels[i];
      ++counts[j];
      for (size_t c = 0; c < d; ++c) next(j, c) += data(i, c);
    }
    double movement = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) {
        // Empty cluster: re-seed at a random data point.
        const size_t pick = rng->UniformInt(n);
        for (size_t c = 0; c < d; ++c) next(j, c) = data(pick, c);
      } else {
        for (size_t c = 0; c < d; ++c)
          next(j, c) /= static_cast<double>(counts[j]);
      }
      movement += SqDist(next.row(j), result.centroids.row(j), d);
    }
    result.centroids = std::move(next);
    if (movement < opts.tol) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i)
    result.inertia +=
        SqDist(data.row(i), result.centroids.row(result.labels[i]), d);
  return result;
}

}  // namespace daisy::stats

#include "ckpt/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/serial.h"

namespace daisy::ckpt {

namespace {

constexpr char kFormatTag[] = "daisy-ckpt-v1";
constexpr char kChecksumPrefix[] = "checksum ";
constexpr size_t kChecksumPrefixLen = sizeof(kChecksumPrefix) - 1;
// "checksum " + 16 hex digits + '\n'.
constexpr size_t kTrailerLen = kChecksumPrefixLen + 16 + 1;
constexpr char kCkptSuffix[] = ".daisyckpt";

// Caps on container sizes read from disk, far above anything the
// trainers produce but small enough that a corrupt length can't drive
// a pathological allocation before its matrices fail to parse.
constexpr uint64_t kMaxMatrices = 1u << 16;
constexpr uint64_t kMaxSnapshots = 1u << 12;
constexpr uint64_t kMaxBlobs = 1u << 10;
constexpr uint64_t kMaxRngWords = 1u << 16;

void WriteMatrixList(Serializer* out, const char* tag,
                     const std::vector<Matrix>& ms) {
  out->WriteTag(tag);
  out->WriteU64(ms.size());
  for (const Matrix& m : ms) out->WriteMatrix(m);
}

std::vector<Matrix> ReadMatrixList(Deserializer* in, const char* tag) {
  in->ExpectTag(tag);
  const uint64_t n = in->ReadU64();
  if (!in->ok()) return {};
  if (n > kMaxMatrices) {
    in->Fail(std::string("implausible matrix count under tag ") + tag);
    return {};
  }
  std::vector<Matrix> ms;
  ms.reserve(n);
  for (uint64_t i = 0; i < n && in->ok(); ++i) ms.push_back(in->ReadMatrix());
  return ms;
}

void WritePayload(Serializer* out, const TrainCheckpoint& c) {
  out->WriteTag(kFormatTag);
  out->WriteU64(TrainCheckpoint::kVersion);
  out->WriteTag("run");
  out->WriteString(c.run);
  out->WriteU64(c.phase);
  out->WriteU64(c.iter);
  out->WriteU64(c.total_iters);
  out->WriteU64(c.seed);
  out->WriteU64(c.telemetry_records);

  out->WriteTag("rng");
  out->WriteU64(c.rng_state.size());
  for (uint64_t w : c.rng_state) out->WriteU64(w);

  WriteMatrixList(out, "params", c.params);
  WriteMatrixList(out, "buffers", c.buffers);

  out->WriteTag("optimizers");
  out->WriteU64(c.optimizer_state.size());
  for (const std::string& blob : c.optimizer_state) out->WriteString(blob);

  WriteMatrixList(out, "healthy_params", c.healthy_params);
  WriteMatrixList(out, "healthy_buffers", c.healthy_buffers);

  out->WriteTag("traces");
  out->WriteDoubleVector(c.d_losses);
  out->WriteDoubleVector(c.g_losses);

  out->WriteTag("snapshots");
  out->WriteU64(c.snapshots.size());
  for (const auto& snap : c.snapshots) WriteMatrixList(out, "snap", snap);
  out->WriteU64(c.snapshot_iters.size());
  for (uint64_t it : c.snapshot_iters) out->WriteU64(it);

  out->WriteTag("extra");
  out->WriteDoubleVector(c.extra);
  out->WriteTag("end");
}

Result<TrainCheckpoint> ReadPayload(Deserializer* in) {
  TrainCheckpoint c;
  in->ExpectTag(kFormatTag);
  const uint64_t version = in->ReadU64();
  if (in->ok() && version != TrainCheckpoint::kVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(TrainCheckpoint::kVersion) + ")");
  }
  in->ExpectTag("run");
  c.run = in->ReadString();
  c.phase = in->ReadU64();
  c.iter = in->ReadU64();
  c.total_iters = in->ReadU64();
  c.seed = in->ReadU64();
  c.telemetry_records = in->ReadU64();

  in->ExpectTag("rng");
  const uint64_t rng_words = in->ReadU64();
  if (in->ok() && rng_words > kMaxRngWords)
    in->Fail("implausible rng state size");
  for (uint64_t i = 0; i < rng_words && in->ok(); ++i)
    c.rng_state.push_back(in->ReadU64());

  c.params = ReadMatrixList(in, "params");
  c.buffers = ReadMatrixList(in, "buffers");

  in->ExpectTag("optimizers");
  const uint64_t blobs = in->ReadU64();
  if (in->ok() && blobs > kMaxBlobs) in->Fail("implausible optimizer count");
  for (uint64_t i = 0; i < blobs && in->ok(); ++i)
    c.optimizer_state.push_back(in->ReadString());

  c.healthy_params = ReadMatrixList(in, "healthy_params");
  c.healthy_buffers = ReadMatrixList(in, "healthy_buffers");

  in->ExpectTag("traces");
  c.d_losses = in->ReadDoubleVector();
  c.g_losses = in->ReadDoubleVector();

  in->ExpectTag("snapshots");
  const uint64_t snaps = in->ReadU64();
  if (in->ok() && snaps > kMaxSnapshots) in->Fail("implausible snapshot count");
  for (uint64_t i = 0; i < snaps && in->ok(); ++i)
    c.snapshots.push_back(ReadMatrixList(in, "snap"));
  const uint64_t snap_iters = in->ReadU64();
  if (in->ok() && snap_iters > kMaxSnapshots)
    in->Fail("implausible snapshot iter count");
  for (uint64_t i = 0; i < snap_iters && in->ok(); ++i)
    c.snapshot_iters.push_back(in->ReadU64());

  in->ExpectTag("extra");
  c.extra = in->ReadDoubleVector();
  in->ExpectTag("end");

  if (!in->ok())
    return Status::InvalidArgument("malformed checkpoint payload: " +
                                   in->error());
  return c;
}

bool ParseHex16(const char* s, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    const char h = s[i];
    v <<= 4;
    if (h >= '0' && h <= '9') v |= static_cast<uint64_t>(h - '0');
    else if (h >= 'a' && h <= 'f') v |= static_cast<uint64_t>(h - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

}  // namespace

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string SerializeCheckpoint(const TrainCheckpoint& ckpt) {
  std::ostringstream os;
  Serializer out(&os);
  WritePayload(&out, ckpt);
  std::string bytes = os.str();
  char trailer[kTrailerLen + 1];
  std::snprintf(trailer, sizeof(trailer), "%s%016llx\n", kChecksumPrefix,
                static_cast<unsigned long long>(
                    Fnv1a64(bytes.data(), bytes.size())));
  bytes += trailer;
  return bytes;
}

Result<TrainCheckpoint> ParseCheckpoint(const std::string& bytes) {
  if (bytes.size() < kTrailerLen)
    return Status::InvalidArgument("checkpoint too short for a checksum");
  const size_t payload_len = bytes.size() - kTrailerLen;
  const char* trailer = bytes.data() + payload_len;
  uint64_t want = 0;
  if (bytes.compare(payload_len, kChecksumPrefixLen, kChecksumPrefix) != 0 ||
      bytes.back() != '\n' ||
      !ParseHex16(trailer + kChecksumPrefixLen, &want)) {
    return Status::InvalidArgument(
        "checkpoint missing its checksum trailer (truncated write?)");
  }
  const uint64_t got = Fnv1a64(bytes.data(), payload_len);
  if (got != want)
    return Status::InvalidArgument("checkpoint checksum mismatch (corrupt)");
  std::istringstream is(bytes.substr(0, payload_len));
  Deserializer in(&is);
  return ReadPayload(&in);
}

Status SaveCheckpoint(const TrainCheckpoint& ckpt, const std::string& path) {
  const std::string bytes = SerializeCheckpoint(ckpt);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::IOError("cannot create checkpoint temp file '" + tmp + "'");
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  // fsync before rename: otherwise the rename can hit disk before the
  // data does, and a power cut leaves a valid-looking empty file.
  const bool synced = fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || !flushed || !synced) {
    std::remove(tmp.c_str());
    return Status::IOError("failed writing checkpoint temp file '" + tmp +
                           "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed renaming checkpoint into '" + path + "'");
  }
  return Status::OK();
}

Result<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound("no checkpoint at '" + path + "'");
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok)
    return Status::IOError("failed reading checkpoint '" + path + "'");
  auto parsed = ParseCheckpoint(bytes);
  if (!parsed.ok())
    return Status::InvalidArgument("checkpoint '" + path +
                                   "': " + parsed.status().message());
  return parsed.take();
}

CheckpointStore::CheckpointStore(std::string dir, size_t keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last == 0 ? 1 : keep_last) {}

std::string CheckpointStore::FileName(uint64_t phase, uint64_t iter) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-p%04llu-i%012llu%s",
                static_cast<unsigned long long>(phase),
                static_cast<unsigned long long>(iter), kCkptSuffix);
  return buf;
}

std::vector<std::string> CheckpointStore::ListFiles() const {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    // Skip temp files from in-flight (or crashed) writers.
    if (name.size() < sizeof(kCkptSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kCkptSuffix) - 1),
                     sizeof(kCkptSuffix) - 1, kCkptSuffix) != 0)
      continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Status CheckpointStore::Save(const TrainCheckpoint& ckpt) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    return Status::IOError("cannot create checkpoint dir '" + dir_ +
                           "': " + ec.message());
  const std::string path =
      (fs::path(dir_) / FileName(ckpt.phase, ckpt.iter)).string();
  Status s = SaveCheckpoint(ckpt, path);
  if (!s.ok()) return s;
  std::vector<std::string> files = ListFiles();
  while (files.size() > keep_last_) {
    std::remove(files.front().c_str());
    files.erase(files.begin());
  }
  return Status::OK();
}

Result<TrainCheckpoint> CheckpointStore::LoadLatest(
    std::string* loaded_from) const {
  std::vector<std::string> files = ListFiles();
  Status first_error =
      Status::NotFound("no checkpoints in '" + dir_ + "'");
  bool have_error = false;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto loaded = LoadCheckpoint(*it);
    if (loaded.ok()) {
      if (loaded_from != nullptr) *loaded_from = *it;
      return loaded.take();
    }
    if (!have_error) {
      first_error = loaded.status();
      have_error = true;
    }
  }
  return first_error;
}

}  // namespace daisy::ckpt

// Crash-safe training checkpoints. A TrainCheckpoint captures every
// piece of mutable training state — model parameters, BatchNorm
// buffers, optimizer moments (as opaque per-optimizer blobs written by
// nn::Optimizer::Save), the rng engine words, iteration counter,
// sentinel rollback baselines, loss traces / snapshots, and the
// telemetry cursor — so a killed run resumes bit-for-bit where it left
// off.
//
// On-disk format: the core/serial tagged text stream, led by a version
// tag, followed by one trailing line `checksum <16 hex digits>` holding
// the FNV-1a 64 hash of every byte before that line. Writes go to a
// temp file that is fsynced and then renamed over the target, so a
// crash mid-write leaves either the old file or no file — never a
// half-written one; and any corruption (bit flip, truncation) fails the
// checksum before a single payload byte is parsed.
#ifndef DAISY_CKPT_CHECKPOINT_H_
#define DAISY_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace daisy::ckpt {

/// Complete mid-training state of one trainer. The trainers define
/// what goes where (e.g. GanTrainer stores generator-then-discriminator
/// params, medGAN uses `phase` to distinguish autoencoder pretraining
/// from adversarial training); the checkpoint layer just round-trips
/// the containers faithfully, NaNs and infinities included.
struct TrainCheckpoint {
  /// Format owners: bump kVersion when the field set changes; Load
  /// rejects files written by a different version outright.
  static constexpr uint64_t kVersion = 1;

  std::string run;       // emitter tag, e.g. "gan.wtrain"; validated on resume
  uint64_t phase = 0;    // training phase for multi-phase trainers
  uint64_t iter = 0;     // completed iterations within the phase
  uint64_t total_iters = 0;  // configured run length (resume sanity check)
  uint64_t seed = 0;         // base seed (resume sanity check)
  uint64_t telemetry_records = 0;  // MetricSink cursor at save time

  std::vector<uint64_t> rng_state;  // engine words (Rng::GetState, possibly
                                    // several streams concatenated)
  std::vector<Matrix> params;       // trainable parameter values
  std::vector<Matrix> buffers;      // non-trainable state (BatchNorm stats)
  std::vector<std::string> optimizer_state;  // one blob per optimizer

  std::vector<Matrix> healthy_params;   // sentinel rollback baseline
  std::vector<Matrix> healthy_buffers;  // ... and its buffers

  std::vector<double> d_losses;  // per-iteration loss traces
  std::vector<double> g_losses;
  std::vector<std::vector<Matrix>> snapshots;  // periodic param snapshots
  std::vector<uint64_t> snapshot_iters;
  std::vector<double> extra;  // trainer-specific scalars (e.g. epsilon spent)
};

/// FNV-1a 64-bit hash (exposed for tests that forge trailers).
uint64_t Fnv1a64(const char* data, size_t size);

/// Serializes a checkpoint to the tagged-text payload + checksum
/// trailer (the exact bytes SaveCheckpoint writes).
std::string SerializeCheckpoint(const TrainCheckpoint& ckpt);

/// Parses bytes produced by SerializeCheckpoint. Verifies the checksum
/// trailer before touching the payload; any mismatch, truncation, or
/// malformed field yields an error Status, never UB.
Result<TrainCheckpoint> ParseCheckpoint(const std::string& bytes);

/// Atomically writes `ckpt` to `path` (temp file + fsync + rename).
Status SaveCheckpoint(const TrainCheckpoint& ckpt, const std::string& path);

/// Loads and verifies a checkpoint file.
Result<TrainCheckpoint> LoadCheckpoint(const std::string& path);

/// A directory of checkpoints with retention: Save names files so that
/// lexicographic order is (phase, iter) order, then prunes all but the
/// newest `keep_last`. LoadLatest walks newest to oldest, skipping
/// corrupt files, so one bad write never strands a run.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir, size_t keep_last = 3);

  /// Writes the checkpoint (creating the directory if needed) and
  /// prunes old files beyond keep_last.
  Status Save(const TrainCheckpoint& ckpt);

  /// Newest checkpoint that verifies, or NotFound when the directory
  /// holds none (corrupt-only directories report the newest file's
  /// error). `loaded_from`, when non-null, receives the winning path.
  Result<TrainCheckpoint> LoadLatest(std::string* loaded_from = nullptr) const;

  /// Checkpoint file paths in ascending (phase, iter) order.
  std::vector<std::string> ListFiles() const;

  const std::string& dir() const { return dir_; }
  size_t keep_last() const { return keep_last_; }

  /// Basename used for a (phase, iter) pair, e.g.
  /// "ckpt-p0001-i000000000042.daisyckpt".
  static std::string FileName(uint64_t phase, uint64_t iter);

 private:
  std::string dir_;
  size_t keep_last_;
};

}  // namespace daisy::ckpt

#endif  // DAISY_CKPT_CHECKPOINT_H_

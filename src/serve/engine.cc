#include "serve/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "serve/csv_stream.h"

namespace daisy::serve {

ServeEngine::ServeEngine(const ModelRegistry* registry)
    : ServeEngine(registry, Options()) {}

ServeEngine::ServeEngine(const ModelRegistry* registry, Options opts)
    : registry_(registry), opts_(opts) {
  DAISY_CHECK(registry_ != nullptr);
  DAISY_CHECK(opts_.chunk_rows > 0);
  opts_.max_batch_rows = std::max(opts_.max_batch_rows, opts_.chunk_rows);
}

ServeEngine::~ServeEngine() { Drain(); }

void ServeEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  DAISY_CHECK(!started_);
  started_ = true;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

void ServeEngine::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Second Drain (e.g. the destructor after an explicit call):
      // nothing left to do once the scheduler has been joined.
      if (!scheduler_.joinable()) return;
    }
    draining_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

Status ServeEngine::SubmitGen(const std::string& model, size_t rows,
                              uint64_t seed, ChunkSink sink) {
  const synth::TableSynthesizer* m = registry_->Find(model);
  if (m == nullptr) return Status::NotFound("unknown model: " + model);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_)
      return Status::FailedPrecondition("server is shutting down");
    DAISY_CHECK(started_);
    queue_.push_back(
        std::make_unique<Job>(m, rows, seed, std::move(sink)));
  }
  cv_.notify_one();
  return Status::OK();
}

void ServeEngine::SchedulerLoop() {
  for (;;) {
    // One scheduling round: under the lock, group the front job with
    // every other queued job for the same model, one chunk each, up to
    // max_batch_rows coalesced rows.
    std::vector<Job*> selected;
    std::vector<size_t> take;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      const synth::TableSynthesizer* model = queue_.front()->model;
      size_t batch = 0;
      for (const auto& job : queue_) {
        if (job->model != model) continue;
        const size_t t = std::min(opts_.chunk_rows, job->remaining);
        if (!selected.empty() && batch + t > opts_.max_batch_rows) break;
        selected.push_back(job.get());
        take.push_back(t);
        batch += t;
        if (batch >= opts_.max_batch_rows) break;
      }
    }

    // Each job draws its own latents from its own rng stream — in
    // selection order, but streams are independent, so cross-job order
    // is irrelevant to the bytes each job receives. Only the scheduler
    // touches job state, so no lock is needed from here on.
    const size_t k = selected.size();
    std::vector<Matrix> zs(k), conds(k);
    std::vector<std::vector<size_t>> labels(k);
    Matrix big_z, big_cond;
    for (size_t i = 0; i < k; ++i) {
      if (take[i] == 0) continue;
      selected[i]->model->DrawLatents(take[i], &selected[i]->rng, &zs[i],
                                      &conds[i], &labels[i]);
      big_z = big_z.empty() ? zs[i] : Matrix::VCat(big_z, zs[i]);
      if (!conds[i].empty())
        big_cond =
            big_cond.empty() ? conds[i] : Matrix::VCat(big_cond, conds[i]);
    }

    // One coalesced inference pass for the whole group (the generator
    // itself fans out over the core/parallel pool). Per-row outputs are
    // independent of batch composition, so splitting recovers exactly
    // the bytes each job would have produced alone.
    Matrix samples;
    if (!big_z.empty())
      samples = selected[0]->model->InferenceSamples(big_z, big_cond);

    // Decode + CSV-encode every job's slice in parallel (row-local
    // work; chunk order below restores per-job byte order).
    std::vector<std::string> chunk(k);
    std::vector<size_t> offset(k, 0);
    for (size_t i = 0, at = 0; i < k; ++i) {
      offset[i] = at;
      at += take[i];
    }
    par::ParallelFor(0, k, 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        std::string bytes;
        if (!selected[i]->header_sent)
          bytes = CsvHeader(selected[i]->model->schema());
        if (take[i] > 0) {
          const Matrix part =
              samples.RowRange(offset[i], offset[i] + take[i]);
          bytes += CsvRows(selected[i]->model->DecodeRows(part, labels[i]));
        }
        chunk[i] = std::move(bytes);
      }
    });

    // Deliver chunks and retire finished jobs. Sinks run on this
    // thread only, so per-job chunk order is the selection order.
    for (size_t i = 0; i < k; ++i) {
      selected[i]->header_sent = true;
      selected[i]->remaining -= take[i];
      selected[i]->sink(chunk[i], /*done=*/false);
      if (selected[i]->remaining == 0) {
        ChunkSink done_sink = std::move(selected[i]->sink);
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->get() == selected[i]) {
              queue_.erase(it);
              break;
            }
          }
        }
        done_sink("", /*done=*/true);
      }
    }
  }
}

}  // namespace daisy::serve

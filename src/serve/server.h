// AF_UNIX line-protocol front end over ServeEngine. One listener
// thread accepts connections; each connection gets a reader thread that
// parses protocol lines and submits jobs. Reply chunks for a GEN are
// written by the engine's scheduler thread while the reader blocks
// until the job is done, so writes to one socket are never interleaved.
//
// Shutdown (SHUTDOWN verb or Stop()): the listener closes, queued jobs
// drain to completion, open connections are shut down, and every
// thread is joined — no request accepted before the shutdown is ever
// dropped.
#ifndef DAISY_SERVE_SERVER_H_
#define DAISY_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/registry.h"

namespace daisy::serve {

class SocketServer {
 public:
  /// `registry` and `engine` must outlive the server; the engine must
  /// be Start()ed by the caller.
  SocketServer(const ModelRegistry* registry, ServeEngine* engine,
               std::string socket_path);
  ~SocketServer();

  /// Binds the unix socket (removing a stale file), listens, and
  /// spawns the accept loop.
  Status Start();

  /// Blocks until a client sends SHUTDOWN or Stop() is called.
  void Wait();

  /// Graceful shutdown: stop accepting, drain the engine (in-flight
  /// GENs complete), close connections, join threads. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const ModelRegistry* registry_;
  ServeEngine* engine_;
  std::string socket_path_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
};

}  // namespace daisy::serve

#endif  // DAISY_SERVE_SERVER_H_

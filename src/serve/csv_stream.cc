#include "serve/csv_stream.h"

#include "data/csv.h"

namespace daisy::serve {

std::string CsvHeader(const data::Schema& schema) {
  std::string out;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j) out += ',';
    out += data::EscapeCsvField(schema.attribute(j).name);
  }
  out += '\n';
  return out;
}

std::string CsvRows(const data::Table& chunk) {
  std::string out;
  const data::Schema& schema = chunk.schema();
  for (size_t i = 0; i < chunk.num_records(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j) out += ',';
      out += data::EscapeCsvField(chunk.CellToString(i, j));
    }
    out += '\n';
  }
  return out;
}

}  // namespace daisy::serve

#include "serve/registry.h"

#include <utility>

#include "ckpt/checkpoint.h"

namespace daisy::serve {

namespace {

// Re-wraps an error with request context, preserving its code.
Status Annotate(const Status& st, const std::string& prefix) {
  const std::string msg = prefix + st.message();
  switch (st.code()) {
    case Status::Code::kNotFound: return Status::NotFound(msg);
    case Status::Code::kIOError: return Status::IOError(msg);
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case Status::Code::kInternal: return Status::Internal(msg);
    default: return Status::InvalidArgument(msg);
  }
}

}  // namespace

Status ModelRegistry::Load(const std::string& name,
                           const std::string& model_path,
                           const std::string& checkpoint_dir) {
  if (name.empty()) return Status::InvalidArgument("empty model name");
  if (models_.count(name) != 0)
    return Status::InvalidArgument("duplicate model name: " + name);

  auto loaded = synth::TableSynthesizer::Load(model_path);
  if (!loaded.ok())
    return Annotate(loaded.status(), "model '" + name + "': ");

  if (!checkpoint_dir.empty()) {
    ckpt::CheckpointStore store(checkpoint_dir);
    auto latest = store.LoadLatest();
    if (!latest.ok())
      return Annotate(latest.status(),
                      "model '" + name + "' checkpoint overlay: ");
    if (Status st = loaded.value()->OverlayCheckpoint(latest.value());
        !st.ok())
      return Annotate(st, "model '" + name + "' checkpoint overlay: ");
  }

  models_[name] = std::move(loaded.value());
  return Status::OK();
}

const synth::TableSynthesizer* ModelRegistry::Find(
    const std::string& name) const {
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

}  // namespace daisy::serve

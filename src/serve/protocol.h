// The daisy_serve line protocol. One request per line over a local
// stream socket:
//
//   GEN <model> <rows> <seed>   generate rows from a loaded model
//   LIST                        enumerate loaded models
//   PING                        liveness probe
//   SHUTDOWN                    drain in-flight requests, then exit
//
// Replies:
//
//   GEN      -> "OK <rows>\n" + CSV (header + rows) + "END\n"
//   LIST     -> "OK <count>\n" + one "<name>\n" per model + "END\n"
//   PING     -> "PONG\n"
//   SHUTDOWN -> "OK 0\nEND\n", then the server stops accepting and
//               drains
//   any error-> "ERR <message>\n"
//
// A GEN response is a pure function of (model, rows, seed): the server
// may interleave and batch concurrent requests however it likes without
// changing a single reply byte.
#ifndef DAISY_SERVE_PROTOCOL_H_
#define DAISY_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace daisy::serve {

struct Request {
  enum class Kind { kGen, kList, kPing, kShutdown };
  Kind kind = Kind::kPing;
  std::string model;   // GEN only
  uint64_t rows = 0;   // GEN only
  uint64_t seed = 0;   // GEN only
};

/// Parses one protocol line (no trailing newline). Unknown verbs,
/// missing or extra tokens, and non-numeric counts are errors.
Result<Request> ParseRequest(const std::string& line);

}  // namespace daisy::serve

#endif  // DAISY_SERVE_PROTOCOL_H_

#include "serve/protocol.h"

#include <sstream>
#include <vector>

namespace daisy::serve {

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(ch - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  if (tokens.empty())
    return Status::InvalidArgument("empty request");

  Request req;
  const std::string& verb = tokens[0];
  if (verb == "GEN") {
    if (tokens.size() != 4)
      return Status::InvalidArgument(
          "GEN expects: GEN <model> <rows> <seed>");
    req.kind = Request::Kind::kGen;
    req.model = tokens[1];
    if (!ParseU64(tokens[2], &req.rows))
      return Status::InvalidArgument("GEN rows must be a non-negative "
                                     "integer, got: " + tokens[2]);
    if (!ParseU64(tokens[3], &req.seed))
      return Status::InvalidArgument("GEN seed must be a non-negative "
                                     "integer, got: " + tokens[3]);
    return req;
  }
  if (verb == "LIST") {
    if (tokens.size() != 1)
      return Status::InvalidArgument("LIST takes no arguments");
    req.kind = Request::Kind::kList;
    return req;
  }
  if (verb == "PING") {
    if (tokens.size() != 1)
      return Status::InvalidArgument("PING takes no arguments");
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (verb == "SHUTDOWN") {
    if (tokens.size() != 1)
      return Status::InvalidArgument("SHUTDOWN takes no arguments");
    req.kind = Request::Kind::kShutdown;
    return req;
  }
  return Status::InvalidArgument("unknown verb: " + verb);
}

}  // namespace daisy::serve

// Model registry for the serving process: loads N persisted models
// (optionally refreshed from a training checkpoint directory) up
// front, then hands out shared const pointers. After Load-time the
// registry is immutable, so lookups from many connection threads need
// no locking, and the inference-only generator path lets all of them
// share one TableSynthesizer instance.
#ifndef DAISY_SERVE_REGISTRY_H_
#define DAISY_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "synth/synthesizer.h"

namespace daisy::serve {

class ModelRegistry {
 public:
  /// Loads the model persisted at `model_path` under `name`. When
  /// `checkpoint_dir` is non-empty, the newest VALID checkpoint in that
  /// directory overlays the generator weights (corrupt files are
  /// skipped by the store's checksum walk; a directory with no valid
  /// checkpoint — or a checkpoint whose shapes do not match the model —
  /// rejects the load). Duplicate names are errors.
  Status Load(const std::string& name, const std::string& model_path,
              const std::string& checkpoint_dir = "");

  /// Loaded model, or nullptr when the name is unknown.
  const synth::TableSynthesizer* Find(const std::string& name) const;

  /// Loaded model names in sorted order.
  std::vector<std::string> Names() const;

  size_t size() const { return models_.size(); }

 private:
  std::map<std::string, std::unique_ptr<synth::TableSynthesizer>> models_;
};

}  // namespace daisy::serve

#endif  // DAISY_SERVE_REGISTRY_H_

#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "serve/protocol.h"

namespace daisy::serve {

namespace {

// Best-effort full write; the client may vanish mid-reply, in which
// case the engine still completes the job and the bytes go nowhere.
void WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

SocketServer::SocketServer(const ModelRegistry* registry, ServeEngine* engine,
                           std::string socket_path)
    : registry_(registry), engine_(engine),
      socket_path_(std::move(socket_path)) {
  DAISY_CHECK(registry_ != nullptr && engine_ != nullptr);
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  ::unlink(socket_path_.c_str());  // stale file from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IOError("bind(" + socket_path_ + "): " +
                        std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status st =
        Status::IOError("listen(): " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed: shutting down
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void SocketServer::HandleConnection(int fd) {
  std::string buf;
  char tmp[4096];
  for (;;) {
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      auto parsed = ParseRequest(line);
      if (!parsed.ok()) {
        WriteAll(fd, "ERR " + parsed.status().message() + "\n");
        continue;
      }
      const Request& req = parsed.value();
      switch (req.kind) {
        case Request::Kind::kPing:
          WriteAll(fd, "PONG\n");
          break;
        case Request::Kind::kList: {
          const auto names = registry_->Names();
          std::string reply = "OK " + std::to_string(names.size()) + "\n";
          for (const auto& name : names) reply += name + "\n";
          reply += "END\n";
          WriteAll(fd, reply);
          break;
        }
        case Request::Kind::kShutdown: {
          WriteAll(fd, "OK 0\nEND\n");
          {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_requested_ = true;
          }
          cv_.notify_all();
          break;
        }
        case Request::Kind::kGen: {
          // The reader blocks until the engine finishes this job, so
          // scheduler-thread chunk writes never interleave with reads
          // or other writes on this socket.
          struct WaitState {
            std::mutex m;
            std::condition_variable cv;
            bool done = false;
            bool first = true;
          };
          auto ws = std::make_shared<WaitState>();
          const uint64_t rows = req.rows;
          auto sink = [fd, rows, ws](const std::string& bytes, bool done) {
            if (done) {
              {
                std::lock_guard<std::mutex> lock(ws->m);
                ws->done = true;
              }
              ws->cv.notify_one();
              return;
            }
            if (ws->first) {
              // first is only touched by the scheduler thread.
              ws->first = false;
              WriteAll(fd, "OK " + std::to_string(rows) + "\n");
            }
            WriteAll(fd, bytes);
          };
          const Status st = engine_->SubmitGen(
              req.model, static_cast<size_t>(req.rows), req.seed, sink);
          if (!st.ok()) {
            WriteAll(fd, "ERR " + st.message() + "\n");
            break;
          }
          std::unique_lock<std::mutex> lock(ws->m);
          ws->cv.wait(lock, [&] { return ws->done; });
          WriteAll(fd, "END\n");
          break;
        }
      }
    }
    const ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n <= 0) break;  // EOF, error, or Stop()'s shutdown(fd)
    buf.append(tmp, static_cast<size_t>(n));
  }
}

void SocketServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_requested_; });
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
  }
  cv_.notify_all();

  // 1. Stop accepting new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain the engine: every GEN accepted before the shutdown
  //    finishes and its reply bytes reach the socket.
  engine_->Drain();

  // 3. Unblock idle readers and join every connection thread.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : open_fds_) ::close(fd);
    open_fds_.clear();
  }
  ::unlink(socket_path_.c_str());
}

}  // namespace daisy::serve

// Streaming CSV encoding for the serving path. A response is the
// header once, then rows chunk by chunk, so a 10M-row request never
// materializes more than one decoded chunk; the concatenated bytes are
// identical to what data::WriteCsv would have written for the whole
// table at once.
#ifndef DAISY_SERVE_CSV_STREAM_H_
#define DAISY_SERVE_CSV_STREAM_H_

#include <string>

#include "data/table.h"

namespace daisy::serve {

/// The header line (attribute names, RFC-4180 escaped, trailing '\n').
std::string CsvHeader(const data::Schema& schema);

/// All rows of `chunk` as CSV lines (each with a trailing '\n'),
/// byte-identical to the corresponding region of data::WriteCsv output.
std::string CsvRows(const data::Table& chunk);

}  // namespace daisy::serve

#endif  // DAISY_SERVE_CSV_STREAM_H_

// Request engine for the serving process: accepts "generate K rows
// from model M as CSV" jobs from many threads, coalesces jobs that
// target the same model into shared generator passes, and streams each
// job's CSV back through its sink in bounded-memory chunks.
//
// Determinism contract: a job's reply bytes are a pure function of
// (model, rows, seed). Each job draws its latents from its own rng
// stream in Generate's fixed per-row order, per-row generator outputs
// are independent of which other rows share a batch (the MatMul
// accumulation-order guarantee), and decode/encode are row-local — so
// neither the interleaving of concurrent jobs, nor the coalescing
// grouping, nor the worker thread count can change a single byte.
#ifndef DAISY_SERVE_ENGINE_H_
#define DAISY_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/registry.h"

namespace daisy::serve {

class ServeEngine {
 public:
  struct Options {
    /// Rows one job contributes to one generator pass (bounds the
    /// per-job memory footprint; a 10M-row job streams as 10M /
    /// chunk_rows passes).
    size_t chunk_rows = 512;
    /// Upper bound on coalesced rows per generator pass across jobs.
    size_t max_batch_rows = 2048;
  };

  /// Receives one job's reply stream, called only from the scheduler
  /// thread: one or more (bytes, done=false) chunks — the first starts
  /// with the CSV header — then exactly one (empty, done=true).
  using ChunkSink = std::function<void(const std::string& bytes, bool done)>;

  explicit ServeEngine(const ModelRegistry* registry);
  ServeEngine(const ModelRegistry* registry, Options opts);
  ~ServeEngine();

  void Start();

  /// Stops accepting jobs, completes everything already queued, then
  /// joins the scheduler (the graceful-shutdown drain).
  void Drain();

  /// Enqueues a generate job; the reply stream follows through `sink`.
  /// Unknown model or a draining engine is an error and `sink` is
  /// never called.
  Status SubmitGen(const std::string& model, size_t rows, uint64_t seed,
                   ChunkSink sink);

 private:
  struct Job {
    const synth::TableSynthesizer* model = nullptr;
    size_t remaining = 0;
    bool header_sent = false;
    Rng rng;
    ChunkSink sink;

    Job(const synth::TableSynthesizer* m, size_t rows, uint64_t seed,
        ChunkSink s)
        : model(m), remaining(rows), rng(seed), sink(std::move(s)) {}
  };

  void SchedulerLoop();

  const ModelRegistry* registry_;
  Options opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Job>> queue_;  // FIFO
  bool draining_ = false;
  bool started_ = false;
  std::thread scheduler_;
};

}  // namespace daisy::serve

#endif  // DAISY_SERVE_ENGINE_H_

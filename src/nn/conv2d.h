// 2-D convolution and transposed convolution ("de-convolution") for the
// DCGAN-style generator/discriminator (paper Appendix A.1.1). Samples
// flow through the network flattened as rows of a Matrix in NCHW order;
// each layer knows its own spatial geometry.
#ifndef DAISY_NN_CONV2D_H_
#define DAISY_NN_CONV2D_H_

#include "core/rng.h"
#include "nn/module.h"

namespace daisy::nn {

/// Shape of an image tensor carried inside a flattened Matrix row.
struct ImageShape {
  size_t channels = 1;
  size_t height = 1;
  size_t width = 1;
  size_t Flat() const { return channels * height * width; }
};

/// Standard strided convolution with zero padding.
class Conv2d : public Module {
 public:
  Conv2d(ImageShape in, size_t out_channels, size_t kernel, size_t stride,
         size_t padding, Rng* rng);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }

  ImageShape out_shape() const { return out_shape_; }

 private:
  ImageShape in_shape_;
  ImageShape out_shape_;
  size_t kernel_;
  size_t stride_;
  size_t padding_;
  Parameter weight_;  // (out_c) x (in_c * k * k)
  Parameter bias_;    // 1 x out_c
  Matrix cached_input_;
};

/// Fractionally-strided (transposed) convolution; the generator's
/// upsampling primitive. Implemented as the gradient of Conv2d.
class ConvTranspose2d : public Module {
 public:
  ConvTranspose2d(ImageShape in, size_t out_channels, size_t kernel,
                  size_t stride, size_t padding, Rng* rng);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }

  ImageShape out_shape() const { return out_shape_; }

 private:
  ImageShape in_shape_;
  ImageShape out_shape_;
  size_t kernel_;
  size_t stride_;
  size_t padding_;
  Parameter weight_;  // (in_c) x (out_c * k * k)
  Parameter bias_;    // 1 x out_c
  Matrix cached_input_;
};

}  // namespace daisy::nn

#endif  // DAISY_NN_CONV2D_H_

#include "nn/batchnorm.h"

#include <cmath>

namespace daisy::nn {

BatchNorm1d::BatchNorm1d(size_t features, double momentum, double eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Matrix(1, features, 1.0)),
      beta_("bn.beta", Matrix(1, features, 0.0)),
      running_mean_(1, features, 0.0),
      running_var_(1, features, 1.0) {}

Matrix BatchNorm1d::Forward(const Matrix& x, bool training) {
  DAISY_CHECK(x.cols() == features_);
  Matrix mean(1, features_);
  Matrix var(1, features_);
  if (training && x.rows() > 1) {
    mean = x.ColMean();
    for (size_t r = 0; r < x.rows(); ++r)
      for (size_t c = 0; c < features_; ++c) {
        const double d = x(r, c) - mean(0, c);
        var(0, c) += d * d;
      }
    var *= 1.0 / static_cast<double>(x.rows());
    // Normalization uses the biased (/N) batch variance, but the
    // running statistic folds in the unbiased (/(N-1)) estimate so that
    // eval-mode inference is not systematically too sharp at small
    // batch sizes (matches PyTorch/TF BatchNorm semantics).
    const double unbias = static_cast<double>(x.rows()) /
                          (static_cast<double>(x.rows()) - 1.0);
    for (size_t c = 0; c < features_; ++c) {
      running_mean_(0, c) =
          (1.0 - momentum_) * running_mean_(0, c) + momentum_ * mean(0, c);
      running_var_(0, c) = (1.0 - momentum_) * running_var_(0, c) +
                           momentum_ * var(0, c) * unbias;
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_ = Matrix(1, features_);
  for (size_t c = 0; c < features_; ++c)
    cached_inv_std_(0, c) = 1.0 / std::sqrt(var(0, c) + eps_);

  cached_xhat_ = Matrix(x.rows(), features_);
  Matrix y(x.rows(), features_);
  for (size_t r = 0; r < x.rows(); ++r)
    for (size_t c = 0; c < features_; ++c) {
      cached_xhat_(r, c) = (x(r, c) - mean(0, c)) * cached_inv_std_(0, c);
      y(r, c) = gamma_.value(0, c) * cached_xhat_(r, c) + beta_.value(0, c);
    }
  return y;
}

Matrix BatchNorm1d::InferenceForward(const Matrix& x) const {
  DAISY_CHECK(x.cols() == features_);
  // Mirrors the eval branch of Forward expression-for-expression so the
  // two paths agree to the last bit.
  Matrix inv_std(1, features_);
  for (size_t c = 0; c < features_; ++c)
    inv_std(0, c) = 1.0 / std::sqrt(running_var_(0, c) + eps_);

  Matrix y(x.rows(), features_);
  for (size_t r = 0; r < x.rows(); ++r)
    for (size_t c = 0; c < features_; ++c) {
      const double xhat = (x(r, c) - running_mean_(0, c)) * inv_std(0, c);
      y(r, c) = gamma_.value(0, c) * xhat + beta_.value(0, c);
    }
  return y;
}

Matrix BatchNorm1d::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_xhat_));
  const size_t n = grad_out.rows();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Parameter gradients.
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < features_; ++c) {
      gamma_.grad(0, c) += grad_out(r, c) * cached_xhat_(r, c);
      beta_.grad(0, c) += grad_out(r, c);
    }

  // Input gradient using the standard batch-norm backward formula:
  // dx = (gamma * inv_std / N) * (N*g - sum(g) - xhat * sum(g*xhat)).
  Matrix sum_g(1, features_);
  Matrix sum_gx(1, features_);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < features_; ++c) {
      sum_g(0, c) += grad_out(r, c);
      sum_gx(0, c) += grad_out(r, c) * cached_xhat_(r, c);
    }

  Matrix gx(n, features_);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < features_; ++c) {
      const double term = static_cast<double>(n) * grad_out(r, c) -
                          sum_g(0, c) - cached_xhat_(r, c) * sum_gx(0, c);
      gx(r, c) = gamma_.value(0, c) * cached_inv_std_(0, c) * inv_n * term;
    }
  return gx;
}

std::unique_ptr<Module> BatchNorm1d::Clone() const {
  auto copy = std::make_unique<BatchNorm1d>(*this);
  copy->gamma_.ZeroGrad();
  copy->beta_.ZeroGrad();
  copy->cached_xhat_ = Matrix();
  copy->cached_inv_std_ = Matrix();
  return copy;
}

}  // namespace daisy::nn

// Module abstraction for the neural-network substrate. Each module
// implements an explicit Forward/Backward pair (manual backprop with
// cached activations) instead of a tape-based autograd — small enough
// to verify exhaustively with finite-difference gradient checks.
#ifndef DAISY_NN_MODULE_H_
#define DAISY_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"

namespace daisy::nn {

/// A learnable tensor: value plus accumulated gradient of the loss.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Base class for all layers. Forward caches whatever Backward needs;
/// Backward consumes dLoss/dOutput, accumulates parameter gradients and
/// returns dLoss/dInput. A module must see Backward only after the
/// matching Forward.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output for a batch (rows = samples).
  /// `training` toggles behaviours such as batch-norm statistics.
  virtual Matrix Forward(const Matrix& x, bool training) = 0;

  /// Inference-only forward: the exact arithmetic of
  /// Forward(x, /*training=*/false) — bit-for-bit, including BatchNorm
  /// running statistics — but const and cache-free. It writes no
  /// backward caches, allocates no gradient or optimizer state, and is
  /// therefore safe to call concurrently from many threads on one
  /// shared instance (the serving path relies on this to run a single
  /// loaded model on a whole worker pool without cloning). Backward
  /// must never follow an InferenceForward: there is no cache to
  /// consume.
  virtual Matrix InferenceForward(const Matrix& x) const = 0;

  /// Backpropagates. `grad_out` is dLoss/dOutput of the last Forward.
  virtual Matrix Backward(const Matrix& grad_out) = 0;

  /// All learnable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Params() { return {}; }

  /// Non-learnable persistent state (e.g. batch-norm running
  /// statistics) that model persistence must round-trip.
  virtual std::vector<Matrix*> Buffers() { return {}; }

  /// Deep, independent replica of this layer: same hyper-parameters,
  /// parameter values and buffers copied, gradients zeroed, forward
  /// caches empty. Replicas let data-parallel code (the DP-SGD replica
  /// engine) run concurrent forward/backward passes without sharing
  /// any mutable state. Layers that do not support replication return
  /// nullptr (the default); callers must fall back to a serial path.
  virtual std::unique_ptr<Module> Clone() const { return nullptr; }

  void ZeroGrad() {
    for (Parameter* p : Params()) p->ZeroGrad();
  }
};

/// Collects parameters of many modules into one flat list.
inline std::vector<Parameter*> CollectParams(
    const std::vector<Module*>& modules) {
  std::vector<Parameter*> out;
  for (Module* m : modules) {
    auto ps = m->Params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

}  // namespace daisy::nn

#endif  // DAISY_NN_MODULE_H_

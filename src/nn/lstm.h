// LSTM cell with explicit stepwise forward/backward so callers can run
// backpropagation-through-time over an arbitrary number of timesteps —
// the LSTM generator (paper Appendix A.1.3) re-feeds the noise z at
// every step and uses a variable number of steps per attribute.
#ifndef DAISY_NN_LSTM_H_
#define DAISY_NN_LSTM_H_

#include <vector>

#include "core/rng.h"
#include "nn/module.h"

namespace daisy::nn {

/// Output of one LSTM step.
struct LstmState {
  Matrix h;  // batch x hidden
  Matrix c;  // batch x hidden
};

/// A single LSTM cell (gate order i, f, g, o) shared across timesteps.
/// Call StepForward once per timestep, then StepBackward the same
/// number of times in reverse order; caches are kept on an internal
/// stack. ClearCache() resets between sequences.
class LstmCell {
 public:
  LstmCell(size_t input_size, size_t hidden_size, Rng* rng);

  size_t input_size() const { return input_size_; }
  size_t hidden_size() const { return hidden_size_; }

  /// One timestep. Pushes the step's cache onto the BPTT stack.
  LstmState StepForward(const Matrix& x, const LstmState& prev);

  /// Inference-only timestep: identical gate arithmetic to StepForward
  /// but const and cache-free — nothing is pushed onto the BPTT stack,
  /// so it is safe to call concurrently from many threads on one shared
  /// cell. StepBackward must never follow a StepInference.
  LstmState StepInference(const Matrix& x, const LstmState& prev) const;

  /// Reverse of the most recent un-popped StepForward. `grad_h` /
  /// `grad_c` are dLoss/dh_t and dLoss/dc_t; outputs are dLoss/dx plus
  /// the gradients to pass to the previous step.
  struct StepGrads {
    Matrix dx;
    Matrix dh_prev;
    Matrix dc_prev;
  };
  StepGrads StepBackward(const Matrix& grad_h, const Matrix& grad_c);

  void ClearCache() { cache_.clear(); }
  size_t cache_depth() const { return cache_.size(); }

  std::vector<Parameter*> Params() { return {&weight_, &bias_}; }
  void ZeroGrad() {
    weight_.ZeroGrad();
    bias_.ZeroGrad();
  }

  /// Zero-initialized state for a batch.
  LstmState InitialState(size_t batch) const {
    return {Matrix(batch, hidden_size_), Matrix(batch, hidden_size_)};
  }

 private:
  struct StepCache {
    Matrix xh;      // batch x (input+hidden): concatenated input
    Matrix gates;   // batch x 4*hidden: post-activation i,f,g,o
    Matrix c_prev;  // batch x hidden
    Matrix c;       // batch x hidden
  };

  size_t input_size_;
  size_t hidden_size_;
  Parameter weight_;  // (input+hidden) x 4*hidden
  Parameter bias_;    // 1 x 4*hidden
  std::vector<StepCache> cache_;
};

}  // namespace daisy::nn

#endif  // DAISY_NN_LSTM_H_

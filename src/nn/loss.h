// Loss functions. Each returns the scalar loss and writes dLoss/dInput
// for the caller to backpropagate.
#ifndef DAISY_NN_LOSS_H_
#define DAISY_NN_LOSS_H_

#include "core/matrix.h"

namespace daisy::nn {

/// Binary cross-entropy on probabilities in (0,1).
/// loss = -mean(t*log(p) + (1-t)*log(1-p)).
double BceLoss(const Matrix& probs, const Matrix& targets, Matrix* grad);

/// Numerically stable BCE on raw logits.
double BceWithLogitsLoss(const Matrix& logits, const Matrix& targets,
                         Matrix* grad);

/// Mean squared error: mean((x - t)^2).
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

/// The generator's non-saturating "log D" trick is computed inside the
/// trainers; these helpers cover the loss pieces shared across them.

}  // namespace daisy::nn

#endif  // DAISY_NN_LOSS_H_

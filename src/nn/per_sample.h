// Per-sample gradient tape for Linear-only stacks (DP-SGD fast path).
//
// For a stack whose parameterized layers are all Linear, the gradient
// of sample i w.r.t. a layer's weight is the outer product x_i^T d_i of
// that layer's input row and output-delta row. One batched forward plus
// one delta-propagation pass therefore yields EVERY per-sample gradient
// implicitly: capturing (inputs, deltas) per Linear layer is enough to
// compute all per-sample norms and the clipped gradient sum with a few
// batched matrix products instead of B separate backward passes.
#ifndef DAISY_NN_PER_SAMPLE_H_
#define DAISY_NN_PER_SAMPLE_H_

#include <vector>

#include "nn/sequential.h"

namespace daisy::nn {

/// Captured (input, output-delta) batch per Linear layer, in forward
/// (layer) order. Row i of each matrix belongs to sample i. For layer
/// l, sample i's weight gradient is inputs[l].row(i)^T deltas[l].row(i)
/// and its bias gradient is deltas[l].row(i).
struct PerSampleTape {
  std::vector<Matrix> inputs;
  std::vector<Matrix> deltas;
};

/// True iff every layer of `body` is either a Linear or parameter-free,
/// i.e. the tape above describes ALL parameter gradients and batched
/// rows match batch-of-1 rows bit-for-bit (no cross-sample coupling
/// such as batch norm).
bool SupportsPerSampleTape(Sequential& body);

/// Walks the stack backwards from `grad_out` (dLoss/dOutput of the last
/// batched Forward), recording each Linear's cached input batch and
/// incoming delta batch. Parameter-free layers have their Backward
/// invoked to transform the delta; Linear layers use PropagateDelta, so
/// NO parameter gradient is accumulated anywhere. Requires a preceding
/// Forward over the same batch; copies the cached inputs so the tape
/// stays valid after subsequent Forward calls.
PerSampleTape CapturePerSampleTape(Sequential& body, const Matrix& grad_out);

}  // namespace daisy::nn

#endif  // DAISY_NN_PER_SAMPLE_H_

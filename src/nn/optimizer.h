// Minibatch SGD family: plain SGD, Adam (VTrain/CTrain) and RMSProp
// (WTrain/DPTrain), matching Table 1 of the paper.
#ifndef DAISY_NN_OPTIMIZER_H_
#define DAISY_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "nn/module.h"

namespace daisy::nn {

/// Base optimizer: owns nothing; steps a fixed set of parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated gradient.
  virtual void Step() = 0;

  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 protected:
  std::vector<Parameter*> params_;
  double lr_;
};

/// Vanilla gradient descent (used by tests and the VAE warm start).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr)
      : Optimizer(std::move(params), lr) {}
  void Step() override;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double beta1_, beta2_, eps_;
  long long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// RMSProp as used by WGAN.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, double lr, double decay = 0.9,
          double eps = 1e-8);
  void Step() override;

 private:
  double decay_, eps_;
  std::vector<Matrix> sq_;
};

/// Clamps every parameter value into [-c, c] (WGAN weight clipping).
void ClipParams(const std::vector<Parameter*>& params, double c);

/// Rescales gradients so their global L2 norm is at most `max_norm`,
/// then adds N(0, (noise_scale * max_norm / batch_size)^2) noise to
/// every coordinate — the DPGAN mechanism. The gradients held by
/// `params` are batch-AVERAGED (every loss in this repo divides by the
/// batch), so the per-sample noise sigma_n * c_g of Abadi et al. must
/// be divided by the batch size to match; see dp_accountant.h for the
/// accounting assumption.
void ClipAndNoiseGrads(const std::vector<Parameter*>& params, double max_norm,
                       double noise_scale, size_t batch_size, Rng* rng);

/// Global L2 norm across all parameter gradients.
double GlobalGradNorm(const std::vector<Parameter*>& params);

/// Global L2 norm across all parameter values (run telemetry).
double GlobalParamNorm(const std::vector<Parameter*>& params);

}  // namespace daisy::nn

#endif  // DAISY_NN_OPTIMIZER_H_

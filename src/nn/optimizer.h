// Minibatch SGD family: plain SGD, Adam (VTrain/CTrain) and RMSProp
// (WTrain/DPTrain), matching Table 1 of the paper.
#ifndef DAISY_NN_OPTIMIZER_H_
#define DAISY_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "core/serial.h"
#include "nn/module.h"

namespace daisy::nn {

/// Base optimizer: owns nothing; steps a fixed set of parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated gradient.
  virtual void Step() = 0;

  /// Serializes mutable optimizer state (moment estimates, step count)
  /// plus a kind tag and the hyperparameters, so a checkpointed run can
  /// restore the exact update rule. Stateless optimizers write only the
  /// kind tag.
  virtual void Save(Serializer* ser) const = 0;

  /// Restores state written by Save. Kind or shape mismatches latch a
  /// failure on `des` and leave this optimizer untouched; the caller
  /// checks des->ok() once at the end of loading.
  virtual void Load(Deserializer* des) = 0;

  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 protected:
  std::vector<Parameter*> params_;
  double lr_;
};

/// Vanilla gradient descent (used by tests and the VAE warm start).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr)
      : Optimizer(std::move(params), lr) {}
  void Step() override;
  void Save(Serializer* ser) const override;
  void Load(Deserializer* des) override;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;
  void Save(Serializer* ser) const override;
  void Load(Deserializer* des) override;

 private:
  double beta1_, beta2_, eps_;
  long long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// RMSProp as used by WGAN.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, double lr, double decay = 0.9,
          double eps = 1e-8);
  void Step() override;
  void Save(Serializer* ser) const override;
  void Load(Deserializer* des) override;

 private:
  double decay_, eps_;
  std::vector<Matrix> sq_;
};

/// Clamps every parameter value into [-c, c] (WGAN weight clipping).
void ClipParams(const std::vector<Parameter*>& params, double c);

/// Rescales the accumulated gradients so their global L2 norm is at
/// most max_norm (RCC-GAN-style critic regularization; no-op when the
/// norm is already within the bound). Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

/// Per-sample DP-SGD gradient aggregation (Abadi et al.). Usage, per
/// minibatch: run the backward pass for ONE sample at a time, call
/// AccumulateSample after each (clips that sample's gradient to
/// max_norm in global L2 and adds it to a running sum), then call
/// Finalize, which overwrites the params' grads with
/// (sum + N(0, (noise_scale * max_norm)^2 I)) / batch_size.
///
/// Clipping before the sum bounds every record's contribution to the
/// noised SUM by max_norm, so the per-record L2 sensitivity is exactly
/// max_norm — the assumption synth/dp_accountant.h relies on. (Clipping
/// only the batch-averaged gradient would NOT give this bound: one
/// outlier can still swing the clipped average by ~2*max_norm, making
/// noise divided by the batch size ~B times too small.)
class DpSgdAggregator {
 public:
  DpSgdAggregator(const std::vector<Parameter*>& params, double max_norm);

  /// Clips the gradient currently held by `params` (one sample's
  /// backward pass) to `max_norm` and adds it to the running sum. The
  /// caller zero-grads between samples. Returns the sample's pre-clip
  /// global gradient norm (telemetry / fast-path cross-checks).
  double AccumulateSample(const std::vector<Parameter*>& params);

  /// Adds an ALREADY-CLIPPED sum of `samples` per-sample gradients
  /// (shapes matching the params this aggregator was built from). Used
  /// by the vectorized DP engine, which forms the clipped sum with
  /// batched matrix products, and by replica merges.
  void AccumulateClippedSum(const std::vector<Matrix>& grads,
                            size_t samples);

  /// Folds another aggregator's partial sum into this one. Both must
  /// have been built from identically-shaped parameter lists. Callers
  /// merge partials in a fixed (chunk) order to keep results
  /// independent of thread count.
  void MergeFrom(const DpSgdAggregator& other);

  /// Clears the running sum and sample count for reuse across steps
  /// (avoids reallocating the shadow matrices every minibatch).
  void Reset();

  /// Writes (sum + noise) / batch_size into the params' grads.
  void Finalize(const std::vector<Parameter*>& params, double noise_scale,
                size_t batch_size, Rng* rng);

  /// Global L2 norm of the clipped sum so far (pre-noise telemetry).
  double SumNorm() const;

  size_t samples() const { return samples_; }

 private:
  double max_norm_;
  size_t samples_ = 0;
  std::vector<Matrix> sum_;
};

/// Global L2 norm across all parameter gradients.
double GlobalGradNorm(const std::vector<Parameter*>& params);

/// Global L2 norm across all parameter values (run telemetry).
double GlobalParamNorm(const std::vector<Parameter*>& params);

}  // namespace daisy::nn

#endif  // DAISY_NN_OPTIMIZER_H_

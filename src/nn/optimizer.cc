#include "nn/optimizer.h"

#include <cmath>

#include "core/rng.h"

namespace daisy::nn {

void Sgd::Step() {
  for (Parameter* p : params_) {
    for (size_t r = 0; r < p->value.rows(); ++r)
      for (size_t c = 0; c < p->value.cols(); ++c)
        p->value(r, c) -= lr_ * p->grad(r, c);
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        m_[i](r, c) = beta1_ * m_[i](r, c) + (1.0 - beta1_) * g;
        v_[i](r, c) = beta2_ * v_[i](r, c) + (1.0 - beta2_) * g * g;
        const double mhat = m_[i](r, c) / bc1;
        const double vhat = v_[i](r, c) / bc2;
        p->value(r, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, double lr, double decay,
                 double eps)
    : Optimizer(std::move(params), lr), decay_(decay), eps_(eps) {
  for (Parameter* p : params_)
    sq_.emplace_back(p->value.rows(), p->value.cols());
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        sq_[i](r, c) = decay_ * sq_[i](r, c) + (1.0 - decay_) * g * g;
        p->value(r, c) -= lr_ * g / (std::sqrt(sq_[i](r, c)) + eps_);
      }
    }
  }
}

void ClipParams(const std::vector<Parameter*>& params, double c) {
  DAISY_CHECK(c > 0.0);
  for (Parameter* p : params) p->value.Clip(-c, c);
}

double GlobalGradNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params)
    for (size_t r = 0; r < p->grad.rows(); ++r)
      for (size_t c = 0; c < p->grad.cols(); ++c)
        sq += p->grad(r, c) * p->grad(r, c);
  return std::sqrt(sq);
}

double GlobalParamNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params)
    for (size_t r = 0; r < p->value.rows(); ++r)
      for (size_t c = 0; c < p->value.cols(); ++c)
        sq += p->value(r, c) * p->value(r, c);
  return std::sqrt(sq);
}

void ClipAndNoiseGrads(const std::vector<Parameter*>& params, double max_norm,
                       double noise_scale, size_t batch_size, Rng* rng) {
  DAISY_CHECK(max_norm > 0.0);
  DAISY_CHECK(batch_size > 0);
  const double norm = GlobalGradNorm(params);
  const double scale = norm > max_norm ? max_norm / norm : 1.0;
  // Batch-averaged gradients: scale the per-sample DP-SGD noise
  // sigma_n * c_g down by the batch size so the effective noise matches
  // N(0, sigma^2 c^2 I) / B applied to a summed-then-averaged batch.
  const double sigma =
      noise_scale * max_norm / static_cast<double>(batch_size);
  for (Parameter* p : params) {
    for (size_t r = 0; r < p->grad.rows(); ++r)
      for (size_t c = 0; c < p->grad.cols(); ++c)
        p->grad(r, c) = p->grad(r, c) * scale + rng->Gaussian(0.0, sigma);
  }
}

}  // namespace daisy::nn

#include "nn/optimizer.h"

#include <cmath>

#include "core/rng.h"

namespace daisy::nn {

void Sgd::Step() {
  for (Parameter* p : params_) {
    for (size_t r = 0; r < p->value.rows(); ++r)
      for (size_t c = 0; c < p->value.cols(); ++c)
        p->value(r, c) -= lr_ * p->grad(r, c);
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        m_[i](r, c) = beta1_ * m_[i](r, c) + (1.0 - beta1_) * g;
        v_[i](r, c) = beta2_ * v_[i](r, c) + (1.0 - beta2_) * g * g;
        const double mhat = m_[i](r, c) / bc1;
        const double vhat = v_[i](r, c) / bc2;
        p->value(r, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, double lr, double decay,
                 double eps)
    : Optimizer(std::move(params), lr), decay_(decay), eps_(eps) {
  for (Parameter* p : params_)
    sq_.emplace_back(p->value.rows(), p->value.cols());
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        sq_[i](r, c) = decay_ * sq_[i](r, c) + (1.0 - decay_) * g * g;
        p->value(r, c) -= lr_ * g / (std::sqrt(sq_[i](r, c)) + eps_);
      }
    }
  }
}

namespace {

// Reads `count` matrices and verifies each matches the shape of the
// corresponding slot in `shaped`; a mismatch latches on `des`. Returns
// the matrices so the caller can commit them only after the whole
// optimizer blob parsed cleanly (failed loads leave state untouched).
std::vector<Matrix> ReadMoments(Deserializer* des, const char* what,
                                const std::vector<Matrix>& shaped) {
  std::vector<Matrix> out;
  out.reserve(shaped.size());
  for (size_t i = 0; i < shaped.size(); ++i) {
    Matrix m = des->ReadMatrix();
    if (!des->ok()) return {};
    if (m.rows() != shaped[i].rows() || m.cols() != shaped[i].cols()) {
      des->Fail(std::string(what) + " moment " + std::to_string(i) +
                " shape mismatch");
      return {};
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

void Sgd::Save(Serializer* ser) const { ser->WriteTag("opt.sgd"); }

void Sgd::Load(Deserializer* des) { des->ExpectTag("opt.sgd"); }

void Adam::Save(Serializer* ser) const {
  ser->WriteTag("opt.adam");
  ser->WriteDouble(beta1_);
  ser->WriteDouble(beta2_);
  ser->WriteDouble(eps_);
  ser->WriteU64(static_cast<uint64_t>(t_));
  ser->WriteU64(m_.size());
  for (const Matrix& m : m_) ser->WriteMatrix(m);
  for (const Matrix& v : v_) ser->WriteMatrix(v);
}

void Adam::Load(Deserializer* des) {
  des->ExpectTag("opt.adam");
  const double beta1 = des->ReadDouble();
  const double beta2 = des->ReadDouble();
  const double eps = des->ReadDouble();
  const uint64_t t = des->ReadU64();
  const uint64_t n = des->ReadU64();
  if (!des->ok()) return;
  if (n != m_.size()) {
    des->Fail("adam moment count mismatch");
    return;
  }
  std::vector<Matrix> m = ReadMoments(des, "adam.m", m_);
  std::vector<Matrix> v = ReadMoments(des, "adam.v", v_);
  if (!des->ok()) return;
  beta1_ = beta1;
  beta2_ = beta2;
  eps_ = eps;
  t_ = static_cast<long long>(t);
  m_ = std::move(m);
  v_ = std::move(v);
}

void RmsProp::Save(Serializer* ser) const {
  ser->WriteTag("opt.rmsprop");
  ser->WriteDouble(decay_);
  ser->WriteDouble(eps_);
  ser->WriteU64(sq_.size());
  for (const Matrix& s : sq_) ser->WriteMatrix(s);
}

void RmsProp::Load(Deserializer* des) {
  des->ExpectTag("opt.rmsprop");
  const double decay = des->ReadDouble();
  const double eps = des->ReadDouble();
  const uint64_t n = des->ReadU64();
  if (!des->ok()) return;
  if (n != sq_.size()) {
    des->Fail("rmsprop moment count mismatch");
    return;
  }
  std::vector<Matrix> sq = ReadMoments(des, "rmsprop.sq", sq_);
  if (!des->ok()) return;
  decay_ = decay;
  eps_ = eps;
  sq_ = std::move(sq);
}

void ClipParams(const std::vector<Parameter*>& params, double c) {
  DAISY_CHECK(c > 0.0);
  for (Parameter* p : params) p->value.Clip(-c, c);
}

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  DAISY_CHECK(max_norm > 0.0);
  const double norm = GlobalGradNorm(params);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

double GlobalGradNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params)
    for (size_t r = 0; r < p->grad.rows(); ++r)
      for (size_t c = 0; c < p->grad.cols(); ++c)
        sq += p->grad(r, c) * p->grad(r, c);
  return std::sqrt(sq);
}

double GlobalParamNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params)
    for (size_t r = 0; r < p->value.rows(); ++r)
      for (size_t c = 0; c < p->value.cols(); ++c)
        sq += p->value(r, c) * p->value(r, c);
  return std::sqrt(sq);
}

DpSgdAggregator::DpSgdAggregator(const std::vector<Parameter*>& params,
                                 double max_norm)
    : max_norm_(max_norm) {
  DAISY_CHECK(max_norm > 0.0);
  for (const Parameter* p : params)
    sum_.emplace_back(p->grad.rows(), p->grad.cols());
}

double DpSgdAggregator::AccumulateSample(
    const std::vector<Parameter*>& params) {
  DAISY_CHECK(params.size() == sum_.size());
  const double norm = GlobalGradNorm(params);
  const double scale = norm > max_norm_ ? max_norm_ / norm : 1.0;
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& g = params[i]->grad;
    for (size_t r = 0; r < g.rows(); ++r)
      for (size_t c = 0; c < g.cols(); ++c)
        sum_[i](r, c) += g(r, c) * scale;
  }
  ++samples_;
  return norm;
}

void DpSgdAggregator::AccumulateClippedSum(const std::vector<Matrix>& grads,
                                           size_t samples) {
  DAISY_CHECK(grads.size() == sum_.size());
  for (size_t i = 0; i < grads.size(); ++i) {
    DAISY_CHECK(grads[i].SameShape(sum_[i]));
    sum_[i] += grads[i];
  }
  samples_ += samples;
}

void DpSgdAggregator::MergeFrom(const DpSgdAggregator& other) {
  DAISY_CHECK(other.sum_.size() == sum_.size());
  for (size_t i = 0; i < sum_.size(); ++i) {
    DAISY_CHECK(other.sum_[i].SameShape(sum_[i]));
    sum_[i] += other.sum_[i];
  }
  samples_ += other.samples_;
}

void DpSgdAggregator::Reset() {
  for (Matrix& m : sum_) m.Fill(0.0);
  samples_ = 0;
}

void DpSgdAggregator::Finalize(const std::vector<Parameter*>& params,
                               double noise_scale, size_t batch_size,
                               Rng* rng) {
  DAISY_CHECK(params.size() == sum_.size());
  DAISY_CHECK(batch_size > 0);
  // Sensitivity of the clipped sum is max_norm, so the canonical
  // mechanism adds N(0, (sigma_n c_g)^2) to the SUM; dividing sum and
  // noise by B yields the batch-averaged gradient the optimizers
  // expect, with effective per-coordinate noise sigma_n c_g / B.
  const double sigma = noise_scale * max_norm_;
  const double inv_b = 1.0 / static_cast<double>(batch_size);
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix& g = params[i]->grad;
    for (size_t r = 0; r < g.rows(); ++r)
      for (size_t c = 0; c < g.cols(); ++c)
        g(r, c) = (sum_[i](r, c) + rng->Gaussian(0.0, sigma)) * inv_b;
  }
}

double DpSgdAggregator::SumNorm() const {
  double sq = 0.0;
  for (const Matrix& m : sum_)
    for (size_t r = 0; r < m.rows(); ++r)
      for (size_t c = 0; c < m.cols(); ++c) sq += m(r, c) * m(r, c);
  return std::sqrt(sq);
}

}  // namespace daisy::nn

// Ordered composition of modules.
#ifndef DAISY_NN_SEQUENTIAL_H_
#define DAISY_NN_SEQUENTIAL_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace daisy::nn {

/// Chains modules: Forward left-to-right, Backward right-to-left.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a raw pointer for later inspection.
  template <typename M, typename... Args>
  M* Emplace(Args&&... args) {
    auto layer = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Module> m) { layers_.push_back(std::move(m)); }

  Matrix Forward(const Matrix& x, bool training) override {
    Matrix h = x;
    for (auto& layer : layers_) h = layer->Forward(h, training);
    return h;
  }

  Matrix InferenceForward(const Matrix& x) const override {
    Matrix h = x;
    for (const auto& layer : layers_) h = layer->InferenceForward(h);
    return h;
  }

  Matrix Backward(const Matrix& grad_out) override {
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
      g = (*it)->Backward(g);
    return g;
  }

  std::vector<Parameter*> Params() override {
    std::vector<Parameter*> out;
    for (auto& layer : layers_) {
      auto ps = layer->Params();
      out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
  }

  std::vector<Matrix*> Buffers() override {
    std::vector<Matrix*> out;
    for (auto& layer : layers_) {
      auto bs = layer->Buffers();
      out.insert(out.end(), bs.begin(), bs.end());
    }
    return out;
  }

  size_t num_layers() const { return layers_.size(); }
  Module* layer(size_t i) { return layers_[i].get(); }

  /// Typed replica: clones every layer in order, or nullptr as soon as
  /// one layer does not support replication.
  std::unique_ptr<Sequential> CloneStack() const {
    auto out = std::make_unique<Sequential>();
    for (const auto& layer : layers_) {
      auto c = layer->Clone();
      if (c == nullptr) return nullptr;
      out->Append(std::move(c));
    }
    return out;
  }

  std::unique_ptr<Module> Clone() const override { return CloneStack(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace daisy::nn

#endif  // DAISY_NN_SEQUENTIAL_H_

// Fully-connected layer: y = x W + b.
#ifndef DAISY_NN_LINEAR_H_
#define DAISY_NN_LINEAR_H_

#include "core/rng.h"
#include "nn/module.h"

namespace daisy::nn {

/// Affine layer with Xavier/Glorot-uniform initialized weights.
class Linear : public Module {
 public:
  /// Creates an (in -> out) layer. `rng` drives initialization.
  Linear(size_t in, size_t out, Rng* rng);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Module> Clone() const override;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }

  /// The batch cached by the last Forward (valid until the next one).
  /// The per-sample DP fast path reads it to form per-sample gradients
  /// without re-running the forward pass.
  const Matrix& cached_input() const { return cached_input_; }

  /// dLoss/dOutput -> dLoss/dInput WITHOUT accumulating parameter
  /// gradients — the delta-propagation half of Backward, used when the
  /// caller forms the weight gradient itself (per-sample clipping).
  Matrix PropagateDelta(const Matrix& grad_out) const;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  size_t in_;
  size_t out_;
  Parameter weight_;  // in x out
  Parameter bias_;    // 1 x out
  Matrix cached_input_;
};

}  // namespace daisy::nn

#endif  // DAISY_NN_LINEAR_H_

#include "nn/per_sample.h"

#include <algorithm>

#include "nn/linear.h"

namespace daisy::nn {

bool SupportsPerSampleTape(Sequential& body) {
  for (size_t i = 0; i < body.num_layers(); ++i) {
    Module* layer = body.layer(i);
    if (dynamic_cast<Linear*>(layer) != nullptr) continue;
    if (!layer->Params().empty()) return false;
  }
  return true;
}

PerSampleTape CapturePerSampleTape(Sequential& body, const Matrix& grad_out) {
  std::vector<Matrix> rev_inputs;
  std::vector<Matrix> rev_deltas;
  Matrix delta = grad_out;
  for (size_t i = body.num_layers(); i-- > 0;) {
    Module* layer = body.layer(i);
    if (auto* lin = dynamic_cast<Linear*>(layer)) {
      rev_inputs.push_back(lin->cached_input());
      rev_deltas.push_back(delta);
      delta = lin->PropagateDelta(delta);
    } else {
      DAISY_CHECK(layer->Params().empty());
      delta = layer->Backward(delta);
    }
  }
  PerSampleTape tape;
  tape.inputs.assign(std::make_move_iterator(rev_inputs.rbegin()),
                     std::make_move_iterator(rev_inputs.rend()));
  tape.deltas.assign(std::make_move_iterator(rev_deltas.rbegin()),
                     std::make_move_iterator(rev_deltas.rend()));
  return tape;
}

}  // namespace daisy::nn

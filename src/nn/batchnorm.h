// 1-D batch normalization (Ioffe & Szegedy), used by the MLP/CNN
// generators per the paper's architecture equations.
#ifndef DAISY_NN_BATCHNORM_H_
#define DAISY_NN_BATCHNORM_H_

#include "nn/module.h"

namespace daisy::nn {

/// Normalizes each feature over the batch; learnable scale (gamma) and
/// shift (beta). Running statistics are kept for inference mode.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(size_t features, double momentum = 0.1,
                       double eps = 1e-5);

  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Parameter*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Matrix*> Buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::unique_ptr<Module> Clone() const override;

 private:
  size_t features_;
  double momentum_;
  double eps_;
  Parameter gamma_;  // 1 x features
  Parameter beta_;   // 1 x features
  Matrix running_mean_;
  Matrix running_var_;
  // Backward caches.
  Matrix cached_xhat_;
  Matrix cached_inv_std_;  // 1 x features
};

}  // namespace daisy::nn

#endif  // DAISY_NN_BATCHNORM_H_

#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "core/status.h"

namespace daisy::nn {

double BceLoss(const Matrix& probs, const Matrix& targets, Matrix* grad) {
  DAISY_CHECK(probs.SameShape(targets));
  const double n = static_cast<double>(probs.size());
  double loss = 0.0;
  *grad = Matrix(probs.rows(), probs.cols());
  constexpr double kEps = 1e-12;
  for (size_t r = 0; r < probs.rows(); ++r) {
    for (size_t c = 0; c < probs.cols(); ++c) {
      const double p = std::clamp(probs(r, c), kEps, 1.0 - kEps);
      const double t = targets(r, c);
      loss += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
      (*grad)(r, c) = (p - t) / (p * (1.0 - p)) / n;
    }
  }
  return loss / n;
}

double BceWithLogitsLoss(const Matrix& logits, const Matrix& targets,
                         Matrix* grad) {
  DAISY_CHECK(logits.SameShape(targets));
  const double n = static_cast<double>(logits.size());
  double loss = 0.0;
  *grad = Matrix(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    for (size_t c = 0; c < logits.cols(); ++c) {
      const double x = logits(r, c);
      const double t = targets(r, c);
      // log(1+exp(-|x|)) + max(x,0) - x*t is the stable form.
      const double e = std::exp(-std::fabs(x));
      loss += std::log1p(e) + std::max(x, 0.0) - x * t;
      // Two-sided sigmoid: exp only sees -|x|, so x = -750 gives
      // p = 0 exactly instead of 1/(1+inf) passing through overflow
      // (and x = +750 no longer risks exp(-x) -> 0/0 style traps).
      const double p = x >= 0.0 ? 1.0 / (1.0 + e) : e / (1.0 + e);
      (*grad)(r, c) = (p - t) / n;
    }
  }
  return loss / n;
}

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  DAISY_CHECK(pred.SameShape(target));
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  *grad = Matrix(pred.rows(), pred.cols());
  for (size_t r = 0; r < pred.rows(); ++r) {
    for (size_t c = 0; c < pred.cols(); ++c) {
      const double d = pred(r, c) - target(r, c);
      loss += d * d;
      (*grad)(r, c) = 2.0 * d / n;
    }
  }
  return loss / n;
}

}  // namespace daisy::nn

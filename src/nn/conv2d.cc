#include "nn/conv2d.h"

#include <cmath>

namespace daisy::nn {

namespace {

size_t ConvOutDim(size_t in, size_t kernel, size_t stride, size_t padding) {
  DAISY_CHECK(in + 2 * padding >= kernel);
  return (in + 2 * padding - kernel) / stride + 1;
}

size_t DeconvOutDim(size_t in, size_t kernel, size_t stride, size_t padding) {
  DAISY_CHECK((in - 1) * stride + kernel >= 2 * padding);
  return (in - 1) * stride + kernel - 2 * padding;
}

}  // namespace

Conv2d::Conv2d(ImageShape in, size_t out_channels, size_t kernel,
               size_t stride, size_t padding, Rng* rng)
    : in_shape_(in), kernel_(kernel), stride_(stride), padding_(padding) {
  out_shape_.channels = out_channels;
  out_shape_.height = ConvOutDim(in.height, kernel, stride, padding);
  out_shape_.width = ConvOutDim(in.width, kernel, stride, padding);
  const size_t fan_in = in.channels * kernel * kernel;
  const size_t fan_out = out_channels * kernel * kernel;
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  weight_ = Parameter("conv.weight",
                      Matrix::RandUniform(out_channels, fan_in, rng, -bound,
                                          bound));
  bias_ = Parameter("conv.bias", Matrix(1, out_channels));
}

Matrix Conv2d::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix Conv2d::InferenceForward(const Matrix& x) const {
  DAISY_CHECK(x.cols() == in_shape_.Flat());
  const size_t n = x.rows();
  const size_t ih = in_shape_.height, iw = in_shape_.width;
  const size_t oh = out_shape_.height, ow = out_shape_.width;
  const size_t ic = in_shape_.channels, oc = out_shape_.channels;
  Matrix y(n, out_shape_.Flat());
  for (size_t b = 0; b < n; ++b) {
    const double* in = x.row(b);
    double* out = y.row(b);
    for (size_t o = 0; o < oc; ++o) {
      const double* w = weight_.value.row(o);
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          double acc = bias_.value(0, o);
          for (size_t i = 0; i < ic; ++i) {
            for (size_t ky = 0; ky < kernel_; ++ky) {
              const long long yy = static_cast<long long>(oy * stride_ + ky) -
                                   static_cast<long long>(padding_);
              if (yy < 0 || yy >= static_cast<long long>(ih)) continue;
              for (size_t kx = 0; kx < kernel_; ++kx) {
                const long long xx =
                    static_cast<long long>(ox * stride_ + kx) -
                    static_cast<long long>(padding_);
                if (xx < 0 || xx >= static_cast<long long>(iw)) continue;
                acc += w[(i * kernel_ + ky) * kernel_ + kx] *
                       in[(i * ih + yy) * iw + xx];
              }
            }
          }
          out[(o * oh + oy) * ow + ox] = acc;
        }
      }
    }
  }
  return y;
}

Matrix Conv2d::Backward(const Matrix& grad_out) {
  const size_t n = cached_input_.rows();
  DAISY_CHECK(grad_out.rows() == n && grad_out.cols() == out_shape_.Flat());
  const size_t ih = in_shape_.height, iw = in_shape_.width;
  const size_t oh = out_shape_.height, ow = out_shape_.width;
  const size_t ic = in_shape_.channels, oc = out_shape_.channels;
  Matrix gx(n, in_shape_.Flat());
  for (size_t b = 0; b < n; ++b) {
    const double* in = cached_input_.row(b);
    const double* go = grad_out.row(b);
    double* gi = gx.row(b);
    for (size_t o = 0; o < oc; ++o) {
      const double* w = weight_.value.row(o);
      double* gw = weight_.grad.row(o);
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          const double g = go[(o * oh + oy) * ow + ox];
          if (g == 0.0) continue;
          bias_.grad(0, o) += g;
          for (size_t i = 0; i < ic; ++i) {
            for (size_t ky = 0; ky < kernel_; ++ky) {
              const long long yy = static_cast<long long>(oy * stride_ + ky) -
                                   static_cast<long long>(padding_);
              if (yy < 0 || yy >= static_cast<long long>(ih)) continue;
              for (size_t kx = 0; kx < kernel_; ++kx) {
                const long long xx =
                    static_cast<long long>(ox * stride_ + kx) -
                    static_cast<long long>(padding_);
                if (xx < 0 || xx >= static_cast<long long>(iw)) continue;
                const size_t widx = (i * kernel_ + ky) * kernel_ + kx;
                const size_t iidx = (i * ih + yy) * iw + xx;
                gw[widx] += g * in[iidx];
                gi[iidx] += g * w[widx];
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

ConvTranspose2d::ConvTranspose2d(ImageShape in, size_t out_channels,
                                 size_t kernel, size_t stride, size_t padding,
                                 Rng* rng)
    : in_shape_(in), kernel_(kernel), stride_(stride), padding_(padding) {
  out_shape_.channels = out_channels;
  out_shape_.height = DeconvOutDim(in.height, kernel, stride, padding);
  out_shape_.width = DeconvOutDim(in.width, kernel, stride, padding);
  const size_t fan_in = in.channels * kernel * kernel;
  const size_t fan_out = out_channels * kernel * kernel;
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  weight_ = Parameter("deconv.weight",
                      Matrix::RandUniform(in.channels,
                                          out_channels * kernel * kernel, rng,
                                          -bound, bound));
  bias_ = Parameter("deconv.bias", Matrix(1, out_channels));
}

Matrix ConvTranspose2d::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix ConvTranspose2d::InferenceForward(const Matrix& x) const {
  DAISY_CHECK(x.cols() == in_shape_.Flat());
  const size_t n = x.rows();
  const size_t ih = in_shape_.height, iw = in_shape_.width;
  const size_t oh = out_shape_.height, ow = out_shape_.width;
  const size_t ic = in_shape_.channels, oc = out_shape_.channels;
  Matrix y(n, out_shape_.Flat());
  for (size_t b = 0; b < n; ++b) {
    const double* in = x.row(b);
    double* out = y.row(b);
    for (size_t o = 0; o < oc; ++o)
      for (size_t oy = 0; oy < oh; ++oy)
        for (size_t ox = 0; ox < ow; ++ox)
          out[(o * oh + oy) * ow + ox] = bias_.value(0, o);
    for (size_t i = 0; i < ic; ++i) {
      const double* w = weight_.value.row(i);
      for (size_t iy = 0; iy < ih; ++iy) {
        for (size_t ix = 0; ix < iw; ++ix) {
          const double v = in[(i * ih + iy) * iw + ix];
          if (v == 0.0) continue;
          for (size_t o = 0; o < oc; ++o) {
            for (size_t ky = 0; ky < kernel_; ++ky) {
              const long long yy = static_cast<long long>(iy * stride_ + ky) -
                                   static_cast<long long>(padding_);
              if (yy < 0 || yy >= static_cast<long long>(oh)) continue;
              for (size_t kx = 0; kx < kernel_; ++kx) {
                const long long xx =
                    static_cast<long long>(ix * stride_ + kx) -
                    static_cast<long long>(padding_);
                if (xx < 0 || xx >= static_cast<long long>(ow)) continue;
                out[(o * oh + yy) * ow + xx] +=
                    v * w[(o * kernel_ + ky) * kernel_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return y;
}

Matrix ConvTranspose2d::Backward(const Matrix& grad_out) {
  const size_t n = cached_input_.rows();
  DAISY_CHECK(grad_out.rows() == n && grad_out.cols() == out_shape_.Flat());
  const size_t ih = in_shape_.height, iw = in_shape_.width;
  const size_t oh = out_shape_.height, ow = out_shape_.width;
  const size_t ic = in_shape_.channels, oc = out_shape_.channels;
  Matrix gx(n, in_shape_.Flat());
  for (size_t b = 0; b < n; ++b) {
    const double* in = cached_input_.row(b);
    const double* go = grad_out.row(b);
    double* gi = gx.row(b);
    for (size_t o = 0; o < oc; ++o)
      for (size_t oy = 0; oy < oh; ++oy)
        for (size_t ox = 0; ox < ow; ++ox)
          bias_.grad(0, o) += go[(o * oh + oy) * ow + ox];
    for (size_t i = 0; i < ic; ++i) {
      const double* w = weight_.value.row(i);
      double* gw = weight_.grad.row(i);
      for (size_t iy = 0; iy < ih; ++iy) {
        for (size_t ix = 0; ix < iw; ++ix) {
          const size_t iidx = (i * ih + iy) * iw + ix;
          const double v = in[iidx];
          double acc = 0.0;
          for (size_t o = 0; o < oc; ++o) {
            for (size_t ky = 0; ky < kernel_; ++ky) {
              const long long yy = static_cast<long long>(iy * stride_ + ky) -
                                   static_cast<long long>(padding_);
              if (yy < 0 || yy >= static_cast<long long>(oh)) continue;
              for (size_t kx = 0; kx < kernel_; ++kx) {
                const long long xx =
                    static_cast<long long>(ix * stride_ + kx) -
                    static_cast<long long>(padding_);
                if (xx < 0 || xx >= static_cast<long long>(ow)) continue;
                const size_t widx = (o * kernel_ + ky) * kernel_ + kx;
                const double g = go[(o * oh + yy) * ow + xx];
                acc += g * w[widx];
                gw[widx] += g * v;
              }
            }
          }
          gi[iidx] = acc;
        }
      }
    }
  }
  return gx;
}

}  // namespace daisy::nn

#include "nn/lstm.h"

#include <cmath>

#include "core/kernels/lane_ops.h"

namespace daisy::nn {

namespace {
// Branch-stable sigmoid shared with the SIMD kernel layer: exp only
// ever sees non-positive arguments, so a -750 gate preactivation
// saturates to 0 instead of overflowing exp(750) to inf (which made
// the gate NaN via inf/inf downstream).
double SigmoidScalar(double v) { return kern::lane::Sigmoid(v); }
}  // namespace

LstmCell::LstmCell(size_t input_size, size_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const size_t in = input_size + hidden_size;
  const double bound = std::sqrt(6.0 / static_cast<double>(in + 4 * hidden_size));
  weight_ = Parameter("lstm.weight",
                      Matrix::RandUniform(in, 4 * hidden_size, rng, -bound,
                                          bound));
  bias_ = Parameter("lstm.bias", Matrix(1, 4 * hidden_size));
  // Forget-gate bias of 1.0: standard trick for gradient flow early in
  // training.
  for (size_t c = 0; c < hidden_size; ++c) bias_.value(0, hidden_size + c) = 1.0;
}

LstmState LstmCell::StepForward(const Matrix& x, const LstmState& prev) {
  DAISY_CHECK(x.cols() == input_size_);
  DAISY_CHECK(prev.h.cols() == hidden_size_ && prev.c.cols() == hidden_size_);
  DAISY_CHECK(x.rows() == prev.h.rows());
  const size_t n = x.rows(), hs = hidden_size_;

  StepCache cache;
  cache.xh = Matrix::HCat(x, prev.h);
  cache.c_prev = prev.c;

  Matrix pre = cache.xh.MatMul(weight_.value);
  pre.AddRowBroadcast(bias_.value);

  cache.gates = Matrix(n, 4 * hs);
  cache.c = Matrix(n, hs);
  LstmState next;
  next.h = Matrix(n, hs);
  next.c = Matrix(n, hs);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < hs; ++j) {
      const double i = SigmoidScalar(pre(r, j));
      const double f = SigmoidScalar(pre(r, hs + j));
      const double g = std::tanh(pre(r, 2 * hs + j));
      const double o = SigmoidScalar(pre(r, 3 * hs + j));
      cache.gates(r, j) = i;
      cache.gates(r, hs + j) = f;
      cache.gates(r, 2 * hs + j) = g;
      cache.gates(r, 3 * hs + j) = o;
      const double c = f * prev.c(r, j) + i * g;
      cache.c(r, j) = c;
      next.c(r, j) = c;
      next.h(r, j) = o * std::tanh(c);
    }
  }
  cache_.push_back(std::move(cache));
  return next;
}

LstmState LstmCell::StepInference(const Matrix& x,
                                  const LstmState& prev) const {
  DAISY_CHECK(x.cols() == input_size_);
  DAISY_CHECK(prev.h.cols() == hidden_size_ && prev.c.cols() == hidden_size_);
  DAISY_CHECK(x.rows() == prev.h.rows());
  const size_t n = x.rows(), hs = hidden_size_;

  // Same expressions in the same order as StepForward, minus the cache:
  // the two paths must agree to the last bit.
  Matrix xh = Matrix::HCat(x, prev.h);
  Matrix pre = xh.MatMul(weight_.value);
  pre.AddRowBroadcast(bias_.value);

  LstmState next;
  next.h = Matrix(n, hs);
  next.c = Matrix(n, hs);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < hs; ++j) {
      const double i = SigmoidScalar(pre(r, j));
      const double f = SigmoidScalar(pre(r, hs + j));
      const double g = std::tanh(pre(r, 2 * hs + j));
      const double o = SigmoidScalar(pre(r, 3 * hs + j));
      const double c = f * prev.c(r, j) + i * g;
      next.c(r, j) = c;
      next.h(r, j) = o * std::tanh(c);
    }
  }
  return next;
}

LstmCell::StepGrads LstmCell::StepBackward(const Matrix& grad_h,
                                           const Matrix& grad_c) {
  DAISY_CHECK(!cache_.empty());
  StepCache cache = std::move(cache_.back());
  cache_.pop_back();

  const size_t n = grad_h.rows(), hs = hidden_size_;
  DAISY_CHECK(grad_h.cols() == hs && grad_c.SameShape(grad_h));

  Matrix dpre(n, 4 * hs);
  Matrix dc_prev(n, hs);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < hs; ++j) {
      const double i = cache.gates(r, j);
      const double f = cache.gates(r, hs + j);
      const double g = cache.gates(r, 2 * hs + j);
      const double o = cache.gates(r, 3 * hs + j);
      const double tc = std::tanh(cache.c(r, j));
      const double dh = grad_h(r, j);
      double dc = grad_c(r, j) + dh * o * (1.0 - tc * tc);
      const double do_ = dh * tc;
      const double di = dc * g;
      const double df = dc * cache.c_prev(r, j);
      const double dg = dc * i;
      dc_prev(r, j) = dc * f;
      dpre(r, j) = di * i * (1.0 - i);
      dpre(r, hs + j) = df * f * (1.0 - f);
      dpre(r, 2 * hs + j) = dg * (1.0 - g * g);
      dpre(r, 3 * hs + j) = do_ * o * (1.0 - o);
    }
  }

  weight_.grad += cache.xh.TransposeMatMul(dpre);
  bias_.grad += dpre.ColSum();
  Matrix dxh = dpre.MatMulTranspose(weight_.value);

  StepGrads grads;
  grads.dx = dxh.ColRange(0, input_size_);
  grads.dh_prev = dxh.ColRange(input_size_, input_size_ + hidden_size_);
  grads.dc_prev = std::move(dc_prev);
  return grads;
}

}  // namespace daisy::nn

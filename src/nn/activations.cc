#include "nn/activations.h"

#include "core/kernels/kernels.h"
#include "core/parallel.h"

namespace daisy::nn {

namespace {

// Chunk grain for elementwise kernel fan-out: one indirect kernel call
// per chunk (not per element), so the grain mirrors the raw-arithmetic
// loops in matrix.cc. Chunk boundaries cannot change elementwise
// results, so any partition is bit-identical.
constexpr size_t kElemGrain = 1 << 14;

// Row-chunk grain for the softmax kernels (exp-heavy, so fewer
// elements per chunk than the cheap arithmetic ops). Depends only on
// the column count, never the thread count — deterministic partition.
size_t SoftmaxRowGrain(size_t cols) {
  return std::max<size_t>(1, (size_t{1} << 12) / std::max<size_t>(1, cols));
}

using ElemKernel = void (*)(const double*, double*, size_t);

Matrix ApplyElemKernel(ElemKernel k, const Matrix& x) {
  Matrix y(x.rows(), x.cols());
  const double* src = x.data();
  double* dst = y.data();
  par::ParallelFor(0, x.size(), kElemGrain, [&](size_t b, size_t e) {
    k(src + b, dst + b, e - b);
  });
  return y;
}

// In-place gradient scaling: g <- g ⊙ f'(ref), where ref is the cached
// forward input (relu family) or output (tanh/sigmoid).
void ScaleGradInPlace(ElemKernel k, const Matrix& ref, Matrix* g) {
  const double* rd = ref.data();
  double* gd = g->data();
  par::ParallelFor(0, g->size(), kElemGrain, [&](size_t b, size_t e) {
    k(rd + b, gd + b, e - b);
  });
}

}  // namespace

Matrix ReLU::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix ReLU::InferenceForward(const Matrix& x) const { return ReluMat(x); }

Matrix ReLU::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_input_));
  Matrix g = grad_out;
  ScaleGradInPlace(kern::Active().relu_bwd, cached_input_, &g);
  return g;
}

Matrix LeakyReLU::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix LeakyReLU::InferenceForward(const Matrix& x) const {
  return LeakyReluMat(x, alpha_);
}

Matrix LeakyReLU::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_input_));
  const kern::KernelTable& kt = kern::Active();
  const double alpha = alpha_;
  Matrix g = grad_out;
  const double* xd = cached_input_.data();
  double* gd = g.data();
  par::ParallelFor(0, g.size(), kElemGrain, [&](size_t b, size_t e) {
    kt.leaky_relu_bwd(alpha, xd + b, gd + b, e - b);
  });
  return g;
}

Matrix Tanh::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Tanh::InferenceForward(const Matrix& x) const { return TanhMat(x); }

Matrix Tanh::Backward(const Matrix& grad_out) {
  return TanhBackwardFromOutput(cached_output_, grad_out);
}

Matrix Sigmoid::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Sigmoid::InferenceForward(const Matrix& x) const {
  return SigmoidMat(x);
}

Matrix Sigmoid::Backward(const Matrix& grad_out) {
  return SigmoidBackwardFromOutput(cached_output_, grad_out);
}

Matrix Softmax::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Softmax::InferenceForward(const Matrix& x) const {
  return SoftmaxRows(x);
}

Matrix Softmax::Backward(const Matrix& grad_out) {
  return SoftmaxRowsBackward(cached_output_, grad_out);
}

std::unique_ptr<Module> ReLU::Clone() const {
  return std::make_unique<ReLU>();
}

std::unique_ptr<Module> LeakyReLU::Clone() const {
  return std::make_unique<LeakyReLU>(alpha_);
}

std::unique_ptr<Module> Tanh::Clone() const {
  return std::make_unique<Tanh>();
}

std::unique_ptr<Module> Sigmoid::Clone() const {
  return std::make_unique<Sigmoid>();
}

std::unique_ptr<Module> Softmax::Clone() const {
  return std::make_unique<Softmax>();
}

Matrix SoftmaxRows(const Matrix& x) {
  // A zero-column input has no row maximum to read; the only honest
  // softmax over an empty support is the empty matrix. Degenerate GMM
  // heads are rejected upstream (synth/heads.cc), but guard here too so
  // no caller can reach the kernel's x[0] load.
  if (x.cols() == 0) return Matrix(x.rows(), 0);
  Matrix y(x.rows(), x.cols());
  const kern::KernelTable& kt = kern::Active();
  // One chunk owner per row; the kernel's striped max/sum order is
  // index-fixed, so any row partition is bit-identical.
  par::ParallelFor(0, x.rows(), SoftmaxRowGrain(x.cols()),
                   [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r)
      kt.softmax_row(x.row(r), y.row(r), x.cols());
  });
  return y;
}

Matrix SigmoidMat(const Matrix& x) {
  return ApplyElemKernel(kern::Active().sigmoid, x);
}

Matrix TanhMat(const Matrix& x) {
  return ApplyElemKernel(kern::Active().tanh, x);
}

Matrix ReluMat(const Matrix& x) {
  return ApplyElemKernel(kern::Active().relu, x);
}

Matrix LeakyReluMat(const Matrix& x, double alpha) {
  Matrix y(x.rows(), x.cols());
  const kern::KernelTable& kt = kern::Active();
  const double* src = x.data();
  double* dst = y.data();
  par::ParallelFor(0, x.size(), kElemGrain, [&](size_t b, size_t e) {
    kt.leaky_relu(alpha, src + b, dst + b, e - b);
  });
  return y;
}

Matrix TanhBackwardFromOutput(const Matrix& y, const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(y));
  Matrix g = grad_out;
  ScaleGradInPlace(kern::Active().tanh_bwd, y, &g);
  return g;
}

Matrix SigmoidBackwardFromOutput(const Matrix& y, const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(y));
  Matrix g = grad_out;
  ScaleGradInPlace(kern::Active().sigmoid_bwd, y, &g);
  return g;
}

Matrix SoftmaxRowsBackward(const Matrix& y, const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(y));
  Matrix g(grad_out.rows(), grad_out.cols());
  if (g.cols() == 0) return g;
  const kern::KernelTable& kt = kern::Active();
  par::ParallelFor(0, y.rows(), SoftmaxRowGrain(y.cols()),
                   [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r)
      kt.softmax_row_bwd(y.row(r), grad_out.row(r), g.row(r), y.cols());
  });
  return g;
}

}  // namespace daisy::nn

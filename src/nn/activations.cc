#include "nn/activations.h"

#include <cmath>

namespace daisy::nn {

Matrix ReLU::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix ReLU::InferenceForward(const Matrix& x) const {
  return x.Apply([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix ReLU::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_input_));
  Matrix g = grad_out;
  for (size_t r = 0; r < g.rows(); ++r)
    for (size_t c = 0; c < g.cols(); ++c)
      if (cached_input_(r, c) <= 0.0) g(r, c) = 0.0;
  return g;
}

Matrix LeakyReLU::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix LeakyReLU::InferenceForward(const Matrix& x) const {
  const double a = alpha_;
  return x.Apply([a](double v) { return v > 0.0 ? v : a * v; });
}

Matrix LeakyReLU::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_input_));
  Matrix g = grad_out;
  for (size_t r = 0; r < g.rows(); ++r)
    for (size_t c = 0; c < g.cols(); ++c)
      if (cached_input_(r, c) <= 0.0) g(r, c) *= alpha_;
  return g;
}

Matrix Tanh::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Tanh::InferenceForward(const Matrix& x) const { return TanhMat(x); }

Matrix Tanh::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_output_));
  Matrix g = grad_out;
  for (size_t r = 0; r < g.rows(); ++r)
    for (size_t c = 0; c < g.cols(); ++c) {
      const double y = cached_output_(r, c);
      g(r, c) *= 1.0 - y * y;
    }
  return g;
}

Matrix Sigmoid::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Sigmoid::InferenceForward(const Matrix& x) const {
  return SigmoidMat(x);
}

Matrix Sigmoid::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_output_));
  Matrix g = grad_out;
  for (size_t r = 0; r < g.rows(); ++r)
    for (size_t c = 0; c < g.cols(); ++c) {
      const double y = cached_output_(r, c);
      g(r, c) *= y * (1.0 - y);
    }
  return g;
}

Matrix Softmax::Forward(const Matrix& x, bool /*training*/) {
  cached_output_ = InferenceForward(x);
  return cached_output_;
}

Matrix Softmax::InferenceForward(const Matrix& x) const {
  return SoftmaxRows(x);
}

Matrix Softmax::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.SameShape(cached_output_));
  // dL/dx_i = y_i * (g_i - sum_j g_j y_j) per row.
  Matrix g(grad_out.rows(), grad_out.cols());
  for (size_t r = 0; r < g.rows(); ++r) {
    double dot = 0.0;
    for (size_t c = 0; c < g.cols(); ++c)
      dot += grad_out(r, c) * cached_output_(r, c);
    for (size_t c = 0; c < g.cols(); ++c)
      g(r, c) = cached_output_(r, c) * (grad_out(r, c) - dot);
  }
  return g;
}

std::unique_ptr<Module> ReLU::Clone() const {
  return std::make_unique<ReLU>();
}

std::unique_ptr<Module> LeakyReLU::Clone() const {
  return std::make_unique<LeakyReLU>(alpha_);
}

std::unique_ptr<Module> Tanh::Clone() const {
  return std::make_unique<Tanh>();
}

std::unique_ptr<Module> Sigmoid::Clone() const {
  return std::make_unique<Sigmoid>();
}

std::unique_ptr<Module> Softmax::Clone() const {
  return std::make_unique<Softmax>();
}

Matrix SoftmaxRows(const Matrix& x) {
  Matrix y(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    double mx = x(r, 0);
    for (size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, x(r, c));
    double sum = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      y(r, c) = std::exp(x(r, c) - mx);
      sum += y(r, c);
    }
    for (size_t c = 0; c < x.cols(); ++c) y(r, c) /= sum;
  }
  return y;
}

Matrix SigmoidMat(const Matrix& x) {
  return x.Apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
}

Matrix TanhMat(const Matrix& x) {
  return x.Apply([](double v) { return std::tanh(v); });
}

}  // namespace daisy::nn

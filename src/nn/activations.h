// Elementwise activations plus row-wise Softmax. All forward and
// backward passes run on the runtime-dispatched SIMD kernels
// (core/kernels/), parallelized in index-stable chunks — results are
// bit-identical for any DAISY_THREADS value and for scalar vs AVX2.
#ifndef DAISY_NN_ACTIVATIONS_H_
#define DAISY_NN_ACTIVATIONS_H_

#include "nn/module.h"

namespace daisy::nn {

/// max(0, x).
class ReLU : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_input_;
};

/// x if x > 0 else alpha * x.
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(double alpha = 0.2) : alpha_(alpha) {}
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  double alpha_;
  Matrix cached_input_;
};

/// Hyperbolic tangent.
class Tanh : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Logistic sigmoid.
class Sigmoid : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Row-wise softmax with the usual max-subtraction for stability.
class Softmax : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Free-function forms used where a Module instance is overkill.
/// SoftmaxRows of a zero-column matrix is the empty rows x 0 matrix
/// (a degenerate head must not read x(r, 0)).
Matrix SoftmaxRows(const Matrix& x);
/// Branch-stable sigmoid: exp only ever sees non-positive arguments,
/// so extreme logits (e.g. ±750) saturate to exactly 0/1 instead of
/// overflowing exp.
Matrix SigmoidMat(const Matrix& x);
Matrix TanhMat(const Matrix& x);
Matrix ReluMat(const Matrix& x);
Matrix LeakyReluMat(const Matrix& x, double alpha);

/// Backward helpers shared by the Modules above and the generator
/// output heads (synth/heads.cc). Each returns dLoss/dPreactivation
/// given the cached forward *output* y (tanh/sigmoid/softmax) and the
/// incoming gradient.
Matrix TanhBackwardFromOutput(const Matrix& y, const Matrix& grad_out);
Matrix SigmoidBackwardFromOutput(const Matrix& y, const Matrix& grad_out);
Matrix SoftmaxRowsBackward(const Matrix& y, const Matrix& grad_out);

}  // namespace daisy::nn

#endif  // DAISY_NN_ACTIVATIONS_H_

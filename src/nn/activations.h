// Elementwise activations plus row-wise Softmax.
#ifndef DAISY_NN_ACTIVATIONS_H_
#define DAISY_NN_ACTIVATIONS_H_

#include "nn/module.h"

namespace daisy::nn {

/// max(0, x).
class ReLU : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_input_;
};

/// x if x > 0 else alpha * x.
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(double alpha = 0.2) : alpha_(alpha) {}
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  double alpha_;
  Matrix cached_input_;
};

/// Hyperbolic tangent.
class Tanh : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Logistic sigmoid.
class Sigmoid : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Row-wise softmax with the usual max-subtraction for stability.
class Softmax : public Module {
 public:
  Matrix Forward(const Matrix& x, bool training) override;
  Matrix InferenceForward(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::unique_ptr<Module> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Free-function forms used where a Module instance is overkill.
Matrix SoftmaxRows(const Matrix& x);
Matrix SigmoidMat(const Matrix& x);
Matrix TanhMat(const Matrix& x);

}  // namespace daisy::nn

#endif  // DAISY_NN_ACTIVATIONS_H_

#include "nn/linear.h"

#include <cmath>

namespace daisy::nn {

Linear::Linear(size_t in, size_t out, Rng* rng) : in_(in), out_(out) {
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  weight_ = Parameter("linear.weight",
                      Matrix::RandUniform(in, out, rng, -bound, bound));
  bias_ = Parameter("linear.bias", Matrix(1, out));
}

Matrix Linear::Forward(const Matrix& x, bool /*training*/) {
  cached_input_ = x;
  return InferenceForward(x);
}

Matrix Linear::InferenceForward(const Matrix& x) const {
  DAISY_CHECK(x.cols() == in_);
  Matrix y = x.MatMul(weight_.value);
  y.AddRowBroadcast(bias_.value);
  return y;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  DAISY_CHECK(grad_out.cols() == out_);
  DAISY_CHECK(grad_out.rows() == cached_input_.rows());
  weight_.grad += cached_input_.TransposeMatMul(grad_out);
  bias_.grad += grad_out.ColSum();
  return grad_out.MatMulTranspose(weight_.value);
}

Matrix Linear::PropagateDelta(const Matrix& grad_out) const {
  DAISY_CHECK(grad_out.cols() == out_);
  return grad_out.MatMulTranspose(weight_.value);
}

std::unique_ptr<Module> Linear::Clone() const {
  auto copy = std::make_unique<Linear>(*this);
  copy->cached_input_ = Matrix();
  copy->weight_.ZeroGrad();
  copy->bias_.ZeroGrad();
  return copy;
}

}  // namespace daisy::nn

#include "baselines/recon_loss.h"

#include <algorithm>
#include <cmath>

namespace daisy::baselines {

double ReconstructionLoss(
    const Matrix& recon, const Matrix& target,
    const std::vector<transform::AttrSegment>& segments, Matrix* grad) {
  using transform::AttrSegment;
  DAISY_CHECK(recon.SameShape(target));
  *grad = Matrix(recon.rows(), recon.cols());
  const double inv_n = 1.0 / static_cast<double>(recon.rows());
  double loss = 0.0;
  constexpr double kEps = 1e-9;

  auto scalar_mse = [&](size_t col) {
    for (size_t r = 0; r < recon.rows(); ++r) {
      const double d = recon(r, col) - target(r, col);
      loss += d * d * inv_n;
      (*grad)(r, col) = 2.0 * d * inv_n;
    }
  };
  auto block_ce = [&](size_t offset, size_t width) {
    for (size_t r = 0; r < recon.rows(); ++r) {
      for (size_t c = 0; c < width; ++c) {
        const double t = target(r, offset + c);
        if (t <= 0.0) continue;
        const double p = std::max(recon(r, offset + c), kEps);
        loss += -t * std::log(p) * inv_n;
        (*grad)(r, offset + c) = -t / p * inv_n;
      }
    }
  };

  for (const auto& seg : segments) {
    switch (seg.kind) {
      case AttrSegment::Kind::kSimpleNumeric:
      case AttrSegment::Kind::kOrdinalCat:
        scalar_mse(seg.offset);
        break;
      case AttrSegment::Kind::kGmmNumeric:
        scalar_mse(seg.offset);
        block_ce(seg.offset + 1, seg.width - 1);
        break;
      case AttrSegment::Kind::kOneHotCat:
        block_ce(seg.offset, seg.width);
        break;
    }
  }
  return loss;
}

}  // namespace daisy::baselines

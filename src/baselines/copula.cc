#include "baselines/copula.h"

#include <algorithm>
#include <cmath>

namespace daisy::baselines {

namespace {
// Clamp empirical CDF values away from 0/1 so normal scores stay
// finite.
double ClampU(double u, size_t n) {
  const double eps = 0.5 / static_cast<double>(n);
  return std::clamp(u, eps, 1.0 - eps);
}
}  // namespace

double GaussianCopulaSynthesizer::ToNormalScore(size_t attr,
                                                double value) const {
  const Marginal& m = marginals_[attr];
  if (m.categorical) {
    // Midpoint of the category's cumulative band.
    const size_t c = static_cast<size_t>(std::llround(value));
    DAISY_CHECK(c < m.cumulative.size());
    const double lo = c == 0 ? 0.0 : m.cumulative[c - 1];
    const double hi = m.cumulative[c];
    return stats::NormalQuantile(
        ClampU(0.5 * (lo + hi), m.cumulative.size() * 4));
  }
  // Empirical CDF via binary search (mid-rank of ties).
  const auto lo_it =
      std::lower_bound(m.sorted.begin(), m.sorted.end(), value);
  const auto hi_it =
      std::upper_bound(m.sorted.begin(), m.sorted.end(), value);
  const double rank =
      0.5 * static_cast<double>((lo_it - m.sorted.begin()) +
                                (hi_it - m.sorted.begin()));
  const double u = ClampU((rank + 0.5) / static_cast<double>(m.sorted.size()),
                          m.sorted.size());
  return stats::NormalQuantile(u);
}

double GaussianCopulaSynthesizer::FromUniform(size_t attr, double u,
                                              Rng* rng) const {
  const Marginal& m = marginals_[attr];
  if (m.categorical) {
    for (size_t c = 0; c < m.cumulative.size(); ++c)
      if (u <= m.cumulative[c]) return static_cast<double>(c);
    return static_cast<double>(m.cumulative.size() - 1);
  }
  // Inverse empirical CDF with linear interpolation between order
  // statistics; a touch of within-gap jitter avoids producing only
  // the observed support.
  const double pos = u * static_cast<double>(m.sorted.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  const size_t nxt = std::min(idx + 1, m.sorted.size() - 1);
  double frac = pos - static_cast<double>(idx);
  if (rng != nullptr) frac = std::clamp(frac + rng->Uniform(-0.05, 0.05),
                                        0.0, 1.0);
  return m.sorted[idx] + frac * (m.sorted[nxt] - m.sorted[idx]);
}

void GaussianCopulaSynthesizer::Fit(const data::Table& train) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 1);
  fitted_ = true;
  schema_ = train.schema();
  const size_t d = schema_.num_attributes();
  const size_t n = train.num_records();

  marginals_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    Marginal& m = marginals_[j];
    m.categorical = schema_.attribute(j).is_categorical();
    if (m.categorical) {
      const size_t domain = schema_.attribute(j).domain_size();
      std::vector<double> counts(domain, 0.0);
      for (size_t i = 0; i < n; ++i) counts[train.category(i, j)] += 1.0;
      m.cumulative.resize(domain);
      double acc = 0.0;
      for (size_t c = 0; c < domain; ++c) {
        acc += counts[c] / static_cast<double>(n);
        m.cumulative[c] = acc;
      }
      m.cumulative.back() = 1.0;
    } else {
      m.sorted = train.Column(j);
      std::sort(m.sorted.begin(), m.sorted.end());
    }
  }

  // Latent normal scores, then their correlation.
  Matrix scores(n, d);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j)
      scores(i, j) = ToNormalScore(j, train.value(i, j));
  correlation_ = stats::CorrelationMatrix(scores);
  Matrix regularized =
      stats::RegularizeCovariance(correlation_, opts_.shrinkage);
  auto chol = stats::Cholesky(regularized);
  // Shrinkage guarantees positive definiteness for any valid
  // correlation matrix.
  DAISY_CHECK(chol.ok());
  sampler_ = std::make_unique<stats::MvnSampler>(chol.take());
}

data::Table GaussianCopulaSynthesizer::Generate(size_t n, Rng* rng) const {
  DAISY_CHECK(fitted_);
  data::Table out(schema_);
  out.Reserve(n);
  const size_t d = schema_.num_attributes();
  std::vector<double> record(d);
  for (size_t i = 0; i < n; ++i) {
    const auto z = sampler_->Sample(rng);
    for (size_t j = 0; j < d; ++j)
      record[j] = FromUniform(j, stats::NormalCdf(z[j]), rng);
    out.AppendRecord(record);
  }
  return out;
}

}  // namespace daisy::baselines

// Variational autoencoder baseline (paper §6.3): encoder/decoder MLPs
// over the same reversible record transformation as the GAN, trained
// on reconstruction loss (BCE for categorical blocks, MSE for numeric
// scalars) plus the KL term of the Gaussian posterior.
#ifndef DAISY_BASELINES_VAE_H_
#define DAISY_BASELINES_VAE_H_

#include <memory>

#include "data/table.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "obs/metrics.h"
#include "obs/sentinel.h"
#include "synth/heads.h"
#include "transform/record_transformer.h"

namespace daisy::baselines {

struct VaeOptions {
  size_t latent_dim = 16;
  std::vector<size_t> hidden = {96};
  size_t epochs = 30;
  size_t batch_size = 64;
  double lr = 1e-3;
  /// Weight on the KL term (beta-VAE style; 1.0 = standard ELBO).
  double kl_weight = 1.0;
  /// Telemetry cadence in epochs (records go to the Fit sink).
  size_t log_every = 1;
  /// Divergence sentinel thresholds, checked once per epoch.
  obs::SentinelOptions sentinel;

  /// Crash-safe checkpointing, in epochs (see GanOptions for the
  /// contract): with checkpoint_every > 0 and a checkpoint_dir, Fit
  /// saves an atomic checkpoint every checkpoint_every epochs; with
  /// resume set it restores the newest valid one and continues
  /// bit-for-bit. max_iters_per_run pauses Fit cleanly after that many
  /// epochs in this process (0 = run to completion).
  size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  size_t checkpoint_keep = 3;
  bool resume = false;
  size_t max_iters_per_run = 0;

  uint64_t seed = 23;
};

/// Fit/Generate interface mirroring TableSynthesizer.
class VaeSynthesizer {
 public:
  explicit VaeSynthesizer(const VaeOptions& options,
                          const transform::TransformOptions& transform_opts);

  /// Trains the VAE. A non-null `sink` receives one record per
  /// log_every epochs (loss in g_loss, grad/param norms, timings).
  /// Returns OK, or why the divergence sentinel stopped training — in
  /// which case the parameters are rolled back to the last healthy
  /// epoch, so Generate() still samples from sane weights.
  Status Fit(const data::Table& train, obs::MetricSink* sink = nullptr);
  data::Table Generate(size_t n, Rng* rng);

  /// Final average training loss (reconstruction + KL), for tests.
  double final_loss() const { return final_loss_; }

  /// True when the last Fit stopped early on max_iters_per_run.
  bool paused() const { return paused_; }

 private:
  double TrainBatch(const Matrix& batch, Rng* rng);

  VaeOptions opts_;
  transform::TransformOptions topts_;
  Rng rng_;

  std::unique_ptr<transform::RecordTransformer> transformer_;
  std::unique_ptr<nn::Sequential> encoder_body_;
  std::unique_ptr<nn::Linear> mu_head_;
  std::unique_ptr<nn::Linear> logvar_head_;
  std::unique_ptr<nn::Sequential> decoder_body_;
  std::unique_ptr<synth::AttributeHeads> decoder_heads_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  std::vector<nn::Parameter*> params_;  // everything the optimizer steps

  double final_loss_ = 0.0;
  bool fitted_ = false;
  bool paused_ = false;
};

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_VAE_H_

// Shared checkpoint plumbing for the baseline synthesizers: optimizer
// state <-> opaque blob round-trips and the finiteness / shape checks
// the resume paths run before mutating any live state.
#ifndef DAISY_BASELINES_CKPT_UTIL_H_
#define DAISY_BASELINES_CKPT_UTIL_H_

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/serial.h"
#include "core/status.h"
#include "nn/optimizer.h"
#include "synth/generator.h"

namespace daisy::baselines {

inline std::string OptimizerBlob(const nn::Optimizer& opt) {
  std::ostringstream os;
  Serializer ser(&os);
  opt.Save(&ser);
  return os.str();
}

inline Status LoadOptimizerBlob(nn::Optimizer* opt, const std::string& blob,
                                const char* which) {
  std::istringstream is(blob);
  Deserializer des(&is);
  opt->Load(&des);
  if (!des.ok())
    return Status::InvalidArgument(std::string("checkpoint ") + which +
                                   " optimizer state: " + des.error());
  return Status::OK();
}

inline bool AllFinite(const synth::StateDict& state) {
  for (const Matrix& m : state)
    for (size_t r = 0; r < m.rows(); ++r)
      for (size_t c = 0; c < m.cols(); ++c)
        if (!std::isfinite(m(r, c))) return false;
  return true;
}

inline bool ShapesMatch(const std::vector<nn::Parameter*>& params,
                        const synth::StateDict& state) {
  if (params.size() != state.size()) return false;
  for (size_t i = 0; i < params.size(); ++i)
    if (!params[i]->value.SameShape(state[i])) return false;
  return true;
}

inline bool BufferShapesMatch(const std::vector<Matrix*>& buffers,
                              const synth::StateDict& state) {
  if (buffers.size() != state.size()) return false;
  for (size_t i = 0; i < buffers.size(); ++i)
    if (!buffers[i]->SameShape(state[i])) return false;
  return true;
}

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_CKPT_UTIL_H_

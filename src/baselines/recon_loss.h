// Segment-aware reconstruction loss shared by the autoencoder-based
// synthesizers (VAE, medGAN): cross-entropy on probability blocks
// (one-hot and GMM-component softmax outputs), MSE on scalar
// dimensions.
#ifndef DAISY_BASELINES_RECON_LOSS_H_
#define DAISY_BASELINES_RECON_LOSS_H_

#include <vector>

#include "core/matrix.h"
#include "transform/record_transformer.h"

namespace daisy::baselines {

/// Returns the loss and writes dLoss/dRecon into `grad`.
double ReconstructionLoss(
    const Matrix& recon, const Matrix& target,
    const std::vector<transform::AttrSegment>& segments, Matrix* grad);

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_RECON_LOSS_H_

#include "baselines/privbayes.h"

#include <algorithm>
#include <cmath>

namespace daisy::baselines {

namespace {

/// Mutual information I(X; Y) from a joint count table (x_dom x y_dom).
double MutualInformation(const std::vector<double>& joint, size_t x_dom,
                         size_t y_dom, double n) {
  if (n <= 0.0) return 0.0;
  std::vector<double> px(x_dom, 0.0), py(y_dom, 0.0);
  for (size_t x = 0; x < x_dom; ++x)
    for (size_t y = 0; y < y_dom; ++y) {
      px[x] += joint[x * y_dom + y];
      py[y] += joint[x * y_dom + y];
    }
  double mi = 0.0;
  for (size_t x = 0; x < x_dom; ++x) {
    for (size_t y = 0; y < y_dom; ++y) {
      const double pxy = joint[x * y_dom + y] / n;
      if (pxy <= 0.0) continue;
      mi += pxy * std::log(pxy / ((px[x] / n) * (py[y] / n)));
    }
  }
  return std::max(mi, 0.0);
}

}  // namespace

size_t PrivBayes::Discretize(size_t attr, double value) const {
  const AttrDisc& d = disc_[attr];
  if (d.categorical) {
    const long long idx = std::llround(value);
    DAISY_CHECK(idx >= 0 && idx < static_cast<long long>(d.domain));
    return static_cast<size_t>(idx);
  }
  if (d.width <= 0.0) return 0;
  const double rel = (value - d.lo) / d.width;
  const long long bin = static_cast<long long>(std::floor(rel));
  return static_cast<size_t>(
      std::clamp<long long>(bin, 0, static_cast<long long>(d.domain) - 1));
}

double PrivBayes::UnDiscretize(size_t attr, size_t bin, Rng* rng) const {
  const AttrDisc& d = disc_[attr];
  if (d.categorical) return static_cast<double>(bin);
  return d.lo + (static_cast<double>(bin) + rng->Uniform()) * d.width;
}

void PrivBayes::Fit(const data::Table& train, Rng* rng) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 0);
  fitted_ = true;
  schema_ = train.schema();
  const size_t d = schema_.num_attributes();
  const size_t n = train.num_records();
  const double nd = static_cast<double>(n);

  // Discretization spec per attribute.
  disc_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    if (schema_.attribute(j).is_categorical()) {
      disc_[j].categorical = true;
      disc_[j].domain = schema_.attribute(j).domain_size();
    } else {
      disc_[j].categorical = false;
      disc_[j].domain = opts_.num_bins;
      const double lo = train.AttributeMin(j);
      const double hi = train.AttributeMax(j);
      disc_[j].lo = lo;
      disc_[j].width =
          hi > lo ? (hi - lo) / static_cast<double>(opts_.num_bins) : 1.0;
    }
  }

  // Discretized data matrix.
  std::vector<std::vector<size_t>> data(d, std::vector<size_t>(n));
  for (size_t j = 0; j < d; ++j)
    for (size_t i = 0; i < n; ++i)
      data[j][i] = Discretize(j, train.value(i, j));

  // ---- Structure learning (eps/2) ----------------------------------
  const double eps1 = opts_.epsilon / 2.0;
  const double eps_step = d > 1 ? eps1 / static_cast<double>(d - 1) : eps1;
  // Sensitivity of MI, upper-bounded by (2/n) log2 n + 2/n.
  const double mi_sensitivity =
      (2.0 / nd) * std::log2(std::max(nd, 2.0)) + 2.0 / nd;

  order_.clear();
  parents_.assign(d, {});
  std::vector<bool> chosen(d, false);
  const size_t first = rng->UniformInt(d);
  order_.push_back(first);
  chosen[first] = true;

  auto parent_domain = [&](const std::vector<size_t>& pset) {
    size_t dom = 1;
    for (size_t p : pset) {
      dom *= disc_[p].domain;
      if (dom > opts_.max_parent_configs) return opts_.max_parent_configs + 1;
    }
    return dom;
  };
  auto parent_config_of = [&](const std::vector<size_t>& pset, size_t row) {
    size_t cfg = 0;
    for (size_t p : pset) cfg = cfg * disc_[p].domain + data[p][row];
    return cfg;
  };
  auto mi_of = [&](size_t attr, const std::vector<size_t>& pset) {
    const size_t pdom = parent_domain(pset);
    const size_t adom = disc_[attr].domain;
    std::vector<double> joint(pdom * adom, 0.0);
    for (size_t i = 0; i < n; ++i)
      joint[parent_config_of(pset, i) * adom + data[attr][i]] += 1.0;
    return MutualInformation(joint, pdom, adom, nd);
  };

  while (order_.size() < d) {
    double best_score = -1e300;
    size_t best_attr = 0;
    std::vector<size_t> best_parents;

    for (size_t a = 0; a < d; ++a) {
      if (chosen[a]) continue;
      // Singleton candidates: every chosen attribute.
      std::vector<std::pair<double, size_t>> singles;
      for (size_t p : order_) {
        std::vector<size_t> pset{p};
        if (parent_domain(pset) > opts_.max_parent_configs) continue;
        const double mi = mi_of(a, pset);
        singles.push_back({mi, p});
        const double noisy = mi + rng->Laplace(mi_sensitivity / eps_step);
        if (noisy > best_score) {
          best_score = noisy;
          best_attr = a;
          best_parents = pset;
        }
      }
      // Pair candidates drawn from the strongest singletons (prunes the
      // quadratic explosion while keeping high-MI pairs in play).
      if (opts_.max_parents >= 2 && singles.size() >= 2) {
        std::sort(singles.rbegin(), singles.rend());
        const size_t top = std::min<size_t>(4, singles.size());
        for (size_t i = 0; i < top; ++i) {
          for (size_t j = i + 1; j < top; ++j) {
            std::vector<size_t> pset{singles[i].second, singles[j].second};
            if (parent_domain(pset) > opts_.max_parent_configs) continue;
            const double noisy =
                mi_of(a, pset) + rng->Laplace(mi_sensitivity / eps_step);
            if (noisy > best_score) {
              best_score = noisy;
              best_attr = a;
              best_parents = pset;
            }
          }
        }
      }
      // Parentless fallback (also covers the degenerate d == 1 case).
      const double noisy = rng->Laplace(mi_sensitivity / eps_step);
      if (best_parents.empty() && noisy > best_score) {
        best_score = noisy;
        best_attr = a;
        best_parents.clear();
      }
    }

    order_.push_back(best_attr);
    chosen[best_attr] = true;
    parents_[best_attr] = best_parents;
  }

  // ---- Parameter learning (eps/2) -----------------------------------
  const double eps2 = opts_.epsilon / 2.0;
  // Each record contributes to d conditional tables; Laplace scale
  // 2d / eps2 on raw counts (PrivBayes Lemma 4.1 style).
  const double count_noise_scale = 2.0 * static_cast<double>(d) / eps2;

  conditional_.assign(d, {});
  parent_configs_.assign(d, 1);
  for (size_t a = 0; a < d; ++a) {
    const auto& pset = parents_[a];
    const size_t pdom = parent_domain(pset);
    DAISY_CHECK(pdom <= opts_.max_parent_configs);
    const size_t adom = disc_[a].domain;
    parent_configs_[a] = pdom;
    std::vector<double> counts(pdom * adom, 0.0);
    for (size_t i = 0; i < n; ++i)
      counts[parent_config_of(pset, i) * adom + data[a][i]] += 1.0;
    // Noise + clamp + per-parent-config normalization.
    for (auto& c : counts)
      c = std::max(0.0, c + rng->Laplace(count_noise_scale));
    for (size_t cfg = 0; cfg < pdom; ++cfg) {
      double sum = 0.0;
      for (size_t v = 0; v < adom; ++v) sum += counts[cfg * adom + v];
      if (sum <= 0.0) {
        for (size_t v = 0; v < adom; ++v)
          counts[cfg * adom + v] = 1.0 / static_cast<double>(adom);
      } else {
        for (size_t v = 0; v < adom; ++v) counts[cfg * adom + v] /= sum;
      }
    }
    conditional_[a] = std::move(counts);
  }
}

data::Table PrivBayes::Generate(size_t n, Rng* rng) const {
  DAISY_CHECK(fitted_);
  data::Table out(schema_);
  out.Reserve(n);
  const size_t d = schema_.num_attributes();
  std::vector<size_t> bins(d);
  std::vector<double> record(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a : order_) {
      size_t cfg = 0;
      for (size_t p : parents_[a]) cfg = cfg * disc_[p].domain + bins[p];
      const size_t adom = disc_[a].domain;
      std::vector<double> probs(adom);
      for (size_t v = 0; v < adom; ++v)
        probs[v] = conditional_[a][cfg * adom + v];
      bins[a] = rng->Categorical(probs);
      record[a] = UnDiscretize(a, bins[a], rng);
    }
    out.AppendRecord(record);
  }
  return out;
}

}  // namespace daisy::baselines

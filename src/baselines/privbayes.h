// PrivBayes baseline (Zhang et al., SIGMOD'14 / TODS'17): an
// epsilon-differentially-private Bayesian network over the discretized
// table. Budget split: eps/2 on structure (greedy parent selection via
// Laplace-noised mutual information — a standard simplification of the
// exponential mechanism), eps/2 on Laplace-noised conditional
// distributions. Numerical attributes are discretized into equi-width
// bins and sampled back uniformly within a bin — the behaviour behind
// the paper's Table 5 observation that PB rarely "hits" numeric
// records exactly.
#ifndef DAISY_BASELINES_PRIVBAYES_H_
#define DAISY_BASELINES_PRIVBAYES_H_

#include <vector>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::baselines {

struct PrivBayesOptions {
  /// Total differential-privacy budget.
  double epsilon = 0.8;
  /// Maximum parents per node (k).
  size_t max_parents = 2;
  /// Equi-width bins per numerical attribute.
  size_t num_bins = 16;
  /// Cap on a node's parent-configuration count; candidate parent sets
  /// whose joint domain exceeds this are skipped.
  size_t max_parent_configs = 256;
};

class PrivBayes {
 public:
  explicit PrivBayes(const PrivBayesOptions& options) : opts_(options) {}

  /// Learns the noisy network and conditionals from `train`.
  void Fit(const data::Table& train, Rng* rng);

  /// Samples n synthetic records (ancestral order).
  data::Table Generate(size_t n, Rng* rng) const;

  /// The learned topological order and parent sets (for tests).
  const std::vector<size_t>& order() const { return order_; }
  const std::vector<std::vector<size_t>>& parents() const { return parents_; }

 private:
  struct AttrDisc {
    bool categorical = false;
    size_t domain = 0;   // bins or categories
    double lo = 0.0, width = 1.0;  // numeric binning
  };

  size_t Discretize(size_t attr, double value) const;
  double UnDiscretize(size_t attr, size_t bin, Rng* rng) const;

  PrivBayesOptions opts_;
  data::Schema schema_;
  std::vector<AttrDisc> disc_;
  std::vector<size_t> order_;                    // sampling order
  std::vector<std::vector<size_t>> parents_;     // per attr (by index)
  /// conditional_[attr][parent_config * domain + value] = probability.
  std::vector<std::vector<double>> conditional_;
  std::vector<size_t> parent_configs_;           // per attr
  bool fitted_ = false;
};

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_PRIVBAYES_H_

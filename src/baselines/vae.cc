#include "baselines/vae.h"

#include <cmath>
#include <memory>

#include "baselines/ckpt_util.h"
#include "baselines/recon_loss.h"
#include "ckpt/checkpoint.h"
#include "core/parallel.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "obs/timer.h"
#include "synth/generator.h"

namespace daisy::baselines {

VaeSynthesizer::VaeSynthesizer(
    const VaeOptions& options,
    const transform::TransformOptions& transform_opts)
    : opts_(options), topts_(transform_opts), rng_(options.seed) {
  topts_.form = transform::SampleForm::kVector;
  topts_.exclude_label = false;  // VAE models the label jointly
}

Status VaeSynthesizer::Fit(const data::Table& train,
                           obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  fitted_ = true;

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::Fit(train, topts_, &rng_));
  const size_t d = transformer_->sample_dim();
  Rng init = rng_.Split();

  encoder_body_ = std::make_unique<nn::Sequential>();
  size_t in = d;
  for (size_t width : opts_.hidden) {
    encoder_body_->Emplace<nn::Linear>(in, width, &init);
    encoder_body_->Emplace<nn::ReLU>();
    in = width;
  }
  mu_head_ = std::make_unique<nn::Linear>(in, opts_.latent_dim, &init);
  logvar_head_ = std::make_unique<nn::Linear>(in, opts_.latent_dim, &init);

  decoder_body_ = std::make_unique<nn::Sequential>();
  in = opts_.latent_dim;
  for (auto it = opts_.hidden.rbegin(); it != opts_.hidden.rend(); ++it) {
    decoder_body_->Emplace<nn::Linear>(in, *it, &init);
    decoder_body_->Emplace<nn::ReLU>();
    in = *it;
  }
  decoder_heads_ = std::make_unique<synth::AttributeHeads>(
      in, transformer_->segments(), &init);

  params_ = encoder_body_->Params();
  for (auto* p : mu_head_->Params()) params_.push_back(p);
  for (auto* p : logvar_head_->Params()) params_.push_back(p);
  for (auto* p : decoder_body_->Params()) params_.push_back(p);
  for (auto* p : decoder_heads_->Params()) params_.push_back(p);
  optimizer_ = std::make_unique<nn::Adam>(params_, opts_.lr);

  const Matrix samples = transformer_->Transform(train);
  Rng train_rng = rng_.Split();
  const size_t n = samples.rows();
  const size_t batches_per_epoch =
      std::max<size_t>(1, n / opts_.batch_size);
  const size_t log_every = std::max<size_t>(1, opts_.log_every);
  const obs::DivergenceSentinel sentinel(opts_.sentinel);
  obs::WallTimer run_timer;
  // Mirrors GanTrainer: on a sentinel trip the parameters are rolled
  // back to the last healthy epoch so Generate() never samples from
  // diverged weights.
  synth::StateDict last_healthy = synth::GetState(params_);
  Status health;

  std::unique_ptr<ckpt::CheckpointStore> store;
  if (!opts_.checkpoint_dir.empty())
    store = std::make_unique<ckpt::CheckpointStore>(opts_.checkpoint_dir,
                                                    opts_.checkpoint_keep);

  size_t start_epoch = 0;
  if (opts_.resume && store != nullptr) {
    auto loaded = store->LoadLatest();
    if (loaded.ok()) {
      const ckpt::TrainCheckpoint& c = loaded.value();
      if (c.run != "vae")
        return Status::InvalidArgument("checkpoint is for run '" + c.run +
                                       "', not 'vae'");
      if (c.total_iters != opts_.epochs || c.seed != opts_.seed ||
          c.iter > c.total_iters)
        return Status::InvalidArgument(
            "vae checkpoint does not match the configured run "
            "(epochs/seed/iteration counter)");
      if (!ShapesMatch(params_, c.params) ||
          !ShapesMatch(params_, c.healthy_params) || !c.buffers.empty())
        return Status::InvalidArgument(
            "vae checkpoint parameter shapes do not match this network");
      if (c.optimizer_state.size() != 1 || c.extra.size() != 1)
        return Status::InvalidArgument("vae checkpoint payload mismatch");
      DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
          optimizer_.get(), c.optimizer_state[0], "vae"));
      DAISY_RETURN_IF_ERROR(train_rng.SetState(c.rng_state));
      synth::SetState(params_, c.params);
      last_healthy = c.healthy_params;
      final_loss_ = c.extra[0];
      start_epoch = c.iter;
      if (sink != nullptr)
        DAISY_RETURN_IF_ERROR(sink->ResumeAt(c.telemetry_records));
    } else if (loaded.status().code() != Status::Code::kNotFound) {
      return loaded.status();
    }
  }

  size_t epochs_this_run = 0;
  for (size_t epoch = start_epoch; epoch < opts_.epochs; ++epoch) {
    obs::WallTimer epoch_timer;
    double epoch_loss = 0.0;
    for (size_t b = 0; b < batches_per_epoch; ++b) {
      std::vector<size_t> rows(opts_.batch_size);
      for (auto& r : rows) r = train_rng.UniformInt(n);
      epoch_loss += TrainBatch(samples.GatherRows(rows), &train_rng);
    }

    obs::MetricRecord rec;
    rec.run = "vae";
    rec.iter = epoch + 1;
    rec.g_loss = epoch_loss / static_cast<double>(batches_per_epoch);
    rec.g_grad_norm = nn::GlobalGradNorm(params_);  // last batch's grads
    rec.param_norm = nn::GlobalParamNorm(params_);
    rec.iter_ms = epoch_timer.ElapsedMs();
    rec.wall_ms = run_timer.ElapsedMs();
    rec.threads = par::NumThreads();
    rec.seed = opts_.seed;

    health = sentinel.Check(rec);
    if (!health.ok()) {
      if (sink != nullptr) sink->Log(rec);
      // Durable fallback: if even the in-memory baseline is poisoned,
      // prefer the newest on-disk checkpoint with a finite one.
      if (store != nullptr && !AllFinite(last_healthy)) {
        const std::vector<std::string> files = store->ListFiles();
        for (auto it = files.rbegin(); it != files.rend(); ++it) {
          auto fallback = ckpt::LoadCheckpoint(*it);
          if (!fallback.ok()) continue;
          const ckpt::TrainCheckpoint& fc = fallback.value();
          if (!ShapesMatch(params_, fc.healthy_params) ||
              !AllFinite(fc.healthy_params))
            continue;
          last_healthy = fc.healthy_params;
          break;
        }
      }
      synth::SetState(params_, last_healthy);
      break;
    }
    final_loss_ = rec.g_loss;
    last_healthy = synth::GetState(params_);
    if (sink != nullptr &&
        ((epoch + 1) % log_every == 0 || epoch + 1 == opts_.epochs)) {
      sink->Log(rec);
    }

    if (store != nullptr && opts_.checkpoint_every > 0 &&
        (epoch + 1) % opts_.checkpoint_every == 0) {
      obs::MetricRecord ckpt_rec = rec;
      ckpt_rec.run += ".ckpt";
      if (sink != nullptr) sink->Log(ckpt_rec);
      ckpt::TrainCheckpoint c;
      c.run = "vae";
      c.iter = epoch + 1;
      c.total_iters = opts_.epochs;
      c.seed = opts_.seed;
      c.telemetry_records = sink != nullptr ? sink->records_logged() : 0;
      c.rng_state = train_rng.GetState();
      c.params = synth::GetState(params_);
      c.optimizer_state = {OptimizerBlob(*optimizer_)};
      c.healthy_params = last_healthy;
      c.extra = {final_loss_};
      health = store->Save(c);
      if (!health.ok()) break;
    }

    ++epochs_this_run;
    if (opts_.max_iters_per_run > 0 &&
        epochs_this_run >= opts_.max_iters_per_run &&
        epoch + 1 < opts_.epochs) {
      paused_ = true;
      break;
    }
  }
  if (sink != nullptr) sink->Flush();
  return health;
}

double VaeSynthesizer::TrainBatch(const Matrix& batch, Rng* rng) {
  optimizer_->ZeroGrad();
  const size_t m = batch.rows();
  const size_t latent = opts_.latent_dim;
  const double inv_m = 1.0 / static_cast<double>(m);

  // Encode.
  Matrix enc = encoder_body_->Forward(batch, /*training=*/true);
  Matrix mu = mu_head_->Forward(enc, true);
  Matrix logvar = logvar_head_->Forward(enc, true);
  logvar.Clip(-8.0, 8.0);

  // Reparameterize.
  Matrix eps = Matrix::Randn(m, latent, rng);
  Matrix z(m, latent);
  for (size_t r = 0; r < m; ++r)
    for (size_t c = 0; c < latent; ++c)
      z(r, c) = mu(r, c) + eps(r, c) * std::exp(0.5 * logvar(r, c));

  // Decode.
  Matrix dec = decoder_body_->Forward(z, true);
  Matrix recon = decoder_heads_->Forward(dec);

  // Losses.
  Matrix grad_recon;
  double loss = ReconstructionLoss(recon, batch, transformer_->segments(),
                                   &grad_recon);
  double kl = 0.0;
  Matrix grad_mu(m, latent);
  Matrix grad_logvar(m, latent);
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < latent; ++c) {
      const double v = std::exp(logvar(r, c));
      kl += 0.5 * (v + mu(r, c) * mu(r, c) - 1.0 - logvar(r, c)) * inv_m;
      grad_mu(r, c) = opts_.kl_weight * mu(r, c) * inv_m;
      grad_logvar(r, c) = opts_.kl_weight * 0.5 * (v - 1.0) * inv_m;
    }
  }
  loss += opts_.kl_weight * kl;

  // Backward: decoder.
  Matrix grad_dec = decoder_heads_->Backward(grad_recon);
  Matrix grad_z = decoder_body_->Backward(grad_dec);

  // Through the reparameterization into mu / logvar.
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < latent; ++c) {
      grad_mu(r, c) += grad_z(r, c);
      grad_logvar(r, c) +=
          grad_z(r, c) * eps(r, c) * 0.5 * std::exp(0.5 * logvar(r, c));
    }
  }

  // Encoder backward (two heads share the body input).
  Matrix grad_enc = mu_head_->Backward(grad_mu);
  grad_enc += logvar_head_->Backward(grad_logvar);
  encoder_body_->Backward(grad_enc);

  optimizer_->Step();
  return loss;
}

data::Table VaeSynthesizer::Generate(size_t n, Rng* rng) {
  DAISY_CHECK(fitted_);
  constexpr size_t kGenBatch = 256;
  data::Table out(transformer_->schema());
  out.Reserve(n);
  size_t produced = 0;
  while (produced < n) {
    const size_t m = std::min(kGenBatch, n - produced);
    Matrix z = Matrix::Randn(m, opts_.latent_dim, rng);
    Matrix dec = decoder_body_->Forward(z, /*training=*/false);
    Matrix recon = decoder_heads_->Forward(dec);
    data::Table decoded = transformer_->InverseTransform(recon);
    for (size_t i = 0; i < m; ++i) {
      std::vector<double> record(decoded.num_attributes());
      for (size_t j = 0; j < decoded.num_attributes(); ++j)
        record[j] = decoded.value(i, j);
      out.AppendRecord(record);
    }
    produced += m;
  }
  return out;
}

}  // namespace daisy::baselines

// Gaussian-copula synthesizer — the classic statistical baseline the
// paper's related work cites via DPSynthesizer [35] and the Synthetic
// Data Vault [46]. Each attribute is mapped to a standard-normal score
// through its (empirical) marginal CDF; the joint dependence is a
// single correlation matrix; sampling inverts the construction.
#ifndef DAISY_BASELINES_COPULA_H_
#define DAISY_BASELINES_COPULA_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "data/table.h"
#include "stats/mvn.h"

namespace daisy::baselines {

struct CopulaOptions {
  /// Shrinkage toward the identity applied to the estimated
  /// correlation matrix before factorization; keeps the factorization
  /// positive definite on degenerate data.
  double shrinkage = 0.05;
};

class GaussianCopulaSynthesizer {
 public:
  explicit GaussianCopulaSynthesizer(const CopulaOptions& options = {})
      : opts_(options) {}

  /// Fits per-attribute marginals and the latent correlation matrix.
  void Fit(const data::Table& train);

  /// Samples n records.
  data::Table Generate(size_t n, Rng* rng) const;

  /// The latent correlation matrix (for tests).
  const Matrix& correlation() const { return correlation_; }

 private:
  struct Marginal {
    bool categorical = false;
    // Numeric: sorted empirical values.
    std::vector<double> sorted;
    // Categorical: cumulative probabilities (last entry 1.0).
    std::vector<double> cumulative;
  };

  double ToNormalScore(size_t attr, double value) const;
  double FromUniform(size_t attr, double u, Rng* rng) const;

  CopulaOptions opts_;
  data::Schema schema_;
  std::vector<Marginal> marginals_;
  Matrix correlation_;
  std::unique_ptr<stats::MvnSampler> sampler_;
  bool fitted_ = false;
};

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_COPULA_H_

// medGAN-style synthesizer (Choi et al. [18]): an autoencoder is
// pretrained on the transformed records, then a GAN is trained in the
// autoencoder's latent space — the generator emits latent codes, the
// (fine-tuned) decoder turns them into samples, and the discriminator
// judges decoded samples against real ones. The decoder bridges the
// discrete/continuous gap that plain GANs handle with attribute-aware
// heads.
#ifndef DAISY_BASELINES_MEDGAN_H_
#define DAISY_BASELINES_MEDGAN_H_

#include <memory>
#include <vector>

#include "data/table.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "obs/metrics.h"
#include "obs/sentinel.h"
#include "synth/heads.h"
#include "synth/mlp_nets.h"
#include "transform/record_transformer.h"

namespace daisy::baselines {

struct MedGanOptions {
  size_t latent_dim = 24;
  std::vector<size_t> hidden = {64};
  /// Autoencoder pretraining epochs.
  size_t ae_epochs = 20;
  /// Adversarial iterations after pretraining.
  size_t gan_iterations = 300;
  size_t batch_size = 64;
  double lr = 1e-3;
  /// Weight of the per-attribute KL/moment warm-up (paper Eq. 2)
  /// applied to the generator step, exactly as in VTrain; medGAN is
  /// just as prone to marginal collapse without it at this scale.
  double kl_weight = 1.0;
  /// Telemetry cadence: pretraining logs every log_every epochs (run
  /// tag "medgan.pretrain"), the adversarial phase every log_every
  /// iterations (tag "medgan").
  size_t log_every = 1;
  /// Divergence sentinel thresholds, checked every epoch/iteration.
  obs::SentinelOptions sentinel;

  /// Crash-safe checkpointing (see GanOptions for the contract).
  /// Checkpoints carry the phase (0 = autoencoder pretraining, counted
  /// in epochs; 1 = adversarial training, counted in iterations), so a
  /// resumed run re-enters the right loop. max_iters_per_run counts
  /// epochs and iterations together.
  size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  size_t checkpoint_keep = 3;
  bool resume = false;
  size_t max_iters_per_run = 0;

  uint64_t seed = 31;
};

class MedGanSynthesizer {
 public:
  MedGanSynthesizer(const MedGanOptions& options,
                    const transform::TransformOptions& transform_opts);

  /// Trains autoencoder then GAN. A non-null `sink` receives records
  /// from both phases. Returns OK, or why the sentinel stopped the
  /// run — in which case the generation-path parameters are rolled
  /// back to the last healthy epoch/iteration of the failing phase, so
  /// Generate() still samples from sane weights.
  Status Fit(const data::Table& train, obs::MetricSink* sink = nullptr);
  data::Table Generate(size_t n, Rng* rng);

  /// Autoencoder reconstruction loss after pretraining (for tests).
  double pretrain_loss() const { return pretrain_loss_; }

  /// True when the last Fit stopped early on max_iters_per_run.
  bool paused() const { return paused_; }

 private:
  Matrix Decode(const Matrix& latent, bool training);

  MedGanOptions opts_;
  transform::TransformOptions topts_;
  Rng rng_;

  std::unique_ptr<transform::RecordTransformer> transformer_;
  std::unique_ptr<nn::Sequential> encoder_;       // sample -> latent
  std::unique_ptr<nn::Sequential> decoder_body_;  // latent -> features
  std::unique_ptr<synth::AttributeHeads> decoder_heads_;
  std::unique_ptr<nn::Sequential> latent_generator_;  // noise -> latent
  std::unique_ptr<synth::MlpDiscriminator> discriminator_;

  double pretrain_loss_ = 0.0;
  bool fitted_ = false;
  bool paused_ = false;
};

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_MEDGAN_H_

// PATE-GAN (Jordon, Yoon & van der Schaar, ICLR'19) — the paper cites
// it ([30], §8 direction 1) as the other route to differentially
// private GAN synthesis, complementing DPGAN. k teacher discriminators
// are trained on disjoint partitions of the real data; a student
// discriminator sees ONLY generated samples labeled by Laplace-noised
// teacher votes, and the generator trains against the student. Privacy
// follows from the PATE mechanism: the real data influences the
// student (and hence the generator) only through noisy aggregate
// votes.
#ifndef DAISY_BASELINES_PATEGAN_H_
#define DAISY_BASELINES_PATEGAN_H_

#include <memory>
#include <vector>

#include "data/table.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/sentinel.h"
#include "synth/kl_regularizer.h"
#include "synth/mlp_nets.h"
#include "transform/record_transformer.h"

namespace daisy::baselines {

struct PateGanOptions {
  size_t num_teachers = 5;
  /// Per-query privacy parameter: teacher vote counts get
  /// Laplace(2/lambda) noise and each labeled sample consumes ~lambda
  /// of (pure) epsilon budget. Small lambda = strong privacy but
  /// noisy votes; with k teachers the votes stay informative while the
  /// noise scale 2/lambda is below ~k/2.
  double lambda = 2.0;
  size_t iterations = 200;
  size_t batch_size = 32;
  /// Student updates per generator update.
  size_t student_steps = 1;
  double lr = 1e-3;
  /// Teachers learn slower than the generator so the student's labels
  /// keep carrying gradient signal instead of saturating at "fake".
  double teacher_lr = 1e-4;
  /// Budget for the one-shot noisy-marginal query that anchors the
  /// generator's marginals (prevents the cold-start collapse PATE-GAN
  /// exhibits at small scale; see the .cc for the mechanism). Set to 0
  /// to disable the anchor entirely.
  double marginal_epsilon = 0.1;
  /// Weight of the marginal-anchor term in the generator loss.
  double marginal_weight = 1.0;
  size_t noise_dim = 16;
  std::vector<size_t> hidden = {64, 64};
  /// Telemetry cadence in iterations (records go to the Fit sink).
  size_t log_every = 1;
  /// Divergence sentinel thresholds, checked every iteration.
  obs::SentinelOptions sentinel;

  /// Crash-safe checkpointing, in iterations (see GanOptions for the
  /// contract). A checkpoint captures the generator, student, and all
  /// k teachers (parameters, optimizer moments, and batch-norm
  /// buffers), the k+1 rng streams, and the epsilon ledger, so a
  /// resumed run replays bit-for-bit and keeps honest privacy
  /// accounting.
  size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  size_t checkpoint_keep = 3;
  bool resume = false;
  size_t max_iters_per_run = 0;

  uint64_t seed = 29;
};

class PateGanSynthesizer {
 public:
  PateGanSynthesizer(const PateGanOptions& options,
                     const transform::TransformOptions& transform_opts);

  /// Trains teachers/student/generator. A non-null `sink` receives one
  /// record per log_every iterations (student loss in d_loss, generator
  /// loss in g_loss). Returns OK, or why the sentinel stopped the
  /// run — in which case the generator is rolled back to the last
  /// healthy iteration, so Generate() still samples from sane weights.
  Status Fit(const data::Table& train, obs::MetricSink* sink = nullptr);
  data::Table Generate(size_t n, Rng* rng);

  /// Loose pure-DP composition bound on the epsilon consumed by the
  /// noisy vote queries (lambda per labeled sample). Not a moments
  /// accountant; monotone in lambda and query count, which is what the
  /// privacy/utility sweeps need.
  double ApproxEpsilonSpent() const { return epsilon_spent_; }

  /// True when the last Fit stopped early on max_iters_per_run.
  bool paused() const { return paused_; }

 private:
  PateGanOptions opts_;
  transform::TransformOptions topts_;
  Rng rng_;

  std::unique_ptr<transform::RecordTransformer> transformer_;
  std::unique_ptr<synth::MlpGenerator> generator_;
  std::vector<std::unique_ptr<synth::MlpDiscriminator>> teachers_;
  std::unique_ptr<synth::MlpDiscriminator> student_;
  std::unique_ptr<nn::Optimizer> g_opt_;
  std::vector<std::unique_ptr<nn::Optimizer>> teacher_opts_;
  std::unique_ptr<nn::Optimizer> student_opt_;
  std::unique_ptr<synth::KlRegularizer> anchor_;
  Matrix anchor_targets_;  // 2 pseudo-rows encoding noised marginals

  double epsilon_spent_ = 0.0;
  bool fitted_ = false;
  bool paused_ = false;
};

}  // namespace daisy::baselines

#endif  // DAISY_BASELINES_PATEGAN_H_

#include "baselines/medgan.h"

#include <memory>

#include "baselines/ckpt_util.h"
#include "baselines/recon_loss.h"
#include "ckpt/checkpoint.h"
#include "core/parallel.h"
#include "synth/generator.h"
#include "synth/kl_regularizer.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "obs/timer.h"

namespace daisy::baselines {

MedGanSynthesizer::MedGanSynthesizer(
    const MedGanOptions& options,
    const transform::TransformOptions& transform_opts)
    : opts_(options), topts_(transform_opts), rng_(options.seed) {
  topts_.form = transform::SampleForm::kVector;
  topts_.exclude_label = false;
}

Matrix MedGanSynthesizer::Decode(const Matrix& latent, bool training) {
  Matrix features = decoder_body_->Forward(latent, training);
  return decoder_heads_->Forward(features);
}

Status MedGanSynthesizer::Fit(const data::Table& train,
                              obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() > 1);
  fitted_ = true;

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::Fit(train, topts_, &rng_));
  const size_t d = transformer_->sample_dim();
  Rng init = rng_.Split();

  encoder_ = std::make_unique<nn::Sequential>();
  size_t in = d;
  for (size_t w : opts_.hidden) {
    encoder_->Emplace<nn::Linear>(in, w, &init);
    encoder_->Emplace<nn::Tanh>();
    in = w;
  }
  encoder_->Emplace<nn::Linear>(in, opts_.latent_dim, &init);

  decoder_body_ = std::make_unique<nn::Sequential>();
  in = opts_.latent_dim;
  for (auto it = opts_.hidden.rbegin(); it != opts_.hidden.rend(); ++it) {
    decoder_body_->Emplace<nn::Linear>(in, *it, &init);
    decoder_body_->Emplace<nn::Tanh>();
    in = *it;
  }
  decoder_heads_ = std::make_unique<synth::AttributeHeads>(
      in, transformer_->segments(), &init);

  latent_generator_ = std::make_unique<nn::Sequential>();
  latent_generator_->Emplace<nn::Linear>(opts_.latent_dim,
                                         opts_.latent_dim * 2, &init);
  latent_generator_->Emplace<nn::ReLU>();
  latent_generator_->Emplace<nn::Linear>(opts_.latent_dim * 2,
                                         opts_.latent_dim, &init);

  discriminator_ = std::make_unique<synth::MlpDiscriminator>(
      d, 0, opts_.hidden, /*simplified=*/false, &init);

  const Matrix real_all = transformer_->Transform(train);
  const size_t n = real_all.rows();
  Rng train_rng = rng_.Split();

  const size_t log_every = std::max<size_t>(1, opts_.log_every);
  const obs::DivergenceSentinel sentinel(opts_.sentinel);
  obs::WallTimer run_timer;

  // Both phases' parameter lists and optimizers are built up front so a
  // resumed run can restore either phase before entering the loops.
  // Adam construction only allocates zeroed moments — no rng draws — so
  // hoisting the phase-2 optimizers above phase 1 changes nothing.
  std::vector<nn::Parameter*> ae_params = encoder_->Params();
  for (auto* p : decoder_body_->Params()) ae_params.push_back(p);
  for (auto* p : decoder_heads_->Params()) ae_params.push_back(p);
  nn::Adam ae_opt(ae_params, opts_.lr);

  std::vector<nn::Parameter*> g_params = latent_generator_->Params();
  for (auto* p : decoder_body_->Params()) g_params.push_back(p);
  for (auto* p : decoder_heads_->Params()) g_params.push_back(p);
  nn::Adam g_opt(g_params, opts_.lr);
  nn::Adam d_opt(discriminator_->Params(), opts_.lr);

  std::vector<nn::Parameter*> gan_params = g_params;
  for (auto* p : discriminator_->Params()) gan_params.push_back(p);

  std::unique_ptr<ckpt::CheckpointStore> store;
  if (!opts_.checkpoint_dir.empty())
    store = std::make_unique<ckpt::CheckpointStore>(opts_.checkpoint_dir,
                                                    opts_.checkpoint_keep);

  // On a sentinel trip, restore the last healthy state of the failing
  // phase (mirroring GanTrainer) before surfacing the failure status.
  synth::StateDict ae_last_healthy = synth::GetState(ae_params);
  synth::StateDict last_healthy = synth::GetState(g_params);

  size_t start_ae_epoch = 0;
  size_t start_gan_iter = 0;
  bool skip_phase1 = false;
  if (opts_.resume && store != nullptr) {
    auto loaded = store->LoadLatest();
    if (loaded.ok()) {
      const ckpt::TrainCheckpoint& c = loaded.value();
      if (c.run != "medgan")
        return Status::InvalidArgument("checkpoint is for run '" + c.run +
                                       "', not 'medgan'");
      if (c.seed != opts_.seed || c.phase > 1 || !c.buffers.empty() ||
          c.extra.size() != 1)
        return Status::InvalidArgument(
            "medgan checkpoint does not match the configured run");
      if (c.phase == 0) {
        // Mid-pretraining: restore the autoencoder and its optimizer.
        if (c.total_iters != opts_.ae_epochs || c.iter > c.total_iters ||
            !ShapesMatch(ae_params, c.params) ||
            !ShapesMatch(ae_params, c.healthy_params) ||
            c.optimizer_state.size() != 1)
          return Status::InvalidArgument(
              "medgan pretrain checkpoint does not match this network");
        DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
            &ae_opt, c.optimizer_state[0], "medgan autoencoder"));
        DAISY_RETURN_IF_ERROR(train_rng.SetState(c.rng_state));
        synth::SetState(ae_params, c.params);
        ae_last_healthy = c.healthy_params;
        pretrain_loss_ = c.extra[0];
        start_ae_epoch = c.iter;
      } else {
        // Mid-adversarial-phase: pretraining is finished; its result
        // lives inside the decoder part of g_params.
        if (c.total_iters != opts_.gan_iterations || c.iter > c.total_iters ||
            !ShapesMatch(gan_params, c.params) ||
            !ShapesMatch(g_params, c.healthy_params) ||
            c.optimizer_state.size() != 2)
          return Status::InvalidArgument(
              "medgan adversarial checkpoint does not match this network");
        DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
            &g_opt, c.optimizer_state[0], "medgan generator"));
        DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
            &d_opt, c.optimizer_state[1], "medgan discriminator"));
        DAISY_RETURN_IF_ERROR(train_rng.SetState(c.rng_state));
        synth::SetState(gan_params, c.params);
        last_healthy = c.healthy_params;
        pretrain_loss_ = c.extra[0];
        skip_phase1 = true;
        start_gan_iter = c.iter;
      }
      if (sink != nullptr)
        DAISY_RETURN_IF_ERROR(sink->ResumeAt(c.telemetry_records));
    } else if (loaded.status().code() != Status::Code::kNotFound) {
      return loaded.status();
    }
  }

  size_t iters_this_run = 0;

  // ---- Phase 1: autoencoder pretraining --------------------------
  if (!skip_phase1) {
    const size_t batches = std::max<size_t>(1, n / opts_.batch_size);
    for (size_t epoch = start_ae_epoch; epoch < opts_.ae_epochs; ++epoch) {
      obs::WallTimer epoch_timer;
      double epoch_loss = 0.0;
      for (size_t b = 0; b < batches; ++b) {
        std::vector<size_t> rows(opts_.batch_size);
        for (auto& r : rows) r = train_rng.UniformInt(n);
        Matrix batch = real_all.GatherRows(rows);
        ae_opt.ZeroGrad();
        Matrix latent = encoder_->Forward(batch, true);
        Matrix recon = Decode(latent, true);
        Matrix grad_recon;
        epoch_loss += ReconstructionLoss(recon, batch,
                                         transformer_->segments(),
                                         &grad_recon);
        Matrix grad_features = decoder_heads_->Backward(grad_recon);
        Matrix grad_latent = decoder_body_->Backward(grad_features);
        encoder_->Backward(grad_latent);
        ae_opt.Step();
      }

      obs::MetricRecord rec;
      rec.run = "medgan.pretrain";
      rec.iter = epoch + 1;
      rec.g_loss = epoch_loss / static_cast<double>(batches);
      rec.g_grad_norm = nn::GlobalGradNorm(ae_params);
      rec.param_norm = nn::GlobalParamNorm(ae_params);
      rec.iter_ms = epoch_timer.ElapsedMs();
      rec.wall_ms = run_timer.ElapsedMs();
      rec.threads = par::NumThreads();
      rec.seed = opts_.seed;

      const Status health = sentinel.Check(rec);
      if (!health.ok()) {
        if (sink != nullptr) {
          sink->Log(rec);
          sink->Flush();
        }
        // Durable fallback: if even the in-memory baseline is poisoned,
        // prefer the newest on-disk pretrain checkpoint with a finite
        // one.
        if (store != nullptr && !AllFinite(ae_last_healthy)) {
          const std::vector<std::string> files = store->ListFiles();
          for (auto it = files.rbegin(); it != files.rend(); ++it) {
            auto fallback = ckpt::LoadCheckpoint(*it);
            if (!fallback.ok()) continue;
            const ckpt::TrainCheckpoint& fc = fallback.value();
            if (fc.phase != 0 || !ShapesMatch(ae_params, fc.healthy_params) ||
                !AllFinite(fc.healthy_params))
              continue;
            ae_last_healthy = fc.healthy_params;
            break;
          }
        }
        synth::SetState(ae_params, ae_last_healthy);
        return health;
      }
      pretrain_loss_ = rec.g_loss;
      ae_last_healthy = synth::GetState(ae_params);
      if (sink != nullptr &&
          ((epoch + 1) % log_every == 0 || epoch + 1 == opts_.ae_epochs)) {
        sink->Log(rec);
      }

      if (store != nullptr && opts_.checkpoint_every > 0 &&
          (epoch + 1) % opts_.checkpoint_every == 0) {
        obs::MetricRecord ckpt_rec = rec;
        ckpt_rec.run += ".ckpt";
        if (sink != nullptr) sink->Log(ckpt_rec);
        ckpt::TrainCheckpoint c;
        c.run = "medgan";
        c.phase = 0;
        c.iter = epoch + 1;
        c.total_iters = opts_.ae_epochs;
        c.seed = opts_.seed;
        c.telemetry_records = sink != nullptr ? sink->records_logged() : 0;
        c.rng_state = train_rng.GetState();
        c.params = synth::GetState(ae_params);
        c.optimizer_state = {OptimizerBlob(ae_opt)};
        c.healthy_params = ae_last_healthy;
        c.extra = {pretrain_loss_};
        const Status saved = store->Save(c);
        if (!saved.ok()) {
          if (sink != nullptr) sink->Flush();
          return saved;
        }
      }

      ++iters_this_run;
      if (opts_.max_iters_per_run > 0 &&
          iters_this_run >= opts_.max_iters_per_run &&
          (epoch + 1 < opts_.ae_epochs || opts_.gan_iterations > 0)) {
        paused_ = true;
        if (sink != nullptr) sink->Flush();
        return Status::OK();
      }
    }
  }

  // ---- Phase 2: adversarial training in latent space -------------
  // g_params covers everything Generate() uses (latent generator +
  // decoder); roll those back to the last healthy iteration on a trip.
  // The baseline is re-captured here (not at construction) so it holds
  // the pretrained decoder; a phase-1 resume already restored it.
  if (!skip_phase1) last_healthy = synth::GetState(g_params);

  for (size_t iter = start_gan_iter; iter < opts_.gan_iterations; ++iter) {
    obs::WallTimer iter_timer;
    double d_loss = 0.0, g_loss = 0.0, d_grad_norm = 0.0, g_grad_norm = 0.0;
    // Discriminator step.
    {
      std::vector<size_t> rows(opts_.batch_size);
      for (auto& r : rows) r = train_rng.UniformInt(n);
      Matrix real = real_all.GatherRows(rows);
      Matrix z = Matrix::Randn(opts_.batch_size, opts_.latent_dim,
                               &train_rng);
      Matrix fake = Decode(latent_generator_->Forward(z, true), true);

      discriminator_->ZeroGrad();
      {
        Matrix logits = discriminator_->Forward(real, Matrix(), true);
        Matrix grad;
        d_loss += nn::BceWithLogitsLoss(logits,
                                        Matrix(logits.rows(), 1, 1.0),
                                        &grad);
        discriminator_->Backward(grad);
      }
      {
        Matrix logits = discriminator_->Forward(fake, Matrix(), true);
        Matrix grad;
        d_loss += nn::BceWithLogitsLoss(logits,
                                        Matrix(logits.rows(), 1, 0.0),
                                        &grad);
        discriminator_->Backward(grad);
      }
      d_grad_norm = nn::GlobalGradNorm(discriminator_->Params());
      d_opt.Step();
    }
    // Generator (+ decoder fine-tuning) step.
    {
      Matrix z = Matrix::Randn(opts_.batch_size, opts_.latent_dim,
                               &train_rng);
      for (auto* p : g_params) p->ZeroGrad();
      discriminator_->ZeroGrad();
      Matrix latent = latent_generator_->Forward(z, true);
      Matrix fake = Decode(latent, true);
      Matrix logits = discriminator_->Forward(fake, Matrix(), true);
      Matrix grad_logits;
      g_loss = nn::BceWithLogitsLoss(logits, Matrix(logits.rows(), 1, 1.0),
                                     &grad_logits);
      Matrix grad_fake = discriminator_->Backward(grad_logits);
      if (opts_.kl_weight > 0.0) {
        synth::KlRegularizer kl(transformer_->segments());
        std::vector<size_t> ref_rows(opts_.batch_size);
        for (auto& r : ref_rows) r = train_rng.UniformInt(n);
        g_loss += kl.Compute(real_all.GatherRows(ref_rows), fake,
                             opts_.kl_weight, &grad_fake);
      }
      Matrix grad_features = decoder_heads_->Backward(grad_fake);
      Matrix grad_latent = decoder_body_->Backward(grad_features);
      latent_generator_->Backward(grad_latent);
      g_grad_norm = nn::GlobalGradNorm(g_params);
      g_opt.Step();
    }

    obs::MetricRecord rec;
    rec.run = "medgan";
    rec.iter = iter + 1;
    rec.d_loss = d_loss;
    rec.g_loss = g_loss;
    rec.d_grad_norm = d_grad_norm;
    rec.g_grad_norm = g_grad_norm;
    rec.param_norm = nn::GlobalParamNorm(g_params);
    rec.iter_ms = iter_timer.ElapsedMs();
    rec.wall_ms = run_timer.ElapsedMs();
    rec.threads = par::NumThreads();
    rec.seed = opts_.seed;

    const Status health = sentinel.Check(rec);
    if (!health.ok()) {
      if (sink != nullptr) {
        sink->Log(rec);
        sink->Flush();
      }
      // Durable fallback: if even the in-memory baseline is poisoned,
      // prefer the newest on-disk adversarial checkpoint with a finite
      // one.
      if (store != nullptr && !AllFinite(last_healthy)) {
        const std::vector<std::string> files = store->ListFiles();
        for (auto it = files.rbegin(); it != files.rend(); ++it) {
          auto fallback = ckpt::LoadCheckpoint(*it);
          if (!fallback.ok()) continue;
          const ckpt::TrainCheckpoint& fc = fallback.value();
          if (fc.phase != 1 || !ShapesMatch(g_params, fc.healthy_params) ||
              !AllFinite(fc.healthy_params))
            continue;
          last_healthy = fc.healthy_params;
          break;
        }
      }
      synth::SetState(g_params, last_healthy);
      return health;
    }
    last_healthy = synth::GetState(g_params);
    if (sink != nullptr &&
        ((iter + 1) % log_every == 0 || iter + 1 == opts_.gan_iterations)) {
      sink->Log(rec);
    }

    if (store != nullptr && opts_.checkpoint_every > 0 &&
        (iter + 1) % opts_.checkpoint_every == 0) {
      obs::MetricRecord ckpt_rec = rec;
      ckpt_rec.run += ".ckpt";
      if (sink != nullptr) sink->Log(ckpt_rec);
      ckpt::TrainCheckpoint c;
      c.run = "medgan";
      c.phase = 1;
      c.iter = iter + 1;
      c.total_iters = opts_.gan_iterations;
      c.seed = opts_.seed;
      c.telemetry_records = sink != nullptr ? sink->records_logged() : 0;
      c.rng_state = train_rng.GetState();
      c.params = synth::GetState(gan_params);
      c.optimizer_state = {OptimizerBlob(g_opt), OptimizerBlob(d_opt)};
      c.healthy_params = last_healthy;
      c.extra = {pretrain_loss_};
      const Status saved = store->Save(c);
      if (!saved.ok()) {
        if (sink != nullptr) sink->Flush();
        return saved;
      }
    }

    ++iters_this_run;
    if (opts_.max_iters_per_run > 0 &&
        iters_this_run >= opts_.max_iters_per_run &&
        iter + 1 < opts_.gan_iterations) {
      paused_ = true;
      break;
    }
  }
  if (sink != nullptr) sink->Flush();
  return Status::OK();
}

data::Table MedGanSynthesizer::Generate(size_t n, Rng* rng) {
  DAISY_CHECK(fitted_);
  constexpr size_t kGenBatch = 256;
  data::Table out(transformer_->schema());
  out.Reserve(n);
  size_t produced = 0;
  std::vector<double> record;
  while (produced < n) {
    const size_t m = std::min(kGenBatch, n - produced);
    Matrix z = Matrix::Randn(m, opts_.latent_dim, rng);
    Matrix samples = Decode(latent_generator_->Forward(z, false), false);
    data::Table decoded = transformer_->InverseTransform(samples);
    for (size_t i = 0; i < m; ++i) {
      record.assign(decoded.num_attributes(), 0.0);
      for (size_t j = 0; j < decoded.num_attributes(); ++j)
        record[j] = decoded.value(i, j);
      out.AppendRecord(record);
    }
    produced += m;
  }
  return out;
}

}  // namespace daisy::baselines

#include "baselines/pategan.h"

#include <cmath>
#include <memory>

#include "baselines/ckpt_util.h"
#include "ckpt/checkpoint.h"
#include "core/parallel.h"
#include "nn/loss.h"
#include "obs/timer.h"
#include "synth/generator.h"

namespace daisy::baselines {

PateGanSynthesizer::PateGanSynthesizer(
    const PateGanOptions& options,
    const transform::TransformOptions& transform_opts)
    : opts_(options), topts_(transform_opts), rng_(options.seed) {
  DAISY_CHECK(opts_.num_teachers >= 1);
  topts_.form = transform::SampleForm::kVector;
  topts_.exclude_label = false;
}

Status PateGanSynthesizer::Fit(const data::Table& train,
                               obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  DAISY_CHECK(train.num_records() >= opts_.num_teachers);
  fitted_ = true;

  transformer_ = std::make_unique<transform::RecordTransformer>(
      transform::RecordTransformer::Fit(train, topts_, &rng_));
  const Matrix real_all = transformer_->Transform(train);
  const size_t sample_dim = transformer_->sample_dim();

  Rng init = rng_.Split();
  generator_ = std::make_unique<synth::MlpGenerator>(
      opts_.noise_dim, 0, opts_.hidden, transformer_->segments(), &init);
  g_opt_ = std::make_unique<nn::Adam>(generator_->Params(), opts_.lr);

  student_ = std::make_unique<synth::MlpDiscriminator>(
      sample_dim, 0, opts_.hidden, false, &init);
  student_opt_ = std::make_unique<nn::Adam>(student_->Params(), opts_.lr);

  // Disjoint partition of the real records across teachers.
  Rng part_rng = rng_.Split();
  const auto perm = part_rng.Permutation(train.num_records());
  std::vector<std::vector<size_t>> partitions(opts_.num_teachers);
  for (size_t i = 0; i < perm.size(); ++i)
    partitions[i % opts_.num_teachers].push_back(perm[i]);

  teachers_.clear();
  teacher_opts_.clear();
  for (size_t t = 0; t < opts_.num_teachers; ++t) {
    teachers_.push_back(std::make_unique<synth::MlpDiscriminator>(
        sample_dim, 0, opts_.hidden, /*simplified=*/true, &init));
    teacher_opts_.push_back(
        std::make_unique<nn::Adam>(teachers_[t]->Params(), opts_.teacher_lr));
  }

  // ---- DP marginal anchor ------------------------------------------
  // PATE-GAN's generator receives gradient only through the student,
  // which never sees real data; at small scale the teachers saturate
  // to "fake" and the student's labels lose contrast, letting the
  // generator drift into collapse. We anchor it with ONE differentially
  // private query: per-column means (and variances for scalar
  // dimensions) of the transformed table, Laplace-noised with the
  // marginal_epsilon budget. The noised statistics are packed into two
  // pseudo-rows whose column means/variances equal the targets, so the
  // shared KlRegularizer can treat them as a "real" reference batch.
  if (opts_.marginal_epsilon > 0.0) {
    const double n = static_cast<double>(real_all.rows());
    // Each record contributes 1/n to every column mean; crude global
    // sensitivity bound for the full query vector.
    const double noise_b =
        2.0 * static_cast<double>(sample_dim) / (n * opts_.marginal_epsilon);
    Rng noise_rng = rng_.Split();
    Matrix mean = real_all.ColMean();
    Matrix var(1, sample_dim);
    for (size_t c = 0; c < sample_dim; ++c) {
      for (size_t r = 0; r < real_all.rows(); ++r) {
        const double d = real_all(r, c) - mean(0, c);
        var(0, c) += d * d;
      }
      var(0, c) /= n;
      mean(0, c) += noise_rng.Laplace(noise_b);
      var(0, c) = std::max(0.0, var(0, c) + noise_rng.Laplace(noise_b));
    }
    anchor_targets_ = Matrix(2, sample_dim);
    for (size_t c = 0; c < sample_dim; ++c) {
      const double sd = std::sqrt(var(0, c));
      anchor_targets_(0, c) = mean(0, c) + sd;
      anchor_targets_(1, c) = mean(0, c) - sd;
    }
    anchor_ = std::make_unique<synth::KlRegularizer>(
        transformer_->segments());
    epsilon_spent_ += opts_.marginal_epsilon;
  }

  Rng train_rng = rng_.Split();
  // One independent deterministic stream per teacher, derived from the
  // seed up front: with batches drawn from teacher t's own rng, the
  // teacher updates share no state at all and can run in parallel with
  // bit-identical results for any thread count.
  std::vector<Rng> teacher_rngs;
  teacher_rngs.reserve(opts_.num_teachers);
  for (size_t t = 0; t < opts_.num_teachers; ++t)
    teacher_rngs.push_back(rng_.Split());
  const double vote_noise_scale = 2.0 / std::max(opts_.lambda, 1e-12);
  const double half = static_cast<double>(opts_.num_teachers) / 2.0;

  const size_t log_every = std::max<size_t>(1, opts_.log_every);
  const obs::DivergenceSentinel sentinel(opts_.sentinel);
  obs::WallTimer run_timer;
  // Mirrors GanTrainer: restore the last healthy generator (params AND
  // batch-norm running stats) on a sentinel trip so Generate() never
  // samples from diverged weights.
  synth::StateDict last_healthy = synth::GetState(generator_->Params());
  synth::StateDict last_healthy_buffers =
      synth::GetBufferState(generator_->Buffers());

  // Everything that mutates inside the training loop, for checkpoints:
  // generator + student + all teachers, with their batch-norm buffers.
  std::vector<nn::Parameter*> all_params = generator_->Params();
  for (auto* p : student_->Params()) all_params.push_back(p);
  for (auto& t : teachers_)
    for (auto* p : t->Params()) all_params.push_back(p);
  std::vector<Matrix*> all_buffers = generator_->Buffers();
  for (auto* b : student_->Buffers()) all_buffers.push_back(b);
  for (auto& t : teachers_)
    for (auto* b : t->Buffers()) all_buffers.push_back(b);
  // The k+1 rng streams are concatenated into one word vector:
  // train_rng first, then the teachers in order.
  constexpr size_t kRngWords = 6;
  const auto pack_rngs = [&]() {
    std::vector<uint64_t> words = train_rng.GetState();
    for (auto& tr : teacher_rngs) {
      const std::vector<uint64_t> w = tr.GetState();
      words.insert(words.end(), w.begin(), w.end());
    }
    return words;
  };

  std::unique_ptr<ckpt::CheckpointStore> store;
  if (!opts_.checkpoint_dir.empty())
    store = std::make_unique<ckpt::CheckpointStore>(opts_.checkpoint_dir,
                                                    opts_.checkpoint_keep);

  size_t start_iter = 0;
  if (opts_.resume && store != nullptr) {
    auto loaded = store->LoadLatest();
    if (loaded.ok()) {
      const ckpt::TrainCheckpoint& c = loaded.value();
      if (c.run != "pategan")
        return Status::InvalidArgument("checkpoint is for run '" + c.run +
                                       "', not 'pategan'");
      if (c.phase != 0 || c.total_iters != opts_.iterations ||
          c.seed != opts_.seed || c.iter > c.total_iters)
        return Status::InvalidArgument(
            "pategan checkpoint does not match the configured run "
            "(iterations/seed/iteration counter)");
      if (!ShapesMatch(all_params, c.params) ||
          !BufferShapesMatch(all_buffers, c.buffers) ||
          !ShapesMatch(generator_->Params(), c.healthy_params) ||
          !BufferShapesMatch(generator_->Buffers(), c.healthy_buffers))
        return Status::InvalidArgument(
            "pategan checkpoint shapes do not match these networks");
      if (c.optimizer_state.size() != 2 + opts_.num_teachers ||
          c.extra.size() != 1 ||
          c.rng_state.size() != kRngWords * (1 + opts_.num_teachers))
        return Status::InvalidArgument("pategan checkpoint payload mismatch");
      DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
          g_opt_.get(), c.optimizer_state[0], "pategan generator"));
      DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
          student_opt_.get(), c.optimizer_state[1], "pategan student"));
      for (size_t t = 0; t < opts_.num_teachers; ++t)
        DAISY_RETURN_IF_ERROR(LoadOptimizerBlob(
            teacher_opts_[t].get(), c.optimizer_state[2 + t],
            "pategan teacher"));
      {
        auto first = c.rng_state.begin();
        DAISY_RETURN_IF_ERROR(train_rng.SetState(
            std::vector<uint64_t>(first, first + kRngWords)));
        for (size_t t = 0; t < opts_.num_teachers; ++t) {
          first += kRngWords;
          DAISY_RETURN_IF_ERROR(teacher_rngs[t].SetState(
              std::vector<uint64_t>(first, first + kRngWords)));
        }
      }
      synth::SetState(all_params, c.params);
      synth::SetBufferState(all_buffers, c.buffers);
      last_healthy = c.healthy_params;
      last_healthy_buffers = c.healthy_buffers;
      epsilon_spent_ = c.extra[0];
      start_iter = c.iter;
      if (sink != nullptr)
        DAISY_RETURN_IF_ERROR(sink->ResumeAt(c.telemetry_records));
    } else if (loaded.status().code() != Status::Code::kNotFound) {
      return loaded.status();
    }
  }

  size_t iters_this_run = 0;
  for (size_t iter = start_iter; iter < opts_.iterations; ++iter) {
    obs::WallTimer iter_timer;
    double student_loss = 0.0, g_loss = 0.0;
    double student_grad_norm = 0.0, g_grad_norm = 0.0;
    // ---- Teachers: real (from own partition) vs fake --------------
    // Batches are precomputed serially in teacher order (the
    // generator's batch norm updates running stats on every training
    // forward), then the updates fan out: each teacher owns its
    // network, optimizer, rng stream and partition, so there is no
    // cross-teacher reduction and parallel == serial bit-for-bit.
    std::vector<Matrix> teacher_real(opts_.num_teachers);
    std::vector<Matrix> teacher_fake(opts_.num_teachers);
    for (size_t t = 0; t < opts_.num_teachers; ++t) {
      const auto& pool = partitions[t];
      std::vector<size_t> rows(opts_.batch_size);
      for (auto& r : rows) r = pool[teacher_rngs[t].UniformInt(pool.size())];
      teacher_real[t] = real_all.GatherRows(rows);
      Matrix z = Matrix::Randn(opts_.batch_size, opts_.noise_dim,
                               &teacher_rngs[t]);
      teacher_fake[t] = generator_->Forward(z, Matrix(), true);
    }
    par::ParallelFor(0, opts_.num_teachers, 1, [&](size_t t0, size_t t1) {
      for (size_t t = t0; t < t1; ++t) {
        teachers_[t]->ZeroGrad();
        {
          Matrix logits =
              teachers_[t]->Forward(teacher_real[t], Matrix(), true);
          Matrix grad;
          nn::BceWithLogitsLoss(logits, Matrix(logits.rows(), 1, 1.0),
                                &grad);
          teachers_[t]->Backward(grad);
        }
        {
          Matrix logits =
              teachers_[t]->Forward(teacher_fake[t], Matrix(), true);
          Matrix grad;
          nn::BceWithLogitsLoss(logits, Matrix(logits.rows(), 1, 0.0),
                                &grad);
          teachers_[t]->Backward(grad);
        }
        teacher_opts_[t]->Step();
      }
    });

    // ---- Student: generated samples labeled by noisy votes --------
    for (size_t s = 0; s < opts_.student_steps; ++s) {
      Matrix z = Matrix::Randn(opts_.batch_size, opts_.noise_dim,
                               &train_rng);
      Matrix fake = generator_->Forward(z, Matrix(), true);
      Matrix labels(opts_.batch_size, 1);
      for (size_t i = 0; i < opts_.batch_size; ++i) {
        Matrix row(1, fake.cols());
        for (size_t c = 0; c < fake.cols(); ++c) row(0, c) = fake(i, c);
        double votes = 0.0;
        for (auto& teacher : teachers_) {
          const Matrix logit = teacher->Forward(row, Matrix(), false);
          votes += logit(0, 0) > 0.0 ? 1.0 : 0.0;
        }
        votes += train_rng.Laplace(vote_noise_scale);
        labels(i, 0) = votes > half ? 1.0 : 0.0;
        epsilon_spent_ += opts_.lambda;
      }
      student_->ZeroGrad();
      Matrix logits = student_->Forward(fake, Matrix(), true);
      Matrix grad;
      student_loss = nn::BceWithLogitsLoss(logits, labels, &grad);
      student_->Backward(grad);
      student_grad_norm = nn::GlobalGradNorm(student_->Params());
      student_opt_->Step();
    }

    // ---- Generator vs student -------------------------------------
    {
      Matrix z = Matrix::Randn(opts_.batch_size, opts_.noise_dim,
                               &train_rng);
      generator_->ZeroGrad();
      student_->ZeroGrad();
      Matrix fake = generator_->Forward(z, Matrix(), true);
      Matrix logits = student_->Forward(fake, Matrix(), true);
      Matrix grad_logits;
      g_loss = nn::BceWithLogitsLoss(logits, Matrix(logits.rows(), 1, 1.0),
                                     &grad_logits);
      Matrix grad_fake = student_->Backward(grad_logits);
      if (anchor_) {
        g_loss += anchor_->Compute(anchor_targets_, fake,
                                   opts_.marginal_weight, &grad_fake);
      }
      generator_->Backward(grad_fake);
      g_grad_norm = nn::GlobalGradNorm(generator_->Params());
      g_opt_->Step();
    }

    obs::MetricRecord rec;
    rec.run = "pategan";
    rec.iter = iter + 1;
    rec.d_loss = student_loss;
    rec.g_loss = g_loss;
    rec.d_grad_norm = student_grad_norm;
    rec.g_grad_norm = g_grad_norm;
    rec.param_norm = nn::GlobalParamNorm(generator_->Params());
    rec.iter_ms = iter_timer.ElapsedMs();
    rec.wall_ms = run_timer.ElapsedMs();
    rec.threads = par::NumThreads();
    rec.seed = opts_.seed;

    const Status health = sentinel.Check(rec);
    if (!health.ok()) {
      if (sink != nullptr) {
        sink->Log(rec);
        sink->Flush();
      }
      // Durable fallback: if even the in-memory baseline is poisoned,
      // prefer the newest on-disk checkpoint with a finite one.
      if (store != nullptr && (!AllFinite(last_healthy) ||
                               !AllFinite(last_healthy_buffers))) {
        const std::vector<std::string> files = store->ListFiles();
        for (auto it = files.rbegin(); it != files.rend(); ++it) {
          auto fallback = ckpt::LoadCheckpoint(*it);
          if (!fallback.ok()) continue;
          const ckpt::TrainCheckpoint& fc = fallback.value();
          if (!ShapesMatch(generator_->Params(), fc.healthy_params) ||
              !BufferShapesMatch(generator_->Buffers(),
                                 fc.healthy_buffers) ||
              !AllFinite(fc.healthy_params) ||
              !AllFinite(fc.healthy_buffers))
            continue;
          last_healthy = fc.healthy_params;
          last_healthy_buffers = fc.healthy_buffers;
          break;
        }
      }
      synth::SetState(generator_->Params(), last_healthy);
      synth::SetBufferState(generator_->Buffers(), last_healthy_buffers);
      return health;
    }
    last_healthy = synth::GetState(generator_->Params());
    last_healthy_buffers = synth::GetBufferState(generator_->Buffers());
    if (sink != nullptr &&
        ((iter + 1) % log_every == 0 || iter + 1 == opts_.iterations)) {
      sink->Log(rec);
    }

    if (store != nullptr && opts_.checkpoint_every > 0 &&
        (iter + 1) % opts_.checkpoint_every == 0) {
      obs::MetricRecord ckpt_rec = rec;
      ckpt_rec.run += ".ckpt";
      if (sink != nullptr) sink->Log(ckpt_rec);
      ckpt::TrainCheckpoint c;
      c.run = "pategan";
      c.iter = iter + 1;
      c.total_iters = opts_.iterations;
      c.seed = opts_.seed;
      c.telemetry_records = sink != nullptr ? sink->records_logged() : 0;
      c.rng_state = pack_rngs();
      c.params = synth::GetState(all_params);
      c.buffers = synth::GetBufferState(all_buffers);
      c.optimizer_state = {OptimizerBlob(*g_opt_),
                           OptimizerBlob(*student_opt_)};
      for (auto& topt : teacher_opts_)
        c.optimizer_state.push_back(OptimizerBlob(*topt));
      c.healthy_params = last_healthy;
      c.healthy_buffers = last_healthy_buffers;
      c.extra = {epsilon_spent_};
      const Status saved = store->Save(c);
      if (!saved.ok()) {
        if (sink != nullptr) sink->Flush();
        return saved;
      }
    }

    ++iters_this_run;
    if (opts_.max_iters_per_run > 0 &&
        iters_this_run >= opts_.max_iters_per_run &&
        iter + 1 < opts_.iterations) {
      paused_ = true;
      break;
    }
  }
  if (sink != nullptr) sink->Flush();
  return Status::OK();
}

data::Table PateGanSynthesizer::Generate(size_t n, Rng* rng) {
  DAISY_CHECK(fitted_);
  constexpr size_t kGenBatch = 256;
  data::Table out(transformer_->schema());
  out.Reserve(n);
  size_t produced = 0;
  std::vector<double> record;
  while (produced < n) {
    const size_t m = std::min(kGenBatch, n - produced);
    Matrix z = Matrix::Randn(m, opts_.noise_dim, rng);
    Matrix samples = generator_->Forward(z, Matrix(), false);
    data::Table decoded = transformer_->InverseTransform(samples);
    for (size_t i = 0; i < m; ++i) {
      record.assign(decoded.num_attributes(), 0.0);
      for (size_t j = 0; j < decoded.num_attributes(); ++j)
        record[j] = decoded.value(i, j);
      out.AppendRecord(record);
    }
    produced += m;
  }
  return out;
}

}  // namespace daisy::baselines

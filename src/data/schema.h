// Relational schema for a single table: named attributes of categorical
// or numerical type, plus an optional label attribute (paper §2.1
// represents T = [X; Y]).
#ifndef DAISY_DATA_SCHEMA_H_
#define DAISY_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace daisy::data {

enum class AttrType {
  kNumerical,    // continuous or discrete numeric
  kCategorical,  // nominal; values stored as category indices
};

/// One column's metadata.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kNumerical;
  /// Category names; defines the domain size for categorical columns.
  std::vector<std::string> categories;

  size_t domain_size() const { return categories.size(); }
  bool is_categorical() const { return type == AttrType::kCategorical; }

  static Attribute Numerical(std::string name) {
    Attribute a;
    a.name = std::move(name);
    a.type = AttrType::kNumerical;
    return a;
  }
  static Attribute Categorical(std::string name,
                               std::vector<std::string> categories) {
    Attribute a;
    a.name = std::move(name);
    a.type = AttrType::kCategorical;
    a.categories = std::move(categories);
    return a;
  }
};

/// Ordered list of attributes with an optional designated label column.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs, int label_index = -1)
      : attrs_(std::move(attrs)), label_index_(label_index) {
    DAISY_CHECK(label_index_ < static_cast<int>(attrs_.size()));
  }

  size_t num_attributes() const { return attrs_.size(); }
  const Attribute& attribute(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  bool has_label() const { return label_index_ >= 0; }
  size_t label_index() const {
    DAISY_CHECK(has_label());
    return static_cast<size_t>(label_index_);
  }
  const Attribute& label_attribute() const { return attrs_[label_index()]; }
  /// Number of distinct labels (categorical label's domain size).
  size_t num_labels() const { return label_attribute().domain_size(); }

  /// Index of an attribute by name, or -1.
  int FindAttribute(const std::string& name) const;

  /// Indices of all non-label attributes, in schema order.
  std::vector<size_t> FeatureIndices() const;

 private:
  std::vector<Attribute> attrs_;
  int label_index_ = -1;
};

}  // namespace daisy::data

#endif  // DAISY_DATA_SCHEMA_H_

// In-memory relational table. Cell storage is a dense double matrix:
// numerical attributes hold their raw values, categorical attributes
// hold category indices (0 .. domain-1). This uniform representation
// keeps the transformation layer and evaluation substrate simple.
#ifndef DAISY_DATA_TABLE_H_
#define DAISY_DATA_TABLE_H_

#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "data/schema.h"

namespace daisy::data {

/// A table T of n records over a fixed schema.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_records() const { return cells_.rows(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Raw cell value (numeric value, or category index).
  double value(size_t record, size_t attr) const {
    return cells_(record, attr);
  }
  void set_value(size_t record, size_t attr, double v) {
    cells_(record, attr) = v;
  }

  /// Category index of a categorical cell (validated & rounded).
  size_t category(size_t record, size_t attr) const;

  /// Rendered cell (category name, or formatted number).
  std::string CellToString(size_t record, size_t attr) const;

  /// Appends one record; `values` must match the schema width, with
  /// categorical entries holding in-domain category indices.
  void AppendRecord(const std::vector<double>& values);

  /// Pre-allocates storage then appends via AppendRecord.
  void Reserve(size_t n) { reserved_ = n; }

  /// Label (category index) of a record; schema must have a label.
  size_t label(size_t record) const;
  /// All labels.
  std::vector<size_t> Labels() const;
  /// Count of records per label value.
  std::vector<size_t> LabelCounts() const;

  /// Indices of records carrying the given label.
  std::vector<size_t> RecordsWithLabel(size_t label_value) const;

  /// Min / max of a numerical attribute over all records.
  double AttributeMin(size_t attr) const;
  double AttributeMax(size_t attr) const;
  /// All values of one attribute.
  std::vector<double> Column(size_t attr) const;

  /// New table with the given record indices (in order).
  Table Gather(const std::vector<size_t>& indices) const;
  /// First n records.
  Table Head(size_t n) const;

  /// Feature matrix (all non-label attributes, numeric view) and, for
  /// convenience, the parallel label vector. Used by the evaluation
  /// classifiers which consume raw numeric/ordinal features.
  Matrix FeatureMatrix() const;

  /// Direct access to the underlying cell matrix.
  const Matrix& cells() const { return cells_; }

 private:
  Schema schema_;
  Matrix cells_;
  size_t reserved_ = 0;
};

/// Deterministic shuffled split into train/valid/test with the given
/// ratios (paper uses 4:1:1).
struct TableSplit {
  Table train;
  Table valid;
  Table test;
};
TableSplit SplitTable(const Table& table, double train_ratio,
                      double valid_ratio, Rng* rng);

/// Merges two schemas attribute-by-attribute: names, types and (when
/// present) label position must match; each categorical domain becomes
/// a's categories followed by b's categories not in a. Two tables read
/// from independent CSVs (first-seen category order, possibly missing
/// rare categories entirely) can both be remapped onto the union and
/// then compared index-for-index — without this, a synthetic table
/// that dropped a rare label evaluates against the wrong indices or
/// crashes the classifiers on a one-label domain.
Result<Schema> UnionSchema(const Schema& a, const Schema& b);

/// Rewrites a table's categorical indices under `target`, matching
/// categories by name. Names/types must match attribute-for-attribute
/// and every category of the table's schema must exist in `target`
/// (UnionSchema guarantees both). Numerical cells pass through.
Result<Table> RemapToSchema(const Table& table, const Schema& target);

/// Schema holding only the given columns, in the given order. A label
/// column survives (with its index remapped) when it is among `cols`.
Schema ProjectSchema(const Schema& schema, const std::vector<size_t>& cols);

/// New table holding only the given columns, in the given order (the
/// column counterpart of Gather). Used by the relational layer to
/// strip key columns before the GAN sees a table.
Table ProjectColumns(const Table& table, const std::vector<size_t>& cols);

}  // namespace daisy::data

#endif  // DAISY_DATA_TABLE_H_

#include "data/schema_serial.h"

#include <utility>
#include <vector>

namespace daisy::data {

void SerializeSchema(Serializer* out, const Schema& schema) {
  out->WriteTag("schema");
  out->WriteU64(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const auto& attr = schema.attribute(j);
    out->WriteString(attr.name);
    out->WriteU64(attr.is_categorical() ? 1 : 0);
    out->WriteU64(attr.categories.size());
    for (const auto& cat : attr.categories) out->WriteString(cat);
  }
  out->WriteU64(schema.has_label() ? schema.label_index() + 1 : 0);
}

Schema DeserializeSchema(Deserializer* in) {
  in->ExpectTag("schema");
  const size_t n = in->ReadU64();
  if (!in->ok() || n > 100000) {
    if (in->ok()) in->Fail("implausible schema attribute count");
    return Schema();
  }
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (size_t j = 0; j < n && in->ok(); ++j) {
    const std::string name = in->ReadString();
    const bool categorical = in->ReadU64() == 1;
    const size_t num_cats = in->ReadU64();
    if (!in->ok() || num_cats > 1000000) {
      if (in->ok()) in->Fail("implausible category count");
      return Schema();
    }
    std::vector<std::string> cats(num_cats);
    for (auto& cat : cats) cat = in->ReadString();
    if (categorical) {
      attrs.push_back(Attribute::Categorical(name, std::move(cats)));
    } else {
      attrs.push_back(Attribute::Numerical(name));
    }
  }
  const uint64_t label_plus1 = in->ReadU64();
  if (!in->ok()) return Schema();
  if (label_plus1 > attrs.size()) {
    in->Fail("schema label index out of range");
    return Schema();
  }
  return Schema(std::move(attrs), static_cast<int>(label_plus1) - 1);
}

}  // namespace daisy::data

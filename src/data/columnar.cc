#include "data/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "core/serial.h"
#include "data/csv.h"

#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "daisy-dcol-v1 stores pages as host-endian doubles and is "
              "only supported on little-endian targets");
#endif

namespace daisy::data {

namespace {

constexpr char kMagic[16] = {'d', 'a', 'i', 's', 'y', '-', 'd', 'c',
                             'o', 'l', '-', 'v', '1', '\n', 0, 0};
constexpr char kEndMagic[8] = {'d', 'c', 'o', 'l', 'e', 'n', 'd', '\n'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderLen = 48;
constexpr size_t kPostscriptLen = 24;
constexpr char kFooterTag[] = "daisy-dcol-footer-v1";

// Same hash as ckpt::Fnv1a64; duplicated rather than importing it so
// the data layer does not depend on the checkpoint layer.
uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// CRC32 (IEEE 802.3, reflected 0xEDB88320), one table built on first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t crc = n;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      t[n] = crc;
    }
    return t;
  }();
  return table;
}

void PutU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void PutU64(unsigned char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// 48-byte header for the given shape (see columnar.h for the layout).
void EncodeHeader(uint32_t num_cols, uint64_t num_rows, uint64_t page_rows,
                  unsigned char out[kHeaderLen]) {
  std::memset(out, 0, kHeaderLen);
  std::memcpy(out, kMagic, sizeof(kMagic));
  PutU32(out + 16, kVersion);
  PutU32(out + 20, num_cols);
  PutU64(out + 24, num_rows);
  PutU64(out + 32, page_rows);
  PutU32(out + 40, 0);  // reserved
  PutU32(out + 44, Crc32(out, 44));
}

size_t PageBytes(size_t rows) { return rows * sizeof(double) + 8; }

// Bytes occupied by all row groups of an (num_rows, page_rows) table.
uint64_t DataBytes(uint64_t num_rows, uint64_t page_rows, uint32_t num_cols) {
  const uint64_t full = num_rows / page_rows;
  const uint64_t rem = num_rows % page_rows;
  uint64_t total = full * num_cols * PageBytes(page_rows);
  if (rem) total += num_cols * PageBytes(rem);
  return total;
}

std::string FooterPayload(const Schema& schema, uint64_t num_rows,
                          uint64_t page_rows,
                          const std::vector<double>& col_min,
                          const std::vector<double>& col_max) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteTag(kFooterTag);
  out.WriteU64(schema.num_attributes());
  out.WriteU64(num_rows);
  out.WriteU64(page_rows);
  out.WriteTag("schema");
  for (const Attribute& a : schema.attributes()) {
    out.WriteString(a.name);
    out.WriteU64(a.is_categorical() ? 1 : 0);
    if (a.is_categorical()) {
      out.WriteU64(a.categories.size());
      for (const std::string& c : a.categories) out.WriteString(c);
    }
  }
  out.WriteU64(schema.has_label() ? 1 : 0);
  out.WriteU64(schema.has_label() ? schema.label_index() : 0);
  out.WriteTag("stats");
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    out.WriteDouble(col_min[j]);
    out.WriteDouble(col_max[j]);
  }
  out.WriteTag("end");
  return os.str();
}

struct ParsedFooter {
  Schema schema;
  uint64_t num_rows = 0;
  uint64_t page_rows = 0;
  std::vector<double> col_min, col_max;
};

Result<ParsedFooter> ParseFooter(const std::string& payload) {
  std::istringstream is(payload);
  Deserializer in(&is);
  ParsedFooter f;
  in.ExpectTag(kFooterTag);
  const uint64_t num_cols = in.ReadU64();
  f.num_rows = in.ReadU64();
  f.page_rows = in.ReadU64();
  if (!in.ok())
    return Status::InvalidArgument("dcol footer: " + in.error());
  if (num_cols == 0 || num_cols > (1u << 20))
    return Status::InvalidArgument("dcol footer: implausible column count");
  in.ExpectTag("schema");
  std::vector<Attribute> attrs;
  attrs.reserve(num_cols);
  for (uint64_t j = 0; j < num_cols && in.ok(); ++j) {
    const std::string name = in.ReadString();
    const uint64_t categorical = in.ReadU64();
    if (categorical > 1) {
      in.Fail("bad attribute type");
      break;
    }
    if (categorical) {
      const uint64_t n = in.ReadU64();
      if (!in.ok() || n > (1u << 24)) {
        in.Fail("implausible category count");
        break;
      }
      std::vector<std::string> cats(n);
      for (uint64_t c = 0; c < n && in.ok(); ++c) cats[c] = in.ReadString();
      attrs.push_back(Attribute::Categorical(name, std::move(cats)));
    } else {
      attrs.push_back(Attribute::Numerical(name));
    }
  }
  const uint64_t has_label = in.ReadU64();
  const uint64_t label_index = in.ReadU64();
  in.ExpectTag("stats");
  f.col_min.resize(num_cols);
  f.col_max.resize(num_cols);
  for (uint64_t j = 0; j < num_cols && in.ok(); ++j) {
    f.col_min[j] = in.ReadDouble();
    f.col_max[j] = in.ReadDouble();
  }
  in.ExpectTag("end");
  if (!in.ok())
    return Status::InvalidArgument("dcol footer: " + in.error());
  if (has_label > 1 || (has_label && label_index >= num_cols))
    return Status::InvalidArgument("dcol footer: bad label index");
  if (has_label && !attrs[label_index].is_categorical())
    return Status::InvalidArgument("dcol footer: label must be categorical");
  f.schema = Schema(std::move(attrs),
                    has_label ? static_cast<int>(label_index) : -1);
  return f;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// ColumnarWriter

ColumnarWriter::ColumnarWriter(std::string path, Schema schema,
                               size_t page_rows)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      schema_(std::move(schema)),
      page_rows_(std::max<size_t>(1, page_rows)) {
  const size_t cols = schema_.num_attributes();
  group_.resize(cols);
  for (auto& col : group_) col.resize(page_rows_);
  col_min_.assign(cols, 0.0);
  col_max_.assign(cols, 0.0);
}

Result<std::unique_ptr<ColumnarWriter>> ColumnarWriter::Create(
    const std::string& path, const Schema& schema, size_t page_rows) {
  if (schema.num_attributes() == 0)
    return Status::InvalidArgument("dcol: schema has no attributes");
  std::unique_ptr<ColumnarWriter> w(
      new ColumnarWriter(path, schema, page_rows));
  w->file_ = std::fopen(w->tmp_path_.c_str(), "wb");
  if (w->file_ == nullptr)
    return Status::IOError("cannot create dcol temp file '" + w->tmp_path_ +
                           "'");
  // Placeholder header; Finish rewrites it with the final row count.
  unsigned char header[kHeaderLen];
  EncodeHeader(static_cast<uint32_t>(schema.num_attributes()), 0,
               w->page_rows_, header);
  if (std::fwrite(header, 1, kHeaderLen, w->file_) != kHeaderLen) {
    std::fclose(w->file_);
    w->file_ = nullptr;
    std::remove(w->tmp_path_.c_str());
    return Status::IOError("failed writing dcol header to '" + w->tmp_path_ +
                           "'");
  }
  return w;
}

ColumnarWriter::~ColumnarWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status ColumnarWriter::Append(const std::vector<double>& values) {
  if (file_ == nullptr || finished_)
    return Status::FailedPrecondition("dcol writer is not open");
  if (values.size() != schema_.num_attributes())
    return Status::InvalidArgument("dcol append: record width mismatch");
  for (size_t j = 0; j < values.size(); ++j) {
    const Attribute& a = schema_.attribute(j);
    if (a.is_categorical()) {
      const long long idx = std::llround(values[j]);
      if (idx < 0 || idx >= static_cast<long long>(a.domain_size()))
        return Status::InvalidArgument("dcol append: category index out of "
                                       "domain in column '" +
                                       a.name + "'");
    }
    // Same accumulation as Table::AttributeMin/Max: seed from row 0,
    // then fold with std::min/max in ascending row order.
    if (rows_written_ == 0) {
      col_min_[j] = values[j];
      col_max_[j] = values[j];
    } else {
      col_min_[j] = std::min(col_min_[j], values[j]);
      col_max_[j] = std::max(col_max_[j], values[j]);
    }
  }
  for (size_t j = 0; j < values.size(); ++j) group_[j][buffered_] = values[j];
  ++buffered_;
  ++rows_written_;
  if (buffered_ == page_rows_) return FlushGroup();
  return Status::OK();
}

Status ColumnarWriter::FlushGroup() {
  if (buffered_ == 0) return Status::OK();
  std::vector<unsigned char> page(PageBytes(buffered_));
  for (size_t j = 0; j < group_.size(); ++j) {
    const size_t payload = buffered_ * sizeof(double);
    std::memcpy(page.data(), group_[j].data(), payload);
    PutU32(page.data() + payload, Crc32(page.data(), payload));
    PutU32(page.data() + payload + 4, 0);  // alignment pad
    if (std::fwrite(page.data(), 1, page.size(), file_) != page.size())
      return Status::IOError("failed writing dcol page to '" + tmp_path_ +
                             "'");
  }
  buffered_ = 0;
  return Status::OK();
}

Status ColumnarWriter::Finish() {
  if (file_ == nullptr || finished_)
    return Status::FailedPrecondition("dcol writer is not open");
  Status st = FlushGroup();
  if (st.ok()) {
    const std::string footer =
        FooterPayload(schema_, rows_written_, page_rows_, col_min_, col_max_);
    unsigned char post[kPostscriptLen];
    PutU64(post, footer.size());
    PutU64(post + 8, Fnv1a64(footer.data(), footer.size()));
    std::memcpy(post + 16, kEndMagic, sizeof(kEndMagic));
    unsigned char header[kHeaderLen];
    EncodeHeader(static_cast<uint32_t>(schema_.num_attributes()),
                 rows_written_, page_rows_, header);
    const bool wrote =
        std::fwrite(footer.data(), 1, footer.size(), file_) == footer.size() &&
        std::fwrite(post, 1, kPostscriptLen, file_) == kPostscriptLen &&
        std::fflush(file_) == 0 && std::fseek(file_, 0, SEEK_SET) == 0 &&
        std::fwrite(header, 1, kHeaderLen, file_) == kHeaderLen &&
        std::fflush(file_) == 0;
    // fsync before rename, as in ckpt::SaveCheckpoint: otherwise the
    // rename can hit disk before the data and a power cut leaves a
    // valid-looking torn file.
    const bool synced = wrote && fsync(fileno(file_)) == 0;
    if (!wrote || !synced)
      st = Status::IOError("failed writing dcol file '" + tmp_path_ + "'");
  }
  std::fclose(file_);
  file_ = nullptr;
  if (!st.ok()) {
    std::remove(tmp_path_.c_str());
    return st;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IOError("failed renaming dcol into '" + path_ + "'");
  }
  finished_ = true;
  return Status::OK();
}

Status WriteColumnar(const Table& table, const std::string& path,
                     size_t page_rows) {
  auto writer = ColumnarWriter::Create(path, table.schema(), page_rows);
  if (!writer.ok()) return writer.status();
  std::vector<double> values(table.num_attributes());
  for (size_t i = 0; i < table.num_records(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) values[j] = table.value(i, j);
    DAISY_RETURN_IF_ERROR(writer.value()->Append(values));
  }
  return writer.value()->Finish();
}

// ---------------------------------------------------------------------------
// CSV -> dcol conversion (three bounded-memory passes)

Status ConvertCsvToColumnar(const std::string& csv_path,
                            const std::string& dcol_path,
                            const std::string& label_column,
                            size_t page_rows) {
  // Pass 1: per-column "is numeric" (a column is numeric iff every
  // value parses), matching ReadCsv's inference exactly.
  CsvStreamReader reader;
  DAISY_RETURN_IF_ERROR(reader.Open(csv_path));
  const std::vector<std::string> header = reader.header();
  const size_t m = header.size();
  std::vector<bool> numeric(m, true);
  {
    std::vector<std::string> fields;
    bool got = false;
    for (;;) {
      DAISY_RETURN_IF_ERROR(reader.Next(&fields, &got));
      if (!got) break;
      for (size_t j = 0; j < m; ++j) {
        double tmp;
        if (numeric[j] && !ParseCsvNumber(fields[j], &tmp)) numeric[j] = false;
      }
    }
  }

  int label_index = -1;
  if (!label_column.empty()) {
    for (size_t j = 0; j < m; ++j)
      if (header[j] == label_column) label_index = static_cast<int>(j);
    if (label_index < 0)
      return Status::NotFound("label column not in csv: " + label_column);
  }

  // Pass 2: categorical domains in first-seen order (the label column
  // is categorical even when numeric, as in ReadCsv).
  const auto is_categorical = [&](size_t j) {
    return !numeric[j] || static_cast<int>(j) == label_index;
  };
  std::vector<std::map<std::string, size_t>> cat_index(m);
  std::vector<std::vector<std::string>> cats(m);
  bool any_categorical = false;
  for (size_t j = 0; j < m; ++j) any_categorical |= is_categorical(j);
  if (any_categorical) {
    DAISY_RETURN_IF_ERROR(reader.Open(csv_path));
    std::vector<std::string> fields;
    bool got = false;
    for (;;) {
      DAISY_RETURN_IF_ERROR(reader.Next(&fields, &got));
      if (!got) break;
      for (size_t j = 0; j < m; ++j) {
        if (!is_categorical(j)) continue;
        if (cat_index[j].emplace(fields[j], cats[j].size()).second)
          cats[j].push_back(fields[j]);
      }
    }
  }

  std::vector<Attribute> attrs(m);
  for (size_t j = 0; j < m; ++j) {
    if (is_categorical(j))
      attrs[j] = Attribute::Categorical(header[j], cats[j]);
    else
      attrs[j] = Attribute::Numerical(header[j]);
  }
  const Schema schema(std::move(attrs), label_index);

  // Pass 3: stream cell values into the writer.
  auto writer = ColumnarWriter::Create(dcol_path, schema, page_rows);
  if (!writer.ok()) return writer.status();
  DAISY_RETURN_IF_ERROR(reader.Open(csv_path));
  std::vector<std::string> fields;
  std::vector<double> values(m);
  bool got = false;
  for (;;) {
    DAISY_RETURN_IF_ERROR(reader.Next(&fields, &got));
    if (!got) break;
    for (size_t j = 0; j < m; ++j) {
      if (is_categorical(j)) {
        values[j] = static_cast<double>(cat_index[j][fields[j]]);
      } else {
        double v = 0.0;
        ParseCsvNumber(fields[j], &v);
        values[j] = v;
      }
    }
    DAISY_RETURN_IF_ERROR(writer.value()->Append(values));
  }
  return writer.value()->Finish();
}

// ---------------------------------------------------------------------------
// PagedTable

Result<std::unique_ptr<PagedTable>> PagedTable::Open(const std::string& path,
                                                     const Options& options) {
  std::unique_ptr<PagedTable> t(new PagedTable());
  t->path_ = path;
  t->opts_ = options;
  t->opts_.page_budget = std::max<size_t>(1, t->opts_.page_budget);

  t->fd_ = ::open(path.c_str(), O_RDONLY);
  if (t->fd_ < 0) return Status::NotFound("cannot open dcol file '" + path + "'");
  struct stat sb;
  if (::fstat(t->fd_, &sb) != 0)
    return Status::IOError("cannot stat dcol file '" + path + "'");
  t->file_size_ = static_cast<uint64_t>(sb.st_size);

  if (t->file_size_ < kHeaderLen + kPostscriptLen)
    return Status::InvalidArgument("dcol file too short (truncated?): " +
                                   path);
  if (options.use_mmap) {
    void* map = ::mmap(nullptr, t->file_size_, PROT_READ, MAP_PRIVATE,
                       t->fd_, 0);
    // mmap failure is not fatal: fall back to pread.
    if (map != MAP_FAILED)
      t->map_ = static_cast<const unsigned char*>(map);
  }

  unsigned char header[kHeaderLen];
  DAISY_RETURN_IF_ERROR(t->ReadBytes(0, kHeaderLen, header));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
    return Status::InvalidArgument("not a dcol file (bad magic): " + path);
  if (GetU32(header + 44) != Crc32(header, 44))
    return Status::InvalidArgument("dcol header checksum mismatch: " + path);
  if (GetU32(header + 16) != kVersion)
    return Status::InvalidArgument("unsupported dcol version in " + path);
  t->num_cols_ = GetU32(header + 20);
  t->num_rows_ = GetU64(header + 24);
  t->page_rows_ = static_cast<size_t>(GetU64(header + 32));
  if (t->num_cols_ == 0 || t->page_rows_ == 0)
    return Status::InvalidArgument("dcol header has empty shape: " + path);
  t->num_groups_ = (t->num_rows_ + t->page_rows_ - 1) / t->page_rows_;

  const uint64_t data_bytes =
      DataBytes(t->num_rows_, t->page_rows_, t->num_cols_);

  unsigned char post[kPostscriptLen];
  DAISY_RETURN_IF_ERROR(t->ReadBytes(t->file_size_ - kPostscriptLen,
                                     kPostscriptLen, post));
  if (std::memcmp(post + 16, kEndMagic, sizeof(kEndMagic)) != 0)
    return Status::InvalidArgument("dcol end marker missing (truncated?): " +
                                   path);
  const uint64_t footer_len = GetU64(post);
  const uint64_t footer_fnv = GetU64(post + 8);
  // Exact size accounting: any truncation or extension of the page
  // area shifts this equation even before page CRCs are consulted.
  if (t->file_size_ !=
      kHeaderLen + data_bytes + footer_len + kPostscriptLen)
    return Status::InvalidArgument("dcol size mismatch (corrupt): " + path);

  std::string footer(footer_len, '\0');
  DAISY_RETURN_IF_ERROR(
      t->ReadBytes(kHeaderLen + data_bytes, footer_len, footer.data()));
  if (Fnv1a64(footer.data(), footer.size()) != footer_fnv)
    return Status::InvalidArgument("dcol footer checksum mismatch: " + path);
  auto parsed = ParseFooter(footer);
  if (!parsed.ok()) return parsed.status();
  ParsedFooter& f = parsed.value();
  if (f.num_rows != t->num_rows_ || f.page_rows != t->page_rows_ ||
      f.schema.num_attributes() != t->num_cols_)
    return Status::InvalidArgument("dcol footer disagrees with header: " +
                                   path);
  t->schema_ = std::move(f.schema);
  t->col_min_ = std::move(f.col_min);
  t->col_max_ = std::move(f.col_max);

  if (options.verify) DAISY_RETURN_IF_ERROR(t->VerifyAllPages());
  return t;
}

PagedTable::~PagedTable() {
  if (map_ != nullptr)
    ::munmap(const_cast<unsigned char*>(map_), file_size_);
  if (fd_ >= 0) ::close(fd_);
}

size_t PagedTable::GroupRows(size_t group) const {
  DAISY_CHECK(group < num_groups_);
  const size_t rem = num_rows_ % page_rows_;
  return (group + 1 == num_groups_ && rem != 0) ? rem : page_rows_;
}

uint64_t PagedTable::PageOffset(size_t group, size_t col) const {
  // All groups before `group` are full.
  return kHeaderLen +
         static_cast<uint64_t>(group) * num_cols_ * PageBytes(page_rows_) +
         static_cast<uint64_t>(col) * PageBytes(GroupRows(group));
}

Status PagedTable::ReadBytes(uint64_t offset, size_t len, void* out) const {
  if (len == 0) return Status::OK();
  if (offset + len > file_size_)
    return Status::InvalidArgument("dcol read past end of file: " + path_);
  if (map_ != nullptr) {
    std::memcpy(out, map_ + offset, len);
    return Status::OK();
  }
  char* dst = static_cast<char*>(out);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, dst + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n <= 0) return Status::IOError("dcol pread failed: " + path_);
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PagedTable::LoadPage(size_t group, size_t col,
                            std::vector<double>* out) const {
  const size_t rows = GroupRows(group);
  const size_t payload = rows * sizeof(double);
  std::vector<unsigned char> buf(PageBytes(rows));
  DAISY_RETURN_IF_ERROR(ReadBytes(PageOffset(group, col), buf.size(),
                                  buf.data()));
  if (GetU32(buf.data() + payload) != Crc32(buf.data(), payload))
    return Status::InvalidArgument(
        "dcol page checksum mismatch (column " + std::to_string(col) +
        ", page " + std::to_string(group) + "): " + path_);
  // The alignment pad is written as zero; anything else is corruption
  // (it is the one page region the CRC does not cover).
  if (GetU32(buf.data() + payload + 4) != 0)
    return Status::InvalidArgument(
        "dcol page pad corrupted (column " + std::to_string(col) +
        ", page " + std::to_string(group) + "): " + path_);
  out->resize(rows);
  std::memcpy(out->data(), buf.data(), payload);
  return Status::OK();
}

Result<const std::vector<double>*> PagedTable::FaultPage(size_t group,
                                                         size_t col) const {
  const uint64_t key = static_cast<uint64_t>(group) * num_cols_ + col;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return static_cast<const std::vector<double>*>(&it->second->values);
  }
  ++stats_.misses;
  std::vector<double> values;
  DAISY_RETURN_IF_ERROR(LoadPage(group, col, &values));
  while (lru_.size() >= opts_.page_budget) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(CacheEntry{key, std::move(values)});
  cache_[key] = lru_.begin();
  return static_cast<const std::vector<double>*>(&lru_.front().values);
}

Result<double> PagedTable::ValueAt(size_t record, size_t attr) const {
  if (record >= num_rows_ || attr >= num_cols_)
    return Status::InvalidArgument("dcol cell index out of range");
  auto page = FaultPage(record / page_rows_, attr);
  if (!page.ok()) return page.status();
  return (*page.value())[record % page_rows_];
}

Status PagedTable::GatherColumn(size_t attr, const std::vector<size_t>& rows,
                                double* out) const {
  if (attr >= num_cols_)
    return Status::InvalidArgument("dcol column index out of range");
  // Bucket accesses by page so each page is faulted at most once per
  // call — correct and cheap even with page_budget == 1.
  std::map<size_t, std::vector<size_t>> by_group;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= num_rows_)
      return Status::InvalidArgument("dcol record index out of range");
    by_group[rows[i] / page_rows_].push_back(i);
  }
  for (const auto& [group, idxs] : by_group) {
    auto page = FaultPage(group, attr);
    if (!page.ok()) return page.status();
    const std::vector<double>& values = *page.value();
    for (size_t i : idxs) out[i] = values[rows[i] - group * page_rows_];
  }
  return Status::OK();
}

Result<Matrix> PagedTable::GatherRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), num_cols_);
  std::map<size_t, std::vector<size_t>> by_group;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= num_rows_)
      return Status::InvalidArgument("dcol record index out of range");
    by_group[rows[i] / page_rows_].push_back(i);
  }
  for (size_t col = 0; col < num_cols_; ++col) {
    for (const auto& [group, idxs] : by_group) {
      auto page = FaultPage(group, col);
      if (!page.ok()) return page.status();
      const std::vector<double>& values = *page.value();
      for (size_t i : idxs)
        out(i, col) = values[rows[i] - group * page_rows_];
    }
  }
  return out;
}

Status PagedTable::ScanColumn(size_t attr, size_t begin, size_t end,
                              double* out) const {
  if (attr >= num_cols_ || begin > end || end > num_rows_)
    return Status::InvalidArgument("dcol scan range out of range");
  std::vector<double> page;
  for (size_t group = begin / page_rows_; begin < end; ++group) {
    DAISY_RETURN_IF_ERROR(LoadPage(group, attr, &page));
    const size_t group_begin = group * page_rows_;
    const size_t take = std::min(end, group_begin + GroupRows(group)) - begin;
    std::memcpy(out, page.data() + (begin - group_begin),
                take * sizeof(double));
    out += take;
    begin += take;
  }
  return Status::OK();
}

Result<std::vector<size_t>> PagedTable::ReadLabels() const {
  if (!schema_.has_label())
    return Status::FailedPrecondition("dcol table has no label column");
  const size_t label_col = schema_.label_index();
  const size_t domain = schema_.num_labels();
  std::vector<size_t> labels(num_rows_);
  std::vector<double> window;
  constexpr size_t kWindow = 1 << 16;
  for (size_t begin = 0; begin < num_rows_; begin += kWindow) {
    const size_t end = std::min(num_rows_, begin + kWindow);
    window.resize(end - begin);
    DAISY_RETURN_IF_ERROR(ScanColumn(label_col, begin, end, window.data()));
    for (size_t i = 0; i < window.size(); ++i) {
      const long long idx = std::llround(window[i]);
      if (idx < 0 || idx >= static_cast<long long>(domain))
        return Status::InvalidArgument("dcol label out of domain: " + path_);
      labels[begin + i] = static_cast<size_t>(idx);
    }
  }
  return labels;
}

Result<Table> PagedTable::ToTable() const {
  Table table(schema_);
  table.Reserve(num_rows_);
  std::vector<std::vector<double>> pages(num_cols_);
  std::vector<double> values(num_cols_);
  for (size_t group = 0; group < num_groups_; ++group) {
    for (size_t col = 0; col < num_cols_; ++col)
      DAISY_RETURN_IF_ERROR(LoadPage(group, col, &pages[col]));
    const size_t rows = GroupRows(group);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t col = 0; col < num_cols_; ++col) values[col] = pages[col][r];
      table.AppendRecord(values);
    }
  }
  return table;
}

Status PagedTable::VerifyAllPages() const {
  std::vector<double> page;
  for (size_t group = 0; group < num_groups_; ++group)
    for (size_t col = 0; col < num_cols_; ++col)
      DAISY_RETURN_IF_ERROR(LoadPage(group, col, &page));
  return Status::OK();
}

Status ProjectColumnar(const PagedTable& in, const std::vector<size_t>& cols,
                       const std::string& out_path) {
  for (size_t c : cols)
    if (c >= in.num_attributes())
      return Status::InvalidArgument(
          "ProjectColumnar: column index out of range");
  const Schema out_schema = ProjectSchema(in.schema(), cols);
  auto writer = ColumnarWriter::Create(out_path, out_schema, in.page_rows());
  if (!writer.ok()) return writer.status();

  const size_t window = std::max<size_t>(1, in.page_rows());
  std::vector<std::vector<double>> buffers(cols.size());
  std::vector<double> record(cols.size());
  for (size_t begin = 0; begin < in.num_records(); begin += window) {
    const size_t end = std::min(in.num_records(), begin + window);
    for (size_t k = 0; k < cols.size(); ++k) {
      buffers[k].resize(end - begin);
      DAISY_RETURN_IF_ERROR(
          in.ScanColumn(cols[k], begin, end, buffers[k].data()));
    }
    for (size_t i = 0; i < end - begin; ++i) {
      for (size_t k = 0; k < cols.size(); ++k) record[k] = buffers[k][i];
      DAISY_RETURN_IF_ERROR(writer.value()->Append(record));
    }
  }
  return writer.value()->Finish();
}

}  // namespace daisy::data

// Schema serialization over the core/serial tagged-text stream, shared
// by the single-table model persistence (synth/persistence.cc) and the
// relational multi-model bundle (relational/bundle.cc) so both formats
// agree byte-for-byte on how a data::Schema is spelled.
#ifndef DAISY_DATA_SCHEMA_SERIAL_H_
#define DAISY_DATA_SCHEMA_SERIAL_H_

#include "core/serial.h"
#include "data/schema.h"

namespace daisy::data {

/// Writes `schema` under a "schema" tag: attribute count, then per
/// attribute its name, type flag and category list, then the label
/// index (stored +1 so 0 means "no label").
void SerializeSchema(Serializer* out, const Schema& schema);

/// Reads a schema written by SerializeSchema. On malformed input the
/// deserializer's error latches and an empty Schema is returned;
/// callers check in->ok() once at the end of loading.
Schema DeserializeSchema(Deserializer* in);

}  // namespace daisy::data

#endif  // DAISY_DATA_SCHEMA_SERIAL_H_

#include "data/schema_json.h"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

namespace daisy::data {

namespace {

// ---- Minimal JSON value model + recursive-descent parser ----------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  // Insertion-ordered object members (duplicate keys rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    DAISY_RETURN_IF_ERROR(ParseValue(&v));
    SkipSpace();
    if (pos_ != text_.size())
      return Fail("trailing characters after the JSON document");
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("schema json at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    DAISY_CHECK(Consume('{'));
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Fail("expected a quoted object key");
      std::string key;
      DAISY_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      DAISY_RETURN_IF_ERROR(ParseValue(&value));
      for (const auto& [k, v] : out->members)
        if (k == key) return Fail("duplicate object key '" + key + "'");
      out->members.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    DAISY_CHECK(Consume('['));
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      DAISY_RETURN_IF_ERROR(ParseValue(&value));
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    DAISY_CHECK(pos_ < text_.size() && text_[pos_] == '"');
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          default:
            return Fail(std::string("unsupported string escape '\\") + e +
                        "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    auto matches = [&](const char* kw) {
      const size_t len = std::string(kw).size();
      return text_.compare(pos_, len, kw) == 0;
    };
    if (matches("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (matches("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (matches("null")) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Fail("unrecognized token");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) return Fail("unrecognized token");
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return Fail("malformed number '" + token + "'");
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- Spec extraction ----------------------------------------------

Status SpecError(const std::string& what) {
  return Status::InvalidArgument("relational spec: " + what);
}

Result<std::string> RequiredString(const JsonValue& obj,
                                   const std::string& key,
                                   const std::string& where) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return SpecError(where + " is missing \"" + key + "\"");
  if (v->kind != JsonValue::Kind::kString || v->str.empty())
    return SpecError(where + " \"" + key + "\" must be a non-empty string");
  return v->str;
}

Status CheckKnownKeys(const JsonValue& obj,
                      const std::vector<std::string>& known,
                      const std::string& where) {
  for (const auto& [k, v] : obj.members) {
    bool ok = false;
    for (const auto& known_key : known) ok = ok || k == known_key;
    if (!ok) return SpecError(where + " has unknown key \"" + k + "\"");
  }
  return Status::OK();
}

}  // namespace

Result<RelationalSpec> ParseRelationalSpecJson(const std::string& json) {
  JsonParser parser(json);
  auto parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject)
    return SpecError("top level must be an object");
  DAISY_RETURN_IF_ERROR(CheckKnownKeys(root, {"tables"}, "top level"));
  const JsonValue* tables = root.Find("tables");
  if (tables == nullptr || tables->kind != JsonValue::Kind::kArray ||
      tables->items.empty())
    return SpecError("\"tables\" must be a non-empty array");

  RelationalSpec spec;
  for (size_t i = 0; i < tables->items.size(); ++i) {
    const JsonValue& t = tables->items[i];
    const std::string where = "table entry " + std::to_string(i);
    if (t.kind != JsonValue::Kind::kObject)
      return SpecError(where + " must be an object");
    DAISY_RETURN_IF_ERROR(CheckKnownKeys(
        t, {"name", "file", "primary_key", "foreign_keys"}, where));
    RelationalTableSpec table;
    auto name = RequiredString(t, "name", where);
    if (!name.ok()) return name.status();
    table.name = name.take();
    auto file = RequiredString(t, "file", where);
    if (!file.ok()) return file.status();
    table.file = file.take();
    auto pk = RequiredString(t, "primary_key", where);
    if (!pk.ok()) return pk.status();
    table.primary_key = pk.take();

    if (const JsonValue* fks = t.Find("foreign_keys"); fks != nullptr) {
      if (fks->kind != JsonValue::Kind::kArray)
        return SpecError(where + " \"foreign_keys\" must be an array");
      for (size_t f = 0; f < fks->items.size(); ++f) {
        const JsonValue& fk = fks->items[f];
        const std::string fk_where =
            where + " foreign key " + std::to_string(f);
        if (fk.kind != JsonValue::Kind::kObject)
          return SpecError(fk_where + " must be an object");
        DAISY_RETURN_IF_ERROR(
            CheckKnownKeys(fk, {"column", "references"}, fk_where));
        auto column = RequiredString(fk, "column", fk_where);
        if (!column.ok()) return column.status();
        const JsonValue* refs = fk.Find("references");
        if (refs == nullptr || refs->kind != JsonValue::Kind::kObject)
          return SpecError(fk_where + " needs a \"references\" object");
        DAISY_RETURN_IF_ERROR(CheckKnownKeys(
            *refs, {"table", "column"}, fk_where + " references"));
        auto ref_table =
            RequiredString(*refs, "table", fk_where + " references");
        if (!ref_table.ok()) return ref_table.status();
        auto ref_column =
            RequiredString(*refs, "column", fk_where + " references");
        if (!ref_column.ok()) return ref_column.status();
        ForeignKey edge;
        edge.child_table = table.name;
        edge.child_column = column.take();
        edge.parent_table = ref_table.take();
        edge.parent_column = ref_column.take();
        spec.foreign_keys.push_back(std::move(edge));
      }
    }
    spec.tables.push_back(std::move(table));
  }
  return spec;
}

Result<RelationalSpec> LoadRelationalSpec(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open schema json: " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return ParseRelationalSpecJson(buf.str());
}

}  // namespace daisy::data

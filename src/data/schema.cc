#include "data/schema.h"

namespace daisy::data {

int Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i)
    if (attrs_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::vector<size_t> Schema::FeatureIndices() const {
  std::vector<size_t> out;
  out.reserve(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i)
    if (!has_label() || i != label_index()) out.push_back(i);
  return out;
}

}  // namespace daisy::data

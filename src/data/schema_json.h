// JSON description of a relational schema, for the CLI's train-rel /
// eval-rel commands. The JSON names tables, files and key columns;
// attribute types come from the data files themselves (CSV schema
// inference, or the schema baked into a .dcol). Expected shape:
//
//   {
//     "tables": [
//       {"name": "users", "file": "users.csv", "primary_key": "user_id"},
//       {"name": "orders", "file": "orders.csv", "primary_key": "order_id",
//        "foreign_keys": [
//          {"column": "user_id",
//           "references": {"table": "users", "column": "user_id"}}]}
//     ]
//   }
//
// The parser covers the JSON subset the spec needs (objects, arrays,
// strings with the standard escapes, numbers, booleans, null) and
// rejects everything malformed with a descriptive InvalidArgument —
// unknown keys are errors too, so a typo ("primary_kay") cannot pass
// silently.
#ifndef DAISY_DATA_SCHEMA_JSON_H_
#define DAISY_DATA_SCHEMA_JSON_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/relational_schema.h"

namespace daisy::data {

/// One table entry of the JSON spec.
struct RelationalTableSpec {
  std::string name;
  std::string file;  ///< relative data file (.csv or .dcol)
  std::string primary_key;
};

/// Parsed spec: tables in declaration order plus the FK edges.
struct RelationalSpec {
  std::vector<RelationalTableSpec> tables;
  std::vector<ForeignKey> foreign_keys;
};

/// Parses the JSON text of a relational spec.
Result<RelationalSpec> ParseRelationalSpecJson(const std::string& json);

/// Reads and parses a spec file.
Result<RelationalSpec> LoadRelationalSpec(const std::string& path);

}  // namespace daisy::data

#endif  // DAISY_DATA_SCHEMA_JSON_H_

// Paged, checksummed binary columnar table format ("daisy-dcol-v1")
// plus a bounded-memory reader — the out-of-core substrate that lets
// the transform layer and the trainers operate on tables that do not
// fit in RAM.
//
// On-disk layout (all integers little-endian, doubles IEEE-754):
//
//   [header, 48 bytes]
//     0  16  magic "daisy-dcol-v1\n" (NUL padded)
//     16  4  u32 version (1)
//     20  4  u32 num_cols
//     24  8  u64 num_rows
//     32  8  u64 page_rows            rows per page
//     40  4  u32 reserved (0)
//     44  4  u32 crc32 of bytes [0, 44)
//   [row groups]
//     ceil(num_rows / page_rows) groups; group g covers rows
//     [g*page_rows, min(num_rows, (g+1)*page_rows)). Within a group,
//     one page per column, column 0 first. A page is the group's rows
//     of that column as doubles, then u32 crc32 of that payload, then
//     u32 reserved — so every page is 8-byte aligned and page offsets
//     are pure arithmetic (only the last group is short).
//   [footer]
//     tagged-text payload (core/serial): row/col/page counts
//     cross-checked against the header, the full data::Schema (names,
//     types, category domains, label index) and per-column min/max
//     accumulated in ascending row order (bitwise equal to
//     Table::AttributeMin/Max on the same rows).
//   [postscript, 24 bytes]
//     u64 footer_len, u64 fnv1a64(footer payload), 8 bytes "dcolend\n"
//
// Corruption contract (mirrors src/ckpt): every single-byte flip and
// every truncation of a .dcol file is detected — the header and footer
// by their own checksums and exact-size accounting at Open, the page
// payloads by per-page CRC (verified by Open's verify pass, and again
// on every page fault). Writes are atomic: tmp + fsync + rename.
#ifndef DAISY_DATA_COLUMNAR_H_
#define DAISY_DATA_COLUMNAR_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "data/table.h"

namespace daisy::data {

/// CRC32 (IEEE 802.3, table-driven). Exposed for tests.
uint32_t Crc32(const void* data, size_t len);

/// Streaming writer: append records one at a time, holding at most one
/// row group (page_rows x num_cols doubles) in memory. The file is
/// written to `path + ".tmp"` and atomically renamed into place by
/// Finish (fsync first, so a crash never leaves a torn .dcol behind).
class ColumnarWriter {
 public:
  /// `page_rows` is clamped to >= 1. The schema is persisted verbatim.
  static Result<std::unique_ptr<ColumnarWriter>> Create(
      const std::string& path, const Schema& schema, size_t page_rows);

  ~ColumnarWriter();
  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  /// Appends one record; `values` must match the schema width, with
  /// categorical entries holding in-domain category indices.
  Status Append(const std::vector<double>& values);

  /// Flushes the tail group, writes footer + postscript, fsyncs and
  /// renames into place. Must be called exactly once.
  Status Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  ColumnarWriter(std::string path, Schema schema, size_t page_rows);
  Status FlushGroup();

  std::string path_;
  std::string tmp_path_;
  Schema schema_;
  size_t page_rows_ = 0;
  size_t rows_written_ = 0;
  size_t buffered_ = 0;
  std::vector<std::vector<double>> group_;  // [col][row within group]
  std::vector<double> col_min_, col_max_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;
};

/// Writes a whole in-memory table (convenience for tests and tools).
Status WriteColumnar(const Table& table, const std::string& path,
                     size_t page_rows);

/// Converts a CSV file to .dcol with bounded memory: three streaming
/// passes (column types; categorical domains in first-seen order; cell
/// values into a ColumnarWriter). Schema inference matches ReadCsv
/// exactly — the resulting table is bitwise identical to
/// ReadCsv(csv_path, label_column).
Status ConvertCsvToColumnar(const std::string& csv_path,
                            const std::string& dcol_path,
                            const std::string& label_column,
                            size_t page_rows);

class PagedTable;

/// Streams the given columns of a paged table into a new .dcol at
/// `out_path` (same page_rows as the source), holding one window of
/// rows in memory. Cells move through ScanColumn in ascending row
/// order, so the output footer's per-column min/max is bitwise equal
/// to the in-memory ProjectColumns + WriteColumnar of the same table —
/// the projection the relational layer uses to strip key columns
/// without materializing an out-of-core table.
Status ProjectColumnar(const PagedTable& in, const std::vector<size_t>& cols,
                       const std::string& out_path);

/// Bounded-memory reader over a .dcol file. Random accesses fault
/// column pages through an LRU cache of at most `page_budget` resident
/// pages; sequential scans stream pages through a scratch buffer
/// without touching the cache. Not internally synchronized: use one
/// PagedTable per thread (distinct instances over the same file are
/// independent).
class PagedTable {
 public:
  struct Options {
    /// Maximum resident pages across all columns (>= 1). Peak cache
    /// memory is page_budget * page_rows * 8 bytes plus one scratch
    /// page.
    size_t page_budget = 64;
    /// Map the file read-only and serve page faults by copy from the
    /// mapping instead of pread. Note mmap charges the whole file
    /// against the address space (ulimit -v); bounded-memory runs
    /// under an rlimit should disable it.
    bool use_mmap = true;
    /// Verify every page CRC with a full sequential pass at Open.
    /// Header and footer checksums are always verified.
    bool verify = true;
  };

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static Result<std::unique_ptr<PagedTable>> Open(const std::string& path,
                                                  const Options& options);

  ~PagedTable();
  PagedTable(const PagedTable&) = delete;
  PagedTable& operator=(const PagedTable&) = delete;

  const Schema& schema() const { return schema_; }
  size_t num_records() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  size_t page_rows() const { return page_rows_; }
  /// Pages per column (== row groups).
  size_t num_groups() const { return num_groups_; }
  const std::string& path() const { return path_; }

  /// Footer min/max of a column, accumulated in ascending row order at
  /// write time (bitwise equal to Table::AttributeMin/Max).
  double attribute_min(size_t attr) const { return col_min_[attr]; }
  double attribute_max(size_t attr) const { return col_max_[attr]; }

  /// One cell through the page cache.
  Result<double> ValueAt(size_t record, size_t attr) const;

  /// out[i] = cell(rows[i], attr). Faults each needed page at most
  /// once per call (accesses are bucketed by page), so the call is
  /// correct and efficient even with page_budget == 1.
  Status GatherColumn(size_t attr, const std::vector<size_t>& rows,
                      double* out) const;

  /// Dense raw-cell gather: m x num_attributes, row i = record
  /// rows[i]. Work proceeds column by column through the cache.
  Result<Matrix> GatherRows(const std::vector<size_t>& rows) const;

  /// Streams column values for records [begin, end) into `out`
  /// (caller provides end - begin doubles). Bypasses the cache.
  Status ScanColumn(size_t attr, size_t begin, size_t end,
                    double* out) const;

  /// Label (category index) per record, streamed from the label
  /// column. Requires schema().has_label().
  Result<std::vector<size_t>> ReadLabels() const;

  /// Full materialization (tests / small tables).
  Result<Table> ToTable() const;

  /// Sequentially re-verifies every page CRC (what Open's verify pass
  /// runs). Returns the first corruption found.
  Status VerifyAllPages() const;

  const CacheStats& cache_stats() const { return stats_; }
  size_t resident_pages() const { return lru_.size(); }

 private:
  PagedTable() = default;

  size_t GroupRows(size_t group) const;
  uint64_t PageOffset(size_t group, size_t col) const;
  /// Loads (verifying CRC) the page's doubles into `out`.
  Status LoadPage(size_t group, size_t col, std::vector<double>* out) const;
  /// Cache lookup / fault. Returns the resident payload.
  Result<const std::vector<double>*> FaultPage(size_t group,
                                               size_t col) const;
  Status ReadBytes(uint64_t offset, size_t len, void* out) const;

  std::string path_;
  Schema schema_;
  size_t num_rows_ = 0;
  size_t num_cols_ = 0;
  size_t page_rows_ = 0;
  size_t num_groups_ = 0;
  std::vector<double> col_min_, col_max_;
  Options opts_;

  int fd_ = -1;
  const unsigned char* map_ = nullptr;  // non-null iff mmap succeeded
  uint64_t file_size_ = 0;

  // LRU page cache: key = group * num_cols + col.
  struct CacheEntry {
    uint64_t key;
    std::vector<double> values;
  };
  mutable std::list<CacheEntry> lru_;  // front = most recently used
  mutable std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
      cache_;
  mutable CacheStats stats_;
};

}  // namespace daisy::data

#endif  // DAISY_DATA_COLUMNAR_H_

#include "data/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace daisy::data {

TableProfile ProfileTable(const Table& table) {
  TableProfile profile;
  profile.num_records = table.num_records();
  const Schema& schema = table.schema();

  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    AttributeProfile ap;
    const Attribute& attr = schema.attribute(j);
    ap.name = attr.name;
    ap.categorical = attr.is_categorical();
    if (ap.categorical) {
      ap.domain_size = attr.domain_size();
      std::vector<double> counts(ap.domain_size, 0.0);
      for (size_t i = 0; i < table.num_records(); ++i)
        counts[table.category(i, j)] += 1.0;
      ap.frequencies.assign(ap.domain_size, 0.0);
      // 0/0 frequencies on a zero-record table used to produce NaNs
      // that poisoned everything downstream of the profile; an empty
      // table now profiles as all-zero frequencies / zero entropy.
      const double n = static_cast<double>(table.num_records());
      for (size_t c = 0; c < ap.domain_size; ++c) {
        ap.frequencies[c] = n > 0.0 ? counts[c] / n : 0.0;
        if (ap.frequencies[c] > ap.frequencies[ap.mode_category])
          ap.mode_category = c;
        if (ap.frequencies[c] > 0.0)
          ap.entropy_bits -=
              ap.frequencies[c] * std::log2(ap.frequencies[c]);
        if (counts[c] == 0.0) ++ap.absent_categories;
      }
    } else {
      std::vector<double> values = table.Column(j);
      std::sort(values.begin(), values.end());
      if (values.empty()) {
        // values.front() on an empty column was UB; all-zero stats are
        // the documented degenerate profile.
        ap.quantiles.assign(11, 0.0);
      } else {
        ap.min = values.front();
        ap.max = values.back();
        double sum = 0.0;
        for (double v : values) sum += v;
        ap.mean = sum / static_cast<double>(values.size());
        double var = 0.0;
        for (double v : values) var += (v - ap.mean) * (v - ap.mean);
        ap.stddev = std::sqrt(var / static_cast<double>(values.size()));
        ap.quantiles.resize(11);
        for (int q = 0; q <= 10; ++q) {
          const double pos =
              q / 10.0 * static_cast<double>(values.size() - 1);
          const size_t lo = static_cast<size_t>(pos);
          const size_t hi = std::min(lo + 1, values.size() - 1);
          const double frac = pos - static_cast<double>(lo);
          ap.quantiles[q] = values[lo] + frac * (values[hi] - values[lo]);
        }
      }
    }
    profile.attributes.push_back(std::move(ap));
  }

  if (schema.has_label()) {
    const auto counts = table.LabelCounts();
    size_t lo = table.num_records(), hi = 0;
    for (size_t c : counts) {
      if (c == 0) {
        // Absent labels are surfaced, not folded into the ratio: a
        // zero count would make the ratio divide by zero, and silently
        // skipping it hid exactly the starved labels a rare-label
        // sweep needs to see.
        ++profile.absent_labels;
        continue;
      }
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    profile.label_imbalance_ratio =
        hi > 0 && lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo)
                         : 0.0;
  }
  return profile;
}

std::string ProfileToString(const TableProfile& profile) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%zu records, %zu attributes",
                profile.num_records, profile.attributes.size());
  out += buf;
  if (profile.label_imbalance_ratio > 0.0) {
    std::snprintf(buf, sizeof(buf), ", label imbalance %.1f:1%s",
                  profile.label_imbalance_ratio,
                  profile.label_imbalance_ratio > 9.0 ? " (skew)" : "");
    out += buf;
  }
  out += "\n";
  if (profile.absent_labels > 0) {
    std::snprintf(buf, sizeof(buf), "  %zu label(s) absent from the data\n",
                  profile.absent_labels);
    out += buf;
  }
  for (const auto& ap : profile.attributes) {
    if (ap.categorical) {
      // mode_category indexes frequencies only when the domain is
      // non-empty; a width-0 domain renders without a mode line.
      const double mode_freq = ap.mode_category < ap.frequencies.size()
                                   ? ap.frequencies[ap.mode_category]
                                   : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "  %-20s categorical  domain=%zu  entropy=%.2f bits  "
                    "mode=%zu (%.1f%%)",
                    ap.name.c_str(), ap.domain_size, ap.entropy_bits,
                    ap.mode_category, 100.0 * mode_freq);
      out += buf;
      if (ap.absent_categories > 0) {
        std::snprintf(buf, sizeof(buf), "  absent=%zu",
                      ap.absent_categories);
        out += buf;
      }
      out += "\n";
    } else {
      const double median =
          ap.quantiles.size() > 5 ? ap.quantiles[5] : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "  %-20s numerical    min=%-10.4g max=%-10.4g "
                    "mean=%-10.4g sd=%-10.4g median=%.4g\n",
                    ap.name.c_str(), ap.min, ap.max, ap.mean, ap.stddev,
                    median);
      out += buf;
    }
  }
  return out;
}

}  // namespace daisy::data

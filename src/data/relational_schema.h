// Multi-table schema with primary/foreign keys — the referential
// skeleton the relational synthesizer (src/relational) models on top of
// per-table data::Schema. Key columns are structural: they carry row
// identity and parent linkage, never distributional content, so the
// GAN layer strips them and the relational layer re-derives them at
// generation time (sequential synthetic PKs, FKs from the sampled
// cardinality model).
//
// Constraints enforced at Create (each violation is a descriptive
// InvalidArgument):
//   - table names are unique and non-empty
//   - every primary key names an existing NUMERICAL column
//   - every foreign key references existing tables/columns; the parent
//     column must be that table's primary key and the child column an
//     existing numerical non-PK column
//   - at most one foreign key per child table (a hierarchy / forest,
//     the shape Hierarchical Conditional Tabular GAN models)
//   - no self-references and no cycles
#ifndef DAISY_DATA_RELATIONAL_SCHEMA_H_
#define DAISY_DATA_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/schema.h"

namespace daisy::data {

/// One referential edge: child.child_column references
/// parent.parent_column (the parent's primary key).
struct ForeignKey {
  std::string child_table;
  std::string child_column;
  std::string parent_table;
  std::string parent_column;
};

/// One table's slot in the relational schema.
struct RelationalTableDef {
  std::string name;
  Schema schema;
  std::string primary_key;  ///< column name; must be numerical
};

/// Validated set of tables + foreign keys. Immutable after Create.
class RelationalSchema {
 public:
  RelationalSchema() = default;

  /// Validates and builds. Table declaration order is preserved and is
  /// the canonical order for parallel per-table containers everywhere
  /// in the relational layer.
  static Result<RelationalSchema> Create(
      std::vector<RelationalTableDef> tables, std::vector<ForeignKey> fks);

  size_t num_tables() const { return tables_.size(); }
  const RelationalTableDef& table(size_t i) const { return tables_[i]; }
  const std::vector<RelationalTableDef>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Declaration index of a table by name, or -1.
  int FindTable(const std::string& name) const;

  /// Column index of table i's primary key.
  size_t PrimaryKeyColumn(size_t i) const;

  /// The FK edge whose child is table i, or nullptr for a root table
  /// (at most one exists by construction).
  const ForeignKey* ParentEdge(size_t i) const;

  /// Table indices ordered parents-before-children. Stable: among
  /// tables whose parents are all already placed, declaration order
  /// wins — so the order is a pure function of the schema, which the
  /// determinism contract of fit/generate relies on.
  std::vector<size_t> TopologicalOrder() const;

  /// Column indices of table i excluding its primary key and (when
  /// present) its foreign key column — the columns the GAN models.
  std::vector<size_t> ModeledColumns(size_t i) const;

 private:
  std::vector<RelationalTableDef> tables_;
  std::vector<ForeignKey> fks_;
};

}  // namespace daisy::data

#endif  // DAISY_DATA_RELATIONAL_SCHEMA_H_

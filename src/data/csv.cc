#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace daisy::data {

namespace {

// RFC-4180 record parsing: inside a quoted section a doubled quote
// ("") is an escaped literal quote, a single quote closes the section,
// and a line break is part of the field — a record may span several
// physical lines. A quote left open at end of file is an error.
// On success sets *got to whether a record was read (false = clean
// EOF); blank physical lines between records are skipped.
Status ParseRecord(std::istream& in, std::vector<std::string>* fields,
                   bool* got) {
  fields->clear();
  *got = false;
  std::string line;
  bool had_cr = false;
  // CRLF terminators: strip the '\r' at record boundaries (it is part
  // of the line ending, not of the last field).
  const auto next_line = [&in, &line, &had_cr] {
    if (!std::getline(in, line)) return false;
    had_cr = !line.empty() && line.back() == '\r';
    if (had_cr) line.pop_back();
    return true;
  };
  do {
    if (!next_line()) return Status::OK();  // clean EOF
  } while (line.empty());

  std::string field;
  bool in_quotes = false;
  for (;;) {
    for (size_t i = 0; i < line.size(); ++i) {
      const char ch = line[i];
      if (in_quotes) {
        if (ch == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field.push_back('"');
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field.push_back(ch);
        }
      } else if (ch == '"') {
        in_quotes = true;
      } else if (ch == ',') {
        fields->push_back(std::move(field));
        field.clear();
      } else {
        field.push_back(ch);
      }
    }
    if (!in_quotes) break;
    // The open quote swallows the line break: the field continues on
    // the next physical line. Inside quotes a stripped '\r' was cell
    // content (a quoted CRLF), so restore it.
    if (had_cr) field.push_back('\r');
    if (!next_line())
      return Status::InvalidArgument("unterminated quote in csv record");
    field.push_back('\n');
  }
  fields->push_back(std::move(field));
  *got = true;
  return Status::OK();
}

}  // namespace

std::string EscapeCsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

bool ParseCsvNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

namespace {

bool ParseDouble(const std::string& s, double* out) {
  return ParseCsvNumber(s, out);
}

}  // namespace

Status CsvStreamReader::Open(const std::string& path) {
  if (in_.is_open()) in_.close();
  in_.clear();
  in_.open(path);
  if (!in_) return Status::IOError("cannot open for read: " + path);
  path_ = path;
  rows_read_ = 0;
  header_.clear();
  bool got = false;
  DAISY_RETURN_IF_ERROR(ParseRecord(in_, &header_, &got));
  if (!got) return Status::InvalidArgument("empty csv: " + path);
  return Status::OK();
}

Status CsvStreamReader::Next(std::vector<std::string>* fields, bool* got) {
  if (!in_.is_open())
    return Status::FailedPrecondition("csv stream reader is not open");
  DAISY_RETURN_IF_ERROR(ParseRecord(in_, fields, got));
  if (!*got) return Status::OK();
  if (fields->size() != header_.size())
    return Status::InvalidArgument("ragged row in csv: " + path_);
  ++rows_read_;
  return Status::OK();
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = table.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j) out << ',';
    out << EscapeCsvField(schema.attribute(j).name);
  }
  out << '\n';
  for (size_t i = 0; i < table.num_records(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j) out << ',';
      out << EscapeCsvField(table.CellToString(i, j));
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path,
                      const std::string& label_column) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::vector<std::string> header;
  bool got = false;
  if (Status st = ParseRecord(in, &header, &got); !st.ok()) return st;
  if (!got) return Status::InvalidArgument("empty csv: " + path);
  const size_t m = header.size();

  std::vector<std::vector<std::string>> raw;  // rows of string fields
  for (;;) {
    std::vector<std::string> fields;
    if (Status st = ParseRecord(in, &fields, &got); !st.ok()) return st;
    if (!got) break;
    if (fields.size() != m)
      return Status::InvalidArgument("ragged row in csv: " + path);
    raw.push_back(std::move(fields));
  }

  // Infer per-column type.
  std::vector<bool> numeric(m, true);
  for (const auto& row : raw) {
    for (size_t j = 0; j < m; ++j) {
      double tmp;
      if (numeric[j] && !ParseDouble(row[j], &tmp)) numeric[j] = false;
    }
  }

  std::vector<Attribute> attrs(m);
  std::vector<std::map<std::string, size_t>> cat_index(m);
  for (size_t j = 0; j < m; ++j) {
    if (numeric[j] && header[j] != label_column) {
      attrs[j] = Attribute::Numerical(header[j]);
    } else {
      // Categorical: collect distinct values in first-seen order.
      std::vector<std::string> cats;
      for (const auto& row : raw) {
        if (cat_index[j].emplace(row[j], cats.size()).second)
          cats.push_back(row[j]);
      }
      attrs[j] = Attribute::Categorical(header[j], std::move(cats));
    }
  }

  int label_index = -1;
  if (!label_column.empty()) {
    for (size_t j = 0; j < m; ++j)
      if (header[j] == label_column) label_index = static_cast<int>(j);
    if (label_index < 0)
      return Status::NotFound("label column not in csv: " + label_column);
  }

  Table table(Schema(std::move(attrs), label_index));
  std::vector<double> values(m);
  for (const auto& row : raw) {
    for (size_t j = 0; j < m; ++j) {
      if (table.schema().attribute(j).is_categorical()) {
        values[j] = static_cast<double>(cat_index[j][row[j]]);
      } else {
        double v = 0.0;
        ParseDouble(row[j], &v);
        values[j] = v;
      }
    }
    table.AppendRecord(values);
  }
  return table;
}

}  // namespace daisy::data

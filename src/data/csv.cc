#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace daisy::data {

namespace {

// RFC-4180 field splitting: inside a quoted section a doubled quote
// ("") is an escaped literal quote, a single quote closes the section.
// A quote left open at end of line is an error (multi-line fields are
// not supported; WriteCsv never emits them).
Status SplitLine(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(ch);
    }
  }
  if (in_quotes)
    return Status::InvalidArgument("unterminated quote in csv line: " + line);
  fields->push_back(std::move(field));
  return Status::OK();
}

std::string EscapeField(const std::string& s) {
  if (s.find(',') == std::string::npos && s.find('"') == std::string::npos)
    return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = table.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j) out << ',';
    out << EscapeField(schema.attribute(j).name);
  }
  out << '\n';
  for (size_t i = 0; i < table.num_records(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j) out << ',';
      out << EscapeField(table.CellToString(i, j));
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path,
                      const std::string& label_column) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty csv: " + path);
  std::vector<std::string> header;
  if (Status st = SplitLine(line, &header); !st.ok()) return st;
  const size_t m = header.size();

  std::vector<std::vector<std::string>> raw;  // rows of string fields
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    if (Status st = SplitLine(line, &fields); !st.ok()) return st;
    if (fields.size() != m)
      return Status::InvalidArgument("ragged row in csv: " + path);
    raw.push_back(std::move(fields));
  }

  // Infer per-column type.
  std::vector<bool> numeric(m, true);
  for (const auto& row : raw) {
    for (size_t j = 0; j < m; ++j) {
      double tmp;
      if (numeric[j] && !ParseDouble(row[j], &tmp)) numeric[j] = false;
    }
  }

  std::vector<Attribute> attrs(m);
  std::vector<std::map<std::string, size_t>> cat_index(m);
  for (size_t j = 0; j < m; ++j) {
    if (numeric[j] && header[j] != label_column) {
      attrs[j] = Attribute::Numerical(header[j]);
    } else {
      // Categorical: collect distinct values in first-seen order.
      std::vector<std::string> cats;
      for (const auto& row : raw) {
        if (cat_index[j].emplace(row[j], cats.size()).second)
          cats.push_back(row[j]);
      }
      attrs[j] = Attribute::Categorical(header[j], std::move(cats));
    }
  }

  int label_index = -1;
  if (!label_column.empty()) {
    for (size_t j = 0; j < m; ++j)
      if (header[j] == label_column) label_index = static_cast<int>(j);
    if (label_index < 0)
      return Status::NotFound("label column not in csv: " + label_column);
  }

  Table table(Schema(std::move(attrs), label_index));
  std::vector<double> values(m);
  for (const auto& row : raw) {
    for (size_t j = 0; j < m; ++j) {
      if (table.schema().attribute(j).is_categorical()) {
        values[j] = static_cast<double>(cat_index[j][row[j]]);
      } else {
        double v = 0.0;
        ParseDouble(row[j], &v);
        values[j] = v;
      }
    }
    table.AppendRecord(values);
  }
  return table;
}

}  // namespace daisy::data

// Per-attribute profiling of a table: the descriptive statistics a
// practitioner inspects before synthesis and the quality report prints
// after it.
#ifndef DAISY_DATA_PROFILE_H_
#define DAISY_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace daisy::data {

/// Profile of one attribute.
struct AttributeProfile {
  std::string name;
  bool categorical = false;

  // Numerical attributes.
  double min = 0.0, max = 0.0, mean = 0.0, stddev = 0.0;
  /// Deciles (11 values: 0%, 10%, ..., 100%).
  std::vector<double> quantiles;

  // Categorical attributes.
  size_t domain_size = 0;
  /// Category frequencies in domain order (sums to 1).
  std::vector<double> frequencies;
  /// Shannon entropy of the category distribution, in bits.
  double entropy_bits = 0.0;
  /// Index of the most frequent category.
  size_t mode_category = 0;
};

/// Whole-table profile.
struct TableProfile {
  size_t num_records = 0;
  std::vector<AttributeProfile> attributes;
  /// Label imbalance: most-common / least-common label count
  /// (0 when unlabeled; the paper calls a table skewed when > 9).
  double label_imbalance_ratio = 0.0;
};

/// Computes the profile in one pass per attribute.
TableProfile ProfileTable(const Table& table);

/// Renders the profile as a fixed-width text block.
std::string ProfileToString(const TableProfile& profile);

}  // namespace daisy::data

#endif  // DAISY_DATA_PROFILE_H_

// Per-attribute profiling of a table: the descriptive statistics a
// practitioner inspects before synthesis and the quality report prints
// after it.
#ifndef DAISY_DATA_PROFILE_H_
#define DAISY_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace daisy::data {

/// Profile of one attribute.
struct AttributeProfile {
  std::string name;
  bool categorical = false;

  // Numerical attributes.
  double min = 0.0, max = 0.0, mean = 0.0, stddev = 0.0;
  /// Deciles (11 values: 0%, 10%, ..., 100%).
  std::vector<double> quantiles;

  // Categorical attributes.
  size_t domain_size = 0;
  /// Category frequencies in domain order (sums to 1 when the table has
  /// records; all-zero for an empty table).
  std::vector<double> frequencies;
  /// Shannon entropy of the category distribution, in bits.
  double entropy_bits = 0.0;
  /// Index of the most frequent category.
  size_t mode_category = 0;
  /// Schema categories with zero occurrences in the data. Rare-label
  /// pipelines read this instead of scanning frequencies for exact
  /// zeros: an absent category cannot be conditioned on (CTrain starves
  /// it; training-by-sampling never draws it).
  size_t absent_categories = 0;
};

/// Whole-table profile.
struct TableProfile {
  size_t num_records = 0;
  std::vector<AttributeProfile> attributes;
  /// Label imbalance: most-common / least-common label count, over
  /// labels that actually occur (0 when unlabeled or no records; the
  /// paper calls a table skewed when > 9).
  double label_imbalance_ratio = 0.0;
  /// Schema labels with zero training records (0 when unlabeled).
  /// Nonzero means the imbalance ratio understates the skew — the
  /// truly rarest labels have no records at all.
  size_t absent_labels = 0;
};

/// Computes the profile in one pass per attribute. Degenerate inputs
/// are well-defined: a zero-record table yields all-zero statistics
/// (no NaNs), with every category counted absent.
TableProfile ProfileTable(const Table& table);

/// Renders the profile as a fixed-width text block.
std::string ProfileToString(const TableProfile& profile);

}  // namespace daisy::data

#endif  // DAISY_DATA_PROFILE_H_

#include "data/table.h"

#include <cmath>
#include <cstdio>

namespace daisy::data {

size_t Table::category(size_t record, size_t attr) const {
  DAISY_CHECK(schema_.attribute(attr).is_categorical());
  const double v = cells_(record, attr);
  const long long idx = std::llround(v);
  DAISY_CHECK(idx >= 0 &&
              idx < static_cast<long long>(
                        schema_.attribute(attr).domain_size()));
  return static_cast<size_t>(idx);
}

std::string Table::CellToString(size_t record, size_t attr) const {
  const Attribute& a = schema_.attribute(attr);
  if (a.is_categorical()) return a.categories[category(record, attr)];
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", cells_(record, attr));
  return buf;
}

void Table::AppendRecord(const std::vector<double>& values) {
  DAISY_CHECK(values.size() == schema_.num_attributes());
  for (size_t j = 0; j < values.size(); ++j) {
    const Attribute& a = schema_.attribute(j);
    if (a.is_categorical()) {
      const long long idx = std::llround(values[j]);
      DAISY_CHECK(idx >= 0 && idx < static_cast<long long>(a.domain_size()));
    }
  }
  if (cells_.rows() == 0 && reserved_ > 0 && !values.empty()) {
    cells_.ReserveRows(reserved_, values.size());
    reserved_ = 0;
  }
  cells_.AppendRow(values);
}

size_t Table::label(size_t record) const {
  return category(record, schema_.label_index());
}

std::vector<size_t> Table::Labels() const {
  std::vector<size_t> out(num_records());
  for (size_t i = 0; i < out.size(); ++i) out[i] = label(i);
  return out;
}

std::vector<size_t> Table::LabelCounts() const {
  std::vector<size_t> counts(schema_.num_labels(), 0);
  for (size_t i = 0; i < num_records(); ++i) ++counts[label(i)];
  return counts;
}

std::vector<size_t> Table::RecordsWithLabel(size_t label_value) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < num_records(); ++i)
    if (label(i) == label_value) out.push_back(i);
  return out;
}

double Table::AttributeMin(size_t attr) const {
  DAISY_CHECK(num_records() > 0);
  double m = cells_(0, attr);
  for (size_t i = 1; i < num_records(); ++i)
    m = std::min(m, cells_(i, attr));
  return m;
}

double Table::AttributeMax(size_t attr) const {
  DAISY_CHECK(num_records() > 0);
  double m = cells_(0, attr);
  for (size_t i = 1; i < num_records(); ++i)
    m = std::max(m, cells_(i, attr));
  return m;
}

std::vector<double> Table::Column(size_t attr) const {
  std::vector<double> out(num_records());
  for (size_t i = 0; i < out.size(); ++i) out[i] = cells_(i, attr);
  return out;
}

Table Table::Gather(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.cells_ = cells_.GatherRows(indices);
  return out;
}

Table Table::Head(size_t n) const {
  Table out(schema_);
  out.cells_ = cells_.RowRange(0, std::min(n, num_records()));
  return out;
}

Matrix Table::FeatureMatrix() const {
  const auto features = schema_.FeatureIndices();
  Matrix out(num_records(), features.size());
  for (size_t i = 0; i < num_records(); ++i)
    for (size_t j = 0; j < features.size(); ++j)
      out(i, j) = cells_(i, features[j]);
  return out;
}

TableSplit SplitTable(const Table& table, double train_ratio,
                      double valid_ratio, Rng* rng) {
  DAISY_CHECK(train_ratio > 0.0 && valid_ratio >= 0.0 &&
              train_ratio + valid_ratio <= 1.0);
  const size_t n = table.num_records();
  auto perm = rng->Permutation(n);
  const size_t n_train = static_cast<size_t>(train_ratio * n);
  const size_t n_valid = static_cast<size_t>(valid_ratio * n);

  std::vector<size_t> idx_train(perm.begin(), perm.begin() + n_train);
  std::vector<size_t> idx_valid(perm.begin() + n_train,
                                perm.begin() + n_train + n_valid);
  std::vector<size_t> idx_test(perm.begin() + n_train + n_valid, perm.end());

  TableSplit split;
  split.train = table.Gather(idx_train);
  split.valid = table.Gather(idx_valid);
  split.test = table.Gather(idx_test);
  return split;
}

Result<Schema> UnionSchema(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes())
    return Status::InvalidArgument("union schema: attribute counts differ");
  const bool label_match =
      a.has_label() == b.has_label() &&
      (!a.has_label() || a.label_index() == b.label_index());
  if (!label_match)
    return Status::InvalidArgument("union schema: label positions differ");

  std::vector<Attribute> attrs;
  attrs.reserve(a.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    const Attribute& aj = a.attribute(j);
    const Attribute& bj = b.attribute(j);
    if (aj.name != bj.name)
      return Status::InvalidArgument("union schema: attribute " +
                                     std::to_string(j) + " named '" +
                                     aj.name + "' vs '" + bj.name + "'");
    if (aj.is_categorical() != bj.is_categorical())
      return Status::InvalidArgument("union schema: attribute '" + aj.name +
                                     "' is categorical in one table only");
    if (!aj.is_categorical()) {
      attrs.push_back(aj);
      continue;
    }
    std::vector<std::string> cats = aj.categories;
    for (const auto& cat : bj.categories) {
      bool seen = false;
      for (const auto& have : cats) seen = seen || have == cat;
      if (!seen) cats.push_back(cat);
    }
    attrs.push_back(Attribute::Categorical(aj.name, std::move(cats)));
  }
  return Schema(std::move(attrs),
                a.has_label() ? static_cast<int>(a.label_index()) : -1);
}

Result<Table> RemapToSchema(const Table& table, const Schema& target) {
  const Schema& source = table.schema();
  if (source.num_attributes() != target.num_attributes())
    return Status::InvalidArgument("remap: attribute counts differ");

  // index_map[j][c] = target category index of source category c.
  std::vector<std::vector<double>> index_map(source.num_attributes());
  for (size_t j = 0; j < source.num_attributes(); ++j) {
    const Attribute& sj = source.attribute(j);
    const Attribute& tj = target.attribute(j);
    if (sj.name != tj.name || sj.is_categorical() != tj.is_categorical())
      return Status::InvalidArgument("remap: attribute '" + sj.name +
                                     "' does not match the target schema");
    if (!sj.is_categorical()) continue;
    index_map[j].reserve(sj.categories.size());
    for (const auto& cat : sj.categories) {
      size_t to = tj.categories.size();
      for (size_t c = 0; c < tj.categories.size(); ++c)
        if (tj.categories[c] == cat) to = c;
      if (to == tj.categories.size())
        return Status::InvalidArgument("remap: category '" + cat +
                                       "' of attribute '" + sj.name +
                                       "' missing from the target schema");
      index_map[j].push_back(static_cast<double>(to));
    }
  }

  Table out(target);
  out.Reserve(table.num_records());
  std::vector<double> record(source.num_attributes());
  for (size_t i = 0; i < table.num_records(); ++i) {
    for (size_t j = 0; j < source.num_attributes(); ++j)
      record[j] = index_map[j].empty()
                      ? table.value(i, j)
                      : index_map[j][table.category(i, j)];
    out.AppendRecord(record);
  }
  return out;
}

Schema ProjectSchema(const Schema& schema, const std::vector<size_t>& cols) {
  std::vector<Attribute> attrs;
  attrs.reserve(cols.size());
  int label_index = -1;
  for (size_t k = 0; k < cols.size(); ++k) {
    DAISY_CHECK(cols[k] < schema.num_attributes());
    attrs.push_back(schema.attribute(cols[k]));
    if (schema.has_label() && cols[k] == schema.label_index())
      label_index = static_cast<int>(k);
  }
  return Schema(std::move(attrs), label_index);
}

Table ProjectColumns(const Table& table, const std::vector<size_t>& cols) {
  Table out(ProjectSchema(table.schema(), cols));
  out.Reserve(table.num_records());
  std::vector<double> record(cols.size());
  for (size_t i = 0; i < table.num_records(); ++i) {
    for (size_t k = 0; k < cols.size(); ++k)
      record[k] = table.value(i, cols[k]);
    out.AppendRecord(record);
  }
  return out;
}

}  // namespace daisy::data

#include "data/relational_schema.h"

#include <set>
#include <utility>

namespace daisy::data {

namespace {

Status BadSchema(const std::string& what) {
  return Status::InvalidArgument("relational schema: " + what);
}

}  // namespace

Result<RelationalSchema> RelationalSchema::Create(
    std::vector<RelationalTableDef> tables, std::vector<ForeignKey> fks) {
  RelationalSchema rs;
  rs.tables_ = std::move(tables);
  rs.fks_ = std::move(fks);

  if (rs.tables_.empty()) return BadSchema("no tables");

  std::set<std::string> names;
  for (const auto& t : rs.tables_) {
    if (t.name.empty()) return BadSchema("empty table name");
    if (!names.insert(t.name).second)
      return BadSchema("duplicate table name '" + t.name + "'");
    if (t.schema.num_attributes() == 0)
      return BadSchema("table '" + t.name + "' has no attributes");
    const int pk = t.schema.FindAttribute(t.primary_key);
    if (pk < 0)
      return BadSchema("table '" + t.name + "' primary key '" +
                       t.primary_key + "' is not one of its columns");
    if (t.schema.attribute(static_cast<size_t>(pk)).is_categorical())
      return BadSchema("table '" + t.name + "' primary key '" +
                       t.primary_key + "' must be a numerical column");
  }

  std::vector<int> parent_of(rs.tables_.size(), -1);
  for (const auto& fk : rs.fks_) {
    const int child = rs.FindTable(fk.child_table);
    if (child < 0)
      return BadSchema("foreign key child table '" + fk.child_table +
                       "' does not exist");
    const int parent = rs.FindTable(fk.parent_table);
    if (parent < 0)
      return BadSchema("foreign key parent table '" + fk.parent_table +
                       "' does not exist");
    if (child == parent)
      return BadSchema("table '" + fk.child_table +
                       "' references itself (self foreign keys are not "
                       "supported)");
    const auto& ct = rs.tables_[static_cast<size_t>(child)];
    const auto& pt = rs.tables_[static_cast<size_t>(parent)];
    const int ccol = ct.schema.FindAttribute(fk.child_column);
    if (ccol < 0)
      return BadSchema("foreign key column '" + fk.child_column +
                       "' is not a column of table '" + fk.child_table + "'");
    if (ct.schema.attribute(static_cast<size_t>(ccol)).is_categorical())
      return BadSchema("foreign key column '" + fk.child_column +
                       "' of table '" + fk.child_table +
                       "' must be numerical");
    if (fk.child_column == ct.primary_key)
      return BadSchema("foreign key column '" + fk.child_column +
                       "' of table '" + fk.child_table +
                       "' is its primary key");
    if (fk.parent_column != pt.primary_key)
      return BadSchema("foreign key of table '" + fk.child_table +
                       "' must reference the primary key of '" +
                       fk.parent_table + "' ('" + pt.primary_key +
                       "'), got '" + fk.parent_column + "'");
    if (parent_of[static_cast<size_t>(child)] != -1)
      return BadSchema("table '" + fk.child_table +
                       "' has more than one foreign key (only one parent "
                       "per table is supported)");
    parent_of[static_cast<size_t>(child)] = parent;
  }

  // With at most one parent per table, a cycle is exactly a parent
  // chain that never reaches a root; walking num_tables steps without
  // terminating proves one.
  for (size_t i = 0; i < rs.tables_.size(); ++i) {
    int cur = static_cast<int>(i);
    for (size_t steps = 0; cur != -1; ++steps) {
      if (steps > rs.tables_.size())
        return BadSchema("foreign keys form a cycle through table '" +
                         rs.tables_[i].name + "'");
      cur = parent_of[static_cast<size_t>(cur)];
    }
  }
  return rs;
}

int RelationalSchema::FindTable(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i)
    if (tables_[i].name == name) return static_cast<int>(i);
  return -1;
}

size_t RelationalSchema::PrimaryKeyColumn(size_t i) const {
  const int col = tables_[i].schema.FindAttribute(tables_[i].primary_key);
  DAISY_CHECK(col >= 0);
  return static_cast<size_t>(col);
}

const ForeignKey* RelationalSchema::ParentEdge(size_t i) const {
  for (const auto& fk : fks_)
    if (fk.child_table == tables_[i].name) return &fk;
  return nullptr;
}

std::vector<size_t> RelationalSchema::TopologicalOrder() const {
  std::vector<size_t> order;
  order.reserve(tables_.size());
  std::vector<bool> placed(tables_.size(), false);
  while (order.size() < tables_.size()) {
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (placed[i]) continue;
      const ForeignKey* edge = ParentEdge(i);
      if (edge != nullptr) {
        const int parent = FindTable(edge->parent_table);
        DAISY_CHECK(parent >= 0);
        if (!placed[static_cast<size_t>(parent)]) continue;
      }
      placed[i] = true;
      order.push_back(i);
    }
  }
  return order;
}

std::vector<size_t> RelationalSchema::ModeledColumns(size_t i) const {
  const size_t pk = PrimaryKeyColumn(i);
  const ForeignKey* edge = ParentEdge(i);
  int fk_col = -1;
  if (edge != nullptr)
    fk_col = tables_[i].schema.FindAttribute(edge->child_column);
  std::vector<size_t> cols;
  for (size_t j = 0; j < tables_[i].schema.num_attributes(); ++j) {
    if (j == pk || static_cast<int>(j) == fk_col) continue;
    cols.push_back(j);
  }
  return cols;
}

}  // namespace daisy::data

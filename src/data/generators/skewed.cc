#include "data/generators/skewed.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace daisy::data {

Table MakeSkewedTable(const SkewedTableOptions& opts, Rng* rng) {
  DAISY_CHECK(opts.num_records > 0);
  DAISY_CHECK(opts.zipf_domain >= 2);
  DAISY_CHECK(opts.zipf_exponent > 0.0);
  DAISY_CHECK(opts.pareto_shape > 0.0);
  DAISY_CHECK(opts.pareto_scale > 0.0);

  const size_t k = opts.zipf_domain;
  std::vector<double> zipf(k), zipf_rev(k);
  for (size_t c = 0; c < k; ++c) {
    zipf[c] = 1.0 / std::pow(static_cast<double>(c + 1),
                             opts.zipf_exponent);
    zipf_rev[k - 1 - c] = zipf[c];
  }

  std::vector<std::string> cats(k);
  for (size_t c = 0; c < k; ++c) cats[c] = "c" + std::to_string(c);
  Schema schema(
      {Attribute::Categorical("category", std::move(cats)),
       Attribute::Numerical("heavy"), Attribute::Numerical("value"),
       Attribute::Categorical("label", {"common", "rare"})},
      /*label_index=*/3);
  Table table((schema));
  table.Reserve(opts.num_records);

  const double inv_alpha = 1.0 / opts.pareto_shape;
  for (size_t i = 0; i < opts.num_records; ++i) {
    // Deterministic 1:R interleave keeps the label ratio exact for any
    // record count (a Bernoulli draw would make small tables flaky).
    const bool rare = (i % (opts.label_imbalance + 1)) == 0;
    const size_t cat =
        rng->Categorical(rare ? zipf_rev : zipf);
    // Inverse-CDF Pareto: x_m / U^(1/alpha), U in (0, 1].
    const double u = 1.0 - rng->Uniform();
    const double heavy = opts.pareto_scale * std::pow(u, -inv_alpha);
    // Category-indexed mean makes the (category, value) joint
    // learnable; unit noise keeps the modes overlapping but distinct.
    const double value =
        2.0 * static_cast<double>(cat) + rng->Gaussian();
    table.AppendRecord({static_cast<double>(cat), heavy, value,
                        rare ? 1.0 : 0.0});
  }
  return table;
}

}  // namespace daisy::data

#include "data/generators/sim_config.h"

#include <cmath>

namespace daisy::data {

Table GenerateSimTable(const SimConfig& config, size_t n, Rng* rng) {
  const bool labeled = !config.label_names.empty();
  DAISY_CHECK(!labeled ||
              config.label_priors.size() == config.label_names.size());

  std::vector<Attribute> attrs;
  attrs.reserve(config.attrs.size() + (labeled ? 1 : 0));
  for (const auto& sa : config.attrs) attrs.push_back(sa.attr);
  int label_index = -1;
  if (labeled) {
    label_index = static_cast<int>(attrs.size());
    attrs.push_back(
        Attribute::Categorical(config.label_attr_name, config.label_names));
  }

  Table table(Schema(std::move(attrs), label_index));
  table.Reserve(n);

  std::vector<double> row(config.attrs.size() + (labeled ? 1 : 0));
  for (size_t i = 0; i < n; ++i) {
    const size_t y = labeled ? rng->Categorical(config.label_priors) : 0;
    for (size_t j = 0; j < config.attrs.size(); ++j) {
      const SimAttr& sa = config.attrs[j];
      if (sa.attr.is_categorical()) {
        DAISY_CHECK(y < sa.cat_probs.size());
        row[j] = static_cast<double>(rng->Categorical(sa.cat_probs[y]));
      } else {
        DAISY_CHECK(y < sa.modes.size() && !sa.modes[y].empty());
        std::vector<double> weights;
        weights.reserve(sa.modes[y].size());
        for (const auto& m : sa.modes[y]) weights.push_back(m.weight);
        const GaussMode& mode = sa.modes[y][rng->Categorical(weights)];
        row[j] = rng->Gaussian(mode.mean, mode.stddev);
      }
    }
    if (labeled) row[config.attrs.size()] = static_cast<double>(y);
    table.AppendRecord(row);
  }
  return table;
}

SimConfig RandomSimConfig(const RandomSimOptions& opts, Rng* rng) {
  DAISY_CHECK(opts.num_labels >= 1);
  DAISY_CHECK(opts.max_modes >= opts.min_modes && opts.min_modes >= 1);
  DAISY_CHECK(opts.max_categories >= opts.min_categories &&
              opts.min_categories >= 2);

  SimConfig config;
  config.label_names.reserve(opts.num_labels);
  for (size_t y = 0; y < opts.num_labels; ++y)
    config.label_names.push_back("L" + std::to_string(y));
  if (opts.label_priors.empty()) {
    config.label_priors.assign(opts.num_labels,
                               1.0 / static_cast<double>(opts.num_labels));
  } else {
    DAISY_CHECK(opts.label_priors.size() == opts.num_labels);
    config.label_priors = opts.label_priors;
  }

  for (size_t j = 0; j < opts.num_numerical; ++j) {
    SimAttr sa;
    sa.attr = Attribute::Numerical("num" + std::to_string(j));
    const size_t k =
        opts.min_modes + rng->UniformInt(opts.max_modes - opts.min_modes + 1);
    // Shared base modes, then per-label mean shifts so the label is
    // learnable from the features.
    std::vector<GaussMode> base(k);
    for (auto& m : base) {
      m.mean = rng->Uniform(-4.0, 4.0);
      m.stddev = rng->Uniform(0.3, 1.2);
      m.weight = rng->Uniform(0.5, 1.5);
    }
    sa.modes.resize(opts.num_labels);
    for (size_t y = 0; y < opts.num_labels; ++y) {
      sa.modes[y] = base;
      const double shift =
          opts.label_separation * rng->Gaussian() *
          (static_cast<double>(y) - 0.5 * (opts.num_labels - 1)) /
          std::max<double>(1.0, opts.num_labels - 1);
      for (auto& m : sa.modes[y]) m.mean += shift;
    }
    config.attrs.push_back(std::move(sa));
  }

  for (size_t j = 0; j < opts.num_categorical; ++j) {
    SimAttr sa;
    const size_t domain = opts.min_categories +
                          rng->UniformInt(opts.max_categories -
                                          opts.min_categories + 1);
    std::vector<std::string> cats(domain);
    for (size_t c = 0; c < domain; ++c)
      cats[c] = "cat" + std::to_string(j) + "_" + std::to_string(c);
    sa.attr = Attribute::Categorical("cat" + std::to_string(j),
                                     std::move(cats));
    sa.cat_probs.resize(opts.num_labels);
    for (size_t y = 0; y < opts.num_labels; ++y) {
      sa.cat_probs[y].resize(domain);
      double sum = 0.0;
      for (size_t c = 0; c < domain; ++c) {
        // Dirichlet-ish draw: exponential weights, tilted per label so
        // the attribute carries label signal.
        double w = -std::log(std::max(rng->Uniform(), 1e-12));
        if (c % opts.num_labels == y % opts.num_labels)
          w *= 1.0 + opts.label_separation;
        sa.cat_probs[y][c] = w;
        sum += w;
      }
      for (auto& p : sa.cat_probs[y]) p /= sum;
    }
    config.attrs.push_back(std::move(sa));
  }
  return config;
}

}  // namespace daisy::data

#include "data/generators/sdata.h"

#include <cmath>

namespace daisy::data {

Table MakeSDataNum(const SDataNumOptions& opts, Rng* rng) {
  DAISY_CHECK(opts.correlation > -1.0 && opts.correlation < 1.0);
  DAISY_CHECK(opts.positive_ratio > 0.0 && opts.positive_ratio < 1.0);

  // 25 modes on the {-4,-2,0,2,4}^2 grid; stddevs ~ U(0.5, 1).
  struct Mode {
    double mx, my, sx, sy;
  };
  std::vector<Mode> modes;
  modes.reserve(25);
  for (int gx = -4; gx <= 4; gx += 2)
    for (int gy = -4; gy <= 4; gy += 2)
      modes.push_back({static_cast<double>(gx), static_cast<double>(gy),
                       rng->Uniform(0.5, 1.0), rng->Uniform(0.5, 1.0)});

  // Positive label draws from modes {0..11}, negative from {12..24}:
  // disjoint subsets make the label learnable from (x, y).
  const size_t split = 12;

  Schema schema(
      {Attribute::Numerical("x"), Attribute::Numerical("y"),
       Attribute::Categorical("label", {"neg", "pos"})},
      /*label_index=*/2);
  Table table((schema));
  table.Reserve(opts.num_records);

  const double rho = opts.correlation;
  const double comp = std::sqrt(1.0 - rho * rho);
  for (size_t i = 0; i < opts.num_records; ++i) {
    const bool positive = rng->Uniform() < opts.positive_ratio;
    const size_t m = positive ? rng->UniformInt(split)
                              : split + rng->UniformInt(modes.size() - split);
    const Mode& mode = modes[m];
    const double z1 = rng->Gaussian();
    const double z2 = rng->Gaussian();
    const double x = mode.mx + mode.sx * z1;
    const double y = mode.my + mode.sy * (rho * z1 + comp * z2);
    table.AppendRecord({x, y, positive ? 1.0 : 0.0});
  }
  return table;
}

Table MakeSDataCat(const SDataCatOptions& opts, Rng* rng) {
  DAISY_CHECK(opts.diagonal_p > 0.0 && opts.diagonal_p <= 1.0);
  DAISY_CHECK(opts.domain_size >= 2);
  const size_t k = opts.domain_size;
  constexpr size_t kNumAttrs = 5;

  // Conditional probability matrix shared by every edge: diagonal mass
  // p, remainder spread uniformly (paper §6.1).
  std::vector<std::vector<double>> cpm(k, std::vector<double>(k));
  for (size_t a = 0; a < k; ++a)
    for (size_t b = 0; b < k; ++b)
      cpm[a][b] = (a == b) ? opts.diagonal_p
                           : (1.0 - opts.diagonal_p) /
                                 static_cast<double>(k - 1);

  // Root distribution conditioned on the label so records carry signal:
  // positive tilts toward low categories, negative toward high ones.
  std::vector<double> root_pos(k), root_neg(k);
  for (size_t c = 0; c < k; ++c) {
    root_pos[c] = static_cast<double>(k - c);
    root_neg[c] = static_cast<double>(c + 1);
  }

  std::vector<Attribute> attrs;
  for (size_t j = 0; j < kNumAttrs; ++j) {
    std::vector<std::string> cats(k);
    for (size_t c = 0; c < k; ++c)
      cats[c] = "v" + std::to_string(c);
    attrs.push_back(
        Attribute::Categorical("attr" + std::to_string(j), std::move(cats)));
  }
  attrs.push_back(Attribute::Categorical("label", {"neg", "pos"}));
  Schema schema(std::move(attrs), static_cast<int>(kNumAttrs));

  Table table((schema));
  table.Reserve(opts.num_records);
  std::vector<double> row(kNumAttrs + 1);
  for (size_t i = 0; i < opts.num_records; ++i) {
    const bool positive = rng->Uniform() < opts.positive_ratio;
    size_t prev = rng->Categorical(positive ? root_pos : root_neg);
    row[0] = static_cast<double>(prev);
    for (size_t j = 1; j < kNumAttrs; ++j) {
      prev = rng->Categorical(cpm[prev]);
      row[j] = static_cast<double>(prev);
    }
    row[kNumAttrs] = positive ? 1.0 : 0.0;
    table.AppendRecord(row);
  }
  return table;
}

}  // namespace daisy::data

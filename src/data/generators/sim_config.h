// Generic class-conditional table simulator. Each attribute is drawn
// conditioned on a sampled label: numerical attributes from a per-label
// Gaussian mixture (giving multi-modal marginals), categorical
// attributes from a per-label distribution over the domain. This is the
// engine behind the realistic dataset stand-ins (see DESIGN.md §2-3).
#ifndef DAISY_DATA_GENERATORS_SIM_CONFIG_H_
#define DAISY_DATA_GENERATORS_SIM_CONFIG_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::data {

/// One Gaussian component of a numerical attribute's mixture.
struct GaussMode {
  double mean = 0.0;
  double stddev = 1.0;
  double weight = 1.0;
};

/// Per-attribute simulation spec. For numerical attributes `modes`
/// holds one mixture per label; for categorical attributes `cat_probs`
/// holds one distribution over the domain per label.
struct SimAttr {
  Attribute attr;
  std::vector<std::vector<GaussMode>> modes;      // [label][component]
  std::vector<std::vector<double>> cat_probs;     // [label][category]
};

/// Whole-table simulation spec.
struct SimConfig {
  std::vector<SimAttr> attrs;
  std::vector<std::string> label_names;  // empty => unlabeled table
  std::vector<double> label_priors;      // same length as label_names
  std::string label_attr_name = "label";
};

/// Materializes `n` records from the config. The label column (if any)
/// is appended as the last attribute and marked as the schema's label.
Table GenerateSimTable(const SimConfig& config, size_t n, Rng* rng);

/// Knobs for RandomSimConfig.
struct RandomSimOptions {
  size_t num_numerical = 4;
  size_t num_categorical = 0;
  size_t num_labels = 2;
  std::vector<double> label_priors;  // empty => uniform
  size_t min_modes = 1;              // numerical mixture size range
  size_t max_modes = 3;
  size_t min_categories = 2;         // categorical domain size range
  size_t max_categories = 8;
  double label_separation = 1.5;     // how far per-label means move apart
};

/// Builds a random (but seeded, hence reproducible) SimConfig whose
/// attributes carry learnable label signal.
SimConfig RandomSimConfig(const RandomSimOptions& opts, Rng* rng);

}  // namespace daisy::data

#endif  // DAISY_DATA_GENERATORS_SIM_CONFIG_H_

#include "data/generators/relational_pair.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace daisy::data {

RelationalPair MakeRelationalPair(const RelationalPairOptions& opts,
                                  Rng* rng) {
  DAISY_CHECK(opts.num_parents > 0);
  DAISY_CHECK(opts.max_fanout >= 1);
  DAISY_CHECK(opts.zipf_exponent > 0.0);
  DAISY_CHECK(opts.num_segments >= 2);
  DAISY_CHECK(opts.num_channels >= 2);

  std::vector<std::string> segments(opts.num_segments);
  for (size_t s = 0; s < opts.num_segments; ++s)
    segments[s] = "seg" + std::to_string(s);
  std::vector<std::string> channels(opts.num_channels);
  for (size_t c = 0; c < opts.num_channels; ++c)
    channels[c] = "ch" + std::to_string(c);

  Schema parent_schema({Attribute::Numerical("user_id"),
                        Attribute::Categorical("segment",
                                               std::move(segments)),
                        Attribute::Numerical("budget")});
  Schema child_schema({Attribute::Numerical("order_id"),
                       Attribute::Numerical("user_id"),
                       Attribute::Categorical("channel",
                                              std::move(channels)),
                       Attribute::Numerical("amount")});

  std::vector<double> fanout_weights(opts.max_fanout + 1);
  for (size_t c = 0; c <= opts.max_fanout; ++c)
    fanout_weights[c] =
        1.0 / std::pow(static_cast<double>(c + 1), opts.zipf_exponent);

  RelationalPair pair;
  pair.parent = Table(parent_schema);
  pair.parent.Reserve(opts.num_parents);
  pair.child = Table(child_schema);

  // Per-parent draw order (segment, budget, fanout, then the children's
  // channel + amount) is fixed, so the fixture is reproducible for any
  // consumer that replays the same rng stream.
  size_t next_order_id = 1;
  for (size_t p = 0; p < opts.num_parents; ++p) {
    const double user_id = static_cast<double>(p + 1);
    const size_t segment = static_cast<size_t>(
        rng->UniformInt(opts.num_segments));
    const double budget =
        50.0 * static_cast<double>(segment + 1) + 10.0 * rng->Gaussian();
    pair.parent.AppendRecord(
        {user_id, static_cast<double>(segment), budget});

    const size_t fanout = rng->Categorical(fanout_weights);
    for (size_t k = 0; k < fanout; ++k) {
      // Channel follows the parent's segment (mod the channel domain)
      // three times out of four — a learnable cross-table association.
      const size_t channel = rng->Uniform() < 0.75
                                 ? segment % opts.num_channels
                                 : static_cast<size_t>(rng->UniformInt(
                                       opts.num_channels));
      const double amount =
          0.1 * budget + 2.0 * rng->Gaussian();
      pair.child.AppendRecord({static_cast<double>(next_order_id++),
                               user_id, static_cast<double>(channel),
                               amount});
    }
  }

  auto schema = RelationalSchema::Create(
      {{"users", parent_schema, "user_id"},
       {"orders", child_schema, "order_id"}},
      {{"orders", "user_id", "users", "user_id"}});
  DAISY_CHECK(schema.ok());
  pair.schema = schema.take();
  return pair;
}

}  // namespace daisy::data

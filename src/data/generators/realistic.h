// Simulated stand-ins for the paper's eight real datasets (Table 2).
// The originals (UCI + a Microsoft production workload) are not
// redistributable here; each stand-in reproduces the characteristics
// the study varies — attribute counts and types, label cardinality and
// skew, and multi-modal numeric marginals. See DESIGN.md §2-3.
#ifndef DAISY_DATA_GENERATORS_REALISTIC_H_
#define DAISY_DATA_GENERATORS_REALISTIC_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/table.h"

namespace daisy::data {

/// HTRU2-sim: 8 numerical, binary skewed label (pulsar detection).
Table MakeHtru2Sim(size_t n, Rng* rng);

/// Digits-sim: 16 numerical, 10 balanced labels.
Table MakeDigitsSim(size_t n, Rng* rng);

/// Adult-sim: 6 numerical + 8 categorical, binary label with the
/// paper's 0.34 positive:negative ratio.
Table MakeAdultSim(size_t n, Rng* rng);

/// CovType-sim: 10 numerical + 2 categorical, 7 skewed labels
/// (46% / ... / 6% as reported in the paper's appendix).
Table MakeCovTypeSim(size_t n, Rng* rng);

/// SAT-sim: 36 numerical, 6 balanced labels.
Table MakeSatSim(size_t n, Rng* rng);

/// Anuran-sim: 22 numerical, 10 very skewed labels.
Table MakeAnuranSim(size_t n, Rng* rng);

/// Census-sim: 9 numerical + 30 categorical, binary 5%-positive label.
Table MakeCensusSim(size_t n, Rng* rng);

/// Bing-sim: 7 numerical + 23 categorical, unlabeled (AQP only).
Table MakeBingSim(size_t n, Rng* rng);

/// Lookup by name ("adult", "covtype", ...); aborts on unknown names.
Table MakeDatasetByName(const std::string& name, size_t n, Rng* rng);

/// All labeled dataset names, low-dimensional first.
std::vector<std::string> LabeledDatasetNames();

}  // namespace daisy::data

#endif  // DAISY_DATA_GENERATORS_REALISTIC_H_

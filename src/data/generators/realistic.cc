#include "data/generators/realistic.h"

#include "data/generators/sim_config.h"

namespace daisy::data {

namespace {

// Each stand-in derives its SimConfig from a fixed seed so the schema
// and distributions are identical across runs; the caller's rng only
// drives record sampling.
Table FromRandomConfig(const RandomSimOptions& opts, uint64_t config_seed,
                       size_t n, Rng* rng) {
  Rng config_rng(config_seed);
  SimConfig config = RandomSimConfig(opts, &config_rng);
  return GenerateSimTable(config, n, rng);
}

}  // namespace

Table MakeHtru2Sim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 8;
  opts.num_categorical = 0;
  opts.num_labels = 2;
  opts.label_priors = {0.91, 0.09};  // pulsars are rare
  opts.min_modes = 1;
  opts.max_modes = 3;
  opts.label_separation = 2.0;
  return FromRandomConfig(opts, 0xA001, n, rng);
}

Table MakeDigitsSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 16;
  opts.num_categorical = 0;
  opts.num_labels = 10;
  opts.min_modes = 1;
  opts.max_modes = 2;
  opts.label_separation = 2.5;
  return FromRandomConfig(opts, 0xA002, n, rng);
}

Table MakeAdultSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 6;
  opts.num_categorical = 8;
  opts.num_labels = 2;
  // Paper: positive:negative = 0.34, i.e. ~25% positive.
  opts.label_priors = {0.75, 0.25};
  opts.min_modes = 2;  // age/hours-per-week style multi-modality
  opts.max_modes = 4;
  opts.min_categories = 2;
  opts.max_categories = 12;
  opts.label_separation = 1.5;
  return FromRandomConfig(opts, 0xA003, n, rng);
}

Table MakeCovTypeSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 10;
  opts.num_categorical = 2;
  opts.num_labels = 7;
  opts.label_priors = {0.30, 0.46, 0.06, 0.04, 0.05, 0.04, 0.05};
  opts.min_modes = 1;
  opts.max_modes = 3;
  opts.min_categories = 4;
  opts.max_categories = 12;
  opts.label_separation = 1.8;
  return FromRandomConfig(opts, 0xA004, n, rng);
}

Table MakeSatSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 36;
  opts.num_categorical = 0;
  opts.num_labels = 6;
  opts.min_modes = 1;
  opts.max_modes = 2;
  opts.label_separation = 2.0;
  return FromRandomConfig(opts, 0xA005, n, rng);
}

Table MakeAnuranSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 22;
  opts.num_categorical = 0;
  opts.num_labels = 10;
  // Very skew: dominated by a few species (paper: 3478 vs 68 records).
  opts.label_priors = {0.30, 0.25, 0.15, 0.10, 0.06, 0.05, 0.04, 0.03,
                       0.01, 0.01};
  opts.min_modes = 1;
  opts.max_modes = 2;
  opts.label_separation = 2.2;
  return FromRandomConfig(opts, 0xA006, n, rng);
}

Table MakeCensusSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 9;
  opts.num_categorical = 30;
  opts.num_labels = 2;
  opts.label_priors = {0.95, 0.05};
  opts.min_modes = 1;
  opts.max_modes = 3;
  opts.min_categories = 2;
  opts.max_categories = 10;
  opts.label_separation = 1.5;
  return FromRandomConfig(opts, 0xA007, n, rng);
}

Table MakeBingSim(size_t n, Rng* rng) {
  RandomSimOptions opts;
  opts.num_numerical = 7;
  opts.num_categorical = 23;
  opts.num_labels = 1;  // generated, then stripped to unlabeled below
  opts.min_modes = 2;
  opts.max_modes = 4;
  opts.min_categories = 2;
  opts.max_categories = 16;
  Rng config_rng(0xA008);
  SimConfig config = RandomSimConfig(opts, &config_rng);
  config.label_names.clear();  // AQP-only table: no label attribute
  config.label_priors.clear();
  return GenerateSimTable(config, n, rng);
}

Table MakeDatasetByName(const std::string& name, size_t n, Rng* rng) {
  if (name == "htru2") return MakeHtru2Sim(n, rng);
  if (name == "digits") return MakeDigitsSim(n, rng);
  if (name == "adult") return MakeAdultSim(n, rng);
  if (name == "covtype") return MakeCovTypeSim(n, rng);
  if (name == "sat") return MakeSatSim(n, rng);
  if (name == "anuran") return MakeAnuranSim(n, rng);
  if (name == "census") return MakeCensusSim(n, rng);
  if (name == "bing") return MakeBingSim(n, rng);
  DAISY_CHECK(false && "unknown dataset name");
  return Table();
}

std::vector<std::string> LabeledDatasetNames() {
  return {"htru2", "digits", "adult", "covtype", "sat", "anuran", "census"};
}

}  // namespace daisy::data

// Heavy-tailed benchmark tables for the rare-label robustness sweep:
// Zipf-distributed categoricals (a long tail of rare categories), a
// Pareto-distributed numeric column (the critic's exploding-gradient
// trigger) and a configurable 1:R binary label imbalance. These are the
// stress inputs for training-by-sampling and critic regularization —
// uniform sampling sees a tail category once per epoch at best, and an
// unregularized critic is dominated by the Pareto outliers.
#ifndef DAISY_DATA_GENERATORS_SKEWED_H_
#define DAISY_DATA_GENERATORS_SKEWED_H_

#include "core/rng.h"
#include "data/table.h"

namespace daisy::data {

struct SkewedTableOptions {
  size_t num_records = 10000;

  /// Domain size of the Zipf categorical attribute.
  size_t zipf_domain = 12;
  /// Zipf exponent s: P(category c) proportional to 1/(c+1)^s. Larger =
  /// heavier head, rarer tail.
  double zipf_exponent = 1.5;

  /// Pareto tail index alpha of the "heavy" numeric attribute; values
  /// below 2 have infinite variance (the interesting regime).
  double pareto_shape = 1.5;
  /// Pareto scale x_m (the minimum value).
  double pareto_scale = 1.0;

  /// Label imbalance R: exactly one minority-label record per R
  /// majority-label records (deterministic 1:R interleaving, so a test
  /// asserting the ratio never flakes). R = 999 gives the paper-style
  /// 1:1000 skew on the label column.
  size_t label_imbalance = 999;
};

/// Generates the skewed table. Schema: category (Zipf categorical),
/// heavy (Pareto numeric), value (category-indexed Gaussian numeric, so
/// the joint (category, value) distribution is learnable), label
/// (binary, 1:R imbalanced, label column). Minority records draw their
/// category from the REVERSED Zipf weights — the rare label lives in
/// the rare categories, coupling the two skews the way fraud/anomaly
/// tables do.
Table MakeSkewedTable(const SkewedTableOptions& opts, Rng* rng);

}  // namespace daisy::data

#endif  // DAISY_DATA_GENERATORS_SKEWED_H_

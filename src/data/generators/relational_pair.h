// Seeded two-table relational fixture shared by the relational tests
// and benches (the multi-table counterpart of MakeSkewedTable): a
// parent table with a numeric primary key and a child table whose
// foreign-key fan-out follows a Zipf law — most parents have zero or
// one child, a heavy head has many — with cross-table correlations the
// relational evaluation metrics can measure (child `amount` tracks
// parent `budget`; child `channel` tracks parent `segment`).
#ifndef DAISY_DATA_GENERATORS_RELATIONAL_PAIR_H_
#define DAISY_DATA_GENERATORS_RELATIONAL_PAIR_H_

#include "core/rng.h"
#include "data/relational_schema.h"
#include "data/table.h"

namespace daisy::data {

struct RelationalPairOptions {
  size_t num_parents = 200;

  /// Children per parent are drawn from {0, ..., max_fanout} with
  /// P(c) proportional to 1/(c+1)^zipf_exponent — the Zipf fan-out.
  size_t max_fanout = 8;
  double zipf_exponent = 1.2;

  /// Domain of the parent's categorical `segment` attribute.
  size_t num_segments = 4;
  /// Domain of the child's categorical `channel` attribute.
  size_t num_channels = 3;
};

struct RelationalPair {
  Table parent;  ///< user_id (PK), segment (cat), budget (num)
  Table child;   ///< order_id (PK), user_id (FK), channel (cat), amount (num)
  RelationalSchema schema;
};

/// Generates the pair. Parent PKs are 1..num_parents; child PKs are
/// 1..num_children; every child FK references an existing parent, so
/// the fixture's FK validity is exactly 1.0 by construction. Output is
/// a pure function of (opts, rng stream).
RelationalPair MakeRelationalPair(const RelationalPairOptions& opts,
                                  Rng* rng);

}  // namespace daisy::data

#endif  // DAISY_DATA_GENERATORS_RELATIONAL_PAIR_H_

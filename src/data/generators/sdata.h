// The paper's simulated datasets (§6.1), generated exactly as
// specified: SDataNum from a 5x5 grid of correlated bivariate Gaussians
// and SDataCat from a 5-node chain Bayesian network.
#ifndef DAISY_DATA_GENERATORS_SDATA_H_
#define DAISY_DATA_GENERATORS_SDATA_H_

#include "core/rng.h"
#include "data/table.h"

namespace daisy::data {

struct SDataNumOptions {
  size_t num_records = 10000;
  /// Correlation coefficient of each bivariate Gaussian (paper uses
  /// 0.5 and 0.9).
  double correlation = 0.5;
  /// Fraction of records carrying the positive label (paper: 0.5 for
  /// balanced, 0.1 for the 1:9 skew setting).
  double positive_ratio = 0.5;
};

/// 25 bivariate Gaussians with means on {-4,-2,0,2,4}^2 and stddevs
/// drawn from U(0.5, 1); each record samples one mode. The binary label
/// selects between two disjoint subsets of modes so it is learnable.
Table MakeSDataNum(const SDataNumOptions& opts, Rng* rng);

struct SDataCatOptions {
  size_t num_records = 10000;
  /// Diagonal mass of each edge's conditional probability matrix
  /// (paper uses 0.5 and 0.9); larger = stronger attribute dependence.
  double diagonal_p = 0.5;
  /// Fraction of records carrying the positive label.
  double positive_ratio = 0.5;
  /// Domain size of each of the 5 chained attributes.
  size_t domain_size = 4;
};

/// 5 categorical attributes linked in a chain Bayesian network; the
/// root's distribution is conditioned on the binary label.
Table MakeSDataCat(const SDataCatOptions& opts, Rng* rng);

}  // namespace daisy::data

#endif  // DAISY_DATA_GENERATORS_SDATA_H_

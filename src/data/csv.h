// CSV import/export for Table, with schema inference on read.
#ifndef DAISY_DATA_CSV_H_
#define DAISY_DATA_CSV_H_

#include <string>

#include "core/status.h"
#include "data/table.h"

namespace daisy::data {

/// RFC-4180 escaping for one cell: the field is quoted (with embedded
/// quotes doubled) when it contains a comma, quote, CR or LF. Exposed
/// so streaming writers (the serve CSV encoder) produce bytes identical
/// to WriteCsv.
std::string EscapeCsvField(const std::string& s);

/// Writes the table with a header row; categorical cells are written as
/// category names, numerics with full precision. Cells containing
/// delimiters, quotes or line breaks are quoted per RFC 4180, and
/// ReadCsv round-trips them (including embedded newlines).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row. Columns where every value parses as a
/// number become numerical; everything else becomes categorical with
/// the observed distinct values as its domain. `label_column` (by name)
/// optionally designates the label; it must resolve to a categorical
/// column (pass "" for no label).
Result<Table> ReadCsv(const std::string& path,
                      const std::string& label_column = "");

}  // namespace daisy::data

#endif  // DAISY_DATA_CSV_H_

// CSV import/export for Table, with schema inference on read.
#ifndef DAISY_DATA_CSV_H_
#define DAISY_DATA_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/table.h"

namespace daisy::data {

/// Strict numeric parse used for CSV schema inference: the whole field
/// must be consumed by strtod and must be non-empty. Exposed so the
/// streaming CSV->dcol converter infers types byte-identically to
/// ReadCsv.
bool ParseCsvNumber(const std::string& s, double* out);

/// Record-at-a-time CSV reader: same RFC-4180 grammar as ReadCsv
/// (quoted fields, doubled quotes, CRLF line endings, fields spanning
/// physical lines) but holding only one record in memory, so
/// arbitrarily large files stream in bounded space. Open() consumes
/// the header row; call Open() again to rewind for another pass.
class CsvStreamReader {
 public:
  CsvStreamReader() = default;

  Status Open(const std::string& path);

  /// Header fields (valid after a successful Open).
  const std::vector<std::string>& header() const { return header_; }

  /// Reads the next data record. Sets *got = false on clean EOF.
  /// Ragged records (width != header width) are an error.
  Status Next(std::vector<std::string>* fields, bool* got);

  /// Data records returned by Next since the last Open.
  size_t rows_read() const { return rows_read_; }

 private:
  std::ifstream in_;
  std::string path_;
  std::vector<std::string> header_;
  size_t rows_read_ = 0;
};

/// RFC-4180 escaping for one cell: the field is quoted (with embedded
/// quotes doubled) when it contains a comma, quote, CR or LF. Exposed
/// so streaming writers (the serve CSV encoder) produce bytes identical
/// to WriteCsv.
std::string EscapeCsvField(const std::string& s);

/// Writes the table with a header row; categorical cells are written as
/// category names, numerics with full precision. Cells containing
/// delimiters, quotes or line breaks are quoted per RFC 4180, and
/// ReadCsv round-trips them (including embedded newlines).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row. Columns where every value parses as a
/// number become numerical; everything else becomes categorical with
/// the observed distinct values as its domain. `label_column` (by name)
/// optionally designates the label; it must resolve to a categorical
/// column (pass "" for no label).
Result<Table> ReadCsv(const std::string& path,
                      const std::string& label_column = "");

}  // namespace daisy::data

#endif  // DAISY_DATA_CSV_H_

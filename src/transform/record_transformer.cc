#include "transform/record_transformer.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"
#include "data/columnar.h"

namespace daisy::transform {

namespace {

size_t CeilSqrt(size_t n) {
  size_t s = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  while (s * s < n) ++s;
  return s;
}

}  // namespace

RecordTransformer RecordTransformer::FitImpl(const data::Schema& full,
                                             const TransformOptions& options,
                                             Rng* rng,
                                             const ColumnStats& stats) {
  RecordTransformer t;
  t.options_ = options;
  if (options.form == SampleForm::kMatrix) {
    // Matrix-formed samples need exactly one value per attribute, so
    // one-hot and GMM-based schemes are not applicable (paper §4).
    t.options_.categorical = CategoricalEncoding::kOrdinal;
    t.options_.numerical = NumericalNormalization::kSimple;
  }

  std::vector<size_t> source_cols;
  std::vector<data::Attribute> attrs;
  for (size_t j = 0; j < full.num_attributes(); ++j) {
    if (options.exclude_label && full.has_label() && j == full.label_index())
      continue;
    source_cols.push_back(j);
    attrs.push_back(full.attribute(j));
  }
  int label_index = -1;
  if (!options.exclude_label && full.has_label()) {
    for (size_t i = 0; i < source_cols.size(); ++i)
      if (source_cols[i] == full.label_index())
        label_index = static_cast<int>(i);
  }
  t.schema_ = data::Schema(attrs, label_index);

  size_t offset = 0;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const data::Attribute& a = attrs[i];
    AttrSegment seg;
    seg.attr_index = i;
    seg.source_col = source_cols[i];
    seg.offset = offset;
    if (a.is_categorical()) {
      seg.domain = a.domain_size();
      DAISY_CHECK(seg.domain >= 1);
      if (t.options_.categorical == CategoricalEncoding::kOneHot) {
        seg.kind = AttrSegment::Kind::kOneHotCat;
        seg.width = seg.domain;
      } else {
        seg.kind = AttrSegment::Kind::kOrdinalCat;
        seg.width = 1;
        // Vector form pairs ordinal with a sigmoid head -> [0, 1];
        // matrix form flows through tanh -> [-1, 1].
        if (t.options_.form == SampleForm::kMatrix) {
          seg.lo = -1.0;
          seg.hi = 1.0;
        } else {
          seg.lo = 0.0;
          seg.hi = 1.0;
        }
      }
    } else {
      if (t.options_.numerical == NumericalNormalization::kGmm) {
        seg.kind = AttrSegment::Kind::kGmmNumeric;
        stats::Gmm1d::Options gopts;
        gopts.components = options.gmm_components;
        seg.gmm = stats.fit_gmm(seg.source_col, gopts, rng);
        seg.width = 1 + seg.gmm.num_components();
      } else {
        seg.kind = AttrSegment::Kind::kSimpleNumeric;
        seg.width = 1;
        seg.v_min = stats.attr_min(seg.source_col);
        seg.v_max = stats.attr_max(seg.source_col);
        if (seg.v_max <= seg.v_min) seg.v_max = seg.v_min + 1.0;
        seg.lo = -1.0;
        seg.hi = 1.0;
      }
    }
    offset += seg.width;
    t.segments_.push_back(std::move(seg));
  }
  t.sample_dim_ = offset;

  if (t.options_.form == SampleForm::kMatrix) {
    t.matrix_side_ = CeilSqrt(t.sample_dim_);
    t.sample_dim_ = t.matrix_side_ * t.matrix_side_;  // zero padding
  }
  return t;
}

RecordTransformer RecordTransformer::Fit(const data::Table& table,
                                         const TransformOptions& options,
                                         Rng* rng) {
  DAISY_CHECK(table.num_records() > 0);
  ColumnStats stats;
  stats.fit_gmm = [&table](size_t col, const stats::Gmm1d::Options& gopts,
                           Rng* r) {
    return stats::Gmm1d::Fit(table.Column(col), gopts, r);
  };
  stats.attr_min = [&table](size_t col) { return table.AttributeMin(col); };
  stats.attr_max = [&table](size_t col) { return table.AttributeMax(col); };
  return FitImpl(table.schema(), options, rng, stats);
}

namespace {

// One column of a paged table as a streaming value source. Scans go
// straight to disk (no cache churn); the rare point lookups (k-means++
// reseeds) fault through the table's page cache. IO errors abort: the
// file's checksums were verified at Open, so a failure here is a
// hardware/filesystem fault, not bad data.
class PagedColumnSource final : public stats::ValueSource {
 public:
  PagedColumnSource(const data::PagedTable& table, size_t col)
      : table_(table), col_(col) {}
  size_t size() const override { return table_.num_records(); }
  double At(size_t i) const override {
    auto v = table_.ValueAt(i, col_);
    DAISY_CHECK(v.ok());
    return v.value();
  }
  void Read(size_t begin, size_t end, double* out) const override {
    DAISY_CHECK(table_.ScanColumn(col_, begin, end, out).ok());
  }

 private:
  const data::PagedTable& table_;
  size_t col_;
};

}  // namespace

RecordTransformer RecordTransformer::FitStreaming(
    const data::PagedTable& table, const TransformOptions& options,
    Rng* rng) {
  DAISY_CHECK(table.num_records() > 0);
  ColumnStats stats;
  stats.fit_gmm = [&table](size_t col, const stats::Gmm1d::Options& gopts,
                           Rng* r) {
    return stats::Gmm1d::FitStreaming(PagedColumnSource(table, col), gopts,
                                      r);
  };
  stats.attr_min = [&table](size_t col) { return table.attribute_min(col); };
  stats.attr_max = [&table](size_t col) { return table.attribute_max(col); };
  return FitImpl(table.schema(), options, rng, stats);
}

RecordTransformer RecordTransformer::FromState(
    const TransformOptions& options, const data::Schema& schema,
    std::vector<AttrSegment> segments) {
  RecordTransformer t;
  t.options_ = options;
  t.schema_ = schema;
  t.segments_ = std::move(segments);
  size_t dim = 0;
  for (const auto& seg : t.segments_) {
    DAISY_CHECK(seg.offset == dim);
    DAISY_CHECK(seg.attr_index < t.schema_.num_attributes());
    dim += seg.width;
  }
  t.sample_dim_ = dim;
  if (t.options_.form == SampleForm::kMatrix) {
    t.matrix_side_ = CeilSqrt(dim);
    t.sample_dim_ = t.matrix_side_ * t.matrix_side_;
  }
  return t;
}

void RecordTransformer::EncodeRecord(const data::Table& table, size_t record,
                                     double* out) const {
  for (const AttrSegment& seg : segments_) {
    const double raw = table.value(record, seg.source_col);
    switch (seg.kind) {
      case AttrSegment::Kind::kSimpleNumeric: {
        const double norm =
            -1.0 + 2.0 * (raw - seg.v_min) / (seg.v_max - seg.v_min);
        out[seg.offset] = std::clamp(norm, -1.0, 1.0);
        break;
      }
      case AttrSegment::Kind::kGmmNumeric: {
        const size_t k = seg.gmm.MostLikelyComponent(raw);
        const double vgmm =
            (raw - seg.gmm.mean(k)) / (2.0 * seg.gmm.stddev(k));
        out[seg.offset] = std::clamp(vgmm, -1.0, 1.0);
        for (size_t c = 0; c < seg.gmm.num_components(); ++c)
          out[seg.offset + 1 + c] = (c == k) ? 1.0 : 0.0;
        break;
      }
      case AttrSegment::Kind::kOneHotCat: {
        const size_t idx = table.category(record, seg.source_col);
        for (size_t c = 0; c < seg.domain; ++c)
          out[seg.offset + c] = (c == idx) ? 1.0 : 0.0;
        break;
      }
      case AttrSegment::Kind::kOrdinalCat: {
        const size_t idx = table.category(record, seg.source_col);
        const double denom =
            seg.domain > 1 ? static_cast<double>(seg.domain - 1) : 1.0;
        out[seg.offset] =
            seg.lo + (seg.hi - seg.lo) * static_cast<double>(idx) / denom;
        break;
      }
    }
  }
}

Matrix RecordTransformer::Transform(const data::Table& table) const {
  Matrix out(table.num_records(), sample_dim_);
  for (size_t i = 0; i < table.num_records(); ++i)
    EncodeRecord(table, i, out.row(i));
  return out;
}

Matrix RecordTransformer::TransformRows(const data::Table& table,
                                        const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), sample_dim_);
  for (size_t i = 0; i < rows.size(); ++i)
    EncodeRecord(table, rows[i], out.row(i));
  return out;
}

data::Table RecordTransformer::InverseTransform(const Matrix& samples) const {
  DAISY_CHECK(samples.cols() == sample_dim_);
  const kern::KernelTable& kt = kern::Active();
  data::Table out(schema_);
  out.Reserve(samples.rows());
  std::vector<double> record(schema_.num_attributes());
  for (size_t i = 0; i < samples.rows(); ++i) {
    const double* s = samples.row(i);
    for (const AttrSegment& seg : segments_) {
      double v = 0.0;
      switch (seg.kind) {
        case AttrSegment::Kind::kSimpleNumeric: {
          const double norm = std::clamp(s[seg.offset], -1.0, 1.0);
          v = seg.v_min + (norm + 1.0) / 2.0 * (seg.v_max - seg.v_min);
          break;
        }
        case AttrSegment::Kind::kGmmNumeric: {
          // Dispatched first-max-wins argmax over the component
          // selector (softmax outputs are NaN-free by construction).
          const size_t k =
              kt.argmax(s + seg.offset + 1, seg.gmm.num_components());
          const double vgmm = std::clamp(s[seg.offset], -1.0, 1.0);
          v = vgmm * 2.0 * seg.gmm.stddev(k) + seg.gmm.mean(k);
          break;
        }
        case AttrSegment::Kind::kOneHotCat: {
          v = static_cast<double>(kt.argmax(s + seg.offset, seg.domain));
          break;
        }
        case AttrSegment::Kind::kOrdinalCat: {
          const double norm = std::clamp(s[seg.offset], seg.lo, seg.hi);
          const double denom = seg.hi - seg.lo;
          const double scaled = (norm - seg.lo) / denom *
                                (static_cast<double>(seg.domain) - 1.0);
          v = std::clamp(std::round(scaled), 0.0,
                         static_cast<double>(seg.domain) - 1.0);
          break;
        }
      }
      record[seg.attr_index] = v;
    }
    out.AppendRecord(record);
  }
  return out;
}

}  // namespace daisy::transform

// Phase I / Phase III of the paper's framework (Section 4): reversible
// transformation between records with mixed attribute types and the
// numeric samples fed to GAN/VAE models.
//
//   categorical  -> ordinal encoding          (1 value)
//                 | one-hot encoding          (domain-size values)
//   numerical    -> simple normalization      (1 value in [-1, 1])
//                 | GMM-based normalization   (1 + components values)
//
// Samples are assembled in vector form (concatenation; MLP/LSTM) or
// matrix form (square zero-padded matrix; CNN — which restricts the
// per-attribute schemes to the 1-value ones, as the paper notes).
#ifndef DAISY_TRANSFORM_RECORD_TRANSFORMER_H_
#define DAISY_TRANSFORM_RECORD_TRANSFORMER_H_

#include <functional>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "data/table.h"
#include "stats/gmm.h"

namespace daisy::data {
class PagedTable;
}

namespace daisy::transform {

enum class CategoricalEncoding { kOrdinal, kOneHot };
enum class NumericalNormalization { kSimple, kGmm };
enum class SampleForm { kVector, kMatrix };

struct TransformOptions {
  CategoricalEncoding categorical = CategoricalEncoding::kOneHot;
  NumericalNormalization numerical = NumericalNormalization::kGmm;
  SampleForm form = SampleForm::kVector;
  /// Mixture size for GMM-based normalization.
  size_t gmm_components = 5;
  /// Drop the label attribute from the sample (conditional GAN feeds it
  /// separately as a condition vector).
  bool exclude_label = false;
};

/// How one attribute maps into the sample; drives both decoding and the
/// attribute-aware generator output heads (paper cases C1-C4).
struct AttrSegment {
  enum class Kind {
    kSimpleNumeric,  // 1 value, tanh head
    kGmmNumeric,     // 1 value (tanh) + components one-hot (softmax)
    kOneHotCat,      // domain-size one-hot (softmax)
    kOrdinalCat,     // 1 value, sigmoid head mapped over the domain
  };

  Kind kind;
  size_t attr_index;  // column in the (sub-)schema being transformed
  size_t source_col;  // column in the original (full) table
  size_t offset;      // first sample dimension of this segment
  size_t width;       // number of sample dimensions

  // kSimpleNumeric / kOrdinalCat range parameters.
  double v_min = 0.0, v_max = 1.0;  // original value range (numeric)
  double lo = -1.0, hi = 1.0;       // encoded target range
  size_t domain = 0;                // categorical domain size

  stats::Gmm1d gmm;  // kGmmNumeric only
};

/// Fits per-attribute statistics on a table, then maps records to
/// samples and back. Thread-compatible after Fit.
class RecordTransformer {
 public:
  /// Learns min/max (simple) or a GMM (gmm) per numerical attribute.
  /// With matrix form, `options.categorical` / `options.numerical` are
  /// forced to ordinal / simple (the only compatible schemes).
  static RecordTransformer Fit(const data::Table& table,
                               const TransformOptions& options, Rng* rng);

  /// Out-of-core Fit over a paged table: simple-normalization ranges
  /// come from the .dcol footer (written with Table::AttributeMin/Max
  /// accumulation order) and GMM stats from Gmm1d::FitStreaming, which
  /// scans each numeric column in bounded windows. Consumes the rng in
  /// the same order as Fit, so the fitted state is bitwise identical
  /// to Fit on the equivalent in-memory table.
  static RecordTransformer FitStreaming(const data::PagedTable& table,
                                        const TransformOptions& options,
                                        Rng* rng);

  /// Reconstructs a fitted transformer from persisted state. The
  /// segments must be internally consistent (offsets/widths); the
  /// derived dimensions are recomputed.
  static RecordTransformer FromState(const TransformOptions& options,
                                     const data::Schema& schema,
                                     std::vector<AttrSegment> segments);

  /// Dimensionality d of a transformed sample.
  size_t sample_dim() const { return sample_dim_; }
  /// Side length for matrix-formed samples (0 for vector form).
  size_t matrix_side() const { return matrix_side_; }
  const TransformOptions& options() const { return options_; }
  /// The schema actually transformed (label removed when excluded).
  const data::Schema& schema() const { return schema_; }
  const std::vector<AttrSegment>& segments() const { return segments_; }

  /// Encodes every record into a row of the returned n x d matrix.
  Matrix Transform(const data::Table& table) const;

  /// Encodes a subset of records.
  Matrix TransformRows(const data::Table& table,
                       const std::vector<size_t>& rows) const;

  /// Decodes samples back into records under schema(). Values are
  /// clamped into valid ranges; categorical blocks decode via argmax.
  data::Table InverseTransform(const Matrix& samples) const;

 private:
  TransformOptions options_;
  data::Schema schema_;
  std::vector<AttrSegment> segments_;
  size_t sample_dim_ = 0;
  size_t matrix_side_ = 0;

  /// Shared fitting body: Fit / FitStreaming differ only in where the
  /// per-column statistics come from.
  struct ColumnStats {
    std::function<stats::Gmm1d(size_t col, const stats::Gmm1d::Options&,
                               Rng*)>
        fit_gmm;
    std::function<double(size_t col)> attr_min;
    std::function<double(size_t col)> attr_max;
  };
  static RecordTransformer FitImpl(const data::Schema& full,
                                   const TransformOptions& options, Rng* rng,
                                   const ColumnStats& stats);

  void EncodeRecord(const data::Table& table, size_t record,
                    double* out) const;
};

}  // namespace daisy::transform

#endif  // DAISY_TRANSFORM_RECORD_TRANSFORMER_H_

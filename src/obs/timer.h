// Wall-clock timers for run telemetry. steady_clock based, so they
// measure elapsed real time and are immune to system clock changes.
#ifndef DAISY_OBS_TIMER_H_
#define DAISY_OBS_TIMER_H_

#include <chrono>

namespace daisy::obs {

/// Millisecond stopwatch, running from construction (or Reset).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's wall time (ms) to *accum when the scope exits.
/// For attributing time to phases without threading timers around:
///
///   double transform_ms = 0.0;
///   { ScopedTimerMs t(&transform_ms); ... }
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* accum) : accum_(accum) {}
  ~ScopedTimerMs() { *accum_ += timer_.ElapsedMs(); }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* accum_;
  WallTimer timer_;
};

}  // namespace daisy::obs

#endif  // DAISY_OBS_TIMER_H_

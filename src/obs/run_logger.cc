#include "obs/run_logger.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace daisy::obs {

namespace {

// %.17g round-trips every double exactly.
void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendUnsigned(std::string* out, unsigned long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  *out += buf;
}

void AppendString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        // Remaining control characters would break the one-record-per-
        // line framing (and are invalid raw JSON); emit them \u-escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

// Minimal scanner for the flat objects ToJsonLine emits.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        c = s_[pos_++];
        switch (c) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // \uXXXX; AppendString only emits codepoints < 0x20, so a
            // single byte suffices (no UTF-8 expansion needed here).
            if (pos_ + 4 > s_.size()) return false;
            unsigned v = 0;
            for (size_t i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (v > 0xFF) return false;  // beyond what we ever emit
            c = static_cast<char>(v);
            break;
          }
          default: break;  // \" and \\ (and anything else) literal
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) return false;  // unterminated string
    ++pos_;                               // closing quote
    return true;
  }

  // Decimal unsigned integer; keeps uint64 values (e.g. seeds above
  // 2^53) exact instead of routing them through double.
  bool ReadUnsigned(unsigned long long* out) {
    SkipSpace();
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    char* end = nullptr;
    *out = std::strtoull(s_.c_str() + pos_, &end, 10);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - s_.c_str());
    return true;
  }

  // Number or null (null -> NaN).
  bool ReadNumber(double* out) {
    SkipSpace();
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - s_.c_str());
    *out = v;
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToJsonLine(const MetricRecord& r) {
  std::string out = "{\"run\":";
  AppendString(&out, r.run);
  auto field = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    AppendNumber(&out, v);
  };
  auto ufield = [&out](const char* key, unsigned long long v) {
    out += ",\"";
    out += key;
    out += "\":";
    AppendUnsigned(&out, v);
  };
  ufield("iter", r.iter);
  field("d_loss", r.d_loss);
  field("g_loss", r.g_loss);
  field("g_grad_norm", r.g_grad_norm);
  field("d_grad_norm", r.d_grad_norm);
  field("param_norm", r.param_norm);
  field("value", r.value);
  field("iter_ms", r.iter_ms);
  field("wall_ms", r.wall_ms);
  ufield("threads", r.threads);
  ufield("seed", r.seed);
  ufield("starved_labels", r.starved_labels);
  out += '}';
  return out;
}

Result<MetricRecord> ParseJsonLine(const std::string& line) {
  LineScanner scan(line);
  if (!scan.Consume('{'))
    return Status::InvalidArgument("JSONL record must start with '{'");

  MetricRecord r;
  bool first = true;
  while (!scan.Consume('}')) {
    if (!first && !scan.Consume(','))
      return Status::InvalidArgument("expected ',' between JSONL fields");
    first = false;
    std::string key;
    if (!scan.ReadString(&key) || !scan.Consume(':'))
      return Status::InvalidArgument("malformed JSONL key");
    // ReadString consumes nothing unless the value starts with '"', so
    // it doubles as a peek: string values (run, or unknown keys added
    // by future schema versions) take this branch, numbers fall through.
    std::string sval;
    if (scan.ReadString(&sval)) {
      if (key == "run") r.run = sval;
      continue;
    }
    if (key == "iter" || key == "threads" || key == "seed" ||
        key == "starved_labels") {
      unsigned long long u = 0;
      if (!scan.ReadUnsigned(&u))
        return Status::InvalidArgument("malformed integer for key '" + key +
                                       "'");
      if (key == "iter") r.iter = static_cast<size_t>(u);
      else if (key == "threads") r.threads = static_cast<size_t>(u);
      else if (key == "starved_labels")
        r.starved_labels = static_cast<size_t>(u);
      else r.seed = static_cast<uint64_t>(u);
      continue;
    }
    double v = 0.0;
    if (!scan.ReadNumber(&v))
      return Status::InvalidArgument("malformed value for key '" + key + "'");
    if (key == "d_loss") r.d_loss = v;
    else if (key == "g_loss") r.g_loss = v;
    else if (key == "g_grad_norm") r.g_grad_norm = v;
    else if (key == "d_grad_norm") r.d_grad_norm = v;
    else if (key == "param_norm") r.param_norm = v;
    else if (key == "value") r.value = v;
    else if (key == "iter_ms") r.iter_ms = v;
    else if (key == "wall_ms") r.wall_ms = v;
    // Unknown keys: skipped (forward compatibility).
  }
  if (!scan.AtEnd())
    return Status::InvalidArgument("trailing bytes after JSONL record");
  return r;
}

Result<std::unique_ptr<RunLogger>> RunLogger::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("cannot open run log '" + path + "' for writing");
  return std::unique_ptr<RunLogger>(new RunLogger(f, path));
}

namespace {

// Reads a whole file; a missing file reads as empty (a resumed run may
// point at a log path that was never created).
std::string ReadFileOrEmpty(const std::string& path) {
  std::string content;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

}  // namespace

Result<std::unique_ptr<RunLogger>> RunLogger::OpenForResume(
    const std::string& path) {
  std::string content = ReadFileOrEmpty(path);
  // Keep only complete lines: a writer killed between the record bytes
  // and its newline leaves a partial tail that would corrupt the next
  // appended record.
  const size_t last_nl = content.find_last_of('\n');
  if (last_nl == std::string::npos) {
    content.clear();
  } else {
    content.resize(last_nl + 1);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("cannot open run log '" + path + "' for writing");
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    std::fclose(f);
    return Status::IOError("failed to rewrite run log '" + path + "'");
  }
  std::fflush(f);
  auto logger = std::unique_ptr<RunLogger>(new RunLogger(f, path));
  for (char c : content)
    if (c == '\n') ++logger->lines_;
  return logger;
}

RunLogger::RunLogger(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

RunLogger::~RunLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLogger::Log(const MetricRecord& record) {
  const std::string line = ToJsonLine(record);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // keep the log readable even if the run dies
  ++lines_;
}

Status RunLogger::Flush() {
  if (std::fflush(file_) != 0)
    return Status::IOError("flush failed for run log '" + path_ + "'");
  return Status::OK();
}

Status RunLogger::ResumeAt(uint64_t n) {
  if (lines_ <= n) return Status::OK();
  if (std::fflush(file_) != 0)
    return Status::IOError("flush failed for run log '" + path_ + "'");
  std::string content = ReadFileOrEmpty(path_);
  size_t end = 0;
  uint64_t seen = 0;
  while (end < content.size() && seen < n) {
    if (content[end] == '\n') ++seen;
    ++end;
  }
  if (seen < n)
    return Status::IOError("run log '" + path_ + "' holds " +
                           std::to_string(seen) + " lines, cannot keep " +
                           std::to_string(n));
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr)
    return Status::IOError("cannot rewrite run log '" + path_ + "'");
  if (end > 0 && std::fwrite(content.data(), 1, end, file_) != end)
    return Status::IOError("failed to rewrite run log '" + path_ + "'");
  std::fflush(file_);
  lines_ = n;
  return Status::OK();
}

}  // namespace daisy::obs

#include "obs/run_logger.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace daisy::obs {

namespace {

// %.17g round-trips every double exactly.
void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

// Minimal scanner for the flat objects ToJsonLine emits.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) c = s_[pos_++];
      *out += c;
    }
    if (pos_ >= s_.size()) return false;  // unterminated string
    ++pos_;                               // closing quote
    return true;
  }

  // Number or null (null -> NaN).
  bool ReadNumber(double* out) {
    SkipSpace();
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - s_.c_str());
    *out = v;
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToJsonLine(const MetricRecord& r) {
  std::string out = "{\"run\":";
  AppendString(&out, r.run);
  auto field = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    AppendNumber(&out, v);
  };
  field("iter", static_cast<double>(r.iter));
  field("d_loss", r.d_loss);
  field("g_loss", r.g_loss);
  field("g_grad_norm", r.g_grad_norm);
  field("d_grad_norm", r.d_grad_norm);
  field("param_norm", r.param_norm);
  field("iter_ms", r.iter_ms);
  field("wall_ms", r.wall_ms);
  field("threads", static_cast<double>(r.threads));
  field("seed", static_cast<double>(r.seed));
  out += '}';
  return out;
}

Result<MetricRecord> ParseJsonLine(const std::string& line) {
  LineScanner scan(line);
  if (!scan.Consume('{'))
    return Status::InvalidArgument("JSONL record must start with '{'");

  MetricRecord r;
  bool first = true;
  while (!scan.Consume('}')) {
    if (!first && !scan.Consume(','))
      return Status::InvalidArgument("expected ',' between JSONL fields");
    first = false;
    std::string key;
    if (!scan.ReadString(&key) || !scan.Consume(':'))
      return Status::InvalidArgument("malformed JSONL key");
    // ReadString consumes nothing unless the value starts with '"', so
    // it doubles as a peek: string values (run, or unknown keys added
    // by future schema versions) take this branch, numbers fall through.
    std::string sval;
    if (scan.ReadString(&sval)) {
      if (key == "run") r.run = sval;
      continue;
    }
    double v = 0.0;
    if (!scan.ReadNumber(&v))
      return Status::InvalidArgument("malformed value for key '" + key + "'");
    if (key == "iter") r.iter = static_cast<size_t>(v);
    else if (key == "d_loss") r.d_loss = v;
    else if (key == "g_loss") r.g_loss = v;
    else if (key == "g_grad_norm") r.g_grad_norm = v;
    else if (key == "d_grad_norm") r.d_grad_norm = v;
    else if (key == "param_norm") r.param_norm = v;
    else if (key == "iter_ms") r.iter_ms = v;
    else if (key == "wall_ms") r.wall_ms = v;
    else if (key == "threads") r.threads = static_cast<size_t>(v);
    else if (key == "seed") r.seed = static_cast<uint64_t>(v);
    // Unknown keys: skipped (forward compatibility).
  }
  if (!scan.AtEnd())
    return Status::InvalidArgument("trailing bytes after JSONL record");
  return r;
}

Result<std::unique_ptr<RunLogger>> RunLogger::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("cannot open run log '" + path + "' for writing");
  return std::unique_ptr<RunLogger>(new RunLogger(f, path));
}

RunLogger::RunLogger(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

RunLogger::~RunLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLogger::Log(const MetricRecord& record) {
  const std::string line = ToJsonLine(record);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // keep the log readable even if the run dies
  ++lines_;
}

Status RunLogger::Flush() {
  if (std::fflush(file_) != 0)
    return Status::IOError("flush failed for run log '" + path_ + "'");
  return Status::OK();
}

}  // namespace daisy::obs

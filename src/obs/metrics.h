// Run telemetry for the training loops: one MetricRecord per logged
// iteration, pushed into a MetricSink. The trainers (GanTrainer and
// the baselines) emit records; sinks decide what to do with them —
// keep them in memory (MemorySink, tests), or stream them to disk as
// JSONL (RunLogger). Sinks are deliberately dumb: no aggregation, no
// sampling; cadence is the emitter's job (GanOptions::log_every).
#ifndef DAISY_OBS_METRICS_H_
#define DAISY_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace daisy::obs {

/// One logged training iteration. Loss semantics depend on `run`:
/// for GANs d_loss/g_loss are the discriminator/generator objectives;
/// single-model trainers (VAE, autoencoder pretraining) report their
/// loss in g_loss and leave d_loss at 0.
struct MetricRecord {
  std::string run;          // emitter tag, e.g. "gan.wtrain", "vae"
  size_t iter = 0;          // 1-based iteration (or epoch) index
  double d_loss = 0.0;
  double g_loss = 0.0;
  double g_grad_norm = 0.0; // global L2 grad norm at the last G update
  double d_grad_norm = 0.0; // same for D (0 when there is no D)
  double param_norm = 0.0;  // global L2 norm of the generator params
  double value = 0.0;       // generic metric value (evaluation suite)
  double iter_ms = 0.0;     // wall-clock spent in this iteration
  double wall_ms = 0.0;     // wall-clock since training started
  size_t threads = 0;       // par::NumThreads() at emit time
  uint64_t seed = 0;        // the run's base seed
  size_t starved_labels = 0;  // CTrain: labels with zero records (skipped)
};

/// Receives records from a training run. Implementations must not
/// throw; I/O errors surface through Flush.
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  virtual void Log(const MetricRecord& record) = 0;

  /// Forces buffered records out (no-op for in-memory sinks). Called
  /// by the trainers once per run, after the last record.
  virtual Status Flush() { return Status::OK(); }

  /// Number of records this sink has accepted so far. Checkpoints
  /// store this as the telemetry cursor so a resumed run knows where
  /// the uninterrupted log ended.
  virtual uint64_t records_logged() const { return 0; }

  /// Repositions the sink so the next Log appends as record n+1:
  /// records past n (logged by a crashed run after its last checkpoint)
  /// are discarded. A sink holding fewer than n records keeps what it
  /// has — a fresh sink attached to a resumed run starts empty and
  /// that is not an error.
  virtual Status ResumeAt(uint64_t n) {
    (void)n;
    return Status::OK();
  }
};

/// Keeps every record in memory — for tests and in-process analysis.
class MemorySink : public MetricSink {
 public:
  void Log(const MetricRecord& record) override {
    records_.push_back(record);
  }

  uint64_t records_logged() const override { return records_.size(); }

  Status ResumeAt(uint64_t n) override {
    if (records_.size() > n) records_.resize(n);
    return Status::OK();
  }

  const std::vector<MetricRecord>& records() const { return records_; }

 private:
  std::vector<MetricRecord> records_;
};

}  // namespace daisy::obs

#endif  // DAISY_OBS_METRICS_H_

#include "obs/sentinel.h"

#include <cmath>
#include <cstdio>

namespace daisy::obs {

namespace {

std::string Render(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

Status Diverged(size_t iter, const char* metric, const char* why, double v) {
  return Status::FailedPrecondition(
      "divergence at iteration " + std::to_string(iter) + ": " + metric +
      " " + why + " (" + Render(v) + ")");
}

}  // namespace

Status DivergenceSentinel::Check(const MetricRecord& r) const {
  if (!opts_.enabled) return Status::OK();

  struct Probe {
    const char* name;
    double value;
    double limit;
  };
  const Probe probes[] = {
      {"d_loss", r.d_loss, opts_.loss_limit},
      {"g_loss", r.g_loss, opts_.loss_limit},
      {"d_grad_norm", r.d_grad_norm, opts_.grad_limit},
      {"g_grad_norm", r.g_grad_norm, opts_.grad_limit},
      {"param_norm", r.param_norm, opts_.param_limit},
  };
  for (const Probe& p : probes) {
    if (!std::isfinite(p.value))
      return Diverged(r.iter, p.name, "is non-finite", p.value);
    if (std::fabs(p.value) > p.limit)
      return Diverged(r.iter, p.name, "exceeded its explosion limit",
                      p.value);
  }
  return Status::OK();
}

}  // namespace daisy::obs

// Divergence sentinel: per-iteration health checks on the training
// telemetry. GAN training collapses routinely (exploding W-critic
// losses, NaNs from DP noise, saturated generators); the sentinel
// turns those collapses from silent NaN traces — or hard aborts —
// into a descriptive Status the trainer can act on (stop cleanly,
// keep the last healthy snapshot).
#ifndef DAISY_OBS_SENTINEL_H_
#define DAISY_OBS_SENTINEL_H_

#include "obs/metrics.h"

namespace daisy::obs {

/// Thresholds for declaring a run divergent. The defaults are
/// deliberately loose: healthy runs of every trainer in this repo stay
/// orders of magnitude below them, so a trip is a real failure, not a
/// noisy iteration.
struct SentinelOptions {
  bool enabled = true;
  /// |d_loss| or |g_loss| above this is an explosion.
  double loss_limit = 1e8;
  /// A global gradient L2 norm above this is an explosion.
  double grad_limit = 1e8;
  /// Generator parameter L2 norm above this is an explosion.
  double param_limit = 1e10;
};

/// Stateless checker: feed it each iteration's MetricRecord.
class DivergenceSentinel {
 public:
  explicit DivergenceSentinel(const SentinelOptions& options = {})
      : opts_(options) {}

  /// OK while the run is healthy. On divergence, a FailedPrecondition
  /// naming the iteration, the offending metric and its value — e.g.
  /// "FailedPrecondition: divergence at iteration 42: d_loss is
  /// non-finite (nan)".
  Status Check(const MetricRecord& record) const;

  const SentinelOptions& options() const { return opts_; }

 private:
  SentinelOptions opts_;
};

}  // namespace daisy::obs

#endif  // DAISY_OBS_SENTINEL_H_

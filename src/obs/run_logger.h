// JSONL run logger: one single-line JSON object per MetricRecord,
// appended to a file as training progresses. The schema is flat
// (string / integer / float fields only) so any JSON parser — or the
// ParseJsonLine helper below — can read it back. Non-finite doubles
// are serialized as null, since JSON has no NaN/Infinity literals;
// integer fields (iter, threads, seed) are emitted as decimal
// integers so uint64 values above 2^53 round-trip exactly; control
// characters in string fields are \-escaped so the one-record-per-line
// framing survives arbitrary run tags.
#ifndef DAISY_OBS_RUN_LOGGER_H_
#define DAISY_OBS_RUN_LOGGER_H_

#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace daisy::obs {

/// Serializes a record as one line of JSON (no trailing newline).
std::string ToJsonLine(const MetricRecord& record);

/// Parses a line produced by ToJsonLine. Unknown keys are ignored;
/// null numeric fields come back as quiet NaN. Returns InvalidArgument
/// on malformed input.
Result<MetricRecord> ParseJsonLine(const std::string& line);

/// MetricSink that appends JSONL to a file. Create via Open; the file
/// is truncated, written line-by-line, and flushed on every record so
/// a crashed or killed run still leaves a readable log.
class RunLogger : public MetricSink {
 public:
  static Result<std::unique_ptr<RunLogger>> Open(const std::string& path);

  /// Like Open, but keeps an existing log instead of truncating it:
  /// complete lines are preserved (a trailing partial line from a
  /// killed writer is dropped) and new records append after them. Use
  /// with `--resume` so the combined log reads as one uninterrupted
  /// run once ResumeAt has trimmed it to the checkpoint's cursor.
  static Result<std::unique_ptr<RunLogger>> OpenForResume(
      const std::string& path);

  ~RunLogger() override;

  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  void Log(const MetricRecord& record) override;
  Status Flush() override;
  uint64_t records_logged() const override { return lines_; }

  /// Truncates the log to its first n lines (no-op when it already has
  /// n or fewer), so records a crashed run wrote after its last
  /// checkpoint are erased before the resumed run re-emits them.
  Status ResumeAt(uint64_t n) override;

  size_t lines_written() const { return lines_; }
  const std::string& path() const { return path_; }

 private:
  RunLogger(std::FILE* file, std::string path);

  std::FILE* file_;
  std::string path_;
  size_t lines_ = 0;
};

}  // namespace daisy::obs

#endif  // DAISY_OBS_RUN_LOGGER_H_

#include "relational/cond_encoder.h"

#include <algorithm>
#include <cmath>

namespace daisy::rel {

ParentCondEncoder ParentCondEncoder::Build(
    const data::Schema& modeled_schema, const std::vector<double>& col_min,
    const std::vector<double>& col_max) {
  DAISY_CHECK(col_min.size() == modeled_schema.num_attributes());
  DAISY_CHECK(col_max.size() == modeled_schema.num_attributes());
  ParentCondEncoder enc;
  size_t offset = 0;
  for (size_t j = 0; j < modeled_schema.num_attributes(); ++j) {
    const data::Attribute& a = modeled_schema.attribute(j);
    Feature f;
    f.source_col = j;
    f.categorical = a.is_categorical();
    f.offset = offset;
    if (f.categorical) {
      f.domain = a.domain_size();
      offset += f.domain;
    } else {
      f.v_min = col_min[j];
      f.v_max = col_max[j];
      offset += 1;
    }
    enc.features_.push_back(f);
  }
  enc.cond_dim_ = offset;
  return enc;
}

Matrix ParentCondEncoder::EncodeColumns(
    const std::vector<std::vector<double>>& cols, size_t n) const {
  DAISY_CHECK(cols.size() == features_.size());
  Matrix out(n, cond_dim_);
  for (size_t k = 0; k < features_.size(); ++k) {
    const Feature& f = features_[k];
    DAISY_CHECK(cols[k].size() == n);
    if (f.categorical) {
      for (size_t i = 0; i < n; ++i) {
        const long long c = std::llround(cols[k][i]);
        DAISY_CHECK(c >= 0 && c < static_cast<long long>(f.domain));
        out(i, f.offset + static_cast<size_t>(c)) = 1.0;
      }
    } else {
      const double span = f.v_max - f.v_min;
      for (size_t i = 0; i < n; ++i) {
        // Min-max to [-1, 1], clamped: synthetic parents can fall
        // outside the training range. A constant column encodes as 0.
        const double v = cols[k][i];
        double e = span > 0.0 ? 2.0 * (v - f.v_min) / span - 1.0 : 0.0;
        e = std::min(1.0, std::max(-1.0, e));
        out(i, f.offset) = e;
      }
    }
  }
  return out;
}

void ParentCondEncoder::Serialize(Serializer* out) const {
  out->WriteTag("cond_encoder");
  out->WriteU64(features_.size());
  for (const Feature& f : features_) {
    out->WriteU64(f.source_col);
    out->WriteU64(f.categorical ? 1 : 0);
    out->WriteU64(f.domain);
    out->WriteDouble(f.v_min);
    out->WriteDouble(f.v_max);
    out->WriteU64(f.offset);
  }
  out->WriteU64(cond_dim_);
}

ParentCondEncoder ParentCondEncoder::Deserialize(Deserializer* in) {
  in->ExpectTag("cond_encoder");
  ParentCondEncoder enc;
  const size_t n = in->ReadU64();
  if (!in->ok() || n > 100000) {
    if (in->ok()) in->Fail("implausible cond-encoder feature count");
    return enc;
  }
  enc.features_.resize(n);
  for (Feature& f : enc.features_) {
    f.source_col = in->ReadU64();
    f.categorical = in->ReadU64() == 1;
    f.domain = in->ReadU64();
    f.v_min = in->ReadDouble();
    f.v_max = in->ReadDouble();
    f.offset = in->ReadU64();
  }
  enc.cond_dim_ = in->ReadU64();
  return enc;
}

}  // namespace daisy::rel

#include "relational/relational_synthesizer.h"

#include <cmath>
#include <filesystem>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace daisy::rel {

namespace {

/// Declared table schema vs the schema the data actually arrived with
/// (CSV inference can disagree on types; catching it here beats a
/// cryptic transform failure three layers down).
Status CheckInputSchema(const data::RelationalTableDef& def,
                        const data::Schema& got) {
  if (got.num_attributes() != def.schema.num_attributes())
    return Status::InvalidArgument(
        "table '" + def.name + "': data has " +
        std::to_string(got.num_attributes()) + " columns, schema declares " +
        std::to_string(def.schema.num_attributes()));
  for (size_t j = 0; j < got.num_attributes(); ++j) {
    const auto& d = def.schema.attribute(j);
    const auto& g = got.attribute(j);
    if (d.name != g.name)
      return Status::InvalidArgument("table '" + def.name + "' column " +
                                     std::to_string(j) + ": data has '" +
                                     g.name + "', schema declares '" +
                                     d.name + "'");
    if (d.is_categorical() != g.is_categorical())
      return Status::InvalidArgument("table '" + def.name + "' column '" +
                                     d.name +
                                     "': categorical/numerical type differs "
                                     "between data and schema");
  }
  return Status::OK();
}

size_t InputRows(const RelationalInput& in) {
  return in.table != nullptr ? in.table->num_records()
                             : in.paged->num_records();
}

const data::Schema& InputSchema(const RelationalInput& in) {
  return in.table != nullptr ? in.table->schema() : in.paged->schema();
}

Result<std::vector<double>> ReadInputColumn(const RelationalInput& in,
                                            size_t col) {
  if (in.table != nullptr) return in.table->Column(col);
  std::vector<double> out(in.paged->num_records());
  DAISY_RETURN_IF_ERROR(
      in.paged->ScanColumn(col, 0, out.size(), out.data()));
  return out;
}

/// Training min/max of a column. The paged footer values are bitwise
/// equal to Table::AttributeMin/Max, which keeps the encoder — and so
/// the fitted model — byte-identical across the two input paths.
double InputMin(const RelationalInput& in, size_t col) {
  return in.table != nullptr ? in.table->AttributeMin(col)
                             : in.paged->attribute_min(col);
}
double InputMax(const RelationalInput& in, size_t col) {
  return in.table != nullptr ? in.table->AttributeMax(col)
                             : in.paged->attribute_max(col);
}

/// Encodes every record of a real (training) parent input.
Result<Matrix> EncodeParentInput(const RelationalInput& in,
                                 const std::vector<size_t>& kept,
                                 const ParentCondEncoder& encoder) {
  std::vector<std::vector<double>> cols;
  cols.reserve(encoder.features().size());
  for (const auto& f : encoder.features()) {
    auto col = ReadInputColumn(in, kept[f.source_col]);
    DAISY_RETURN_IF_ERROR(col.status());
    cols.push_back(std::move(col.value()));
  }
  return encoder.EncodeColumns(cols, InputRows(in));
}

/// Reassembles full-schema records around the GAN's modeled columns:
/// sequential synthetic primary keys 1..n, the FK column (if any) from
/// `fk_vals`, everything else from the modeled table in kept order.
data::Table AssembleTable(const data::Schema& full,
                          const std::vector<size_t>& kept,
                          const data::Table& modeled, size_t pk_col,
                          int fk_col, const std::vector<double>& fk_vals) {
  data::Table out(full);
  out.Reserve(modeled.num_records());
  std::vector<double> rec(full.num_attributes(), 0.0);
  for (size_t i = 0; i < modeled.num_records(); ++i) {
    rec[pk_col] = static_cast<double>(i + 1);
    if (fk_col >= 0) rec[static_cast<size_t>(fk_col)] = fk_vals[i];
    for (size_t k = 0; k < kept.size(); ++k)
      rec[kept[k]] = modeled.value(i, k);
    out.AppendRecord(rec);
  }
  return out;
}

}  // namespace

RelationalSynthesizer::RelationalSynthesizer(RelationalOptions options)
    : opts_(std::move(options)) {
  DAISY_CHECK(opts_.gan.parent_cond_dim == 0);
}

Status RelationalSynthesizer::Fit(const data::RelationalSchema& schema,
                                  const std::vector<RelationalInput>& inputs,
                                  obs::MetricSink* sink) {
  DAISY_CHECK(!fitted_);
  if (inputs.size() != schema.num_tables())
    return Status::InvalidArgument(
        "relational fit: " + std::to_string(inputs.size()) +
        " inputs for " + std::to_string(schema.num_tables()) + " tables");
  schema_ = schema;
  models_.clear();
  models_.resize(schema_.num_tables());

  for (size_t i = 0; i < inputs.size(); ++i) {
    const RelationalInput& in = inputs[i];
    if ((in.table != nullptr) == (in.paged != nullptr))
      return Status::InvalidArgument(
          "relational fit: table '" + schema_.table(i).name +
          "' must arrive as exactly one of in-memory or paged");
    DAISY_RETURN_IF_ERROR(CheckInputSchema(schema_.table(i), InputSchema(in)));
    if (InputRows(in) == 0)
      return Status::InvalidArgument("relational fit: table '" +
                                     schema_.table(i).name + "' is empty");
  }

  bool made_work_dir = false;
  for (size_t t : schema_.TopologicalOrder()) {
    const data::RelationalTableDef& def = schema_.table(t);
    const RelationalInput& in = inputs[t];
    TableModel& tm = models_[t];
    tm.kept_cols = schema_.ModeledColumns(t);
    if (tm.kept_cols.empty())
      return Status::InvalidArgument("relational fit: table '" + def.name +
                                     "' has no non-key columns to model");
    tm.real_rows = InputRows(in);

    // One deterministic seed per DECLARED table index, so the per-table
    // parameter-init and training streams are independent of the topo
    // traversal and of every other table's data.
    synth::GanOptions gopts = opts_.gan;
    gopts.seed = opts_.gan.seed + t;

    const data::ForeignKey* edge = schema_.ParentEdge(t);
    Matrix row_cond;
    if (edge != nullptr) {
      const int pi = schema_.FindTable(edge->parent_table);
      DAISY_CHECK(pi >= 0);
      const size_t p = static_cast<size_t>(pi);
      const RelationalInput& pin = inputs[p];

      // Parent PK -> parent row. Duplicate keys break the join
      // semantics, so they are a hard error, not a quiet overwrite.
      auto pk_vals = ReadInputColumn(pin, schema_.PrimaryKeyColumn(p));
      DAISY_RETURN_IF_ERROR(pk_vals.status());
      std::unordered_map<double, size_t> pk_row;
      pk_row.reserve(pk_vals.value().size());
      for (size_t r = 0; r < pk_vals.value().size(); ++r) {
        if (!pk_row.emplace(pk_vals.value()[r], r).second)
          return Status::InvalidArgument(
              "relational fit: duplicate primary key in table '" +
              edge->parent_table + "'");
      }

      const int fk_col = def.schema.FindAttribute(edge->child_column);
      DAISY_CHECK(fk_col >= 0);
      auto fk_vals = ReadInputColumn(in, static_cast<size_t>(fk_col));
      DAISY_RETURN_IF_ERROR(fk_vals.status());
      std::vector<size_t> parent_row(fk_vals.value().size());
      std::vector<size_t> counts(pk_vals.value().size(), 0);
      for (size_t r = 0; r < fk_vals.value().size(); ++r) {
        const auto it = pk_row.find(fk_vals.value()[r]);
        if (it == pk_row.end())
          return Status::InvalidArgument(
              "relational fit: table '" + def.name + "' row " +
              std::to_string(r) + " has a dangling foreign key (no '" +
              edge->parent_table + "' row with that key)");
        parent_row[r] = it->second;
        ++counts[it->second];
      }

      auto card = CardinalityModel::Fit(counts);
      DAISY_RETURN_IF_ERROR(card.status());
      tm.cardinality = std::move(card.value());

      // Encoder over the parent's MODELED columns, min/max from the
      // training data (paged footers are bitwise equal to in-memory).
      const std::vector<size_t>& pkept = models_[p].kept_cols;
      const data::Schema pmodeled =
          data::ProjectSchema(schema_.table(p).schema, pkept);
      std::vector<double> mins(pkept.size()), maxs(pkept.size());
      for (size_t k = 0; k < pkept.size(); ++k) {
        mins[k] = InputMin(pin, pkept[k]);
        maxs[k] = InputMax(pin, pkept[k]);
      }
      tm.encoder = ParentCondEncoder::Build(pmodeled, mins, maxs);

      auto enc = EncodeParentInput(pin, pkept, tm.encoder);
      DAISY_RETURN_IF_ERROR(enc.status());
      row_cond = enc.value().GatherRows(parent_row);
      gopts.parent_cond_dim = tm.encoder.cond_dim();
    }

    tm.model =
        std::make_unique<synth::TableSynthesizer>(gopts, opts_.transform);
    Status health = Status::OK();
    if (in.table != nullptr) {
      const data::Table proj = data::ProjectColumns(*in.table, tm.kept_cols);
      health = edge != nullptr ? tm.model->FitConditioned(proj, row_cond, sink)
                               : tm.model->Fit(proj, sink);
    } else {
      if (!made_work_dir) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.work_dir, ec);
        if (ec)
          return Status::IOError("cannot create work dir '" + opts_.work_dir +
                                 "': " + ec.message());
        made_work_dir = true;
      }
      const std::string proj_path =
          opts_.work_dir + "/" + def.name + ".proj.dcol";
      DAISY_RETURN_IF_ERROR(
          data::ProjectColumnar(*in.paged, tm.kept_cols, proj_path));
      data::PagedTable::Options popts;
      popts.page_budget = opts_.page_budget;
      popts.use_mmap = opts_.use_mmap;
      auto proj = data::PagedTable::Open(proj_path, popts);
      DAISY_RETURN_IF_ERROR(proj.status());
      health = edge != nullptr
                   ? tm.model->FitConditioned(*proj.value(), row_cond, sink)
                   : tm.model->Fit(*proj.value(), sink);
    }
    if (!health.ok())
      return Status::InvalidArgument("relational fit: table '" + def.name +
                                     "': " + health.message());
  }
  fitted_ = true;
  return Status::OK();
}

Matrix RelationalSynthesizer::EncodeParentTable(
    size_t parent_idx, const data::Table& parent,
    const ParentCondEncoder& encoder) const {
  const std::vector<size_t>& kept = models_[parent_idx].kept_cols;
  std::vector<std::vector<double>> cols;
  cols.reserve(encoder.features().size());
  for (const auto& f : encoder.features())
    cols.push_back(parent.Column(kept[f.source_col]));
  return encoder.EncodeColumns(cols, parent.num_records());
}

Result<std::vector<data::Table>> RelationalSynthesizer::Generate(
    double scale, Rng* rng) const {
  if (!fitted_)
    return Status::FailedPrecondition(
        "relational generate: synthesizer is not fitted");
  if (!(scale > 0.0))
    return Status::InvalidArgument("relational generate: scale must be > 0");

  std::vector<data::Table> out(schema_.num_tables());
  for (size_t t : schema_.TopologicalOrder()) {
    const data::RelationalTableDef& def = schema_.table(t);
    const TableModel& tm = models_[t];
    const size_t pk_col = schema_.PrimaryKeyColumn(t);
    const data::ForeignKey* edge = schema_.ParentEdge(t);

    if (edge == nullptr) {
      const size_t n = std::max<size_t>(
          1, static_cast<size_t>(
                 std::llround(scale * static_cast<double>(tm.real_rows))));
      const data::Table modeled = tm.model->Generate(n, rng);
      out[t] = AssembleTable(def.schema, tm.kept_cols, modeled, pk_col, -1,
                             {});
      continue;
    }

    const size_t p = static_cast<size_t>(schema_.FindTable(edge->parent_table));
    const data::Table& parent = out[p];
    const size_t parent_pk = schema_.PrimaryKeyColumn(p);
    const size_t n_parent = parent.num_records();

    // rng draw order for a child table: ALL cardinality draws first
    // (one per synthetic parent, in parent row order), then the per-row
    // generation latents inside GenerateConditioned. Fixed order keeps
    // the output a pure function of (bundle, seed).
    std::vector<size_t> counts(n_parent);
    size_t total = 0;
    for (size_t r = 0; r < n_parent; ++r) {
      counts[r] = tm.cardinality.Sample(rng);
      total += counts[r];
    }
    if (total == 0) {
      out[t] = data::Table(def.schema);
      continue;
    }

    const Matrix enc = EncodeParentTable(p, parent, tm.encoder);
    std::vector<size_t> parent_of;
    parent_of.reserve(total);
    for (size_t r = 0; r < n_parent; ++r)
      for (size_t c = 0; c < counts[r]; ++c) parent_of.push_back(r);

    auto modeled = tm.model->GenerateConditioned(enc.GatherRows(parent_of),
                                                 rng);
    DAISY_RETURN_IF_ERROR(modeled.status());

    const int fk_col = def.schema.FindAttribute(edge->child_column);
    DAISY_CHECK(fk_col >= 0);
    std::vector<double> fk_vals(total);
    for (size_t i = 0; i < total; ++i)
      fk_vals[i] = parent.value(parent_of[i], parent_pk);
    out[t] = AssembleTable(def.schema, tm.kept_cols, modeled.value(), pk_col,
                           fk_col, fk_vals);
  }
  return out;
}

Status RelationalSynthesizer::Save(const std::string& path) const {
  if (!fitted_)
    return Status::FailedPrecondition("cannot save an unfitted relational "
                                      "model");
  RelationalBundle b;
  b.tables.reserve(schema_.num_tables());
  for (size_t i = 0; i < schema_.num_tables(); ++i) {
    const data::RelationalTableDef& def = schema_.table(i);
    const TableModel& tm = models_[i];
    BundleTable bt;
    bt.name = def.name;
    bt.schema = def.schema;
    bt.primary_key = def.primary_key;
    const data::ForeignKey* edge = schema_.ParentEdge(i);
    if (edge != nullptr) {
      bt.has_parent = true;
      bt.fk_column = edge->child_column;
      bt.fk_parent_table = edge->parent_table;
      bt.fk_parent_column = edge->parent_column;
      bt.cardinality = tm.cardinality;
      bt.encoder = tm.encoder;
    }
    bt.real_rows = tm.real_rows;
    bt.kept_cols.assign(tm.kept_cols.begin(), tm.kept_cols.end());
    std::ostringstream os;
    DAISY_RETURN_IF_ERROR(tm.model->SaveToStream(os));
    bt.model_blob = os.str();
    b.tables.push_back(std::move(bt));
  }
  return SaveBundle(b, path);
}

Result<std::unique_ptr<RelationalSynthesizer>> RelationalSynthesizer::Load(
    const std::string& path) {
  auto bundle = LoadBundle(path);
  DAISY_RETURN_IF_ERROR(bundle.status());
  const RelationalBundle& b = bundle.value();

  // Rebuild and re-validate the relational schema: a bundle that names
  // a missing parent table or a non-PK reference is corrupt in a way
  // the checksum cannot see (it protects bytes, not semantics).
  std::vector<data::RelationalTableDef> defs;
  std::vector<data::ForeignKey> fks;
  defs.reserve(b.tables.size());
  for (const BundleTable& bt : b.tables) {
    defs.push_back({bt.name, bt.schema, bt.primary_key});
    if (bt.has_parent)
      fks.push_back(
          {bt.name, bt.fk_column, bt.fk_parent_table, bt.fk_parent_column});
  }
  auto schema = data::RelationalSchema::Create(std::move(defs),
                                               std::move(fks));
  DAISY_RETURN_IF_ERROR(schema.status());

  auto synth = std::make_unique<RelationalSynthesizer>(RelationalOptions{});
  synth->schema_ = std::move(schema.value());
  synth->models_.resize(b.tables.size());
  for (size_t i = 0; i < b.tables.size(); ++i) {
    const BundleTable& bt = b.tables[i];
    TableModel& tm = synth->models_[i];
    tm.real_rows = bt.real_rows;
    tm.kept_cols.assign(bt.kept_cols.begin(), bt.kept_cols.end());
    const std::vector<size_t> expect = synth->schema_.ModeledColumns(i);
    if (tm.kept_cols != expect)
      return Status::InvalidArgument(
          "bundle table '" + bt.name +
          "': stored modeled columns disagree with its schema");
    std::istringstream is(bt.model_blob);
    auto model = synth::TableSynthesizer::LoadFromStream(is);
    if (!model.ok())
      return Status::InvalidArgument("bundle table '" + bt.name +
                                     "': " + model.status().message());
    tm.model = std::move(model.value());
    if (bt.has_parent) {
      tm.cardinality = bt.cardinality;
      tm.encoder = bt.encoder;
      if (tm.cardinality.weights().empty())
        return Status::InvalidArgument("bundle table '" + bt.name +
                                       "': empty cardinality model");
      if (tm.encoder.cond_dim() != tm.model->options().parent_cond_dim)
        return Status::InvalidArgument(
            "bundle table '" + bt.name +
            "': encoder width disagrees with its model's condition width");
    } else if (tm.model->options().parent_cond_dim != 0) {
      return Status::InvalidArgument(
          "bundle table '" + bt.name +
          "': root table carries a parent-conditioned model");
    }
  }
  synth->fitted_ = true;
  return synth;
}

}  // namespace daisy::rel

// Encodes a parent record into the fixed-width condition vector the
// child GAN trains and generates against (the CondBlock analogue for
// relational conditioning): categorical parent columns one-hot, numeric
// parent columns min-max scaled to [-1, 1]. The encoding is defined
// over the parent's MODELED columns (keys stripped), so synthetic
// parents — which have exactly those columns plus re-assigned keys —
// encode through the same code path as real parents.
#ifndef DAISY_RELATIONAL_COND_ENCODER_H_
#define DAISY_RELATIONAL_COND_ENCODER_H_

#include <vector>

#include "core/matrix.h"
#include "core/serial.h"
#include "core/status.h"
#include "data/schema.h"

namespace daisy::rel {

/// Deterministic parent-record -> condition-row encoder.
class ParentCondEncoder {
 public:
  struct Feature {
    size_t source_col = 0;   ///< column in the MODELED parent table
    bool categorical = false;
    size_t domain = 0;       ///< one-hot width (categorical only)
    double v_min = 0.0;      ///< training min/max (numeric only)
    double v_max = 0.0;
    size_t offset = 0;       ///< first cond-vector column of this feature
  };

  ParentCondEncoder() = default;

  /// Builds the encoder over a modeled parent schema. `col_min` /
  /// `col_max` hold the training min/max per modeled column (ignored
  /// for categorical columns); paged tables supply their footer values,
  /// which are bitwise equal to the in-memory AttributeMin/Max.
  static ParentCondEncoder Build(const data::Schema& modeled_schema,
                                 const std::vector<double>& col_min,
                                 const std::vector<double>& col_max);

  size_t cond_dim() const { return cond_dim_; }
  const std::vector<Feature>& features() const { return features_; }

  /// Encodes n parent records given per-feature value columns
  /// (`cols[f][i]` = raw cell of record i in feature f's source
  /// column, in features() order). Numeric cells are clamped into the
  /// training range, so out-of-range synthetic parents still encode.
  Matrix EncodeColumns(const std::vector<std::vector<double>>& cols,
                       size_t n) const;

  void Serialize(Serializer* out) const;
  static ParentCondEncoder Deserialize(Deserializer* in);

 private:
  std::vector<Feature> features_;
  size_t cond_dim_ = 0;
};

}  // namespace daisy::rel

#endif  // DAISY_RELATIONAL_COND_ENCODER_H_

#include "relational/bundle.h"

#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "core/serial.h"
#include "data/schema_serial.h"

namespace daisy::rel {

namespace {

constexpr char kFormatTag[] = "daisy-relbundle-v1";
constexpr char kChecksumPrefix[] = "checksum ";
constexpr size_t kChecksumPrefixLen = sizeof(kChecksumPrefix) - 1;
// "checksum " + 16 hex digits + '\n'.
constexpr size_t kTrailerLen = kChecksumPrefixLen + 16 + 1;

// Far above any real schema, small enough that a corrupt length can't
// drive a pathological allocation before the parse fails.
constexpr uint64_t kMaxTables = 1u << 12;
constexpr uint64_t kMaxCols = 1u << 16;

void WritePayload(Serializer* out, const RelationalBundle& b) {
  out->WriteTag(kFormatTag);
  out->WriteU64(b.tables.size());
  for (const BundleTable& t : b.tables) {
    out->WriteTag("table");
    out->WriteString(t.name);
    data::SerializeSchema(out, t.schema);
    out->WriteString(t.primary_key);
    out->WriteU64(t.has_parent ? 1 : 0);
    if (t.has_parent) {
      out->WriteString(t.fk_column);
      out->WriteString(t.fk_parent_table);
      out->WriteString(t.fk_parent_column);
    }
    out->WriteU64(t.real_rows);
    out->WriteU64(t.kept_cols.size());
    for (uint64_t c : t.kept_cols) out->WriteU64(c);
    // The embedded model payload is arbitrary bytes; WriteString is
    // length-prefixed so it round-trips exactly.
    out->WriteTag("model");
    out->WriteString(t.model_blob);
    if (t.has_parent) {
      t.cardinality.Serialize(out);
      t.encoder.Serialize(out);
    }
  }
}

Result<RelationalBundle> ReadPayload(Deserializer* in) {
  in->ExpectTag(kFormatTag);
  const uint64_t n = in->ReadU64();
  if (!in->ok())
    return Status::InvalidArgument("relational bundle: " + in->error());
  if (n > kMaxTables)
    return Status::InvalidArgument("relational bundle: implausible table "
                                   "count");
  RelationalBundle b;
  b.tables.resize(n);
  for (BundleTable& t : b.tables) {
    in->ExpectTag("table");
    t.name = in->ReadString();
    t.schema = data::DeserializeSchema(in);
    t.primary_key = in->ReadString();
    t.has_parent = in->ReadU64() == 1;
    if (t.has_parent) {
      t.fk_column = in->ReadString();
      t.fk_parent_table = in->ReadString();
      t.fk_parent_column = in->ReadString();
    }
    t.real_rows = in->ReadU64();
    const uint64_t kc = in->ReadU64();
    if (!in->ok())
      return Status::InvalidArgument("relational bundle: " + in->error());
    if (kc > kMaxCols)
      return Status::InvalidArgument("relational bundle: implausible kept "
                                     "column count");
    t.kept_cols.resize(kc);
    for (uint64_t& c : t.kept_cols) c = in->ReadU64();
    in->ExpectTag("model");
    t.model_blob = in->ReadString();
    if (t.has_parent) {
      t.cardinality = CardinalityModel::Deserialize(in);
      t.encoder = ParentCondEncoder::Deserialize(in);
    }
    if (!in->ok())
      return Status::InvalidArgument("relational bundle: " + in->error());
  }
  return b;
}

}  // namespace

std::string SerializeBundle(const RelationalBundle& bundle) {
  std::ostringstream os;
  Serializer out(&os);
  WritePayload(&out, bundle);
  std::string bytes = os.str();
  char trailer[kTrailerLen + 1];
  std::snprintf(trailer, sizeof(trailer), "%s%016llx\n", kChecksumPrefix,
                static_cast<unsigned long long>(
                    ckpt::Fnv1a64(bytes.data(), bytes.size())));
  bytes += trailer;
  return bytes;
}

Result<RelationalBundle> ParseBundle(const std::string& bytes) {
  if (bytes.size() < kTrailerLen)
    return Status::InvalidArgument("bundle too short for a checksum");
  const size_t payload_len = bytes.size() - kTrailerLen;
  const char* trailer = bytes.data() + payload_len;
  uint64_t want = 0;
  bool hex_ok = true;
  for (size_t i = 0; i < 16; ++i) {
    const char h = trailer[kChecksumPrefixLen + i];
    want <<= 4;
    if (h >= '0' && h <= '9') want |= static_cast<uint64_t>(h - '0');
    else if (h >= 'a' && h <= 'f') want |= static_cast<uint64_t>(h - 'a' + 10);
    else hex_ok = false;
  }
  if (bytes.compare(payload_len, kChecksumPrefixLen, kChecksumPrefix) != 0 ||
      bytes.back() != '\n' || !hex_ok) {
    return Status::InvalidArgument(
        "bundle missing its checksum trailer (truncated write?)");
  }
  const uint64_t got = ckpt::Fnv1a64(bytes.data(), payload_len);
  if (got != want)
    return Status::InvalidArgument("bundle checksum mismatch (corrupt)");
  std::istringstream is(bytes.substr(0, payload_len));
  Deserializer in(&is);
  return ReadPayload(&in);
}

Status SaveBundle(const RelationalBundle& bundle, const std::string& path) {
  const std::string bytes = SerializeBundle(bundle);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::IOError("cannot create bundle temp file '" + tmp + "'");
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  // fsync before rename: otherwise the rename can hit disk before the
  // data does, and a power cut leaves a valid-looking empty file.
  const bool synced = fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || !flushed || !synced) {
    std::remove(tmp.c_str());
    return Status::IOError("failed writing bundle temp file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed renaming bundle into '" + path + "'");
  }
  return Status::OK();
}

Result<RelationalBundle> LoadBundle(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no bundle at '" + path + "'");
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return Status::IOError("failed reading bundle '" + path + "'");
  auto parsed = ParseBundle(bytes);
  if (!parsed.ok())
    return Status::InvalidArgument("bundle '" + path +
                                   "': " + parsed.status().message());
  return parsed.take();
}

}  // namespace daisy::rel

// Children-per-parent cardinality model for one FK edge. The GAN
// synthesizes child attributes; how MANY children a parent has is a
// separate one-dimensional distribution, modeled here as the empirical
// histogram over counts 0..max observed in the real data (hierarchical
// CTGAN-style, arXiv:2411.07009 keeps the fan-out model explicit for
// the same reason: the joint GAN has no notion of set size).
#ifndef DAISY_RELATIONAL_CARDINALITY_H_
#define DAISY_RELATIONAL_CARDINALITY_H_

#include <vector>

#include "core/rng.h"
#include "core/serial.h"
#include "core/status.h"

namespace daisy::rel {

/// Empirical distribution of children-per-parent counts.
class CardinalityModel {
 public:
  CardinalityModel() = default;

  /// Fits the histogram from one count per real parent (zeros included
  /// — parents without children are part of the distribution).
  static Result<CardinalityModel> Fit(const std::vector<size_t>& counts);

  /// Draws one children count: exactly one Categorical draw from `rng`,
  /// so the rng stream cost per parent is fixed.
  size_t Sample(Rng* rng) const;

  /// Largest count with non-zero mass.
  size_t max_count() const { return weights_.empty() ? 0 : weights_.size() - 1; }
  /// Mean of the fitted distribution.
  double Mean() const;
  const std::vector<double>& weights() const { return weights_; }

  void Serialize(Serializer* out) const;
  static CardinalityModel Deserialize(Deserializer* in);

 private:
  // weights_[c] = number of real parents with exactly c children.
  std::vector<double> weights_;
};

}  // namespace daisy::rel

#endif  // DAISY_RELATIONAL_CARDINALITY_H_

// Multi-table synthesis over a RelationalSchema (parents-first
// conditional generation, the hierarchy decomposition of Row
// Conditional-TGAN / Hierarchical Conditional Tabular GAN applied to
// this repository's single-table design space):
//
//   Fit: tables are visited in topological order. Key columns are
//   stripped (they are identity, not content); a root table fits a
//   plain TableSynthesizer, a child table fits one conditioned on its
//   real parent's encoded attributes (ParentCondEncoder), plus a
//   CardinalityModel of children-per-parent counts.
//
//   Generate: roots first, scale * real_rows records with sequential
//   synthetic primary keys 1..n. For each child table: one cardinality
//   draw per synthetic parent (in parent row order), then one
//   conditioned GAN record per child slot, with the FK set to its
//   parent's synthetic key — referential integrity holds by
//   construction (FK validity is 1.0, which eval/relational.h checks
//   rather than assumes).
//
// Determinism: one shared rng stream, consumed in a documented fixed
// order (per table in topo order: all cardinality draws, then per-row
// generation latents), so output bytes are a pure function of the
// bundle and the seed — independent of thread count, SIMD ISA, chunk
// sizes, and of whether training read in-memory or paged tables.
#ifndef DAISY_RELATIONAL_RELATIONAL_SYNTHESIZER_H_
#define DAISY_RELATIONAL_RELATIONAL_SYNTHESIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/relational_schema.h"
#include "relational/bundle.h"
#include "relational/cardinality.h"
#include "relational/cond_encoder.h"
#include "synth/synthesizer.h"

namespace daisy::rel {

struct RelationalOptions {
  /// Per-table GAN hyper-parameters. seed is the base seed; table i
  /// (declaration order) trains with seed + i so sibling models do not
  /// share parameter-init streams. parent_cond_dim is derived
  /// internally and must be left 0.
  synth::GanOptions gan;
  transform::TransformOptions transform;

  /// Paged-input knobs (used when a table arrives as a PagedTable).
  size_t page_budget = 64;
  bool use_mmap = true;
  /// Directory for intermediate key-stripped .dcol projections of
  /// paged inputs (created if missing).
  std::string work_dir = "daisy_rel_work";
};

/// One table's training data: exactly one of the two pointers is set.
struct RelationalInput {
  const data::Table* table = nullptr;
  const data::PagedTable* paged = nullptr;
};

class RelationalSynthesizer {
 public:
  explicit RelationalSynthesizer(RelationalOptions options);

  /// Fits every per-table model. `inputs` is parallel to
  /// schema.tables() (declaration order). Fails with InvalidArgument on
  /// duplicate parent primary keys, dangling child foreign keys, or a
  /// table with no non-key columns. When `sink` is non-null it receives
  /// the concatenated per-table training telemetry.
  Status Fit(const data::RelationalSchema& schema,
             const std::vector<RelationalInput>& inputs,
             obs::MetricSink* sink = nullptr);

  /// Generates a synthetic database: result[i] is table i (declaration
  /// order, full schema including key columns). Root tables get
  /// round(scale * real_rows) records (at least 1); child sizes follow
  /// the sampled cardinalities.
  Result<std::vector<data::Table>> Generate(double scale, Rng* rng) const;

  /// Persists every fitted model into one checksummed bundle file.
  Status Save(const std::string& path) const;

  /// Restores a synthesizer from a bundle written by Save; ready for
  /// Generate (Fit must not be called on it).
  static Result<std::unique_ptr<RelationalSynthesizer>> Load(
      const std::string& path);

  const data::RelationalSchema& schema() const { return schema_; }
  bool fitted() const { return fitted_; }

 private:
  struct TableModel {
    std::unique_ptr<synth::TableSynthesizer> model;
    std::vector<size_t> kept_cols;  ///< modeled col -> original col
    size_t real_rows = 0;
    // Child-table state (ParentEdge != nullptr only):
    CardinalityModel cardinality;
    ParentCondEncoder encoder;  ///< over the PARENT's modeled columns
  };

  /// Encodes every row of a generated parent table (full schema) with
  /// the child's encoder, reading through the parent's kept_cols.
  Matrix EncodeParentTable(size_t parent_idx, const data::Table& parent,
                           const ParentCondEncoder& encoder) const;

  RelationalOptions opts_;
  data::RelationalSchema schema_;
  std::vector<TableModel> models_;  ///< parallel to schema_.tables()
  bool fitted_ = false;
};

}  // namespace daisy::rel

#endif  // DAISY_RELATIONAL_RELATIONAL_SYNTHESIZER_H_

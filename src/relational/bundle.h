// On-disk container for a fitted RelationalSynthesizer: one versioned,
// checksummed file ("daisy-relbundle-v1") holding every per-table GAN
// model (as an embedded daisy-model-v3 payload), the per-edge
// cardinality histograms and parent-condition encoders, and enough of
// the relational schema to rebuild it exactly. The corruption contract
// mirrors src/ckpt: an FNV-1a 64 trailer over the whole payload, so
// every single-byte flip and every truncation is detected at load, and
// writes are atomic (tmp + fsync + rename).
#ifndef DAISY_RELATIONAL_BUNDLE_H_
#define DAISY_RELATIONAL_BUNDLE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/schema.h"
#include "relational/cardinality.h"
#include "relational/cond_encoder.h"

namespace daisy::rel {

/// Everything persisted for one table of the relational model. Tables
/// appear in schema declaration order.
struct BundleTable {
  std::string name;
  data::Schema schema;           ///< full original schema (keys included)
  std::string primary_key;
  bool has_parent = false;
  std::string fk_column;         ///< child's FK column (has_parent only)
  std::string fk_parent_table;
  std::string fk_parent_column;
  uint64_t real_rows = 0;        ///< training row count (generation scale base)
  std::vector<uint64_t> kept_cols;  ///< modeled col -> original col index
  std::string model_blob;        ///< TableSynthesizer::SaveToStream payload
  CardinalityModel cardinality;  ///< children-per-parent (has_parent only)
  ParentCondEncoder encoder;     ///< parent-cond encoder (has_parent only)
};

struct RelationalBundle {
  std::vector<BundleTable> tables;
};

/// Payload + checksum trailer, the exact bytes SaveBundle writes.
std::string SerializeBundle(const RelationalBundle& bundle);

/// Inverse of SerializeBundle. Verifies the trailer before touching the
/// payload; any flipped byte or truncation fails with InvalidArgument.
Result<RelationalBundle> ParseBundle(const std::string& bytes);

/// Atomic checksummed write (tmp + fsync + rename).
Status SaveBundle(const RelationalBundle& bundle, const std::string& path);

/// Reads and verifies a bundle file. NotFound when the path is absent.
Result<RelationalBundle> LoadBundle(const std::string& path);

}  // namespace daisy::rel

#endif  // DAISY_RELATIONAL_BUNDLE_H_

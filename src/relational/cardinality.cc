#include "relational/cardinality.h"

#include <algorithm>

namespace daisy::rel {

Result<CardinalityModel> CardinalityModel::Fit(
    const std::vector<size_t>& counts) {
  if (counts.empty())
    return Status::InvalidArgument(
        "cardinality model: no parents to fit from");
  const size_t max_c = *std::max_element(counts.begin(), counts.end());
  if (max_c > 1000000)
    return Status::InvalidArgument(
        "cardinality model: implausible fan-out " + std::to_string(max_c));
  CardinalityModel m;
  m.weights_.assign(max_c + 1, 0.0);
  for (size_t c : counts) m.weights_[c] += 1.0;
  return m;
}

size_t CardinalityModel::Sample(Rng* rng) const {
  DAISY_CHECK(!weights_.empty());
  return rng->Categorical(weights_);
}

double CardinalityModel::Mean() const {
  double total = 0.0, mass = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    total += static_cast<double>(c) * weights_[c];
    mass += weights_[c];
  }
  return mass > 0.0 ? total / mass : 0.0;
}

void CardinalityModel::Serialize(Serializer* out) const {
  out->WriteTag("cardinality");
  out->WriteDoubleVector(weights_);
}

CardinalityModel CardinalityModel::Deserialize(Deserializer* in) {
  in->ExpectTag("cardinality");
  CardinalityModel m;
  m.weights_ = in->ReadDoubleVector();
  return m;
}

}  // namespace daisy::rel

// Reproduces paper Table 7: clustering utility DiffCST (K-Means NMI
// difference) across generator networks and transformation schemes.
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/clustering_eval.h"

namespace daisy::bench {
namespace {

using transform::CategoricalEncoding;
using transform::NumericalNormalization;

void RunDataset(const std::string& name, size_t n, size_t iterations,
                bool include_cnn) {
  Bundle bundle = MakeBundle(name, n, 0x17);

  struct Config {
    std::string label;
    synth::GeneratorArch arch;
    NumericalNormalization num;
  };
  std::vector<Config> configs;
  if (include_cnn)
    configs.push_back({"CNN", synth::GeneratorArch::kCnn,
                       NumericalNormalization::kSimple});
  configs.push_back({"MLP sn/ht", synth::GeneratorArch::kMlp,
                     NumericalNormalization::kSimple});
  configs.push_back({"MLP gn/ht", synth::GeneratorArch::kMlp,
                     NumericalNormalization::kGmm});
  configs.push_back({"LSTM sn/ht", synth::GeneratorArch::kLstm,
                     NumericalNormalization::kSimple});
  configs.push_back({"LSTM gn/ht", synth::GeneratorArch::kLstm,
                     NumericalNormalization::kGmm});

  std::vector<double> row;
  for (size_t i = 0; i < configs.size(); ++i) {
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = configs[i].arch;
    opts.iterations = configs[i].arch == synth::GeneratorArch::kLstm
                          ? iterations
                          : iterations * 4;
    transform::TransformOptions topts;
    topts.numerical = configs[i].num;
    topts.categorical = CategoricalEncoding::kOneHot;
    data::Table fake =
        TrainAndSynthesize(bundle, opts, topts, 0, 0x170 + i);
    Rng rng(0x175 + i);
    row.push_back(eval::ClusteringDiff(bundle.train, fake, &rng));
  }
  // Pad the CNN column for datasets where it is not applicable.
  if (!include_cnn) row.insert(row.begin(), -1.0);
  PrintRow(name, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 7: clustering utility DiffCST by "
              "network (lower is better; -1 = CNN not applicable)\n\n");
  PrintHeader("Dataset", {"CNN", "MLP sn/ht", "MLP gn/ht", "LSTM sn/ht",
                          "LSTM gn/ht"});
  RunDataset("htru2", 1500, 150, true);
  RunDataset("adult", 1500, 150, true);
  RunDataset("covtype", 2400, 150, false);
  RunDataset("digits", 2400, 120, false);
  RunDataset("anuran", 2400, 80, false);
  RunDataset("census", 2400, 60, true);
  RunDataset("sat", 1800, 60, false);
  return 0;
}

// Reproduces paper Figure 7 (and appendix Figure 19): comparison of
// data-synthesis methods on classification utility — VAE, PrivBayes at
// four epsilon levels, and the (conditional) GAN. Values are F1 Diff.
#include <cstdio>

#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name, size_t n, size_t iterations) {
  Bundle bundle = MakeBundle(name, n, 0xF7);
  std::printf("\n=== Figure 7: %s ===\n", name.c_str());

  std::vector<std::string> cols = {"VAE", "PB-0.2", "PB-0.4",
                                   "PB-0.8", "PB-1.6", "GAN"};
  std::vector<data::Table> synthetic;

  {
    baselines::VaeOptions vopts;
    vopts.epochs = 30;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(bundle.train);
    Rng rng(0xF71);
    synthetic.push_back(vae.Generate(bundle.train.num_records(), &rng));
  }
  for (double eps : {0.2, 0.4, 0.8, 1.6}) {
    baselines::PrivBayesOptions popts;
    popts.epsilon = eps;
    baselines::PrivBayes pb(popts);
    Rng rng(0xF72 + static_cast<uint64_t>(eps * 10));
    pb.Fit(bundle.train, &rng);
    synthetic.push_back(pb.Generate(bundle.train.num_records(), &rng));
  }
  {
    // The paper's default comparison GAN is the conditional GAN.
    synth::GanOptions gopts = BenchGanOptions();
    gopts.algo = synth::TrainAlgo::kCTrain;
    gopts.iterations = std::max<size_t>(
        10, iterations / bundle.train.schema().num_labels());
    double secs = 0.0;
    synthetic.push_back(
        TrainAndSynthesize(bundle, gopts, {}, 0, 0xF73, &secs));
    std::fprintf(stderr, "[fig7] %s GAN trained in %.1fs\n", name.c_str(),
                 secs);
  }

  PrintHeader("CLF", cols);
  for (auto kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < synthetic.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, 0xF75 + i));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using daisy::bench::RunDataset;
  std::printf("Reproduction of Figure 7 / Figure 19: method comparison on "
              "classification utility (F1 Diff, lower is better)\n");
  RunDataset("adult", 1800, 800);
  RunDataset("covtype", 3000, 800);
  RunDataset("census", 2400, 400);
  RunDataset("sat", 1800, 600);
  RunDataset("htru2", 2400, 800);
  RunDataset("digits", 2400, 600);
  RunDataset("anuran", 3000, 400);
  return 0;
}

// Shared plumbing for the experiment benches: dataset bundles with the
// paper's 4:1:1 split, GAN training with validation-based snapshot
// selection, and fixed-width table printing that mirrors the paper's
// row/column layout.
#ifndef DAISY_BENCH_BENCH_UTIL_H_
#define DAISY_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "data/generators/realistic.h"
#include "data/generators/sdata.h"
#include "data/table.h"
#include "eval/classifier.h"
#include "eval/utility.h"
#include "synth/synthesizer.h"

namespace daisy::bench {

/// A dataset split 4:1:1 as in paper §6.2.
struct Bundle {
  std::string name;
  data::Table train;
  data::Table valid;
  data::Table test;
};

/// Builds a named realistic-sim bundle ("adult", "covtype", ...).
Bundle MakeBundle(const std::string& name, size_t n, uint64_t seed);

/// Bundles for the paper's simulated datasets.
Bundle MakeSDataNumBundle(double correlation, double positive_ratio,
                          size_t n, uint64_t seed);
Bundle MakeSDataCatBundle(double diagonal_p, double positive_ratio,
                          size_t n, uint64_t seed);

/// Default GAN options scaled for CPU benches.
synth::GanOptions BenchGanOptions();

/// Honors the DAISY_BENCH_FAST environment variable: when set, cuts
/// training iterations ~5x for smoke runs. Called by
/// TrainAndSynthesize; call it manually when driving TableSynthesizer
/// directly.
void ApplyBenchScale(synth::GanOptions* opts);

/// Trains a synthesizer on bundle.train, performs the paper's
/// validation-based snapshot selection, and generates `gen_size`
/// records (0 = train size). Returns the synthetic table and, via
/// out-params, the selected snapshot index and wall-clock seconds.
data::Table TrainAndSynthesize(const Bundle& bundle,
                               const synth::GanOptions& gan_opts,
                               const transform::TransformOptions& topts,
                               size_t gen_size, uint64_t seed,
                               double* train_seconds = nullptr);

/// F1 Diff (Eq. 1) of one classifier kind over a synthetic table.
double F1DiffFor(const Bundle& bundle, const data::Table& synthetic,
                 eval::ClassifierKind kind, uint64_t seed);

/// Prints "name  v1  v2 ..." with fixed-width columns.
void PrintHeader(const std::string& first,
                 const std::vector<std::string>& columns);
void PrintRow(const std::string& first, const std::vector<double>& values);

/// Seconds since an arbitrary epoch (monotonic).
double NowSeconds();

}  // namespace daisy::bench

#endif  // DAISY_BENCH_BENCH_UTIL_H_

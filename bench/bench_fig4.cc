// Reproduces paper Figure 4 (and appendix Figures 16-18): robustness of
// MLP- vs LSTM-based generators across hyper-parameter settings. Each
// series is the validation F1 of a classifier trained on the snapshot
// generated after each of 10 training epochs; LSTM series collapsing to
// ~0 expose mode collapse. The Simplified-D variant (Figures 17/18)
// runs the same sweep with the weakened discriminator.
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

struct HyperParams {
  double lr;
  size_t hidden;
  size_t batch;
};

const HyperParams kSettings[] = {
    {5e-4, 64, 64}, {1e-3, 64, 32}, {3e-3, 96, 64},
    {1e-2, 48, 64}, {2e-2, 64, 128},
};

void RunSweep(const std::string& dataset, synth::GeneratorArch arch,
              bool simplified) {
  // Multi-class rare-label F1 needs a reasonably sized validation set.
  Bundle bundle = MakeBundle(dataset, 2400, 0xF4);
  std::printf("\n=== Figure 4%s: %s-based G (%s) — validation F1 per epoch "
              "===\n",
              simplified ? " (Simplified D)" : "",
              arch == synth::GeneratorArch::kMlp ? "MLP" : "LSTM",
              dataset.c_str());
  std::vector<std::string> cols;
  for (int e = 1; e <= 10; ++e) cols.push_back("ep" + std::to_string(e));
  PrintHeader("setting", cols);

  for (size_t s = 0; s < std::size(kSettings); ++s) {
    const auto& hp = kSettings[s];
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = arch;
    // Enough updates per epoch for the per-epoch F1 to be meaningful;
    // MLP is ~10x cheaper per iteration, so it gets a larger budget.
    opts.iterations = arch == synth::GeneratorArch::kMlp ? 800 : 200;
    opts.lr_g = hp.lr;
    opts.lr_d = hp.lr;
    opts.g_hidden = {hp.hidden, hp.hidden};
    opts.lstm_hidden = hp.hidden;
    opts.batch_size = hp.batch;
    opts.simplified_discriminator = simplified;
    opts.snapshots = 10;
    opts.seed = 0xF40 + s;
    ApplyBenchScale(&opts);

    synth::TableSynthesizer synth(opts, {});
    synth.Fit(bundle.train);
    eval::SnapshotSelectionOptions sopts;
    sopts.gen_size = 800;
    Rng rng(0xF41 + s);
    const auto curve = eval::SnapshotF1Curve(&synth, bundle.valid, sopts,
                                             &rng);
    std::vector<double> row(curve.begin(), curve.end());
    row.resize(10, row.empty() ? 0.0 : row.back());
    PrintRow("param-" + std::to_string(s + 1), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using daisy::bench::RunSweep;
  using daisy::synth::GeneratorArch;
  std::printf("Reproduction of Figure 4 / Figures 16-18: hyper-parameter "
              "robustness and mode collapse\n");
  for (const char* dataset : {"adult", "covtype"}) {
    RunSweep(dataset, GeneratorArch::kLstm, false);
    RunSweep(dataset, GeneratorArch::kMlp, false);
  }
  // Figures 17/18: the Simplified-D variant of the LSTM sweep.
  RunSweep("adult", GeneratorArch::kLstm, true);
  return 0;
}

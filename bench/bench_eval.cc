// Evaluation-harness benchmarks (google-benchmark): each parallelized
// metric swept over table size and thread count. Args are
// {metric, rows, threads}; the thread count goes through
// par::SetNumThreads (same mechanism as DAISY_THREADS) and is restored
// afterwards. All metrics are bitwise identical across the threads
// axis — only time changes — so the thread sweep is a pure speedup
// measurement.
//
// EXPERIMENTS.md describes how to export the sweep as BENCH_eval.json.
#include <benchmark/benchmark.h>

#include "core/parallel.h"
#include "data/generators/realistic.h"
#include "data/generators/skewed.h"
#include "eval/aqp.h"
#include "eval/fidelity.h"
#include "eval/privacy.h"
#include "eval/random_forest.h"
#include "eval/suite.h"

namespace daisy {
namespace {

enum EvalMetric : int {
  kHittingRate = 0,
  kDcr = 1,
  kRandomForestFit = 2,
  kAqpDiff = 3,
  kFidelity = 4,
  kHeavyTail = 5,  // rare-mode recall + per-category KL on a Zipf table
};

void BM_Eval(benchmark::State& state) {
  const int metric = static_cast<int>(state.range(0));
  const size_t rows = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));

  Rng rng(61);
  const bool heavy_tail = metric == kHeavyTail;
  data::SkewedTableOptions sk;
  sk.num_records = rows;
  const data::Table real = heavy_tail ? data::MakeSkewedTable(sk, &rng)
                                      : data::MakeAdultSim(rows, &rng);
  const data::Table synth = heavy_tail ? data::MakeSkewedTable(sk, &rng)
                                       : data::MakeAdultSim(rows, &rng);

  // Metric-specific setup outside the timed loop.
  const Matrix x = real.FeatureMatrix();
  const std::vector<size_t> y = real.Labels();
  std::vector<eval::AqpQuery> workload;
  if (metric == kAqpDiff) {
    eval::AqpWorkloadOptions wopts;
    wopts.num_queries = 50;
    Rng wl_rng(62);
    workload = eval::GenerateAqpWorkload(real, wopts, &wl_rng).value();
  }

  par::SetNumThreads(threads);
  for (auto _ : state) {
    switch (metric) {
      case kHittingRate: {
        eval::HittingRateOptions opts;
        opts.num_synthetic_samples = 1000;
        Rng r(63);
        benchmark::DoNotOptimize(
            eval::HittingRate(real, synth, opts, &r).value());
        break;
      }
      case kDcr: {
        eval::DcrOptions opts;
        opts.num_original_samples = 500;
        Rng r(64);
        benchmark::DoNotOptimize(
            eval::DistanceToClosestRecord(real, synth, opts, &r).value());
        break;
      }
      case kRandomForestFit: {
        eval::RandomForestOptions opts;
        opts.num_trees = 20;
        opts.max_depth = 8;
        eval::RandomForest rf(opts);
        Rng r(65);
        rf.Fit(x, y, real.schema().num_labels(), &r);
        benchmark::DoNotOptimize(rf.Predict(x.row(0)));
        break;
      }
      case kAqpDiff: {
        eval::AqpDiffOptions opts;
        opts.sample_ratio = 0.05;
        opts.sample_repeats = 5;
        Rng r(66);
        benchmark::DoNotOptimize(
            eval::AqpDiff(real, synth, workload, opts, &r).value());
        break;
      }
      case kFidelity: {
        benchmark::DoNotOptimize(eval::EvaluateFidelity(real, synth));
        break;
      }
      case kHeavyTail: {
        benchmark::DoNotOptimize(eval::RareModeRecall(real, synth).recall);
        benchmark::DoNotOptimize(eval::PerCategoryKl(real, synth));
        break;
      }
    }
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Eval)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {2000, 8000}, {1, 2, 4}})
    ->ArgNames({"metric", "rows", "threads"})
    ->Unit(benchmark::kMillisecond);

// The whole suite end to end (the `daisy_cli eval` hot path).
void BM_EvalSuite(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Rng rng(67);
  const data::Table real = data::MakeAdultSim(rows, &rng);
  const data::Table synth = data::MakeAdultSim(rows, &rng);
  eval::SuiteOptions opts;
  opts.privacy_samples = 200;
  opts.aqp_workload.num_queries = 25;
  opts.aqp_diff.sample_repeats = 3;
  eval::EvaluationSuite suite(opts);
  par::SetNumThreads(threads);
  for (auto _ : state) {
    auto result = suite.Run(real, synth);
    benchmark::DoNotOptimize(result.value().metrics.size());
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_EvalSuite)
    ->ArgsProduct({{1000, 4000}, {1, 2, 4}})
    ->ArgNames({"rows", "threads"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace daisy

BENCHMARK_MAIN();

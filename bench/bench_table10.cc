// Reproduces paper Table 10: AQP utility DiffAQP across synthesis
// methods on CovType-sim, Census-sim and the (unlabeled) Bing-sim AQP
// benchmark table.
#include <cstdio>

#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "bench/bench_util.h"
#include "eval/aqp.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name, size_t n, size_t iterations) {
  Rng drng(0x1A0);
  data::Table train = data::MakeDatasetByName(name, n, &drng);

  Rng wl_rng(0x1A1);
  eval::AqpWorkloadOptions wopts;
  wopts.num_queries = 300;
  const auto workload =
      eval::GenerateAqpWorkload(train, wopts, &wl_rng).value();
  eval::AqpDiffOptions dopts;
  dopts.sample_ratio = 0.05;

  std::vector<double> row;
  auto score = [&](const data::Table& fake, uint64_t seed) {
    Rng rng(seed);
    row.push_back(eval::AqpDiff(train, fake, workload, dopts, &rng).value());
  };

  {
    baselines::VaeOptions vopts;
    vopts.epochs = 25;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(train);
    Rng rng(0x1A2);
    score(vae.Generate(train.num_records(), &rng), 0x1A3);
  }
  for (double eps : {0.2, 0.4, 0.8, 1.6}) {
    baselines::PrivBayesOptions popts;
    popts.epsilon = eps;
    baselines::PrivBayes pb(popts);
    Rng rng(0x1A4 + static_cast<uint64_t>(eps * 10));
    pb.Fit(train, &rng);
    score(pb.Generate(train.num_records(), &rng), 0x1A5);
  }
  {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = iterations * 4;
    gopts.seed = 0x1A6;
    ApplyBenchScale(&gopts);
    synth::TableSynthesizer synth(gopts, {});
    synth.Fit(train);  // AQP tables may be unlabeled: no snapshot selection
    Rng rng(0x1A7);
    score(synth.Generate(train.num_records(), &rng), 0x1A8);
  }
  PrintRow(name, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 10: AQP utility DiffAQP by method "
              "(lower is better)\n\n");
  PrintHeader("Dataset", {"VAE", "PB-0.2", "PB-0.4", "PB-0.8", "PB-1.6",
                          "GAN"});
  RunDataset("covtype", 2400, 150);
  RunDataset("census", 1800, 60);
  RunDataset("bing", 3000, 60);
  return 0;
}

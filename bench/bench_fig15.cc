// Reproduces paper Figure 15 (appendix): method comparison (VAE,
// PrivBayes, GAN) on the simulated datasets SDataNum and SDataCat.
#include <cstdio>

#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunBundle(const Bundle& bundle, uint64_t seed) {
  std::printf("\n=== Figure 15: %s ===\n", bundle.name.c_str());

  std::vector<data::Table> synthetic;
  {
    baselines::VaeOptions vopts;
    vopts.epochs = 30;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(bundle.train);
    Rng rng(seed);
    synthetic.push_back(vae.Generate(bundle.train.num_records(), &rng));
  }
  for (double eps : {0.2, 0.4, 0.8, 1.6}) {
    baselines::PrivBayesOptions popts;
    popts.epsilon = eps;
    baselines::PrivBayes pb(popts);
    Rng rng(seed + static_cast<uint64_t>(eps * 10));
    pb.Fit(bundle.train, &rng);
    synthetic.push_back(pb.Generate(bundle.train.num_records(), &rng));
  }
  {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 150;
    synthetic.push_back(TrainAndSynthesize(bundle, gopts, {}, 0, seed + 9));
  }

  PrintHeader("CLF", {"VAE", "PB-0.2", "PB-0.4", "PB-0.8", "PB-1.6",
                      "GAN"});
  for (auto kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < synthetic.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, seed + 20 + i));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Figure 15: method comparison on simulated "
              "data (F1 Diff, lower is better)\n");
  RunBundle(MakeSDataNumBundle(0.5, 0.5, 2400, 0xE1), 0xE10);
  RunBundle(MakeSDataCatBundle(0.5, 0.5, 2400, 0xE2), 0xE20);
  return 0;
}

// Substrate micro-benchmarks (google-benchmark): the building blocks
// whose cost dominates the experiment harness — matrix multiplication,
// GMM fitting, record transformation, LSTM stepping, decision-tree
// fitting, and AQP query execution.
#include <benchmark/benchmark.h>

#include "core/kernels/kernels.h"
#include "core/matrix.h"
#include "core/parallel.h"
#include "nn/activations.h"
#include "data/generators/realistic.h"
#include "eval/aqp.h"
#include "eval/decision_tree.h"
#include "nn/lstm.h"
#include "stats/gmm.h"
#include "synth/dp_engine.h"
#include "synth/mlp_nets.h"
#include "transform/record_transformer.h"

namespace daisy {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::Randn(n, n, &rng);
  Matrix b = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// GEMM size x thread-count sweeps: args are {n, threads}. The thread
// count is set through par::SetNumThreads (same mechanism as the
// DAISY_THREADS env var) and restored to the default afterwards.
// Output is bit-identical across the threads axis; only time changes.
void BM_GemmThreads(benchmark::State& state) {
  const size_t n = state.range(0);
  const size_t threads = state.range(1);
  Rng rng(1);
  Matrix a = Matrix::Randn(n, n, &rng);
  Matrix b = Matrix::Randn(n, n, &rng);
  par::SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{128, 256, 512}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_GemmTransposeAThreads(benchmark::State& state) {
  const size_t n = state.range(0);
  const size_t threads = state.range(1);
  Rng rng(1);
  Matrix a = Matrix::Randn(n, n, &rng);
  Matrix b = Matrix::Randn(n, n, &rng);
  par::SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.TransposeMatMul(b));
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransposeAThreads)
    ->ArgsProduct({{256, 512}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_GemmTransposeBThreads(benchmark::State& state) {
  const size_t n = state.range(0);
  const size_t threads = state.range(1);
  Rng rng(1);
  Matrix a = Matrix::Randn(n, n, &rng);
  Matrix b = Matrix::Randn(n, n, &rng);
  par::SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMulTranspose(b));
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransposeBThreads)
    ->ArgsProduct({{256, 512}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

// Kernel x ISA sweeps: args are {n, isa} with isa 0 = scalar, 1 =
// avx2. The ISA is forced through kern::SetIsaForTesting (the same
// table the DAISY_SIMD env var selects) and restored afterwards; on a
// machine without AVX2 the avx2 rows are skipped with a message.
// Output is bit-identical across the ISA axis; only time changes.
bool ForceIsaOrSkip(benchmark::State& state, int64_t isa_arg) {
  const auto isa =
      isa_arg == 1 ? kern::Isa::kAvx2 : kern::Isa::kScalar;
  if (!kern::IsaAvailable(isa)) {
    state.SkipWithError("AVX2 kernel table unavailable");
    return false;
  }
  kern::SetIsaForTesting(isa);
  return true;
}

void BM_KernelGemmIsa(benchmark::State& state) {
  const size_t n = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix a = Matrix::Randn(n, n, &rng);
  Matrix b = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_KernelGemmIsa)
    ->ArgsProduct({{128, 256}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_KernelTanhIsa(benchmark::State& state) {
  const size_t n = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::TanhMat(x));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelTanhIsa)->ArgsProduct({{256, 512}, {0, 1}});

void BM_KernelSigmoidIsa(benchmark::State& state) {
  const size_t n = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SigmoidMat(x));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelSigmoidIsa)->ArgsProduct({{256, 512}, {0, 1}});

void BM_KernelLeakyReluIsa(benchmark::State& state) {
  const size_t n = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::LeakyReluMat(x, 0.2));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelLeakyReluIsa)->ArgsProduct({{256, 512}, {0, 1}});

void BM_KernelSoftmaxIsa(benchmark::State& state) {
  const size_t cols = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(4096, cols, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SoftmaxRows(x));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_KernelSoftmaxIsa)->ArgsProduct({{16, 128}, {0, 1}});

void BM_KernelRowNormIsa(benchmark::State& state) {
  const size_t n = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    Matrix scales = x.RowSquaredNorms();
    Matrix y = x;
    benchmark::DoNotOptimize(y.ScaleRows(scales));
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelRowNormIsa)->ArgsProduct({{256, 512}, {0, 1}});

void BM_KernelArgmaxIsa(benchmark::State& state) {
  const size_t cols = state.range(0);
  if (!ForceIsaOrSkip(state, state.range(1))) return;
  Rng rng(1);
  Matrix x = Matrix::Randn(4096, cols, &rng);
  for (auto _ : state) {
    size_t acc = 0;
    for (size_t r = 0; r < x.rows(); ++r) acc += x.ArgMaxRow(r);
    benchmark::DoNotOptimize(acc);
  }
  kern::ResetIsaForTesting();
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_KernelArgmaxIsa)->ArgsProduct({{16, 128}, {0, 1}});

void BM_GmmFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values(state.range(0));
  for (auto& v : values)
    v = rng.Gaussian(rng.Uniform() < 0.5 ? -3.0 : 3.0, 1.0);
  for (auto _ : state) {
    Rng fit_rng(3);
    stats::Gmm1d::Options opts;
    opts.components = 5;
    opts.max_iters = 30;
    benchmark::DoNotOptimize(stats::Gmm1d::Fit(values, opts, &fit_rng));
  }
}
BENCHMARK(BM_GmmFit)->Arg(1000)->Arg(10000);

void BM_TransformTable(benchmark::State& state) {
  Rng rng(4);
  data::Table t = data::MakeAdultSim(state.range(0), &rng);
  transform::TransformOptions opts;
  auto tf = transform::RecordTransformer::Fit(t, opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tf.Transform(t));
  }
  state.SetItemsProcessed(state.iterations() * t.num_records());
}
BENCHMARK(BM_TransformTable)->Arg(1000)->Arg(5000);

void BM_LstmStep(benchmark::State& state) {
  Rng rng(5);
  const size_t batch = state.range(0);
  nn::LstmCell cell(32, 64, &rng);
  Matrix x = Matrix::Randn(batch, 32, &rng);
  for (auto _ : state) {
    cell.ClearCache();
    auto s = cell.InitialState(batch);
    benchmark::DoNotOptimize(cell.StepForward(x, s));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmStep)->Arg(16)->Arg(64)->Arg(256);

void BM_DecisionTreeFit(benchmark::State& state) {
  Rng rng(6);
  data::Table t = data::MakeAdultSim(state.range(0), &rng);
  Matrix x = t.FeatureMatrix();
  auto y = t.Labels();
  for (auto _ : state) {
    Rng fit_rng(7);
    eval::DecisionTree tree(eval::DecisionTreeOptions{.max_depth = 10});
    tree.Fit(x, y, 2, &fit_rng);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * t.num_records());
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(5000);

// DP-SGD discriminator step, engine x batch x threads. Args are
// {engine, batch, threads}: engine 0 = per-sample reference, 1 =
// replica-parallel, 2 = vectorized. The discriminator is the default
// MLP critic (96x96, Wasserstein) on a 32-dim sample. Per step the
// reference pays 2*batch one-row backward passes; the vectorized
// engine pays O(layers) batched GEMMs, so its advantage grows with the
// batch size and is independent of the thread count (algorithmic, not
// parallel, speedup). All three produce the same mechanism output.
void BM_DpStep(benchmark::State& state) {
  const auto engine_kind = static_cast<synth::DpEngineKind>(
      static_cast<int>(state.range(0)) + 1);  // skip kAuto
  const size_t batch = state.range(1);
  const size_t threads = state.range(2);
  const size_t dim = 32;
  Rng rng(9);
  synth::MlpDiscriminator d(dim, 0, {96, 96}, false, &rng);
  synth::DpSgdEngine engine(&d, 1.0, 1.0, engine_kind);
  Matrix real = Matrix::Randn(batch, dim, &rng);
  Matrix fake = Matrix::Randn(batch, dim, &rng);
  Rng noise_rng(10);
  par::SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Step(real, Matrix(), fake, Matrix(),
                                         /*wasserstein=*/true, &noise_rng));
  }
  par::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DpStep)
    ->ArgsProduct({{0, 1, 2}, {16, 64, 256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_AqpQuery(benchmark::State& state) {
  Rng rng(8);
  data::Table t = data::MakeBingSim(state.range(0), &rng);
  eval::AqpWorkloadOptions wopts;
  wopts.num_queries = 1;
  const auto workload = eval::GenerateAqpWorkload(t, wopts, &rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::ExecuteAqpQuery(t, workload[0]));
  }
  state.SetItemsProcessed(state.iterations() * t.num_records());
}
BENCHMARK(BM_AqpQuery)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace daisy

BENCHMARK_MAIN();

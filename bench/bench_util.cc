#include "bench/bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace daisy::bench {

namespace {

Bundle SplitToBundle(std::string name, const data::Table& full,
                     uint64_t seed) {
  Rng rng(seed);
  auto split = data::SplitTable(full, 4.0 / 6.0, 1.0 / 6.0, &rng);
  Bundle b;
  b.name = std::move(name);
  b.train = std::move(split.train);
  b.valid = std::move(split.valid);
  b.test = std::move(split.test);
  return b;
}

}  // namespace

Bundle MakeBundle(const std::string& name, size_t n, uint64_t seed) {
  Rng rng(seed);
  return SplitToBundle(name, data::MakeDatasetByName(name, n, &rng),
                       seed ^ 0x5555);
}

Bundle MakeSDataNumBundle(double correlation, double positive_ratio,
                          size_t n, uint64_t seed) {
  Rng rng(seed);
  data::SDataNumOptions opts;
  opts.num_records = n;
  opts.correlation = correlation;
  opts.positive_ratio = positive_ratio;
  char name[64];
  std::snprintf(name, sizeof(name), "SDataNum-%.1f%s", correlation,
                positive_ratio < 0.3 ? "-skew" : "");
  return SplitToBundle(name, data::MakeSDataNum(opts, &rng), seed ^ 0x5555);
}

Bundle MakeSDataCatBundle(double diagonal_p, double positive_ratio,
                          size_t n, uint64_t seed) {
  Rng rng(seed);
  data::SDataCatOptions opts;
  opts.num_records = n;
  opts.diagonal_p = diagonal_p;
  opts.positive_ratio = positive_ratio;
  char name[64];
  std::snprintf(name, sizeof(name), "SDataCat-%.1f%s", diagonal_p,
                positive_ratio < 0.3 ? "-skew" : "");
  return SplitToBundle(name, data::MakeSDataCat(opts, &rng), seed ^ 0x5555);
}

synth::GanOptions BenchGanOptions() {
  synth::GanOptions opts;
  opts.iterations = 150;
  opts.batch_size = 64;
  opts.g_hidden = {64, 64};
  opts.d_hidden = {64, 64};
  opts.lstm_hidden = 48;
  opts.lstm_feature = 24;
  opts.noise_dim = 16;
  opts.snapshots = 10;
  return opts;
}

void ApplyBenchScale(synth::GanOptions* opts) {
  if (std::getenv("DAISY_BENCH_FAST") != nullptr) {
    opts->iterations = std::max<size_t>(20, opts->iterations / 5);
  }
}

data::Table TrainAndSynthesize(const Bundle& bundle,
                               const synth::GanOptions& gan_opts,
                               const transform::TransformOptions& topts,
                               size_t gen_size, uint64_t seed,
                               double* train_seconds) {
  synth::GanOptions opts = gan_opts;
  opts.seed = seed;
  ApplyBenchScale(&opts);
  synth::TableSynthesizer synth(opts, topts);
  const double t0 = NowSeconds();
  synth.Fit(bundle.train);

  eval::SnapshotSelectionOptions sopts;
  sopts.gen_size = std::min<size_t>(bundle.valid.num_records() * 2, 1000);
  Rng sel_rng(seed ^ 0xABCD);
  eval::SelectBestSnapshot(&synth, bundle.valid, sopts, &sel_rng);
  if (train_seconds) *train_seconds = NowSeconds() - t0;

  Rng gen_rng(seed ^ 0x1234);
  const size_t n = gen_size > 0 ? gen_size : bundle.train.num_records();
  return synth.Generate(n, &gen_rng);
}

double F1DiffFor(const Bundle& bundle, const data::Table& synthetic,
                 eval::ClassifierKind kind, uint64_t seed) {
  Rng rng(seed);
  return eval::F1Diff(bundle.train, synthetic, bundle.test, kind, &rng);
}

void PrintHeader(const std::string& first,
                 const std::vector<std::string>& columns) {
  std::printf("%-22s", first.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < 22 + 14 * columns.size(); ++i) std::printf("-");
  std::printf("\n");
}

void PrintRow(const std::string& first, const std::vector<double>& values) {
  std::printf("%-22s", first.c_str());
  for (double v : values) std::printf("%14.3f", v);
  std::printf("\n");
  std::fflush(stdout);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace daisy::bench

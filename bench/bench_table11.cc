// Reproduces paper Table 11 (appendix): LSTM-based discriminator vs
// MLP-based discriminator (both with MLP / LSTM generators) on
// Adult-sim — the paper finds the LSTM discriminator clearly worse.
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

using transform::CategoricalEncoding;
using transform::NumericalNormalization;

void RunGenerator(const Bundle& bundle, synth::GeneratorArch g_arch,
                  const std::string& g_name) {
  struct Scheme {
    std::string label;
    NumericalNormalization num;
    CategoricalEncoding cat;
  };
  const Scheme schemes[] = {
      {"sn/od", NumericalNormalization::kSimple,
       CategoricalEncoding::kOrdinal},
      {"sn/ht", NumericalNormalization::kSimple,
       CategoricalEncoding::kOneHot},
      {"gn/od", NumericalNormalization::kGmm,
       CategoricalEncoding::kOrdinal},
      {"gn/ht", NumericalNormalization::kGmm,
       CategoricalEncoding::kOneHot},
  };

  for (const auto& scheme : schemes) {
    std::vector<double> row;
    for (synth::DiscriminatorArch d_arch :
         {synth::DiscriminatorArch::kMlp, synth::DiscriminatorArch::kLstm}) {
      synth::GanOptions opts = BenchGanOptions();
      opts.generator = g_arch;
      opts.discriminator = d_arch;
      // Same generator budget within a row so only D differs; MLP G
      // gets more (cheaper) updates.
      opts.iterations =
          g_arch == synth::GeneratorArch::kMlp ? 600 : 200;
      transform::TransformOptions topts;
      topts.numerical = scheme.num;
      topts.categorical = scheme.cat;
      data::Table fake = TrainAndSynthesize(bundle, opts, topts, 0,
                                            0x1B0 + row.size());
      row.push_back(
          F1DiffFor(bundle, fake, eval::ClassifierKind::kDt10, 0x1B5));
    }
    PrintRow(g_name + " " + scheme.label, row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 11: MLP vs LSTM discriminator on "
              "Adult-sim (DT10 F1 Diff, lower is better)\n\n");
  Bundle bundle = MakeBundle("adult", 1500, 0x1B);
  PrintHeader("G / transform", {"D=MLP", "D=LSTM"});
  RunGenerator(bundle, daisy::synth::GeneratorArch::kMlp, "MLP");
  RunGenerator(bundle, daisy::synth::GeneratorArch::kLstm, "LSTM");
  return 0;
}

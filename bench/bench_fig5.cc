// Reproduces paper Figure 5: strategies to avoid mode collapse —
// Wasserstein training (WTrain) vs. vanilla training with a simplified
// discriminator (Simplified) vs. plain vanilla training (VTrain).
// Values are F1 Diff per classifier (lower is better).
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name, size_t n, size_t iterations) {
  Bundle bundle = MakeBundle(name, n, 0xF5);
  std::printf("\n=== Figure 5: %s ===\n", name.c_str());

  struct Strategy {
    std::string label;
    synth::TrainAlgo algo;
    bool simplified;
  };
  const Strategy strategies[] = {
      {"WTrain", synth::TrainAlgo::kWTrain, false},
      {"Simplified", synth::TrainAlgo::kVTrain, true},
      {"VTrain", synth::TrainAlgo::kVTrain, false},
  };

  std::vector<data::Table> synthetic;
  for (const auto& s : strategies) {
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = synth::GeneratorArch::kLstm;
    opts.algo = s.algo;
    opts.simplified_discriminator = s.simplified;
    opts.iterations = iterations;
    if (s.algo == synth::TrainAlgo::kWTrain) {
      opts.d_steps = 3;
      opts.lr_g = 5e-4;
      opts.lr_d = 5e-4;
    }
    double secs = 0.0;
    synthetic.push_back(TrainAndSynthesize(bundle, opts, {}, 0,
                                           0xF50 + synthetic.size(), &secs));
    std::fprintf(stderr, "[fig5] %s %s trained in %.1fs\n", name.c_str(),
                 s.label.c_str(), secs);
  }

  PrintHeader("CLF", {"WTrain", "Simplified", "VTrain"});
  for (auto kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < synthetic.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, 0xF55 + i));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using daisy::bench::RunDataset;
  std::printf("Reproduction of Figure 5: mode-collapse mitigation "
              "strategies (F1 Diff, lower is better)\n");
  RunDataset("adult", 1500, 300);
  RunDataset("covtype", 3000, 300);
  RunDataset("sat", 1800, 100);
  RunDataset("census", 2400, 80);
  return 0;
}

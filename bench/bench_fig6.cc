// Reproduces paper Figure 6: conditional GAN on skewed datasets —
// unconditional GAN vs. conditional GAN trained with random sampling
// (CGAN-V) vs. conditional GAN with label-aware sampling (CGAN-C).
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name, size_t n, size_t iterations) {
  Bundle bundle = MakeBundle(name, n, 0xF6);
  std::printf("\n=== Figure 6: %s ===\n", name.c_str());

  struct Variant {
    std::string label;
    synth::TrainAlgo algo;
    bool conditional;
  };
  const Variant variants[] = {
      {"GAN", synth::TrainAlgo::kVTrain, false},
      {"CGAN-V", synth::TrainAlgo::kVTrain, true},
      {"CGAN-C", synth::TrainAlgo::kCTrain, true},
  };

  std::vector<data::Table> synthetic;
  for (const auto& v : variants) {
    synth::GanOptions opts = BenchGanOptions();
    opts.algo = v.algo;
    opts.conditional = v.conditional;
    opts.iterations = iterations;
    if (v.algo == synth::TrainAlgo::kCTrain) {
      // CTrain does one update per label per iteration; normalize the
      // total generator-update count across variants.
      opts.iterations = std::max<size_t>(
          10, iterations / bundle.train.schema().num_labels());
    }
    double secs = 0.0;
    synthetic.push_back(TrainAndSynthesize(bundle, opts, {}, 0,
                                           0xF60 + synthetic.size(), &secs));
    std::fprintf(stderr, "[fig6] %s %s trained in %.1fs\n", name.c_str(),
                 v.label.c_str(), secs);
  }

  PrintHeader("CLF", {"GAN", "CGAN-V", "CGAN-C"});
  for (auto kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < synthetic.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, 0xF65 + i));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using daisy::bench::RunDataset;
  std::printf("Reproduction of Figure 6: conditional GAN on skewed "
              "datasets (F1 Diff, lower is better)\n");
  RunDataset("adult", 1800, 800);
  RunDataset("covtype", 3000, 800);
  RunDataset("census", 2400, 400);
  RunDataset("anuran", 3000, 400);
  return 0;
}

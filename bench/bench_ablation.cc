// Ablation study of the framework's own design choices (DESIGN.md §5)
// — not a paper table, but regenerates the evidence behind this
// repository's defaults:
//   (a) the KL warm-up term in VTrain (Eq. 2) on vs off,
//   (b) GMM component count in mode-specific normalization,
//   (c) noise dimension,
//   (d) simplified-discriminator width.
// Reported: DT10 F1 Diff plus statistical fidelity (marginal KL and
// pairwise-correlation preservation).
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/fidelity.h"

namespace daisy::bench {
namespace {

void Report(const Bundle& bundle, const std::string& label,
            const synth::GanOptions& gopts,
            const transform::TransformOptions& topts, uint64_t seed) {
  data::Table fake = TrainAndSynthesize(bundle, gopts, topts, 0, seed);
  const double f1 =
      F1DiffFor(bundle, fake, eval::ClassifierKind::kDt10, seed ^ 5);
  const auto fidelity = eval::EvaluateFidelity(bundle.train, fake);
  PrintRow(label, {f1, fidelity.marginal_kl,
                   fidelity.numeric_correlation_diff,
                   fidelity.categorical_association_diff});
}

void KlWarmupAblation(const Bundle& bundle) {
  std::printf("\n--- (a) KL warm-up term (Eq. 2) ---\n");
  for (double w : {0.0, 0.5, 1.0, 2.0}) {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 600;
    gopts.kl_weight = w;
    char label[32];
    std::snprintf(label, sizeof(label), "kl_weight=%.1f", w);
    Report(bundle, label, gopts, {}, 0xAB10 + static_cast<uint64_t>(w * 10));
  }
}

void GmmComponentsAblation(const Bundle& bundle) {
  std::printf("\n--- (b) GMM components (mode-specific normalization) "
              "---\n");
  for (size_t s : {1, 2, 5, 8}) {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 600;
    transform::TransformOptions topts;
    topts.numerical = transform::NumericalNormalization::kGmm;
    topts.gmm_components = s;
    char label[32];
    std::snprintf(label, sizeof(label), "components=%zu", s);
    Report(bundle, label, gopts, topts, 0xAB20 + s);
  }
}

void NoiseDimAblation(const Bundle& bundle) {
  std::printf("\n--- (c) noise dimension ---\n");
  for (size_t z : {2, 8, 32, 64}) {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 600;
    gopts.noise_dim = z;
    char label[32];
    std::snprintf(label, sizeof(label), "noise_dim=%zu", z);
    Report(bundle, label, gopts, {}, 0xAB30 + z);
  }
}

void SimplifiedWidthAblation(const Bundle& bundle) {
  std::printf("\n--- (d) discriminator capacity ---\n");
  struct Width {
    const char* label;
    std::vector<size_t> hidden;
    bool simplified;
  };
  const Width widths[] = {
      {"D=simplified", {64, 64}, true},
      {"D=32", {32}, false},
      {"D=64x64", {64, 64}, false},
      {"D=128x128", {128, 128}, false},
  };
  for (size_t i = 0; i < std::size(widths); ++i) {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 600;
    gopts.d_hidden = widths[i].hidden;
    gopts.simplified_discriminator = widths[i].simplified;
    Report(bundle, widths[i].label, gopts, {}, 0xAB40 + i);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Ablation of this repository's design defaults "
              "(Adult-sim; DT10 F1 Diff + fidelity, lower is better)\n\n");
  Bundle bundle = MakeBundle("adult", 1800, 0xAB);
  PrintHeader("setting", {"F1Diff", "margKL", "corrDiff", "catDiff"});
  KlWarmupAblation(bundle);
  GmmComponentsAblation(bundle);
  NoiseDimAblation(bundle);
  SimplifiedWidthAblation(bundle);
  return 0;
}

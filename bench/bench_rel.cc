// Relational synthesis bench (google-benchmark): fit and generation
// cost of the multi-table pipeline over the Zipf two-table fixture,
// plus the per-draw cost of the cardinality model (one Categorical
// draw per synthetic parent — the fixed rng budget Generate relies
// on). Axes:
//
//   parents — real parent rows (child rows follow the Zipf fan-out)
//   scale   — Generate's size multiplier (x100 denominator)
//
// Reported items/sec for the generate benches is synthetic rows per
// second across ALL generated tables. EXPERIMENTS.md describes
// exporting the sweep as BENCH_rel.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators/relational_pair.h"
#include "relational/relational_synthesizer.h"

namespace daisy::bench {
namespace {

rel::RelationalOptions BenchRelOptions() {
  rel::RelationalOptions opts;
  opts.gan = BenchGanOptions();
  opts.gan.iterations = 60;
  opts.gan.snapshots = 1;
  ApplyBenchScale(&opts.gan);
  return opts;
}

data::RelationalPair BenchPair(size_t parents) {
  data::RelationalPairOptions popts;
  popts.num_parents = parents;
  Rng rng(0x8E1);
  return data::MakeRelationalPair(popts, &rng);
}

// Fits both table models + the cardinality/encoder state per
// iteration — the end-to-end training cost of one bundle.
void BM_RelationalFit(benchmark::State& state) {
  const data::RelationalPair pair =
      BenchPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rel::RelationalSynthesizer synth(BenchRelOptions());
    const Status health = synth.Fit(
        pair.schema, {{&pair.parent, nullptr}, {&pair.child, nullptr}});
    DAISY_CHECK(health.ok());
    benchmark::DoNotOptimize(synth.fitted());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(pair.parent.num_records() +
                           pair.child.num_records()));
}
BENCHMARK(BM_RelationalFit)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

// Generation cost of the whole database at increasing scale; fit once
// outside the timed region.
void BM_RelationalGenerate(benchmark::State& state) {
  const data::RelationalPair pair = BenchPair(400);
  rel::RelationalSynthesizer synth(BenchRelOptions());
  DAISY_CHECK(synth
                  .Fit(pair.schema,
                       {{&pair.parent, nullptr}, {&pair.child, nullptr}})
                  .ok());
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  int64_t rows = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto out = synth.Generate(scale, &rng);
    DAISY_CHECK(out.ok());
    for (const auto& t : out.value())
      rows += static_cast<int64_t>(t.num_records());
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_RelationalGenerate)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Raw cardinality sampling: one Categorical draw per call.
void BM_CardinalitySample(benchmark::State& state) {
  const data::RelationalPair pair = BenchPair(2000);
  std::vector<size_t> counts(pair.parent.num_records(), 0);
  for (size_t r = 0; r < pair.child.num_records(); ++r)
    ++counts[static_cast<size_t>(pair.child.value(r, 1)) - 1];
  const rel::CardinalityModel model =
      rel::CardinalityModel::Fit(counts).value();
  Rng rng(7);
  size_t sum = 0;
  for (auto _ : state) sum += model.Sample(&rng);
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CardinalitySample);

}  // namespace
}  // namespace daisy::bench

BENCHMARK_MAIN();

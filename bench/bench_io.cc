// Out-of-core I/O bench (google-benchmark): what the paged pipeline
// costs relative to the in-memory path, and what the chunked-shuffle
// sampler buys back. Axes:
//
//   convert    — CSV -> .dcol conversion throughput (rows/sec)
//   scan       — sequential ScanColumn streaming (bytes/sec)
//   epoch      — one epoch of batch-256 minibatch gathers through a
//                TrainDataSource: in-memory (budget 0) vs paged at
//                page budgets {1, 4, 64}, with the uniform sampler
//                (random page faults every batch) and the
//                chunked-shuffle sampler (page-local batches)
//
// The determinism contract means every variant gathers bitwise-equal
// sample batches — only time and cache-miss counts may differ. The
// headline number to watch: paged + chunked at a small budget should
// stay within ~1.3x of the in-memory epoch. EXPERIMENTS.md describes
// exporting the sweep as BENCH_io.json. Row count defaults to 100k;
// override with DAISY_BENCH_IO_ROWS.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "data/generators/sdata.h"
#include "synth/sampler.h"
#include "synth/train_source.h"
#include "transform/record_transformer.h"

namespace daisy::bench {
namespace {

namespace fs = std::filesystem;

size_t BenchRows() {
  if (const char* env = std::getenv("DAISY_BENCH_IO_ROWS"))
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return 100000;
}

constexpr size_t kPageRows = 4096;
constexpr size_t kBatch = 256;

std::string BenchDir() {
  const fs::path dir = fs::temp_directory_path() / "daisy_bench_io";
  fs::create_directories(dir);
  return dir.string();
}

const data::Table& BigTable() {
  static const data::Table* table = [] {
    Rng rng(0x10);
    data::SDataCatOptions opts;
    opts.num_records = BenchRows();
    return new data::Table(data::MakeSDataCat(opts, &rng));
  }();
  return *table;
}

const std::string& CsvPath() {
  static const std::string* path = [] {
    auto* p = new std::string(BenchDir() + "/table.csv");
    const Status st = data::WriteCsv(BigTable(), *p);
    if (!st.ok()) std::abort();
    return p;
  }();
  return *path;
}

const std::string& DcolPath() {
  static const std::string* path = [] {
    auto* p = new std::string(BenchDir() + "/table.dcol");
    const Status st = data::WriteColumnar(BigTable(), *p, kPageRows);
    if (!st.ok()) std::abort();
    return p;
  }();
  return *path;
}

// Simple normalization + one-hot keeps the transformer setup cheap so
// the timed region is dominated by gather/encode I/O, not GMM fitting.
const transform::RecordTransformer& Transformer() {
  static const transform::RecordTransformer* t = [] {
    transform::TransformOptions topts;
    topts.numerical = transform::NumericalNormalization::kSimple;
    Rng rng(0x11);
    return new transform::RecordTransformer(
        transform::RecordTransformer::Fit(BigTable(), topts, &rng));
  }();
  return *t;
}

void BM_ConvertCsvToColumnar(benchmark::State& state) {
  const std::string& csv = CsvPath();
  const std::string out = BenchDir() + "/convert_out.dcol";
  const std::string label = BigTable().schema().label_attribute().name;
  for (auto _ : state) {
    const Status st = data::ConvertCsvToColumnar(csv, out, label, kPageRows);
    if (!st.ok()) state.SkipWithError(st.message().c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BigTable().num_records()));
}
BENCHMARK(BM_ConvertCsvToColumnar)->Unit(benchmark::kMillisecond);

void BM_ScanColumn(benchmark::State& state) {
  data::PagedTable::Options popts;
  popts.verify = false;
  auto paged = data::PagedTable::Open(DcolPath(), popts).take();
  std::vector<double> out(paged->num_records());
  for (auto _ : state) {
    for (size_t col = 0; col < paged->num_attributes(); ++col) {
      const Status st =
          paged->ScanColumn(col, 0, paged->num_records(), out.data());
      if (!st.ok()) state.SkipWithError(st.message().c_str());
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(paged->num_records() *
                                               paged->num_attributes() *
                                               sizeof(double)));
}
BENCHMARK(BM_ScanColumn)->Unit(benchmark::kMillisecond);

// One epoch of minibatch gathers. budget == 0 is the in-memory
// baseline (whole table transformed up front, batches sliced from the
// encoded matrix); budget > 0 faults raw pages through the cache and
// encodes per batch. chunked == 1 uses the page-local shuffle order.
void EpochGather(benchmark::State& state, size_t budget, bool chunked) {
  const data::Table& table = BigTable();
  const transform::RecordTransformer& transformer = Transformer();

  std::unique_ptr<data::PagedTable> paged;
  std::unique_ptr<synth::TrainDataSource> source;
  if (budget == 0) {
    source = std::make_unique<synth::InMemoryTrainSource>(table, &transformer);
  } else {
    data::PagedTable::Options popts;
    popts.page_budget = budget;
    popts.verify = false;
    paged = data::PagedTable::Open(DcolPath(), popts).take();
    source = std::make_unique<synth::PagedTrainSource>(paged.get(),
                                                       &transformer);
  }

  const size_t n = table.num_records();
  const size_t batches = n / kBatch;
  Rng rng(0x12);
  synth::RandomSampler uniform(n);
  synth::ChunkedShuffleSampler shuffle(n, kPageRows, 0x13);
  for (auto _ : state) {
    for (size_t b = 0; b < batches; ++b) {
      const std::vector<size_t> rows = chunked
                                           ? shuffle.SampleBatch(kBatch)
                                           : uniform.SampleBatch(kBatch, &rng);
      const Matrix samples = source->GatherSamples(rows);
      benchmark::DoNotOptimize(samples.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batches * kBatch));
  if (paged != nullptr) {
    state.counters["page_misses"] =
        static_cast<double>(paged->cache_stats().misses);
    state.counters["page_hits"] =
        static_cast<double>(paged->cache_stats().hits);
  }
}

void BM_EpochGather(benchmark::State& state) {
  EpochGather(state, static_cast<size_t>(state.range(0)),
              state.range(1) != 0);
}
BENCHMARK(BM_EpochGather)
    ->ArgNames({"budget", "chunked"})
    ->Args({0, 0})   // in-memory baseline
    ->Args({0, 1})
    ->Args({1, 1})   // minimum budget: only viable with page-local order
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

// End-to-end Fit (transformer fitting + ~1 epoch of adversarial
// iterations): the number the out-of-core pipeline is judged by.
// budget == 0 is the in-memory path. The per-batch re-encode the
// paged path pays is amortized against the whole-table Transform the
// in-memory path pays up front, so the two should land close.
void BM_TrainEndToEnd(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  const size_t iterations = 200;  // ~1 epoch at 100k rows, batch 256
  for (auto _ : state) {
    synth::GanOptions opts;
    opts.iterations = iterations;
    opts.batch_size = kBatch;
    opts.snapshots = 1;
    opts.seed = 0x14;
    opts.sampler = synth::SamplerKind::kChunkedShuffle;
    opts.shuffle_chunk_rows = kPageRows;
    transform::TransformOptions topts;
    topts.numerical = transform::NumericalNormalization::kSimple;
    synth::TableSynthesizer synth(opts, topts);
    if (budget == 0) {
      if (!synth.Fit(BigTable()).ok()) state.SkipWithError("fit failed");
    } else {
      data::PagedTable::Options popts;
      popts.page_budget = budget;
      popts.verify = false;
      auto paged = data::PagedTable::Open(DcolPath(), popts).take();
      if (!synth.Fit(*paged).ok()) state.SkipWithError("fit failed");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(iterations * kBatch));
}
BENCHMARK(BM_TrainEndToEnd)
    ->ArgNames({"budget"})
    ->Arg(0)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace daisy::bench

BENCHMARK_MAIN();

// Reproduces paper Table 8: AQP utility DiffAQP across generator
// networks and transformation schemes on CovType-sim and Census-sim.
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/aqp.h"

namespace daisy::bench {
namespace {

using transform::CategoricalEncoding;
using transform::NumericalNormalization;

void RunDataset(const std::string& name, size_t n, size_t iterations,
                bool include_cnn) {
  Bundle bundle = MakeBundle(name, n, 0x18);

  Rng wl_rng(0x181);
  eval::AqpWorkloadOptions wopts;
  wopts.num_queries = 300;
  const auto workload =
      eval::GenerateAqpWorkload(bundle.train, wopts, &wl_rng).value();
  eval::AqpDiffOptions dopts;
  dopts.sample_ratio = 0.05;  // 1% of a bench-sized table is too few rows

  struct Config {
    std::string label;
    synth::GeneratorArch arch;
    NumericalNormalization num;
  };
  std::vector<Config> configs;
  if (include_cnn)
    configs.push_back({"CNN", synth::GeneratorArch::kCnn,
                       NumericalNormalization::kSimple});
  configs.push_back({"MLP sn/ht", synth::GeneratorArch::kMlp,
                     NumericalNormalization::kSimple});
  configs.push_back({"MLP gn/ht", synth::GeneratorArch::kMlp,
                     NumericalNormalization::kGmm});
  configs.push_back({"LSTM sn/ht", synth::GeneratorArch::kLstm,
                     NumericalNormalization::kSimple});
  configs.push_back({"LSTM gn/ht", synth::GeneratorArch::kLstm,
                     NumericalNormalization::kGmm});

  std::vector<double> row;
  for (size_t i = 0; i < configs.size(); ++i) {
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = configs[i].arch;
    opts.iterations = configs[i].arch == synth::GeneratorArch::kLstm
                          ? iterations
                          : iterations * 4;
    transform::TransformOptions topts;
    topts.numerical = configs[i].num;
    topts.categorical = CategoricalEncoding::kOneHot;
    data::Table fake =
        TrainAndSynthesize(bundle, opts, topts, 0, 0x180 + i);
    Rng rng(0x185 + i);
    row.push_back(
        eval::AqpDiff(bundle.train, fake, workload, dopts, &rng).value());
  }
  if (!include_cnn) row.insert(row.begin(), -1.0);
  PrintRow(name, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 8: AQP utility DiffAQP by network "
              "(lower is better; -1 = CNN not applicable)\n\n");
  PrintHeader("Dataset", {"CNN", "MLP sn/ht", "MLP gn/ht", "LSTM sn/ht",
                          "LSTM gn/ht"});
  RunDataset("covtype", 2400, 150, false);
  RunDataset("census", 1800, 60, true);
  return 0;
}

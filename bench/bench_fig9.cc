// Reproduces paper Figure 9: conditional GAN on simulated data under
// balanced vs. skewed label distributions.
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunBundle(const Bundle& bundle, uint64_t seed) {
  std::printf("\n=== Figure 9: %s ===\n", bundle.name.c_str());

  struct Variant {
    std::string label;
    synth::TrainAlgo algo;
    bool conditional;
  };
  const Variant variants[] = {
      {"GAN", synth::TrainAlgo::kVTrain, false},
      {"CGAN(VTrain)", synth::TrainAlgo::kVTrain, true},
      {"CGAN(CTrain)", synth::TrainAlgo::kCTrain, true},
  };

  std::vector<data::Table> synthetic;
  for (const auto& v : variants) {
    synth::GanOptions opts = BenchGanOptions();
    opts.algo = v.algo;
    opts.conditional = v.conditional;
    opts.iterations =
        v.algo == synth::TrainAlgo::kCTrain ? 300 : 600;
    synthetic.push_back(
        TrainAndSynthesize(bundle, opts, {}, 0, seed + synthetic.size()));
  }

  PrintHeader("CLF", {"GAN", "CGAN(VTrain)", "CGAN(CTrain)"});
  for (auto kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < synthetic.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, seed ^ (9 + i)));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Figure 9: conditional GAN on simulated "
              "datasets (F1 Diff, lower is better)\n");
  RunBundle(MakeSDataNumBundle(0.5, 0.5, 1800, 0x91), 0x910);
  RunBundle(MakeSDataNumBundle(0.5, 0.1, 1800, 0x92), 0x920);
  RunBundle(MakeSDataCatBundle(0.5, 0.5, 1800, 0x93), 0x930);
  RunBundle(MakeSDataCatBundle(0.5, 0.1, 1800, 0x94), 0x940);
  return 0;
}

// Reproduces paper Figures 13/14 (appendix): value-distribution
// fidelity of synthetic attributes. For SDataNum, per-attribute
// histograms (the violin plots' underlying data) plus the histogram KL
// to the real marginals, comparing simple vs GMM normalization under
// MLP and LSTM generators. For SDataCat, category distributions under
// ordinal vs one-hot encoding. KLs are averaged over all attributes
// and two training seeds to damp single-run GAN variance.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/metrics.h"

namespace daisy::bench {
namespace {

using transform::CategoricalEncoding;
using transform::NumericalNormalization;

constexpr uint64_t kSeeds[] = {0xD100, 0xD200};

double AvgNumericKl(const Bundle& bundle, const data::Table& fake,
                    size_t bins) {
  double total = 0.0;
  size_t count = 0;
  for (size_t j : bundle.train.schema().FeatureIndices()) {
    if (bundle.train.schema().attribute(j).is_categorical()) continue;
    const double lo = bundle.train.AttributeMin(j);
    const double hi = bundle.train.AttributeMax(j);
    const auto hr = stats::Histogram(bundle.train.Column(j), lo, hi, bins);
    const auto hf = stats::Histogram(fake.Column(j), lo, hi, bins);
    total += stats::KlDivergence(hr, hf);
    ++count;
  }
  return total / static_cast<double>(count);
}

double AvgCategoricalKl(const Bundle& bundle, const data::Table& fake) {
  double total = 0.0;
  size_t count = 0;
  for (size_t j : bundle.train.schema().FeatureIndices()) {
    const auto& attr = bundle.train.schema().attribute(j);
    if (!attr.is_categorical()) continue;
    std::vector<double> hr(attr.domain_size(), 0.0);
    std::vector<double> hf(attr.domain_size(), 0.0);
    for (size_t i = 0; i < bundle.train.num_records(); ++i)
      hr[bundle.train.category(i, j)] += 1.0;
    for (size_t i = 0; i < fake.num_records(); ++i)
      hf[fake.category(i, j)] += 1.0;
    total += stats::KlDivergence(hr, hf);
    ++count;
  }
  return total / static_cast<double>(count);
}

void PrintNumericHistogram(const std::string& label,
                           const std::vector<double>& values, double lo,
                           double hi, double kl) {
  const auto h = stats::Histogram(values, lo, hi, 10);
  double total = 0.0;
  for (double v : h) total += v;
  std::printf("%-14s", label.c_str());
  for (double v : h) std::printf(" %5.2f", v / total);
  if (kl >= 0.0) std::printf("   avg-KL=%.4f", kl);
  std::printf("\n");
  std::fflush(stdout);
}

void NumericStudy() {
  Bundle bundle = MakeSDataNumBundle(0.5, 0.5, 2400, 0xD1);
  std::printf("\n=== Figure 13: numeric marginal fidelity (SDataNum) ===\n");
  std::printf("10-bin histogram of attribute x over [-7, 7]; avg-KL over "
              "both attributes and %zu seeds\n", std::size(kSeeds));
  PrintNumericHistogram("real", bundle.train.Column(0), -7.0, 7.0, -1.0);

  struct Config {
    std::string label;
    synth::GeneratorArch arch;
    NumericalNormalization num;
    size_t iterations;
  };
  const Config configs[] = {
      {"MLP sn", synth::GeneratorArch::kMlp,
       NumericalNormalization::kSimple, 1200},
      {"MLP gn", synth::GeneratorArch::kMlp, NumericalNormalization::kGmm,
       1200},
      {"LSTM sn", synth::GeneratorArch::kLstm,
       NumericalNormalization::kSimple, 300},
      {"LSTM gn", synth::GeneratorArch::kLstm,
       NumericalNormalization::kGmm, 300},
  };
  for (const auto& cfg : configs) {
    double kl = 0.0;
    data::Table last_fake;
    for (uint64_t seed : kSeeds) {
      synth::GanOptions opts = BenchGanOptions();
      opts.generator = cfg.arch;
      opts.iterations = cfg.iterations;
      transform::TransformOptions topts;
      topts.numerical = cfg.num;
      topts.gmm_components = 8;  // must cover the 5 grid columns
      last_fake = TrainAndSynthesize(bundle, opts, topts, 0, seed);
      kl += AvgNumericKl(bundle, last_fake, 10);
    }
    kl /= static_cast<double>(std::size(kSeeds));
    PrintNumericHistogram(cfg.label, last_fake.Column(0), -7.0, 7.0, kl);
  }
}

void CategoricalStudy() {
  Bundle bundle = MakeSDataCatBundle(0.5, 0.5, 2400, 0xD2);
  std::printf("\n=== Figure 14: categorical marginal fidelity (SDataCat) "
              "===\n");
  std::printf("category distribution of attr0; avg-KL over all 5 "
              "attributes and %zu seeds\n", std::size(kSeeds));

  const size_t dom = bundle.train.schema().attribute(0).domain_size();
  auto dist_of = [&](const data::Table& t) {
    std::vector<double> d(dom, 0.0);
    for (size_t i = 0; i < t.num_records(); ++i) d[t.category(i, 0)] += 1.0;
    return d;
  };
  auto print_dist = [&](const std::string& label,
                        const std::vector<double>& d, double kl) {
    std::printf("%-14s", label.c_str());
    double total = 0.0;
    for (double v : d) total += v;
    for (double v : d) std::printf(" %5.2f", v / total);
    if (kl >= 0.0) std::printf("   avg-KL=%.4f", kl);
    std::printf("\n");
    std::fflush(stdout);
  };
  print_dist("real", dist_of(bundle.train), -1.0);

  struct Config {
    std::string label;
    CategoricalEncoding cat;
  };
  const Config configs[] = {
      {"MLP od", CategoricalEncoding::kOrdinal},
      {"MLP ht", CategoricalEncoding::kOneHot},
  };
  for (const auto& cfg : configs) {
    double kl = 0.0;
    data::Table last_fake;
    for (uint64_t seed : kSeeds) {
      synth::GanOptions opts = BenchGanOptions();
      opts.iterations = 1200;
      transform::TransformOptions topts;
      topts.categorical = cfg.cat;
      last_fake = TrainAndSynthesize(bundle, opts, topts, 0, seed);
      kl += AvgCategoricalKl(bundle, last_fake);
    }
    kl /= static_cast<double>(std::size(kSeeds));
    print_dist(cfg.label, dist_of(last_fake), kl);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  std::printf("Reproduction of Figures 13/14: synthetic value-distribution "
              "fidelity by transformation scheme\n");
  daisy::bench::NumericStudy();
  daisy::bench::CategoricalStudy();
  return 0;
}

// Extension bench (no single paper counterpart; complements Figure 7):
// the full cast of synthesis methods implemented in this repository —
// Gaussian copula [35,46], medGAN-style AE+GAN [18], VAE, PrivBayes,
// and the paper's GAN — compared on classification utility and
// statistical fidelity.
#include <cstdio>

#include "baselines/copula.h"
#include "baselines/medgan.h"
#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "bench/bench_util.h"
#include "eval/fidelity.h"

namespace daisy::bench {
namespace {

void Report(const Bundle& bundle, const std::string& label,
            const data::Table& fake) {
  const double f1 =
      F1DiffFor(bundle, fake, eval::ClassifierKind::kDt10, 0xEE1);
  const double rf =
      F1DiffFor(bundle, fake, eval::ClassifierKind::kRf10, 0xEE2);
  const auto fid = eval::EvaluateFidelity(bundle.train, fake);
  PrintRow(label, {f1, rf, fid.marginal_kl, fid.numeric_correlation_diff,
                   fid.categorical_association_diff});
}

void RunDataset(const Bundle& bundle) {
  std::printf("\n=== Methods on %s ===\n", bundle.name.c_str());
  PrintHeader("method",
              {"DT10", "RF10", "margKL", "corrDiff", "catDiff"});
  const size_t n = bundle.train.num_records();

  {
    baselines::GaussianCopulaSynthesizer copula;
    copula.Fit(bundle.train);
    Rng rng(0xEE3);
    Report(bundle, "Copula", copula.Generate(n, &rng));
  }
  {
    baselines::MedGanOptions mopts;
    mopts.ae_epochs = 20;
    mopts.gan_iterations = 400;
    baselines::MedGanSynthesizer medgan(mopts, {});
    medgan.Fit(bundle.train);
    Rng rng(0xEE4);
    Report(bundle, "medGAN", medgan.Generate(n, &rng));
  }
  {
    baselines::VaeOptions vopts;
    vopts.epochs = 30;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(bundle.train);
    Rng rng(0xEE5);
    Report(bundle, "VAE", vae.Generate(n, &rng));
  }
  {
    baselines::PrivBayesOptions popts;
    popts.epsilon = 1.6;
    baselines::PrivBayes pb(popts);
    Rng rng(0xEE6);
    pb.Fit(bundle.train, &rng);
    Report(bundle, "PB-1.6", pb.Generate(n, &rng));
  }
  {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = 800;
    Report(bundle, "GAN", TrainAndSynthesize(bundle, gopts, {}, 0, 0xEE7));
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Extension: all implemented synthesis methods on utility "
              "and fidelity (lower is better everywhere)\n");
  RunDataset(MakeBundle("adult", 1800, 0xEE));
  RunDataset(MakeSDataNumBundle(0.5, 0.5, 1800, 0xEF));
  return 0;
}

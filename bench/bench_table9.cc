// Reproduces paper Table 9: clustering utility DiffCST across
// synthesis methods — VAE, PrivBayes at four epsilons, and GAN.
#include <cstdio>

#include "baselines/privbayes.h"
#include "baselines/vae.h"
#include "bench/bench_util.h"
#include "eval/clustering_eval.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name, size_t n, size_t iterations) {
  Bundle bundle = MakeBundle(name, n, 0x19);
  std::vector<double> row;

  {
    baselines::VaeOptions vopts;
    vopts.epochs = 30;
    baselines::VaeSynthesizer vae(vopts, {});
    vae.Fit(bundle.train);
    Rng rng(0x191);
    data::Table fake = vae.Generate(bundle.train.num_records(), &rng);
    Rng crng(0x192);
    row.push_back(eval::ClusteringDiff(bundle.train, fake, &crng));
  }
  for (double eps : {0.2, 0.4, 0.8, 1.6}) {
    baselines::PrivBayesOptions popts;
    popts.epsilon = eps;
    baselines::PrivBayes pb(popts);
    Rng rng(0x193 + static_cast<uint64_t>(eps * 10));
    pb.Fit(bundle.train, &rng);
    data::Table fake = pb.Generate(bundle.train.num_records(), &rng);
    Rng crng(0x194);
    row.push_back(eval::ClusteringDiff(bundle.train, fake, &crng));
  }
  {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.iterations = iterations * 4;
    data::Table fake = TrainAndSynthesize(bundle, gopts, {}, 0, 0x195);
    Rng crng(0x196);
    row.push_back(eval::ClusteringDiff(bundle.train, fake, &crng));
  }
  PrintRow(name, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 9: clustering utility DiffCST by "
              "method (lower is better)\n\n");
  PrintHeader("Dataset", {"VAE", "PB-0.2", "PB-0.4", "PB-0.8", "PB-1.6",
                          "GAN"});
  RunDataset("htru2", 1500, 150);
  RunDataset("covtype", 1500, 150);
  RunDataset("adult", 1500, 150);
  RunDataset("digits", 1500, 120);
  RunDataset("anuran", 1200, 80);
  RunDataset("census", 1200, 60);
  RunDataset("sat", 1200, 60);
  return 0;
}

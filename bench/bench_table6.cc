// Reproduces paper Table 6: effect of attribute correlation on
// simulated datasets — F1 Diff (DT30) and synthesis time for CNN, MLP
// and LSTM generators on SDataNum / SDataCat at correlation 0.5 / 0.9.
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunBundle(const Bundle& bundle, uint64_t seed) {
  std::vector<double> diffs, times;
  for (synth::GeneratorArch arch :
       {synth::GeneratorArch::kCnn, synth::GeneratorArch::kMlp,
        synth::GeneratorArch::kLstm}) {
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = arch;
    opts.iterations =
        arch == synth::GeneratorArch::kLstm ? 300 : 800;
    double secs = 0.0;
    data::Table fake =
        TrainAndSynthesize(bundle, opts, {}, 0, seed + diffs.size(), &secs);
    diffs.push_back(
        F1DiffFor(bundle, fake, eval::ClassifierKind::kDt30, seed ^ 7));
    times.push_back(secs);
  }
  PrintRow(bundle.name,
           {diffs[0], diffs[1], diffs[2], times[0], times[1], times[2]});
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 6: attribute correlation on simulated "
              "data (DT30 F1 Diff; synthesis time in seconds)\n\n");
  PrintHeader("Dataset", {"CNN", "MLP", "LSTM", "t(CNN)", "t(MLP)",
                          "t(LSTM)"});
  RunBundle(MakeSDataNumBundle(0.5, 0.5, 1800, 0x61), 0x610);
  RunBundle(MakeSDataNumBundle(0.9, 0.5, 1800, 0x62), 0x620);
  RunBundle(MakeSDataCatBundle(0.5, 0.5, 1800, 0x63), 0x630);
  RunBundle(MakeSDataCatBundle(0.9, 0.5, 1800, 0x64), 0x640);
  return 0;
}

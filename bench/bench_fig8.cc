// Reproduces paper Figure 8: differentially-private synthesis —
// DPGAN vs PrivBayes across privacy levels epsilon (classifier DT10).
#include <cstdio>

#include "baselines/pategan.h"
#include "baselines/privbayes.h"
#include "bench/bench_util.h"
#include "synth/dp_accountant.h"

namespace daisy::bench {
namespace {

void RunDataset(const std::string& name) {
  Bundle bundle = MakeBundle(name, 1800, 0xF8);
  std::printf("\n=== Figure 8: %s ===\n", name.c_str());
  PrintHeader("Epsilon", {"PB", "DPGAN", "PATE-GAN"});

  for (double eps : {0.1, 0.2, 0.4, 0.8, 1.6}) {
    // PrivBayes at this privacy level.
    baselines::PrivBayesOptions popts;
    popts.epsilon = eps;
    baselines::PrivBayes pb(popts);
    Rng prng(0xF80 + static_cast<uint64_t>(eps * 10));
    pb.Fit(bundle.train, &prng);
    data::Table pb_fake = pb.Generate(bundle.train.num_records(), &prng);
    const double pb_diff =
        F1DiffFor(bundle, pb_fake, eval::ClassifierKind::kDt10, 0xF81);

    // DPGAN with the noise multiplier matching this epsilon.
    synth::GanOptions gopts = BenchGanOptions();
    gopts.algo = synth::TrainAlgo::kDPTrain;
    gopts.iterations = 400;
    gopts.d_steps = 2;
    gopts.dp_grad_bound = 1.0;
    gopts.dp_noise_scale = synth::NoiseForEpsilon(
        eps, gopts.iterations * gopts.d_steps, gopts.batch_size,
        bundle.train.num_records());
    data::Table gan_fake = TrainAndSynthesize(
        bundle, gopts, {}, 0, 0xF82 + static_cast<uint64_t>(eps * 10));
    const double gan_diff =
        F1DiffFor(bundle, gan_fake, eval::ClassifierKind::kDt10, 0xF83);

    // PATE-GAN (extension; cited by the paper as [30]): lambda set so
    // the vote queries spend ~eps in the loose pure-DP composition.
    baselines::PateGanOptions paopts;
    paopts.iterations = 150;
    paopts.num_teachers = 5;
    paopts.lambda =
        eps / static_cast<double>(paopts.iterations * paopts.batch_size);
    paopts.marginal_epsilon = 0.0;  // keep the whole budget on votes
    paopts.seed = 0xF84 + static_cast<uint64_t>(eps * 10);
    baselines::PateGanSynthesizer pategan(paopts, {});
    pategan.Fit(bundle.train);
    Rng pate_rng(0xF85);
    data::Table pate_fake =
        pategan.Generate(bundle.train.num_records(), &pate_rng);
    const double pate_diff =
        F1DiffFor(bundle, pate_fake, eval::ClassifierKind::kDt10, 0xF86);

    char label[32];
    std::snprintf(label, sizeof(label), "eps=%.1f", eps);
    PrintRow(label, {pb_diff, gan_diff, pate_diff});
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  std::printf("Reproduction of Figure 8: DP-preserving synthesis, DPGAN vs "
              "PB (DT10 F1 Diff, lower is better)\n");
  daisy::bench::RunDataset("adult");
  daisy::bench::RunDataset("covtype");
  return 0;
}

// Serving throughput bench (google-benchmark): closed-loop clients
// submit GEN jobs straight into an in-process ServeEngine — the same
// scheduler, coalescing, decode and CSV-encode path daisy_serve runs
// behind its socket, minus kernel socket I/O. Axes:
//
//   clients  — closed-loop submitters (each keeps one job in flight)
//   models   — 1: every job hits one model (maximal coalescing);
//              2: jobs alternate between two models (grouping must
//              split batches)
//   rows     — rows per request
//
// Reported items/sec is generated CSV rows per second. The engine's
// determinism contract means the bytes are identical across all axes —
// only time may change. EXPERIMENTS.md describes exporting the sweep
// as BENCH_serve.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators/realistic.h"
#include "serve/engine.h"
#include "serve/registry.h"

namespace daisy::bench {
namespace {

// Trains (once) two small GAN models, persists them, and loads them
// into a shared registry — bench setup, outside every timed region.
const serve::ModelRegistry& SharedRegistry() {
  static const serve::ModelRegistry* registry = [] {
    auto* reg = new serve::ModelRegistry();
    const struct {
      const char* name;
      uint64_t seed;
    } kModels[] = {{"alpha", 0x5E1}, {"beta", 0x5E2}};
    for (const auto& m : kModels) {
      Rng rng(m.seed);
      const data::Table train = data::MakeAdultSim(400, &rng);
      synth::GanOptions opts = BenchGanOptions();
      opts.iterations = 60;
      opts.snapshots = 1;
      opts.seed = m.seed;
      transform::TransformOptions topts;
      synth::TableSynthesizer model(opts, topts);
      DAISY_CHECK(model.Fit(train).ok());
      // Scratch model files go to /tmp, not the CWD (benches run from
      // the repo root in CI and locally).
      const std::string path =
          std::string("/tmp/bench_serve_") + m.name + ".daisy";
      DAISY_CHECK(model.Save(path).ok());
      DAISY_CHECK(reg->Load(m.name, path).ok());
    }
    return reg;
  }();
  return *registry;
}

void BM_ServeGen(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t num_models = static_cast<size_t>(state.range(1));
  const size_t rows = static_cast<size_t>(state.range(2));
  const char* kNames[] = {"alpha", "beta"};

  const serve::ModelRegistry& registry = SharedRegistry();
  serve::ServeEngine::Options eopts;
  eopts.chunk_rows = 256;
  eopts.max_batch_rows = 1024;

  size_t total_rows = 0;
  for (auto _ : state) {
    serve::ServeEngine engine(&registry, eopts);
    engine.Start();

    // Each client thread submits back-to-back requests, waiting for
    // each reply stream to finish before sending the next (closed
    // loop, one job in flight per client).
    const size_t requests_per_client = 2;
    std::atomic<size_t> bytes_seen{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t r = 0; r < requests_per_client; ++r) {
          std::mutex m;
          std::condition_variable cv;
          bool done = false;
          const Status st = engine.SubmitGen(
              kNames[(c + r) % num_models], rows, /*seed=*/c * 31 + r,
              [&](const std::string& chunk, bool is_done) {
                if (is_done) {
                  std::lock_guard<std::mutex> lock(m);
                  done = true;
                  cv.notify_one();
                  return;
                }
                bytes_seen.fetch_add(chunk.size(),
                                     std::memory_order_relaxed);
              });
          DAISY_CHECK(st.ok());
          std::unique_lock<std::mutex> lock(m);
          cv.wait(lock, [&] { return done; });
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.Drain();
    benchmark::DoNotOptimize(bytes_seen.load());
    total_rows += clients * requests_per_client * rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_rows));
}
BENCHMARK(BM_ServeGen)
    ->ArgsProduct({{1, 2, 4}, {1, 2}, {500, 2000}})
    ->ArgNames({"clients", "models", "rows"})
    // Rows are produced by the engine's worker threads, not the
    // benchmark thread itself, so items/s must be a wall-clock rate.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace daisy::bench

BENCHMARK_MAIN();

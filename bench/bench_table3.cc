// Reproduces paper Table 3 (a-d): synthetic-data utility for
// classification across generator architectures (CNN / MLP / LSTM) and
// transformation schemes (sn/gn x od/ht) on two low-dimensional
// (Adult-sim, CovType-sim) and two high-dimensional (Census-sim,
// SAT-sim) datasets. Cell values are F1 Diff (Eq. 1) — lower is better.
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

using eval::ClassifierKind;
using synth::GeneratorArch;
using transform::CategoricalEncoding;
using transform::NumericalNormalization;
using transform::TransformOptions;

struct Config {
  std::string label;
  GeneratorArch arch;
  TransformOptions topts;
};

std::vector<Config> ConfigsFor(bool has_categorical, bool include_cnn) {
  std::vector<Config> configs;
  auto add = [&](const std::string& label, GeneratorArch arch,
                 NumericalNormalization num, CategoricalEncoding cat) {
    TransformOptions t;
    t.numerical = num;
    t.categorical = cat;
    t.gmm_components = 4;
    configs.push_back({label, arch, t});
  };
  if (include_cnn) add("CNN", GeneratorArch::kCnn,
                       NumericalNormalization::kSimple,
                       CategoricalEncoding::kOrdinal);
  for (GeneratorArch arch : {GeneratorArch::kMlp, GeneratorArch::kLstm}) {
    const std::string a = arch == GeneratorArch::kMlp ? "MLP" : "LSTM";
    if (has_categorical) {
      add(a + " sn/od", arch, NumericalNormalization::kSimple,
          CategoricalEncoding::kOrdinal);
      add(a + " sn/ht", arch, NumericalNormalization::kSimple,
          CategoricalEncoding::kOneHot);
      add(a + " gn/od", arch, NumericalNormalization::kGmm,
          CategoricalEncoding::kOrdinal);
      add(a + " gn/ht", arch, NumericalNormalization::kGmm,
          CategoricalEncoding::kOneHot);
    } else {
      add(a + " sn", arch, NumericalNormalization::kSimple,
          CategoricalEncoding::kOneHot);
      add(a + " gn", arch, NumericalNormalization::kGmm,
          CategoricalEncoding::kOneHot);
    }
  }
  return configs;
}

void RunDataset(const std::string& name, size_t n, bool include_cnn,
                size_t iterations) {
  Bundle bundle = MakeBundle(name, n, 0xB3 + n);
  bool has_categorical = false;
  for (size_t j : bundle.train.schema().FeatureIndices())
    if (bundle.train.schema().attribute(j).is_categorical())
      has_categorical = true;

  std::printf("\n=== Table 3: %s (%zu train records) ===\n", name.c_str(),
              bundle.train.num_records());
  const auto configs = ConfigsFor(has_categorical, include_cnn);

  // Train every design point once, then score all classifiers.
  std::vector<data::Table> synthetic;
  for (const auto& cfg : configs) {
    synth::GanOptions gopts = BenchGanOptions();
    gopts.generator = cfg.arch;
    // LSTM pays ~10x the per-iteration cost of MLP/CNN on CPU; give the
    // cheap architectures proportionally more updates so every design
    // point gets a comparable training budget.
    gopts.iterations =
        cfg.arch == GeneratorArch::kLstm ? iterations : iterations * 4;
    double secs = 0.0;
    synthetic.push_back(TrainAndSynthesize(bundle, gopts, cfg.topts, 0,
                                           0xC0FFEE + synthetic.size(),
                                           &secs));
    std::fprintf(stderr, "[table3] %s %s trained in %.1fs\n", name.c_str(),
                 cfg.label.c_str(), secs);
  }

  std::vector<std::string> cols;
  for (const auto& cfg : configs) cols.push_back(cfg.label);
  PrintHeader("CLF", cols);
  for (ClassifierKind kind : eval::AllClassifierKinds()) {
    std::vector<double> row;
    for (size_t i = 0; i < configs.size(); ++i)
      row.push_back(F1DiffFor(bundle, synthetic[i], kind, 0xE7 + i));
    PrintRow(eval::ClassifierKindName(kind), row);
  }
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using daisy::bench::RunDataset;
  std::printf("Reproduction of Table 3: F1 Diff by generator network and "
              "transformation (lower is better)\n");
  RunDataset("adult", 1800, /*include_cnn=*/true, /*iterations=*/300);
  RunDataset("covtype", 3000, /*include_cnn=*/false, 300);
  RunDataset("census", 2400, /*include_cnn=*/true, 80);
  RunDataset("sat", 1800, /*include_cnn=*/false, 100);
  return 0;
}

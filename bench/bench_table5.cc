// Reproduces paper Table 5: privacy protection against re-
// identification — hitting rate (%) and DCR for PrivBayes at epsilon in
// {0.1, 0.2, 0.4, 0.8, 1.6} vs. the (non-DP) GAN, on Adult-sim and
// CovType-sim.
#include <cstdio>

#include "baselines/privbayes.h"
#include "bench/bench_util.h"
#include "eval/privacy.h"

namespace daisy::bench {
namespace {

struct PrivacyScores {
  double hitting_rate_pct;
  double dcr;
};

PrivacyScores Score(const data::Table& train, const data::Table& fake,
                    uint64_t seed) {
  eval::HittingRateOptions hopts;
  hopts.num_synthetic_samples = 800;
  eval::DcrOptions dopts;
  dopts.num_original_samples = 400;
  Rng r1(seed), r2(seed ^ 1);
  return {100.0 * eval::HittingRate(train, fake, hopts, &r1).value(),
          eval::DistanceToClosestRecord(train, fake, dopts, &r2).value()};
}

void RunDataset(const std::string& name) {
  Bundle bundle = MakeBundle(name, 2400, 0x15);
  std::printf("\n=== Table 5: %s ===\n", name.c_str());
  PrintHeader("Method", {"HitRate(%)", "DCR"});

  for (double eps : {0.1, 0.2, 0.4, 0.8, 1.6}) {
    baselines::PrivBayesOptions opts;
    opts.epsilon = eps;
    baselines::PrivBayes pb(opts);
    Rng rng(0x150 + static_cast<uint64_t>(eps * 10));
    pb.Fit(bundle.train, &rng);
    data::Table fake = pb.Generate(bundle.train.num_records(), &rng);
    const auto s = Score(bundle.train, fake, 0x151);
    char label[32];
    std::snprintf(label, sizeof(label), "PB-%.1f", eps);
    PrintRow(label, {s.hitting_rate_pct, s.dcr});
  }

  synth::GanOptions gopts = BenchGanOptions();
  gopts.iterations = 800;
  data::Table fake = TrainAndSynthesize(bundle, gopts, {}, 0, 0x152);
  const auto s = Score(bundle.train, fake, 0x153);
  PrintRow("GAN", {s.hitting_rate_pct, s.dcr});
}

}  // namespace
}  // namespace daisy::bench

int main() {
  std::printf("Reproduction of Table 5: GAN vs PrivBayes on privacy "
              "(hitting rate lower = better, DCR higher = better)\n");
  daisy::bench::RunDataset("adult");
  daisy::bench::RunDataset("covtype");
  return 0;
}

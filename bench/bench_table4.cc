// Reproduces paper Table 4: effect of the synthetic/original size
// ratio |T'|/|T| in {50, 100, 150, 200}% on F1 Diff (classifier DT10).
#include <cstdio>

#include "bench/bench_util.h"

namespace daisy::bench {
namespace {

void RunBundle(const Bundle& bundle, size_t iterations, uint64_t seed) {
  synth::GanOptions opts = BenchGanOptions();
  opts.iterations = iterations;
  opts.seed = seed;
  ApplyBenchScale(&opts);

  synth::TableSynthesizer synth(opts, {});
  synth.Fit(bundle.train);
  eval::SnapshotSelectionOptions sopts;
  sopts.gen_size = 500;
  Rng sel_rng(seed ^ 1);
  eval::SelectBestSnapshot(&synth, bundle.valid, sopts, &sel_rng);

  std::vector<double> row;
  for (double ratio : {0.5, 1.0, 1.5, 2.0}) {
    Rng gen_rng(seed ^ 2);
    const size_t n = static_cast<size_t>(
        ratio * static_cast<double>(bundle.train.num_records()));
    data::Table fake = synth.Generate(n, &gen_rng);
    row.push_back(F1DiffFor(bundle, fake, eval::ClassifierKind::kDt10,
                            seed ^ 3));
  }
  PrintRow(bundle.name, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Reproduction of Table 4: effect of |T'|/|T| size ratio "
              "(DT10 F1 Diff, lower is better)\n\n");
  PrintHeader("Dataset", {"50%", "100%", "150%", "200%"});
  RunBundle(MakeBundle("adult", 1800, 0x14), 800, 0x141);
  RunBundle(MakeBundle("covtype", 1800, 0x24), 800, 0x142);
  RunBundle(MakeSDataNumBundle(0.5, 0.5, 1800, 0x34), 800, 0x143);
  RunBundle(MakeSDataCatBundle(0.5, 0.5, 1800, 0x44), 800, 0x144);
  return 0;
}

// Extension bench: how training cost scales with table width for each
// generator architecture — the systems-level counterpart of Table 6's
// synthesis-time columns. Uses fixed iterations so the per-iteration
// architectural cost is what varies.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/generators/sim_config.h"

namespace daisy::bench {
namespace {

data::Table WideTable(size_t num_numeric, size_t num_categorical,
                      size_t n, uint64_t seed) {
  data::RandomSimOptions opts;
  opts.num_numerical = num_numeric;
  opts.num_categorical = num_categorical;
  opts.num_labels = 2;
  Rng config_rng(seed);
  auto config = data::RandomSimConfig(opts, &config_rng);
  Rng rng(seed ^ 1);
  return data::GenerateSimTable(config, n, &rng);
}

void RunWidth(size_t num_numeric, size_t num_categorical) {
  Rng rng(0x5C + num_numeric);
  data::Table full =
      WideTable(num_numeric, num_categorical, 1200, 0x5C0 + num_numeric);
  auto split = data::SplitTable(full, 4.0 / 6, 1.0 / 6, &rng);

  std::vector<double> row;
  for (synth::GeneratorArch arch :
       {synth::GeneratorArch::kCnn, synth::GeneratorArch::kMlp,
        synth::GeneratorArch::kLstm}) {
    synth::GanOptions opts = BenchGanOptions();
    opts.generator = arch;
    opts.iterations = 100;
    opts.snapshots = 1;
    ApplyBenchScale(&opts);
    opts.seed = 0x5C1;
    synth::TableSynthesizer synth(opts, {});
    const double t0 = NowSeconds();
    synth.Fit(split.train);
    row.push_back(NowSeconds() - t0);
  }
  char label[64];
  std::snprintf(label, sizeof(label), "%zu num + %zu cat", num_numeric,
                num_categorical);
  PrintRow(label, row);
}

}  // namespace
}  // namespace daisy::bench

int main() {
  using namespace daisy::bench;
  std::printf("Extension: training time (seconds, 100 iterations) vs "
              "table width per architecture\n\n");
  PrintHeader("attributes", {"CNN", "MLP", "LSTM"});
  RunWidth(4, 0);
  RunWidth(8, 4);
  RunWidth(16, 8);
  RunWidth(32, 16);
  return 0;
}

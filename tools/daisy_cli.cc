// Command-line front end: synthesize a CSV table and evaluate a
// synthetic table against the original, without writing any C++.
//
//   daisy_cli synth --input real.csv --label income --output fake.csv
//              [--n 10000] [--method gan|vae|medgan] [--arch mlp|lstm|cnn]
//              [--algo vtrain|wtrain|ctrain|dptrain]
//              [--cat onehot|ordinal] [--num gmm|simple]
//              [--iterations 800] [--seed 17]
//              [--log-jsonl run.jsonl] [--log-every 10]
//
//   daisy_cli eval --real real.csv --synthetic fake.csv --label income
//              [--threads T] [--log-jsonl eval.jsonl] [--report out.md]
//
//   daisy_cli generate --model model.daisy --output fake.csv --n 10000
//
//   daisy_cli convert --input real.csv --output real.dcol
//              [--label income] [--page-rows 65536]
//
// `convert` rewrites a CSV into the paged columnar .dcol format
// (bounded memory: the CSV is streamed, never fully loaded) and
// verifies the result. `synth --data-format dcol` then trains out of
// core: pages fault through an LRU cache of --page-budget pages, so
// peak memory no longer scales with the table. The trained model is
// byte-identical to an in-memory run over the equivalent CSV (same
// seed/flags) at any page budget. The label column is baked in at
// convert time, so --label is rejected with dcol input; pass --no-mmap
// to serve page faults by pread (mmap charges the whole file against
// ulimit -v). --sampler chunked (either data format) visits the table
// in shuffled chunks of --chunk-rows records per epoch — the
// IO-friendly sampler for paged tables.
//
// `synth` accepts --save-model PATH to persist the trained model;
// `generate` reloads it and samples without retraining. `--log-jsonl`
// streams per-iteration training telemetry (losses, grad norms,
// wall-clock) as JSONL; `--log-every` thins it. With
// --checkpoint-every N and --checkpoint-dir DIR, training writes an
// atomic checkpoint every N iterations (keeping the newest
// --checkpoint-keep files); after a crash, rerunning the SAME command
// plus --resume continues from the newest valid checkpoint and
// produces bitwise-identical results to an uninterrupted run.
// --max-iters-per-run N pauses cleanly after N iterations in this
// process (for schedulers and tests). If the divergence
// sentinel stops training early, the CLI reports the failing iteration
// and generates from the last healthy snapshot.
//
// `synth` runs the three-phase pipeline of the paper (Figure 2);
// `eval` runs the deterministic evaluation suite — utility (F1 Diff
// per classifier), clustering, fidelity, privacy (hitting rate, DCR)
// and AQP — timing each metric; `--log-jsonl` streams one telemetry
// record per metric.
//
// The relational commands work on a multi-table database described by
// a JSON spec (see data/schema_json.h). `train-rel` fits one GAN per
// table in topological order — children conditioned on their parent's
// encoded attributes — plus a children-per-parent cardinality model
// per FK edge, and persists everything as one checksummed bundle.
// Table files ending in .dcol are trained out of core. `gen-rel`
// regenerates the whole database (parents first, FKs valid by
// construction) into per-table CSVs; `eval-rel` scores the synthetic
// database against the real one on FK validity, join-size KL and
// cross-table correlation preservation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/medgan.h"
#include "baselines/vae.h"
#include "cli_flags.h"
#include "core/parallel.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "data/schema_json.h"
#include "eval/relational.h"
#include "eval/report.h"
#include "eval/suite.h"
#include "obs/run_logger.h"
#include "relational/relational_synthesizer.h"
#include "synth/synthesizer.h"

namespace {

using daisy::Rng;
using daisy::Status;
using Args = daisy::cli::FlagSet;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  daisy_cli synth --input real.csv --output fake.csv\n"
               "            [--label COLUMN] [--n N]\n"
               "            [--method gan|vae|medgan] [--arch mlp|lstm|cnn]\n"
               "            [--algo vtrain|wtrain|ctrain|dptrain]\n"
               "            [--cat onehot|ordinal] [--num gmm|simple]\n"
               "            [--iterations N] [--seed S] [--threads T]\n"
               "            [--log-jsonl PATH] [--log-every N]\n"
               "            [--save-model PATH]\n"
               "            [--checkpoint-every N] [--checkpoint-dir DIR]\n"
               "            [--checkpoint-keep K] [--resume]\n"
               "            [--max-iters-per-run N]\n"
               "            [--data-format csv|dcol] [--page-budget N]\n"
               "            [--no-mmap] [--sampler uniform|chunked|tbs]\n"
               "            [--chunk-rows N] [--critic-reg C]\n"
               "  daisy_cli convert --input real.csv --output real.dcol\n"
               "            [--label COLUMN] [--page-rows N]\n"
               "  daisy_cli generate --model PATH --output fake.csv [--n N]\n"
               "            [--seed S]\n"
               "  daisy_cli eval --real real.csv --synthetic fake.csv\n"
               "            [--label COLUMN] [--threads T]\n"
               "            [--log-jsonl PATH] [--report out.md]\n"
               "  daisy_cli train-rel --schema spec.json --output db.daisyrel\n"
               "            [--data-dir DIR] [--iterations N] [--seed S]\n"
               "            [--threads T] [--page-budget N] [--no-mmap]\n"
               "            [--work-dir DIR]\n"
               "            [--log-jsonl PATH] [--log-every N]\n"
               "  daisy_cli gen-rel --bundle db.daisyrel --output-dir DIR\n"
               "            [--scale X] [--seed S] [--threads T]\n"
               "  daisy_cli eval-rel --schema spec.json --synth-dir DIR\n"
               "            [--data-dir DIR] [--threads T]\n"
               "            [--log-jsonl PATH]\n");
  return 2;
}

int RunSynth(const Args& args) {
  const std::string input = args.Get("input");
  const std::string output = args.Get("output");
  if (input.empty() || output.empty()) return Usage();

  const std::string method = args.Get("method", "gan");
  if (method != "gan" && method != "vae" && method != "medgan")
    return Usage();

  const std::string data_format = args.Get("data-format", "csv");
  if (data_format != "csv" && data_format != "dcol") return Usage();
  const bool paged_input = data_format == "dcol";
  if (paged_input && method != "gan") {
    std::fprintf(stderr,
                 "--data-format dcol is only supported for --method gan\n");
    return 1;
  }
  if (paged_input && !args.Get("label").empty()) {
    std::fprintf(stderr,
                 "--label is baked into a .dcol at convert time; drop it "
                 "for --data-format dcol\n");
    return 1;
  }
  if ((args.Has("sampler") || args.Has("chunk-rows")) && method != "gan") {
    std::fprintf(stderr, "--sampler is only supported for --method gan\n");
    return 1;
  }

  daisy::data::Table table;
  std::unique_ptr<daisy::data::PagedTable> paged;
  if (paged_input) {
    daisy::data::PagedTable::Options popts;
    popts.page_budget = static_cast<size_t>(
        std::max(1L, args.GetInt("page-budget", 64)));
    popts.use_mmap = args.Get("no-mmap").empty();
    auto opened = daisy::data::PagedTable::Open(input, popts);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", input.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    paged = std::move(opened.value());
    std::printf(
        "opened %zu records x %zu attributes from %s "
        "(%zu-row pages, budget %zu)\n",
        paged->num_records(), paged->num_attributes(), input.c_str(),
        paged->page_rows(), popts.page_budget);
  } else {
    auto loaded = daisy::data::ReadCsv(input, args.Get("label"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    table = loaded.take();
    std::printf("read %zu records x %zu attributes from %s\n",
                table.num_records(), table.num_attributes(), input.c_str());
  }
  const size_t input_records =
      paged_input ? paged->num_records() : table.num_records();

  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 17));
  const size_t log_every =
      static_cast<size_t>(std::max(1L, args.GetInt("log-every", 1)));

  daisy::transform::TransformOptions topts;
  if (args.Get("cat", "onehot") == "ordinal")
    topts.categorical = daisy::transform::CategoricalEncoding::kOrdinal;
  if (args.Get("num", "gmm") == "simple")
    topts.numerical = daisy::transform::NumericalNormalization::kSimple;

  // Checkpointing knobs (shared across methods). With --resume the
  // telemetry file is reopened in resume mode: the checkpointed record
  // cursor truncates any tail written by the crashed run, so the final
  // JSONL matches an uninterrupted run line for line.
  const std::string ckpt_dir = args.Get("checkpoint-dir");
  const size_t ckpt_every =
      static_cast<size_t>(std::max(0L, args.GetInt("checkpoint-every", 0)));
  const size_t ckpt_keep =
      static_cast<size_t>(std::max(1L, args.GetInt("checkpoint-keep", 3)));
  const bool resume = !args.Get("resume").empty();
  const size_t max_iters_per_run = static_cast<size_t>(
      std::max(0L, args.GetInt("max-iters-per-run", 0)));
  if ((ckpt_every > 0 || resume) && ckpt_dir.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every/--resume require --checkpoint-dir\n");
    return 1;
  }

  std::unique_ptr<daisy::obs::RunLogger> logger;
  const std::string log_path = args.Get("log-jsonl");
  if (!log_path.empty()) {
    auto opened = resume ? daisy::obs::RunLogger::OpenForResume(log_path)
                         : daisy::obs::RunLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", log_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(opened.value());
  }

  const std::string model_path = args.Get("save-model");
  if (!model_path.empty() && method != "gan") {
    std::fprintf(stderr, "--save-model is only supported for --method gan\n");
    return 1;
  }

  Rng gen_rng(seed ^ 0xBEEF);
  const size_t n = static_cast<size_t>(
      args.GetInt("n", static_cast<long>(input_records)));
  daisy::data::Table fake;

  if (method == "gan") {
    daisy::synth::GanOptions opts;
    const std::string arch = args.Get("arch", "mlp");
    if (arch == "lstm") opts.generator = daisy::synth::GeneratorArch::kLstm;
    else if (arch == "cnn") opts.generator = daisy::synth::GeneratorArch::kCnn;
    else if (arch != "mlp") return Usage();

    const std::string algo = args.Get("algo", "vtrain");
    if (algo == "wtrain") opts.algo = daisy::synth::TrainAlgo::kWTrain;
    else if (algo == "ctrain") opts.algo = daisy::synth::TrainAlgo::kCTrain;
    else if (algo == "dptrain") opts.algo = daisy::synth::TrainAlgo::kDPTrain;
    else if (algo != "vtrain") return Usage();

    opts.iterations = static_cast<size_t>(args.GetInt("iterations", 800));
    opts.seed = seed;
    opts.log_every = log_every;
    opts.checkpoint_every = ckpt_every;
    opts.checkpoint_dir = ckpt_dir;
    opts.checkpoint_keep = ckpt_keep;
    opts.resume = resume;
    opts.max_iters_per_run = max_iters_per_run;
    // 0 = keep the process default (DAISY_THREADS env, else hardware).
    opts.num_threads = static_cast<size_t>(args.GetInt("threads", 0));

    const std::string sampler = args.Get("sampler", "uniform");
    if (sampler == "chunked")
      opts.sampler = daisy::synth::SamplerKind::kChunkedShuffle;
    else if (sampler == "tbs")
      opts.sampler = daisy::synth::SamplerKind::kTrainingBySampling;
    else if (sampler != "uniform")
      return Usage();
    opts.shuffle_chunk_rows = static_cast<size_t>(
        std::max(1L, args.GetInt("chunk-rows", 4096)));
    if (opts.sampler == daisy::synth::SamplerKind::kTrainingBySampling &&
        opts.algo == daisy::synth::TrainAlgo::kCTrain) {
      std::fprintf(stderr,
                   "--sampler tbs is not supported with --algo ctrain "
                   "(ctrain already samples label-aware)\n");
      return 1;
    }

    // RCC-GAN-style critic gradient clamp; 0 disables.
    opts.critic_reg = args.GetDouble("critic-reg", 0.0);
    if (opts.critic_reg < 0.0) {
      std::fprintf(stderr, "--critic-reg must be >= 0\n");
      return 1;
    }

    const daisy::data::Schema& schema =
        paged_input ? paged->schema() : table.schema();
    if (opts.algo == daisy::synth::TrainAlgo::kCTrain &&
        !schema.has_label()) {
      std::fprintf(stderr, "ctrain requires a labeled table (--label for "
                           "csv, --label at convert time for dcol)\n");
      return 1;
    }

    daisy::synth::TableSynthesizer synth(opts, topts);
    std::printf("training (gan, %s, %s, %zu iterations)...\n", arch.c_str(),
                algo.c_str(), opts.iterations);
    const Status health = paged_input ? synth.Fit(*paged, logger.get())
                                      : synth.Fit(table, logger.get());
    if (!health.ok()) {
      std::fprintf(stderr,
                   "training stopped early: %s\n"
                   "generating from the last healthy snapshot\n",
                   health.ToString().c_str());
    }
    if (synth.train_result().paused) {
      std::printf("paused after --max-iters-per-run iterations; "
                  "rerun with --resume to continue\n");
      return 0;
    }
    fake = synth.Generate(n, &gen_rng);

    if (!model_path.empty()) {
      const Status save_st = synth.Save(model_path);
      if (!save_st.ok()) {
        std::fprintf(stderr, "error saving model: %s\n",
                     save_st.ToString().c_str());
        return 1;
      }
      std::printf("saved model to %s\n", model_path.c_str());
    }
  } else if (method == "vae") {
    daisy::baselines::VaeOptions opts;
    opts.epochs = static_cast<size_t>(args.GetInt("iterations", 30));
    opts.seed = seed;
    opts.log_every = log_every;
    opts.checkpoint_every = ckpt_every;
    opts.checkpoint_dir = ckpt_dir;
    opts.checkpoint_keep = ckpt_keep;
    opts.resume = resume;
    opts.max_iters_per_run = max_iters_per_run;
    daisy::baselines::VaeSynthesizer synth(opts, topts);
    std::printf("training (vae, %zu epochs)...\n", opts.epochs);
    const Status health = synth.Fit(table, logger.get());
    if (!health.ok())
      std::fprintf(stderr,
                   "training stopped early: %s\n"
                   "generating from the last healthy snapshot\n",
                   health.ToString().c_str());
    if (synth.paused()) {
      std::printf("paused after --max-iters-per-run epochs; "
                  "rerun with --resume to continue\n");
      return 0;
    }
    fake = synth.Generate(n, &gen_rng);
  } else {  // medgan
    daisy::baselines::MedGanOptions opts;
    opts.gan_iterations = static_cast<size_t>(args.GetInt("iterations", 300));
    opts.seed = seed;
    opts.log_every = log_every;
    opts.checkpoint_every = ckpt_every;
    opts.checkpoint_dir = ckpt_dir;
    opts.checkpoint_keep = ckpt_keep;
    opts.resume = resume;
    opts.max_iters_per_run = max_iters_per_run;
    daisy::baselines::MedGanSynthesizer synth(opts, topts);
    std::printf("training (medgan, %zu AE epochs + %zu GAN iterations)...\n",
                opts.ae_epochs, opts.gan_iterations);
    const Status health = synth.Fit(table, logger.get());
    if (!health.ok())
      std::fprintf(stderr,
                   "training stopped early: %s\n"
                   "generating from the last healthy snapshot\n",
                   health.ToString().c_str());
    if (synth.paused()) {
      std::printf("paused after --max-iters-per-run epochs/iterations; "
                  "rerun with --resume to continue\n");
      return 0;
    }
    fake = synth.Generate(n, &gen_rng);
  }

  const Status st = daisy::data::WriteCsv(fake, output);
  if (!st.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu synthetic records to %s\n", n, output.c_str());
  if (logger != nullptr)
    std::printf("wrote %zu telemetry records to %s\n",
                logger->lines_written(), logger->path().c_str());
  return 0;
}

int RunConvert(const Args& args) {
  const std::string input = args.Get("input");
  const std::string output = args.Get("output");
  if (input.empty() || output.empty()) return Usage();
  const size_t page_rows = static_cast<size_t>(
      std::max(1L, args.GetInt("page-rows", 65536)));

  const Status st = daisy::data::ConvertCsvToColumnar(
      input, output, args.Get("label"), page_rows);
  if (!st.ok()) {
    std::fprintf(stderr, "error converting %s: %s\n", input.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  // Reopen with full verification: reports what landed on disk and
  // proves every page checksum reads back clean.
  daisy::data::PagedTable::Options popts;
  popts.page_budget = 1;
  auto opened = daisy::data::PagedTable::Open(output, popts);
  if (!opened.ok()) {
    std::fprintf(stderr, "converted file fails verification: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  const auto& t = *opened.value();
  std::printf("wrote %zu records x %zu attributes to %s "
              "(%zu-row pages, %zu page groups)\n",
              t.num_records(), t.num_attributes(), output.c_str(),
              t.page_rows(), t.num_groups());
  return 0;
}

int RunGenerate(const Args& args) {
  const std::string model_path = args.Get("model");
  const std::string output = args.Get("output");
  if (model_path.empty() || output.empty()) return Usage();
  auto loaded = daisy::synth::TableSynthesizer::Load(model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Rng gen_rng(static_cast<uint64_t>(args.GetInt("seed", 17)) ^ 0xBEEF);
  const size_t n = static_cast<size_t>(args.GetInt("n", 1000));
  daisy::data::Table fake = loaded.value()->Generate(n, &gen_rng);
  const Status st = daisy::data::WriteCsv(fake, output);
  if (!st.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu synthetic records to %s\n", n, output.c_str());
  return 0;
}

int RunEval(const Args& args) {
  const std::string real_path = args.Get("real");
  const std::string synth_path = args.Get("synthetic");
  if (real_path.empty() || synth_path.empty()) return Usage();
  const std::string label = args.Get("label");

  auto real = daisy::data::ReadCsv(real_path, label);
  auto synthetic = daisy::data::ReadCsv(synth_path, label);
  if (!real.ok() || !synthetic.ok()) {
    std::fprintf(stderr, "error reading inputs\n");
    return 1;
  }
  if (real.value().num_attributes() !=
      synthetic.value().num_attributes()) {
    std::fprintf(stderr, "schema mismatch between tables\n");
    return 1;
  }

  // CSV schema inference assigns category indices in first-seen order,
  // so two independently read files generally disagree on the index of
  // any given category — and a synthetic file that dropped a rare label
  // infers a smaller domain outright. Align both tables on the union
  // schema before comparing.
  auto unified = daisy::data::UnionSchema(real.value().schema(),
                                          synthetic.value().schema());
  if (!unified.ok()) {
    std::fprintf(stderr, "schema mismatch between tables: %s\n",
                 unified.status().ToString().c_str());
    return 1;
  }
  auto real_aligned = daisy::data::RemapToSchema(real.value(),
                                                 unified.value());
  auto synth_aligned = daisy::data::RemapToSchema(synthetic.value(),
                                                  unified.value());
  if (!real_aligned.ok() || !synth_aligned.ok()) {
    std::fprintf(stderr, "error aligning tables on the union schema\n");
    return 1;
  }
  real = std::move(real_aligned);
  synthetic = std::move(synth_aligned);

  // 0 = keep the process default (DAISY_THREADS env, else hardware).
  const long threads = args.GetInt("threads", 0);
  if (threads > 0) daisy::par::SetNumThreads(static_cast<size_t>(threads));

  std::unique_ptr<daisy::obs::RunLogger> logger;
  const std::string log_path = args.Get("log-jsonl");
  if (!log_path.empty()) {
    auto opened = daisy::obs::RunLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", log_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(opened.value());
  }

  daisy::eval::SuiteOptions sopts;
  sopts.privacy_samples = 500;
  daisy::eval::EvaluationSuite suite(sopts);
  auto result = suite.Run(real.value(), synthetic.value(), logger.get());
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("evaluation suite (lower is better except DCR):\n");
  for (const auto& m : result.value().metrics)
    std::printf("  %-28s %10.4f   (%.1f ms)\n", m.name.c_str(), m.value,
                m.wall_ms);
  std::printf("total: %.1f ms over %zu metrics\n", result.value().total_ms,
              result.value().metrics.size());
  if (logger != nullptr)
    std::printf("wrote %zu telemetry records to %s\n",
                logger->lines_written(), logger->path().c_str());

  const std::string report_path = args.Get("report");
  if (!report_path.empty()) {
    const std::string report = daisy::eval::GenerateQualityReport(
        real.value(), synthetic.value());
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::fputs(report.c_str(), f);
    std::fclose(f);
    std::printf("wrote quality report to %s\n", report_path.c_str());
  }
  return 0;
}

/// Spec plus loaded training data, parallel to spec.tables. Exactly
/// one of tables[i] / paged[i] is populated per table (.dcol files
/// load paged, everything else through ReadCsv).
struct RelationalData {
  daisy::data::RelationalSpec spec;
  daisy::data::RelationalSchema schema;
  std::vector<daisy::data::Table> tables;
  std::vector<std::unique_ptr<daisy::data::PagedTable>> paged;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads the JSON spec and every table file under `data_dir`. When
/// `materialize` is set, .dcol tables are read fully into memory (the
/// eval path needs random-access Tables).
int LoadRelationalData(const std::string& spec_path,
                       const std::string& data_dir, size_t page_budget,
                       bool use_mmap, bool materialize, RelationalData* out) {
  auto spec = daisy::data::LoadRelationalSpec(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", spec_path.c_str(),
                 spec.status().ToString().c_str());
    return 1;
  }
  out->spec = spec.take();

  std::vector<daisy::data::RelationalTableDef> defs;
  out->tables.resize(out->spec.tables.size());
  out->paged.resize(out->spec.tables.size());
  for (size_t i = 0; i < out->spec.tables.size(); ++i) {
    const auto& t = out->spec.tables[i];
    const std::string path = data_dir.empty()
                                 ? t.file
                                 : data_dir + "/" + t.file;
    daisy::data::Schema schema;
    if (EndsWith(t.file, ".dcol")) {
      daisy::data::PagedTable::Options popts;
      popts.page_budget = page_budget;
      popts.use_mmap = use_mmap;
      auto opened = daisy::data::PagedTable::Open(path, popts);
      if (!opened.ok()) {
        std::fprintf(stderr, "error opening %s: %s\n", path.c_str(),
                     opened.status().ToString().c_str());
        return 1;
      }
      if (materialize) {
        auto table = opened.value()->ToTable();
        if (!table.ok()) {
          std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                       table.status().ToString().c_str());
          return 1;
        }
        out->tables[i] = table.take();
        schema = out->tables[i].schema();
      } else {
        out->paged[i] = std::move(opened.value());
        schema = out->paged[i]->schema();
      }
    } else {
      auto loaded = daisy::data::ReadCsv(path, /*label=*/"");
      if (!loaded.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      out->tables[i] = loaded.take();
      schema = out->tables[i].schema();
    }
    defs.push_back({t.name, schema, t.primary_key});
  }

  auto schema = daisy::data::RelationalSchema::Create(
      std::move(defs), out->spec.foreign_keys);
  if (!schema.ok()) {
    std::fprintf(stderr, "invalid relational schema: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  out->schema = schema.take();
  return 0;
}

int RunTrainRel(const Args& args) {
  const std::string spec_path = args.Get("schema");
  const std::string output = args.Get("output");
  if (spec_path.empty() || output.empty()) return Usage();
  const std::string data_dir = args.Get("data-dir");
  const size_t page_budget = static_cast<size_t>(
      std::max(1L, args.GetInt("page-budget", 64)));
  const bool use_mmap = args.Get("no-mmap").empty();

  RelationalData data;
  const int rc = LoadRelationalData(spec_path, data_dir, page_budget,
                                    use_mmap, /*materialize=*/false, &data);
  if (rc != 0) return rc;
  for (size_t i = 0; i < data.schema.num_tables(); ++i) {
    const size_t rows = data.paged[i] != nullptr
                            ? data.paged[i]->num_records()
                            : data.tables[i].num_records();
    std::printf("read %zu records x %zu attributes for table '%s'%s\n",
                rows, data.schema.table(i).schema.num_attributes(),
                data.schema.table(i).name.c_str(),
                data.paged[i] != nullptr ? " (paged)" : "");
  }

  daisy::rel::RelationalOptions opts;
  opts.gan.iterations = static_cast<size_t>(args.GetInt("iterations", 800));
  opts.gan.seed = static_cast<uint64_t>(args.GetInt("seed", 17));
  opts.gan.log_every =
      static_cast<size_t>(std::max(1L, args.GetInt("log-every", 1)));
  // 0 = keep the process default (DAISY_THREADS env, else hardware).
  opts.gan.num_threads = static_cast<size_t>(args.GetInt("threads", 0));
  opts.page_budget = page_budget;
  opts.use_mmap = use_mmap;
  opts.work_dir = args.Get("work-dir", "daisy_rel_work");

  std::unique_ptr<daisy::obs::RunLogger> logger;
  const std::string log_path = args.Get("log-jsonl");
  if (!log_path.empty()) {
    auto opened = daisy::obs::RunLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", log_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(opened.value());
  }

  std::vector<daisy::rel::RelationalInput> inputs(data.schema.num_tables());
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (data.paged[i] != nullptr) inputs[i].paged = data.paged[i].get();
    else inputs[i].table = &data.tables[i];
  }

  daisy::rel::RelationalSynthesizer synth(opts);
  std::printf("training %zu table models (%zu iterations each)...\n",
              data.schema.num_tables(), opts.gan.iterations);
  const Status health = synth.Fit(data.schema, inputs, logger.get());
  if (!health.ok()) {
    std::fprintf(stderr, "relational training failed: %s\n",
                 health.ToString().c_str());
    return 1;
  }
  const Status save_st = synth.Save(output);
  if (!save_st.ok()) {
    std::fprintf(stderr, "error saving bundle: %s\n",
                 save_st.ToString().c_str());
    return 1;
  }
  std::printf("saved relational bundle to %s\n", output.c_str());
  if (logger != nullptr)
    std::printf("wrote %zu telemetry records to %s\n",
                logger->lines_written(), logger->path().c_str());
  return 0;
}

int RunGenRel(const Args& args) {
  const std::string bundle = args.Get("bundle");
  const std::string output_dir = args.Get("output-dir");
  if (bundle.empty() || output_dir.empty()) return Usage();
  const double scale = args.GetDouble("scale", 1.0);
  if (scale <= 0.0) {
    std::fprintf(stderr, "--scale must be > 0\n");
    return 1;
  }

  auto loaded = daisy::rel::RelationalSynthesizer::Load(bundle);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading bundle: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const long threads = args.GetInt("threads", 0);
  if (threads > 0) daisy::par::SetNumThreads(static_cast<size_t>(threads));

  Rng gen_rng(static_cast<uint64_t>(args.GetInt("seed", 17)) ^ 0xBEEF);
  auto generated = loaded.value()->Generate(scale, &gen_rng);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", output_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const auto& schema = loaded.value()->schema();
  for (size_t i = 0; i < schema.num_tables(); ++i) {
    const std::string path =
        output_dir + "/" + schema.table(i).name + ".csv";
    const Status st = daisy::data::WriteCsv(generated.value()[i], path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu synthetic records to %s\n",
                generated.value()[i].num_records(), path.c_str());
  }
  return 0;
}

int RunEvalRel(const Args& args) {
  const std::string spec_path = args.Get("schema");
  const std::string synth_dir = args.Get("synth-dir");
  if (spec_path.empty() || synth_dir.empty()) return Usage();
  const std::string data_dir = args.Get("data-dir");

  RelationalData data;
  const int rc = LoadRelationalData(spec_path, data_dir, /*page_budget=*/64,
                                    /*use_mmap=*/true, /*materialize=*/true,
                                    &data);
  if (rc != 0) return rc;

  // Read the synthetic side and align each table pair on the union
  // schema — two independently inferred CSV schemas generally disagree
  // on category indices (see RunEval).
  std::vector<daisy::data::Table> real(data.schema.num_tables());
  std::vector<daisy::data::Table> synth(data.schema.num_tables());
  std::vector<daisy::data::RelationalTableDef> defs;
  for (size_t i = 0; i < data.schema.num_tables(); ++i) {
    const std::string path =
        synth_dir + "/" + data.schema.table(i).name + ".csv";
    auto loaded = daisy::data::ReadCsv(path, /*label=*/"");
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    auto unified = daisy::data::UnionSchema(data.tables[i].schema(),
                                            loaded.value().schema());
    if (!unified.ok()) {
      std::fprintf(stderr, "schema mismatch for table '%s': %s\n",
                   data.schema.table(i).name.c_str(),
                   unified.status().ToString().c_str());
      return 1;
    }
    auto real_aligned =
        daisy::data::RemapToSchema(data.tables[i], unified.value());
    auto synth_aligned =
        daisy::data::RemapToSchema(loaded.value(), unified.value());
    if (!real_aligned.ok() || !synth_aligned.ok()) {
      std::fprintf(stderr,
                   "error aligning table '%s' on the union schema\n",
                   data.schema.table(i).name.c_str());
      return 1;
    }
    real[i] = real_aligned.take();
    synth[i] = synth_aligned.take();
    defs.push_back({data.schema.table(i).name, real[i].schema(),
                    data.schema.table(i).primary_key});
  }
  auto schema = daisy::data::RelationalSchema::Create(
      std::move(defs), data.spec.foreign_keys);
  if (!schema.ok()) {
    std::fprintf(stderr, "invalid relational schema after alignment: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  const long threads = args.GetInt("threads", 0);
  if (threads > 0) daisy::par::SetNumThreads(static_cast<size_t>(threads));

  std::unique_ptr<daisy::obs::RunLogger> logger;
  const std::string log_path = args.Get("log-jsonl");
  if (!log_path.empty()) {
    auto opened = daisy::obs::RunLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", log_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(opened.value());
  }

  auto result = daisy::eval::RunRelationalSuite(schema.value(), real, synth,
                                                logger.get());
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("relational suite (fk_validity: higher is better; "
              "others: lower):\n");
  for (const auto& m : result.value().metrics)
    std::printf("  %-36s %10.4f   (%.1f ms)\n", m.name.c_str(), m.value,
                m.wall_ms);
  std::printf("total: %.1f ms over %zu metrics\n", result.value().total_ms,
              result.value().metrics.size());
  if (logger != nullptr)
    std::printf("wrote %zu telemetry records to %s\n",
                logger->lines_written(), logger->path().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<daisy::cli::FlagSpec> specs;
  if (command == "synth") {
    specs = {{"input"},
             {"output"},
             {"label"},
             {"n", false, true},
             {"method"},
             {"arch"},
             {"algo"},
             {"cat"},
             {"num"},
             {"iterations", false, true},
             {"seed", false, true},
             {"threads", false, true},
             {"log-jsonl"},
             {"log-every", false, true},
             {"save-model"},
             {"checkpoint-every", false, true},
             {"checkpoint-dir"},
             {"checkpoint-keep", false, true},
             {"resume", true},
             {"max-iters-per-run", false, true},
             {"data-format"},
             {"page-budget", false, true},
             {"no-mmap", true},
             {"sampler"},
             {"chunk-rows", false, true},
             {"critic-reg"}};
  } else if (command == "convert") {
    specs = {{"input"},
             {"output"},
             {"label"},
             {"page-rows", false, true}};
  } else if (command == "generate") {
    specs = {{"model"},
             {"output"},
             {"n", false, true},
             {"seed", false, true}};
  } else if (command == "eval") {
    specs = {{"real"},     {"synthetic"},
             {"label"},    {"threads", false, true},
             {"log-jsonl"}, {"report"}};
  } else if (command == "train-rel") {
    specs = {{"schema"},
             {"output"},
             {"data-dir"},
             {"iterations", false, true},
             {"seed", false, true},
             {"threads", false, true},
             {"page-budget", false, true},
             {"no-mmap", true},
             {"work-dir"},
             {"log-jsonl"},
             {"log-every", false, true}};
  } else if (command == "gen-rel") {
    specs = {{"bundle"},
             {"output-dir"},
             {"scale"},  // real-valued; read via GetDouble
             {"seed", false, true},
             {"threads", false, true}};
  } else if (command == "eval-rel") {
    specs = {{"schema"},
             {"synth-dir"},
             {"data-dir"},
             {"threads", false, true},
             {"log-jsonl"}};
  } else {
    std::fprintf(stderr, "daisy_cli: unknown command: %s\n", command.c_str());
    return Usage();
  }

  Args args;
  std::string error;
  if (!args.Parse(argc, argv, 2, specs, &error)) {
    std::fprintf(stderr, "daisy_cli: %s\n", error.c_str());
    return Usage();
  }
  if (command == "synth") return RunSynth(args);
  if (command == "convert") return RunConvert(args);
  if (command == "generate") return RunGenerate(args);
  if (command == "train-rel") return RunTrainRel(args);
  if (command == "gen-rel") return RunGenRel(args);
  if (command == "eval-rel") return RunEvalRel(args);
  return RunEval(args);
}

// Strict command-line flag parsing shared by the daisy tools
// (daisy_cli, daisy_serve). Every flag must be declared, every
// non-boolean flag must have a value, and numeric flags must parse
// fully as decimal integers — a typo exits non-zero with a clear
// message instead of being silently ignored.
#ifndef DAISY_TOOLS_CLI_FLAGS_H_
#define DAISY_TOOLS_CLI_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace daisy::cli {

/// Declares one accepted --flag.
struct FlagSpec {
  const char* name;       // without the leading "--"
  bool boolean = false;   // takes no value (e.g. --resume)
  bool numeric = false;   // value must be a decimal integer
  bool repeated = false;  // may appear more than once (values accumulate)
};

/// Parsed flags. Accepts both "--flag value" and "--flag=value".
class FlagSet {
 public:
  /// Parses argv[first..argc). On failure returns false with a
  /// human-readable message in *error.
  bool Parse(int argc, char** argv, int first,
             const std::vector<FlagSpec>& specs, std::string* error) {
    for (int i = first; i < argc;) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        *error = "unexpected positional argument: " + token;
        return false;
      }
      std::string key = token.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const size_t eq = key.find('='); eq != std::string::npos) {
        inline_value = key.substr(eq + 1);
        key = key.substr(0, eq);
        has_inline = true;
      }
      const FlagSpec* spec = nullptr;
      for (const auto& s : specs) {
        if (key == s.name) {
          spec = &s;
          break;
        }
      }
      if (spec == nullptr) {
        *error = "unknown flag: --" + key;
        return false;
      }
      std::string value;
      if (spec->boolean) {
        if (has_inline) {
          *error = "flag --" + key + " takes no value";
          return false;
        }
        value = "1";
        i += 1;
      } else if (has_inline) {
        value = inline_value;
        i += 1;
      } else {
        if (i + 1 >= argc) {
          *error = "flag --" + key + " requires a value";
          return false;
        }
        value = argv[i + 1];
        i += 2;
      }
      if (spec->numeric && !IsInteger(value)) {
        *error = "flag --" + key + " expects an integer, got: " + value;
        return false;
      }
      if (spec->repeated) {
        repeated_[key].push_back(value);
      } else {
        if (flags_.count(key) != 0) {
          *error = "flag --" + key + " given more than once";
          return false;
        }
        flags_[key] = value;
      }
    }
    return true;
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  /// Value of a numeric flag (validated during Parse).
  long GetInt(const std::string& key, long fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::atol(it->second.c_str());
  }

  /// Value of a real-valued flag (declare it non-numeric: the integer
  /// validation would reject "0.5"). A value that does not parse fully
  /// as a decimal number returns the fallback.
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') return fallback;
    return v;
  }

  bool Has(const std::string& key) const {
    return flags_.count(key) != 0 || repeated_.count(key) != 0;
  }

  /// All values of a repeated flag, in command-line order.
  std::vector<std::string> GetAll(const std::string& key) const {
    const auto it = repeated_.find(key);
    return it == repeated_.end() ? std::vector<std::string>{} : it->second;
  }

 private:
  static bool IsInteger(const std::string& s) {
    if (s.empty()) return false;
    size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i == s.size()) return false;
    for (; i < s.size(); ++i)
      if (s[i] < '0' || s[i] > '9') return false;
    return true;
  }

  std::map<std::string, std::string> flags_;
  std::map<std::string, std::vector<std::string>> repeated_;
};

}  // namespace daisy::cli

#endif  // DAISY_TOOLS_CLI_FLAGS_H_

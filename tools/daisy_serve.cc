// Long-lived serving process: loads trained models into a registry,
// listens on a unix-domain socket, and answers line-protocol requests
// by streaming deterministic CSV (see src/serve/protocol.h for the
// wire format).
//
//   daisy_serve --socket /tmp/daisy.sock
//               --model adult=adult.daisy
//               --model census=census.daisy:ckpt_dir
//               [--chunk-rows N] [--max-batch-rows N] [--threads T]
//
// Each --model is name=model_path, optionally :checkpoint_dir to
// overlay the newest valid training checkpoint's generator weights on
// the loaded model. The process serves until a client sends SHUTDOWN
// (or SIGINT/SIGTERM), then drains queued requests and exits 0.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "core/parallel.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using Args = daisy::cli::FlagSet;
using daisy::Status;

daisy::serve::SocketServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safety: Stop() takes locks, but both SIGINT/SIGTERM
  // arrive on an otherwise idle main thread blocked in Wait(), and the
  // tool is single-shot — acceptable for a local dev server.
  if (g_server != nullptr) g_server->Stop();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  daisy_serve --socket PATH\n"
               "              --model NAME=MODEL_PATH[:CHECKPOINT_DIR] "
               "[--model ...]\n"
               "              [--chunk-rows N] [--max-batch-rows N]\n"
               "              [--threads T]\n");
  return 2;
}

// Splits "name=path[:ckptdir]" into its parts.
bool ParseModelSpec(const std::string& spec, std::string* name,
                    std::string* path, std::string* ckpt_dir) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *name = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);
  const size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    *ckpt_dir = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  if (rest.empty()) return false;
  *path = rest;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string error;
  const std::vector<daisy::cli::FlagSpec> specs = {
      {"socket"},
      {"model", /*boolean=*/false, /*numeric=*/false, /*repeated=*/true},
      {"chunk-rows", false, /*numeric=*/true},
      {"max-batch-rows", false, /*numeric=*/true},
      {"threads", false, /*numeric=*/true},
  };
  if (!args.Parse(argc, argv, 1, specs, &error)) {
    std::fprintf(stderr, "daisy_serve: %s\n", error.c_str());
    return Usage();
  }

  const std::string socket_path = args.Get("socket");
  const std::vector<std::string> model_specs = args.GetAll("model");
  if (socket_path.empty() || model_specs.empty()) return Usage();
  const long chunk_rows = args.GetInt("chunk-rows", 512);
  const long max_batch_rows = args.GetInt("max-batch-rows", 2048);
  if (chunk_rows <= 0 || max_batch_rows <= 0) {
    std::fprintf(stderr,
                 "daisy_serve: --chunk-rows and --max-batch-rows "
                 "must be positive\n");
    return 2;
  }
  if (const long threads = args.GetInt("threads", 0); threads > 0)
    daisy::par::SetNumThreads(static_cast<size_t>(threads));

  daisy::serve::ModelRegistry registry;
  for (const std::string& spec : model_specs) {
    std::string name, path, ckpt_dir;
    if (!ParseModelSpec(spec, &name, &path, &ckpt_dir)) {
      std::fprintf(stderr,
                   "daisy_serve: bad --model spec '%s' "
                   "(want NAME=PATH[:CHECKPOINT_DIR])\n",
                   spec.c_str());
      return 2;
    }
    if (Status st = registry.Load(name, path, ckpt_dir); !st.ok()) {
      std::fprintf(stderr, "daisy_serve: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "daisy_serve: loaded model '%s' from %s\n",
                 name.c_str(), path.c_str());
  }

  daisy::serve::ServeEngine::Options eopts;
  eopts.chunk_rows = static_cast<size_t>(chunk_rows);
  eopts.max_batch_rows = static_cast<size_t>(max_batch_rows);
  daisy::serve::ServeEngine engine(&registry, eopts);
  engine.Start();

  daisy::serve::SocketServer server(&registry, &engine, socket_path);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "daisy_serve: %s\n", st.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr, "daisy_serve: listening on %s\n",
               socket_path.c_str());

  server.Wait();
  server.Stop();
  g_server = nullptr;
  std::fprintf(stderr, "daisy_serve: drained, exiting\n");
  return 0;
}
